//! Live-density monitoring of an edge stream with certified lazy
//! re-solving.
//!
//! The scenario: a payments graph where a fraud ring (a planted dense
//! block) persists while ordinary traffic churns around it. A monitoring
//! service wants the densest-subgraph density continuously — but cannot
//! afford to re-run a full solver on every update. `StreamEngine` keeps a
//! certified bracket `[lower, upper]` around the optimum in `O(batch)` per
//! batch and only pays for a full solve when the bracket drifts past the
//! configured tolerance, so the trajectory below is mostly microsecond
//! epochs punctuated by rare re-solves.
//!
//! Then a *second* ring emerges mid-stream: the certificate degrades, the
//! engine notices, and a re-solve locks onto the new optimum.
//!
//! ```sh
//! cargo run --release -p dds-tests --example streaming_monitor
//! ```

//! A third phase shows the **window-native** engine: edges expire a fixed
//! number of ticks after arrival (think "only the last hour of payments
//! counts"), the fraud ring keeps re-arriving so it survives the window,
//! and the engine certifies the whole trajectory with decremental core
//! repairs instead of exact re-solves.

use std::time::Instant;

use dds_bench::stream_workloads::{churn, planted_emerge, recurring_block};
use dds_stream::{
    replay, replay_window, BatchBy, SolverKind, StreamConfig, StreamEngine, WindowConfig,
    WindowEngine, WindowMode,
};

fn trajectory(title: &str, engine: &mut StreamEngine, events: &[dds_stream::TimedEvent]) {
    println!("\n=== {title}");
    println!("    {} events, batch = 25, tolerance = 25%", events.len());
    let t0 = Instant::now();
    let reports = replay(engine, events, BatchBy::Count(25));
    let wall = t0.elapsed();

    // Print a sparse trajectory: every re-solve plus evenly spaced ticks.
    let tick = (reports.len() / 12).max(1);
    println!("    epoch      m   density   [lower, upper]    mode");
    for r in &reports {
        if r.resolved || r.epoch % tick as u64 == 0 {
            println!(
                "    {:>5} {:>6}   {:>7.3}   [{:>7.3}, {:>7.3}]   {}",
                r.epoch,
                r.m,
                r.density.to_f64(),
                r.lower,
                r.upper,
                if r.resolved { "RESOLVE" } else { "·" }
            );
        }
    }
    let resolves = reports.iter().filter(|r| r.resolved).count();
    let incremental = 100.0 * (reports.len() - resolves) as f64 / reports.len().max(1) as f64;
    println!(
        "    {} epochs in {wall:.2?}: {resolves} re-solves, {incremental:.1}% incremental",
        reports.len()
    );
}

fn main() {
    // Phase 1 — steady state: a 24×24 ring under background churn. The
    // optimum never moves, so almost every batch is absorbed by the
    // incremental certificate.
    let steady = churn(300, 1_500, (24, 24), 20_000, 7);
    let mut engine = StreamEngine::new(StreamConfig {
        tolerance: 0.25,
        slack: 2.0,
        solver: SolverKind::Exact,
        ..Default::default()
    });
    trajectory("steady fraud ring under churn", &mut engine, &steady);
    let bounds = engine.bounds();
    println!(
        "    certified: ρ_opt ∈ [{:.4}, {:.4}] (factor {:.4})",
        bounds.lower.to_f64(),
        bounds.upper,
        bounds.certified_factor()
    );

    // Phase 2 — regime change: a fresh engine watches a quiet background
    // in which a 14×14 ring assembles edge-by-edge mid-stream. Watch the
    // density ramp and the re-solves cluster around the emergence window.
    let emerge = planted_emerge(250, 600, (14, 14), 8_000, 13);
    let mut engine = StreamEngine::new(StreamConfig {
        tolerance: 0.25,
        slack: 2.0,
        solver: SolverKind::Exact,
        ..Default::default()
    });
    trajectory("dense block emerging mid-stream", &mut engine, &emerge);
    if let Some(pair) = engine.witness() {
        println!(
            "    final witness: |S| = {}, |T| = {} — the emerged ring",
            pair.s().len(),
            pair.t().len()
        );
    }

    // Phase 3 — sliding window: only the last 2 000 ticks of traffic
    // count. A 12×12 ring re-arrives every 800 ticks (renewing its expiry)
    // while background edges slide out; the window-native engine keeps the
    // ring's [x, y]-core alive decrementally and almost never escalates.
    let windowed = recurring_block(250, (12, 12), 800, 12_000, 21);
    let mut engine = WindowEngine::new(WindowConfig::new(2_000));
    println!("\n=== sliding window over a recurring fraud ring");
    println!(
        "    {} arrivals, window = {}, batch = 25, tolerance = 25%",
        windowed.len(),
        engine.window()
    );
    let t0 = Instant::now();
    let reports = replay_window(&mut engine, &windowed, BatchBy::Count(25));
    let wall = t0.elapsed();
    let tick = (reports.len() / 12).max(1);
    println!("    epoch      m   density   [lower, upper]    mode");
    for r in &reports {
        if r.mode != WindowMode::Incremental || r.epoch % tick as u64 == 0 {
            println!(
                "    {:>5} {:>6}   {:>7.3}   [{:>7.3}, {:>7.3}]   {}",
                r.epoch,
                r.m,
                r.density.to_f64(),
                r.lower,
                r.upper,
                match r.mode {
                    WindowMode::Incremental => "·",
                    WindowMode::CoreRefresh => "CORE REFRESH",
                    WindowMode::ExactResolve => "EXACT",
                    WindowMode::SketchRefresh => "SKETCH REFRESH",
                }
            );
        }
    }
    println!(
        "    {} epochs in {wall:.2?}: {} refreshes ({} exact), {} edges expired, {} core repairs",
        reports.len(),
        engine.refreshes(),
        engine.exact_solves(),
        engine.expired(),
        engine.repairs(),
    );
    if let Some((x, y)) = engine.core_thresholds() {
        println!(
            "    maintained [{x},{y}]-core still certifies ρ ≥ {:.3} as the window slides",
            engine.bounds().lower.to_f64()
        );
    }
}
