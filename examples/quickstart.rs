//! Quickstart: build a directed graph, find its densest subgraph pair.
//!
//! ```sh
//! cargo run --release -p dds-examples --bin quickstart
//! ```

use dds_core::{core_approx, DcExact};
use dds_graph::DiGraph;

fn main() {
    // A small "retweet" graph: vertices 0–2 repost everything that 3–5
    // publish, plus some background chatter.
    let edges = [
        // dense block: {0,1,2} → {3,4,5}
        (0, 3),
        (0, 4),
        (0, 5),
        (1, 3),
        (1, 4),
        (1, 5),
        (2, 3),
        (2, 4),
        (2, 5),
        // background
        (6, 0),
        (7, 6),
        (5, 8),
        (8, 9),
        (9, 7),
    ];
    let g = DiGraph::from_edges(10, &edges).expect("valid edge list");
    println!("graph: {} vertices, {} edges", g.n(), g.m());

    // Exact solver: the densest pair (S, T) maximising |E(S,T)|/√(|S||T|).
    let exact = DcExact::new().solve(&g);
    println!("\nexact DDS:");
    println!("  density = {}", exact.solution.density);
    println!("  S = {:?}", exact.solution.pair.s());
    println!("  T = {:?}", exact.solution.pair.t());
    println!(
        "  ({} ratios solved, {} max-flow calls)",
        exact.ratios_solved, exact.flow_decisions
    );

    // 2-approximation in O(√m(n+m)): the maximum-product [x, y]-core.
    let approx = core_approx(&g);
    println!("\ncore_approx (2-approximation):");
    println!("  density = {}", approx.solution.density);
    println!("  core    = [{}, {}]", approx.x, approx.y);
    println!(
        "  certified: ρ_opt ∈ [{:.4}, {:.4}]",
        approx.solution.density.to_f64(),
        approx.upper_bound
    );

    // The dense block is the optimum: 9/√(3·3) = 3.
    assert_eq!(exact.solution.pair.s(), &[0, 1, 2]);
    assert_eq!(exact.solution.pair.t(), &[3, 4, 5]);
    assert_eq!(exact.solution.density.to_f64(), 3.0);
    assert!(2.0 * approx.solution.density.to_f64() >= exact.solution.density.to_f64());
    println!("\nOK: exact optimum is the planted block, approximation within factor 2.");
}
