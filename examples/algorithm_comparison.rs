//! Side-by-side comparison of every solver in the workspace.
//!
//! Runs the exact solvers and all three approximation algorithms on one
//! mid-sized power-law graph and prints a quality/cost table — a
//! miniature of the paper's evaluation (experiments E2/E5/E6).
//!
//! ```sh
//! cargo run --release -p dds-examples --bin algorithm_comparison
//! ```

use std::time::Instant;

use dds_core::{core_approx, DcExact, DdsSolution, ExhaustivePeel, FlowExact, GridPeel};
use dds_graph::gen;

struct Row {
    name: &'static str,
    solution: DdsSolution,
    millis: f64,
    note: String,
}

fn main() {
    // Small enough for the Θ(n²)-ratio baselines to finish in seconds;
    // scale up (and drop the baselines) to taste.
    let g = gen::power_law(100, 600, 2.2, 99);
    println!("graph: n = {}, m = {}\n", g.n(), g.m());

    let mut rows: Vec<Row> = Vec::new();
    let timed = |f: &mut dyn FnMut() -> (DdsSolution, String)| -> (DdsSolution, f64, String) {
        let t0 = Instant::now();
        let (sol, note) = f();
        (sol, t0.elapsed().as_secs_f64() * 1e3, note)
    };

    let (sol, ms, note) = timed(&mut || {
        let r = DcExact::new().solve(&g);
        (
            r.solution,
            format!("{} flows over {} ratios", r.flow_decisions, r.ratios_solved),
        )
    });
    rows.push(Row {
        name: "DcExact",
        solution: sol,
        millis: ms,
        note,
    });

    let (sol, ms, note) = timed(&mut || {
        let r = FlowExact.solve(&g);
        (
            r.solution,
            format!("{} flows over {} ratios", r.flow_decisions, r.ratios_solved),
        )
    });
    rows.push(Row {
        name: "FlowExact (baseline)",
        solution: sol,
        millis: ms,
        note,
    });

    let (sol, ms, note) = timed(&mut || {
        let r = core_approx(&g);
        (r.solution, format!("core [{},{}], 2-approx", r.x, r.y))
    });
    rows.push(Row {
        name: "core_approx",
        solution: sol,
        millis: ms,
        note,
    });

    let (sol, ms, note) = timed(&mut || {
        let r = GridPeel::new(0.1).solve(&g);
        (
            r.solution,
            format!("{} grid peels, 2.2-approx", r.ratios_tried),
        )
    });
    rows.push(Row {
        name: "GridPeel(0.1)",
        solution: sol,
        millis: ms,
        note,
    });

    let (sol, ms, note) = timed(&mut || {
        let r = ExhaustivePeel.solve(&g);
        (r.solution, format!("{} peels, 2-approx", r.ratios_tried))
    });
    rows.push(Row {
        name: "ExhaustivePeel (baseline)",
        solution: sol,
        millis: ms,
        note,
    });

    let opt = rows[0].solution.density;
    println!(
        "{:<26} {:>10} {:>9} {:>8}  note",
        "algorithm", "density", "quality", "ms"
    );
    for row in &rows {
        let quality = if opt.is_zero() {
            1.0
        } else {
            row.solution.density.to_f64() / opt.to_f64()
        };
        println!(
            "{:<26} {:>10.4} {:>8.1}% {:>8.1}  {}",
            row.name,
            row.solution.density.to_f64(),
            100.0 * quality,
            row.millis,
            row.note
        );
    }

    // Invariants the table must satisfy.
    assert_eq!(
        rows[0].solution.density, rows[1].solution.density,
        "exact solvers agree"
    );
    for row in &rows[2..] {
        assert!(
            row.solution.density <= opt,
            "{} exceeded the optimum",
            row.name
        );
        assert!(
            2.2 * row.solution.density.to_f64() + 1e-9 >= opt.to_f64(),
            "{} broke its approximation guarantee",
            row.name
        );
    }
    println!("\nOK: exact solvers agree; every approximation met its guarantee.");
}
