//! Recovering a planted fraud ring with the exact solver.
//!
//! A classic DDS application: in a payments/review graph, a ring of
//! colluding accounts (`S`) funnels transactions/reviews toward a set of
//! beneficiary accounts (`T`), forming an abnormally dense directed block
//! that ordinary activity does not. This example plants such a block in a
//! sparse background, recovers it *exactly* with `DcExact`, and shows how
//! much of the graph the core-based pruning never touches.
//!
//! ```sh
//! cargo run --release -p dds-examples --bin fraud_detection
//! ```

use std::time::Instant;

use dds_core::{DcExact, ExactOptions};
use dds_graph::{gen, VertexId};

fn main() {
    // 800 accounts with 2 400 background transactions; 8 fraudsters
    // each hitting all 10 beneficiary accounts with probability 0.95.
    // (Scale n up to taste: the full solver handles thousands of vertices
    // in seconds; the no-pruning ablation at the end is the slow part.)
    let planted = gen::planted(800, 2_400, 8, 10, 0.95, 2024);
    let g = &planted.graph;
    println!(
        "transaction graph: n = {}, m = {} (block: {}×{} accounts)",
        g.n(),
        g.m(),
        planted.pair.s().len(),
        planted.pair.t().len()
    );
    let planted_density = planted.pair.density(g);
    println!("planted block density: {planted_density}");

    // Exact solve with all pruning devices.
    let t0 = Instant::now();
    let report = DcExact::new().solve(g);
    let elapsed = t0.elapsed();
    println!(
        "\nDcExact found ρ_opt = {} in {elapsed:?}",
        report.solution.density
    );
    println!(
        "  ratios solved {}, flow decisions {}, pruned {} (γ) + {} (structural)",
        report.ratios_solved,
        report.flow_decisions,
        report.ratios_pruned_gamma,
        report.ratios_pruned_structural
    );
    let max_nodes = report.network_nodes.iter().max().copied().unwrap_or(0);
    println!(
        "  largest flow network: {max_nodes} nodes (graph has {} vertices → {:.1}% touched)",
        g.n(),
        100.0 * max_nodes as f64 / g.n() as f64
    );

    // How well does the answer match the planted ring?
    let sol = &report.solution;
    let overlap = |found: &[VertexId], truth: &[VertexId]| -> (f64, f64) {
        let hit = found.iter().filter(|v| truth.contains(v)).count() as f64;
        (
            hit / found.len().max(1) as f64,
            hit / truth.len().max(1) as f64,
        )
    };
    let (s_prec, s_rec) = overlap(sol.pair.s(), planted.pair.s());
    let (t_prec, t_rec) = overlap(sol.pair.t(), planted.pair.t());
    println!("\nrecovery vs planted ring:");
    println!(
        "  S side: precision {:.0}%, recall {:.0}%",
        100.0 * s_prec,
        100.0 * s_rec
    );
    println!(
        "  T side: precision {:.0}%, recall {:.0}%",
        100.0 * t_prec,
        100.0 * t_rec
    );

    // The optimum can only be at least as dense as what we planted.
    assert!(
        sol.density >= planted_density,
        "solver must match or beat the plant"
    );
    assert!(
        s_rec >= 0.8 && t_rec >= 0.8,
        "the ring should be substantially recovered"
    );

    // Ablation: the same answer without core pruning, but on much larger
    // flow networks.
    let t0 = Instant::now();
    let no_core = DcExact::with_options(ExactOptions {
        core_pruning: false,
        ..ExactOptions::default()
    })
    .solve(g);
    let elapsed_no_core = t0.elapsed();
    assert_eq!(no_core.solution.density, report.solution.density);
    let max_nodes_nc = no_core.network_nodes.iter().max().copied().unwrap_or(0);
    println!("\nablation (no core pruning): same optimum, {elapsed_no_core:?}");
    println!(
        "  largest flow network grows {max_nodes} → {max_nodes_nc} nodes ({:.0}× larger)",
        max_nodes_nc as f64 / max_nodes.max(1) as f64
    );
    assert!(max_nodes_nc >= max_nodes);
    println!("\nOK: ring recovered exactly; core pruning kept the networks small.");
}
