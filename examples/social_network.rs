//! Hub/authority discovery on a synthetic follower network.
//!
//! The DDS problem on directed graphs separates the two roles an
//! undirected densest subgraph conflates: `S` collects *hubs* (accounts
//! that link out a lot — fans, aggregators) and `T` collects *authorities*
//! (accounts that are linked to — celebrities). This example builds a
//! power-law follower graph, extracts the densest pair with the scalable
//! approximations, and inspects the role split.
//!
//! ```sh
//! cargo run --release -p dds-examples --bin social_network
//! ```

use std::time::Instant;

use dds_core::{core_approx, parallel, GridPeel};
use dds_graph::{gen, GraphStats, VertexId};

fn main() {
    // ~20k accounts, ~120k follows, heavy-tailed in both directions.
    let g = gen::power_law(20_000, 120_000, 2.2, 7);
    let stats = GraphStats::compute(&g);
    println!(
        "follower graph: n = {}, m = {}, max out = {}, max in = {}",
        stats.n, stats.m, stats.max_out_degree, stats.max_in_degree
    );

    // CoreApprox: deterministic 2-approximation.
    let t0 = Instant::now();
    let core = core_approx(&g);
    let t_core = t0.elapsed();
    println!(
        "\ncore_approx:  ρ = {:.4}  (core [{},{}], {:?})",
        core.solution.density.to_f64(),
        core.x,
        core.y,
        t_core
    );
    println!(
        "  certified bracket for the true optimum: [{:.4}, {:.4}]",
        core.solution.density.to_f64().max(core.lower_bound),
        core.upper_bound
    );

    // GridPeel: 2(1+ε)-approximation, here with 4 workers.
    let t0 = Instant::now();
    let grid = parallel::grid_peel_parallel(&g, 0.1, 4);
    let t_grid = t0.elapsed();
    println!(
        "grid peel:    ρ = {:.4}  ({} ratios, 4 threads, {:?})",
        grid.solution.density.to_f64(),
        grid.ratios_tried,
        t_grid
    );

    // Sequential GridPeel for reference.
    let t0 = Instant::now();
    let grid_seq = GridPeel::new(0.1).solve(&g);
    let t_seq = t0.elapsed();
    println!(
        "grid peel seq ρ = {:.4}  ({:?})",
        grid_seq.solution.density.to_f64(),
        t_seq
    );
    assert_eq!(grid.solution.density, grid_seq.solution.density);

    // Interpret the denser of the two answers.
    let best = if core.solution.density >= grid.solution.density {
        &core.solution
    } else {
        &grid.solution
    };
    let s = best.pair.s();
    let t = best.pair.t();
    println!(
        "\ndensest pair: |S| = {} hubs, |T| = {} authorities",
        s.len(),
        t.len()
    );

    let avg = |side: &[VertexId], f: &dyn Fn(VertexId) -> usize| -> f64 {
        if side.is_empty() {
            0.0
        } else {
            side.iter().map(|&v| f(v) as f64).sum::<f64>() / side.len() as f64
        }
    };
    let out_of = |v: VertexId| g.out_degree(v);
    let in_of = |v: VertexId| g.in_degree(v);
    let s_out = avg(s, &out_of);
    let s_in = avg(s, &in_of);
    let t_out = avg(t, &out_of);
    let t_in = avg(t, &in_of);
    println!("  S (hubs):        avg out-degree {s_out:.1}, avg in-degree {s_in:.1}");
    println!("  T (authorities): avg out-degree {t_out:.1}, avg in-degree {t_in:.1}");

    // The role split is the point of directed density: hubs should link
    // out far more than authorities do, and authorities should be linked
    // to far more than hubs are.
    assert!(s_out > t_out, "hubs should out-link more than authorities");
    assert!(t_in > s_in, "authorities should be followed more than hubs");
    assert!(
        2.0 * core.solution.density.to_f64() + 1e-9 >= grid.solution.density.to_f64(),
        "both carry multiplicative guarantees to the same optimum"
    );
    println!("\nOK: hub/authority roles separated as expected.");
}
