//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses. The build environment has no crates.io access, so the workspace
//! vendors a small, deterministic implementation instead: [`rngs::SmallRng`]
//! is xoshiro256++ seeded through SplitMix64, which matches the statistical
//! quality the generators need (seeded, reproducible workloads — not
//! cryptography).
//!
//! Only the surface the workspace calls is provided: `SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer and `f64`
//! ranges, and `Rng::gen_bool`.

#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

pub mod rngs;

/// Core source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 128 uniformly random bits (two words).
    fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from one `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive integer ranges,
    /// half-open `f64` ranges).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (`0.0 ≤ p ≤ 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that knows how to sample one value from itself.
pub trait SampleRange<T> {
    /// Draw a single uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits to `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let off = rng.next_u128() % span;
                ((self.start as i128) + off as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                let off = rng.next_u128() % span;
                ((start as i128) + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Rounding may land exactly on the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..2_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn all_residues_reachable() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
