//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses. The build environment has no crates.io access, so this shim
//! re-implements the pieces the test suite relies on:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`Strategy`] with `prop_map`, range strategies, tuple strategies,
//!   [`collection::vec`], and [`any`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`], [`TestCaseError`], and [`ProptestConfig`].
//!
//! Differences from real proptest: sampling is plain uniform (no bias
//! toward edge cases) and failing cases are reported without shrinking.
//! Runs are deterministic — the RNG is seeded from the test name, so a
//! failure reproduces across runs.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod collection;

/// How a single generated test case ended, when it did not simply pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case failed an assertion; the message explains how.
    Fail(String),
    /// The case asked to be skipped (`prop_assume!` was violated).
    Reject,
}

impl TestCaseError {
    /// A failed case with an explanatory message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "test case failed: {msg}"),
            TestCaseError::Reject => write!(f, "test case rejected"),
        }
    }
}

/// Per-block configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases each property must see.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the offline suite quick
        // while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies while sampling.
pub struct TestRng(SmallRng);

impl TestRng {
    fn from_name(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and rustc versions.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn next_u128(&mut self) -> u128 {
        self.0.next_u128()
    }

    fn gen_index(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            self.0.gen_range(0..bound)
        }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let off = rng.next_u128() % span;
                ((self.start as i128).wrapping_add(off as i128)) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = ((end as i128).wrapping_sub(start as i128) as u128).wrapping_add(1);
                let off = if span == 0 { rng.next_u128() } else { rng.next_u128() % span };
                ((start as i128).wrapping_add(off as i128)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

impl Strategy for core::ops::Range<u128> {
    type Value = u128;

    fn sample(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_u128() % (self.end - self.start)
    }
}

/// Types with a whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draw one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u128() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, u128, i128);

/// Strategy over the full domain of `T` (see [`any`]).
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0.0);
tuple_strategy!(S0.0, S1.1);
tuple_strategy!(S0.0, S1.1, S2.2);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8, S9.9);

/// Drives one property: samples until `config.cases` cases pass, skipping
/// rejected samples, and panics with the failure message otherwise.
///
/// This is the runtime behind [`proptest!`]; tests never call it directly.
pub fn run_proptest<S: Strategy>(
    config: ProptestConfig,
    name: &str,
    strategy: S,
    mut test: impl FnMut(S::Value) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let reject_budget = 4_096 + 64 * u64::from(config.cases);
    while passed < config.cases {
        let value = strategy.sample(&mut rng);
        match test(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= reject_budget,
                    "proptest '{name}': too many rejected samples ({rejected}) — \
                     prop_assume! conditions are rarely satisfiable"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed after {passed} passing case(s): {msg}")
            }
        }
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest(
                $cfg,
                stringify!($name),
                ($($strat,)+),
                |__proptest_values| {
                    let ($($pat,)+) = __proptest_values;
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

/// Like `assert!`, but fails the current generated case instead of
/// panicking directly (usable only inside [`proptest!`] bodies).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!`, for [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{}` == `{}`\n  left: `{:?}`\n right: `{:?}`",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` == `{:?}`: {}",
                        l,
                        r,
                        format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

/// Like `assert_ne!`, for [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{:?}` != `{:?}`",
                        l, r
                    )));
                }
            }
        }
    };
}

/// Skips the current generated case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    //! One-stop import for property tests, mirroring
    //! `proptest::prelude::*`.

    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -4i64..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn map_and_vec_compose(v in prop::collection::vec((0u8..4).prop_map(|b| b * 2), 2..6) ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b % 2 == 0 && b < 8));
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn exact_size_vec() {
        let strat = crate::collection::vec(any::<bool>(), 25);
        let mut rng = crate::TestRng::from_name("exact_size_vec");
        for _ in 0..8 {
            assert_eq!(crate::Strategy::sample(&strat, &mut rng).len(), 25);
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failures_panic() {
        crate::run_proptest(
            ProptestConfig::with_cases(4),
            "failures_panic",
            0u32..10,
            |_| Err(TestCaseError::fail("forced")),
        );
    }
}
