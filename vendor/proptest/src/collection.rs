//! Collection strategies (`prop::collection::vec`).

use crate::{Strategy, TestRng};

/// Accepted size specifications for [`vec`]: an exact `usize` or a
/// half-open / inclusive `usize` range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a sampled length.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` strategy: `size` elements (exact or sampled from a range), each
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi - self.size.lo;
        let len = self.size.lo + rng.gen_index(span);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
