//! Offline stand-in for the subset of the `criterion` API this workspace's
//! benches use. The build environment has no crates.io access, so this shim
//! provides a compile-compatible [`Criterion`], [`criterion_group!`], and
//! [`criterion_main!`] that time each benchmark with plain
//! [`std::time::Instant`] and print one line per benchmark — no statistics,
//! plots, or outlier analysis.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export so benches can use either `criterion::black_box` or
/// `std::hint::black_box`.
pub use std::hint::black_box;

/// Benchmark driver. Builder methods mirror the real crate; only
/// `sample_size` affects this shim (iterations per benchmark).
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(1_000),
        }
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim runs one untimed warm-up
    /// iteration regardless.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Accepted for API compatibility; the shim times exactly
    /// `sample_size` iterations regardless.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints `name  <mean time>/iter`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = if bencher.iters > 0 {
            bencher.elapsed / u32::try_from(bencher.iters).unwrap_or(u32::MAX)
        } else {
            Duration::ZERO
        };
        println!(
            "bench: {id:<48} {per_iter:>12?}/iter ({} iters)",
            bencher.iters
        );
        self
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f` (after one untimed warm-up call).
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Bundles benchmark functions into a group runner, in either the list
/// form or the `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
