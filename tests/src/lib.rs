//! Shared helpers for the cross-crate integration test suite.

use dds_num::Density;

/// Asserts `k · approx ≥ opt` exactly (integer cross-multiplication):
/// `k²·e_a²·s_o·t_o ≥ e_o²·s_a·t_a`.
///
/// # Panics
/// Panics when the guarantee is violated.
pub fn assert_within_factor(k: u64, approx: Density, opt: Density) {
    assert!(
        approx <= opt,
        "approximation {approx} exceeds optimum {opt}"
    );
    let lhs = u128::from(k)
        * u128::from(k)
        * u128::from(approx.edges)
        * u128::from(approx.edges)
        * u128::from(opt.s)
        * u128::from(opt.t);
    let rhs =
        u128::from(opt.edges) * u128::from(opt.edges) * u128::from(approx.s) * u128::from(approx.t);
    assert!(lhs >= rhs, "{approx} is not within factor {k} of {opt}");
}

/// The workloads every integration test agrees to exercise: small enough
/// for exact reference answers, diverse enough to hit the solvers'
/// different regimes.
#[must_use]
pub fn small_workloads() -> Vec<(String, dds_graph::DiGraph)> {
    use dds_graph::gen;
    let mut out: Vec<(String, dds_graph::DiGraph)> = vec![
        ("k23".into(), gen::complete_bipartite(2, 3)),
        ("k44".into(), gen::complete_bipartite(4, 4)),
        ("star8".into(), gen::out_star(8)),
        ("cycle9".into(), gen::cycle(9)),
        ("path7".into(), gen::path(7)),
    ];
    for seed in 0..4u64 {
        out.push((format!("gnm-{seed}"), gen::gnm(18, 70, seed)));
        out.push((format!("pl-{seed}"), gen::power_law(18, 70, 2.2, seed)));
    }
    out.push(("planted".into(), gen::planted(30, 50, 3, 4, 1.0, 5).graph));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_assertion_accepts_equality() {
        let d = Density::new(4, 2, 2);
        assert_within_factor(1, d, d);
        assert_within_factor(2, Density::new(2, 2, 2), d);
    }

    #[test]
    #[should_panic(expected = "not within factor")]
    fn factor_assertion_rejects_violations() {
        assert_within_factor(2, Density::new(1, 2, 2), Density::new(8, 2, 2));
    }

    #[test]
    fn workloads_are_nonempty_and_named() {
        let w = small_workloads();
        assert!(w.len() >= 10);
        assert!(w.iter().all(|(name, g)| !name.is_empty() && g.n() > 0));
    }
}
