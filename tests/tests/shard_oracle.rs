//! The differential oracle harness for the sharded engine (the ISSUE-5
//! headline tests): replay random dirty insert/delete streams — dups,
//! self-loops, absent deletes included — through a K-sharded engine and
//! check, at every epoch, the two claims the whole subsystem rests on:
//!
//! * **union soundness** — the merge of the shard sketches (union of
//!   retained sets, bumped to a common level) is *identical* to a single
//!   [`SketchEngine`] fed the same applied mutations at the same seed,
//!   once both sit at the same level: same retained set, same exact
//!   counters, same degree maxima. Deterministic nested admission is what
//!   makes this an equality, not an approximation;
//! * **certified bracket validity** — the sharded engine's merged bracket
//!   contains a fresh [`DcExact`] solve of the full graph, and its edge
//!   set never drifts from a canonical [`DynamicGraph`] mirror.
//!
//! Plus the restart claim: snapshot → restore → replay is **equivalent**
//! — bit-identical, epoch by epoch, for the sharded engine (whose merged
//! refreshes are history-independent by design), and edge-set/bracket
//! equivalent for the stream engine (strict for `CoreApprox` re-solves,
//! which use no warm state; soundness-only for `Exact`, whose warm
//! context is a perf cache that may pick a different optimal pair).

use dds_core::DcExact;
use dds_shard::{ShardConfig, ShardedEngine};
use dds_sketch::{SketchConfig, SketchEngine};
use dds_stream::{Batch, DynamicGraph, Event, SolverKind, StreamConfig, StreamEngine, TimedEvent};
use proptest::prelude::*;

/// Random dirty event streams over ≤ `max_n` vertices: mostly inserts,
/// some deletes, duplicates, self-loops, and absent-deletes included (the
/// sharded engine dedupes per shard — that is the contract under test).
fn events(max_n: u32, len: usize) -> impl Strategy<Value = Vec<TimedEvent>> {
    prop::collection::vec((0u32..4, 0u32..max_n, 0u32..max_n), 1..len).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (op, u, v))| TimedEvent {
                time: i as u64,
                event: if op < 3 {
                    Event::Insert(u, v)
                } else {
                    Event::Delete(u, v)
                },
            })
            .collect()
    })
}

/// Drives a sharded engine and a single-sketch-behind-a-mirror twin
/// through the same stream, checking union soundness and bracket
/// validity at every epoch.
fn check_sharded_epochs(
    stream: &[TimedEvent],
    batch_size: usize,
    shards: usize,
    bound: usize,
    seed: u64,
) -> Result<(), TestCaseError> {
    let sketch_config = SketchConfig {
        state_bound: bound,
        seed,
        ..SketchConfig::default()
    };
    let mut engine = ShardedEngine::new(ShardConfig {
        shards,
        threads: shards,
        sketch: sketch_config,
        ..ShardConfig::default()
    });
    let mut mirror = DynamicGraph::new();
    let mut single = SketchEngine::new(sketch_config);
    for chunk in stream.chunks(batch_size) {
        for ev in chunk {
            match ev.event {
                Event::Insert(u, v) => {
                    if mirror.insert(u, v) {
                        single.insert(u, v);
                    }
                }
                Event::Delete(u, v) => {
                    if mirror.delete(u, v) {
                        single.delete(u, v);
                    }
                }
            }
        }
        let report = engine.apply(&Batch::from_events(chunk.to_vec()));

        // Edge set and counters agree with the canonical mirror.
        prop_assert_eq!(report.m as usize, mirror.m(), "m drifted from mirror");
        prop_assert_eq!(report.n, mirror.n(), "n drifted from mirror");
        let full = mirror.materialize();
        let mut ours: Vec<_> = engine.edges().collect();
        let mut theirs: Vec<_> = mirror.edges().collect();
        ours.sort_unstable();
        theirs.sort_unstable();
        prop_assert_eq!(ours, theirs, "edge partition lost or invented edges");

        // Union soundness: merge the shard sketches, bring the single
        // engine to the same level (admission is nested, so raising is the
        // only sound direction), and demand identity.
        let parts = engine.shard_sketches();
        let mut merged = SketchEngine::merged(sketch_config, &parts);
        let level = merged.level().max(single.level());
        merged.raise_to_level(level);
        // The single engine is the *live* twin — raise a clone, not it,
        // so its own level trajectory stays undisturbed across epochs.
        let single_at = SketchEngine::restore_at(sketch_config, level, mirror.edges());
        prop_assert_eq!(merged.m(), single_at.m(), "merged m must sum");
        let (mo, mi) = merged.degree_trackers();
        let (so, si) = single_at.degree_trackers();
        prop_assert_eq!((mo.max(), mi.max()), (so.max(), si.max()), "degree maxima");
        let mut a: Vec<_> = merged.retained_edges().collect();
        let mut b: Vec<_> = single_at.retained_edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "merged retained set diverged at level {}", level);
        // Sanity of the comparison itself: the *live* single engine must
        // equal its own pure-function twin at its own level — i.e. the
        // retained set really is a function of (seed, level, edges).
        let twin = SketchEngine::restore_at(sketch_config, single.level(), mirror.edges());
        let mut live: Vec<_> = single.retained_edges().collect();
        let mut pure: Vec<_> = twin.retained_edges().collect();
        live.sort_unstable();
        pure.sort_unstable();
        prop_assert_eq!(live, pure, "live single vs restore_at twin");

        // Certified bracket contains the true optimum, every epoch.
        let exact = DcExact::new().solve(&full).solution.density;
        prop_assert!(
            report.density <= exact,
            "epoch {}: lower {} exceeds exact {}",
            report.epoch,
            report.density,
            exact
        );
        prop_assert!(
            exact.to_f64() <= report.upper * (1.0 + 1e-9),
            "epoch {}: upper {} below exact {}",
            report.epoch,
            report.upper,
            exact
        );
        prop_assert!(report.lower <= report.upper * (1.0 + 1e-9));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The headline differential: K-sharded = single-engine, at every
    /// epoch, under dirty streams and tight bounds (levels engage).
    #[test]
    fn merged_shards_equal_the_single_engine_and_bracket_exact(
        stream in events(8, 44),
        batch_size in 1usize..6,
        shards in 2usize..5,
        bound in 3usize..16,
        seed in 0u64..64,
    ) {
        check_sharded_epochs(&stream, batch_size, shards, bound, seed)?;
    }

    /// Roomy bounds: no subsampling, the merged sample IS the graph, and
    /// the merged refresh must behave like an exact engine.
    #[test]
    fn roomy_sharded_engines_stay_exact(
        stream in events(7, 36),
        batch_size in 1usize..5,
        shards in 2usize..4,
    ) {
        check_sharded_epochs(&stream, batch_size, shards, 10_000, 0xDD5)?;
    }

    /// Kill/restore equivalence for the sharded engine: snapshot at a
    /// random batch boundary, restore, and the two trajectories must be
    /// bit-identical to the end of the stream.
    #[test]
    fn sharded_snapshot_restore_replay_is_bit_identical(
        stream in events(8, 40),
        batch_size in 1usize..6,
        shards in 1usize..4,
        split in 0usize..8,
    ) {
        let config = ShardConfig {
            shards,
            threads: shards,
            sketch: SketchConfig { state_bound: 12, ..SketchConfig::default() },
            ..ShardConfig::default()
        };
        let batches: Vec<&[TimedEvent]> = stream.chunks(batch_size).collect();
        let cut = split.min(batches.len());
        let mut original = ShardedEngine::new(config);
        for chunk in &batches[..cut] {
            original.apply(&Batch::from_events(chunk.to_vec()));
        }
        let snap = original.snapshot(42);
        let (mut restored, cursor) = ShardedEngine::restore(config, &snap)
            .expect("restore must succeed");
        prop_assert_eq!(cursor, 42);
        prop_assert_eq!(restored.snapshot(42), snap, "round-trip identity");
        for chunk in &batches[cut..] {
            let a = original.apply(&Batch::from_events(chunk.to_vec()));
            let b = restored.apply(&Batch::from_events(chunk.to_vec()));
            prop_assert_eq!(a.m, b.m, "epoch {}", a.epoch);
            prop_assert_eq!(a.refreshed, b.refreshed, "epoch {}", a.epoch);
            prop_assert_eq!(a.density, b.density, "epoch {}", a.epoch);
            prop_assert_eq!(a.lower.to_bits(), b.lower.to_bits(), "epoch {}", a.epoch);
            prop_assert_eq!(a.upper.to_bits(), b.upper.to_bits(), "epoch {}", a.epoch);
        }
        prop_assert_eq!(original.snapshot(0), restored.snapshot(0), "end states");
    }

    /// Kill/restore equivalence for the stream engine with `CoreApprox`
    /// re-solves (no warm-context state): strictly identical trajectories.
    #[test]
    fn stream_snapshot_restore_replay_matches_with_core_approx(
        stream in events(8, 40),
        batch_size in 1usize..6,
        split in 0usize..8,
    ) {
        let config = StreamConfig {
            tolerance: 0.25,
            slack: 1.0,
            solver: SolverKind::CoreApprox,
            ..Default::default()
        };
        let batches: Vec<&[TimedEvent]> = stream.chunks(batch_size).collect();
        let cut = split.min(batches.len());
        let mut original = StreamEngine::new(config);
        for chunk in &batches[..cut] {
            original.apply(&Batch::from_events(chunk.to_vec()));
        }
        let snap = original.snapshot(0);
        let (mut restored, _) = StreamEngine::restore(config, &snap)
            .expect("restore must succeed");
        prop_assert_eq!(restored.snapshot(0), snap, "round-trip identity");
        for chunk in &batches[cut..] {
            let a = original.apply(&Batch::from_events(chunk.to_vec()));
            let b = restored.apply(&Batch::from_events(chunk.to_vec()));
            prop_assert_eq!(a.m, b.m, "epoch {}", a.epoch);
            prop_assert_eq!(a.resolved, b.resolved, "epoch {}", a.epoch);
            prop_assert_eq!(a.density, b.density, "epoch {}", a.epoch);
            prop_assert_eq!(a.lower.to_bits(), b.lower.to_bits(), "epoch {}", a.epoch);
            prop_assert_eq!(a.upper.to_bits(), b.upper.to_bits(), "epoch {}", a.epoch);
        }
        prop_assert_eq!(original.snapshot(0), restored.snapshot(0), "end states");
    }

    /// Kill/restore for the exact stream engine: the warm context is perf
    /// state, so the restored engine may pick a different optimal pair at
    /// a later re-solve — but the edge set must match exactly and both
    /// brackets must keep containing the true optimum.
    #[test]
    fn stream_snapshot_restore_replay_stays_sound_with_exact(
        stream in events(7, 32),
        batch_size in 1usize..5,
        split in 0usize..6,
    ) {
        let config = StreamConfig::default();
        let batches: Vec<&[TimedEvent]> = stream.chunks(batch_size).collect();
        let cut = split.min(batches.len());
        let mut original = StreamEngine::new(config);
        for chunk in &batches[..cut] {
            original.apply(&Batch::from_events(chunk.to_vec()));
        }
        let snap = original.snapshot(0);
        let (mut restored, _) = StreamEngine::restore(config, &snap)
            .expect("restore must succeed");
        prop_assert_eq!(restored.snapshot(0), snap, "round-trip identity");
        for chunk in &batches[cut..] {
            let a = original.apply(&Batch::from_events(chunk.to_vec()));
            let b = restored.apply(&Batch::from_events(chunk.to_vec()));
            prop_assert_eq!(a.m, b.m, "epoch {}", a.epoch);
            let exact = DcExact::new().solve(&restored.materialize()).solution.density;
            for (tag, r) in [("original", &a), ("restored", &b)] {
                prop_assert!(
                    r.density <= exact,
                    "{} epoch {}: lower above exact",
                    tag,
                    r.epoch
                );
                prop_assert!(
                    exact.to_f64() <= r.upper * (1.0 + 1e-9),
                    "{} epoch {}: upper {} below exact {}",
                    tag,
                    r.epoch,
                    r.upper,
                    exact
                );
            }
        }
        let mut ea: Vec<_> = original.materialize().edges().collect();
        let mut eb: Vec<_> = restored.materialize().edges().collect();
        ea.sort_unstable();
        eb.sort_unstable();
        prop_assert_eq!(ea, eb, "final edge sets must match");
    }
}
