//! The live introspection plane under concurrent load: scraper threads
//! hammer `/metrics` and `/status` while a follow replay ingests, and
//! every response must parse cleanly and reconcile with the driver's own
//! epoch accounting — scrapes never block ingest and never tear.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dds_obs::{http_get, AdminServer, Registry, SlowRing, StatusBoard};
use dds_stream::{follow_events, FollowConfig, StreamConfig, StreamEngine};

fn temp_events(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "dds_admin_plane_{tag}_{}_{:?}.events",
        std::process::id(),
        std::thread::current().id()
    ));
    let events = dds_bench::stream_workloads::churn(150, 1_000, (14, 14), 8_000, 0xAD01);
    dds_stream::save_events(&events, &path).expect("write events");
    path
}

#[test]
fn concurrent_scrapes_parse_and_reconcile_with_ingest() {
    let path = temp_events("scrape");
    let registry = Registry::new();
    let board = Arc::new(StatusBoard::new("stream"));
    let ring = Arc::new(SlowRing::new(16, 0));
    let admin = AdminServer::start(
        "127.0.0.1:0",
        registry.clone(),
        Arc::clone(&board),
        Arc::clone(&ring),
    )
    .expect("bind admin");
    let addr = admin.addr();

    let mut engine = StreamEngine::new(StreamConfig::default());
    engine.attach_obs(&registry);

    // Scraper threads hammer the plane for the whole replay. Every
    // response must be complete and parseable; the epoch counter must
    // never exceed what the driver has sealed so far.
    let stop = Arc::new(AtomicBool::new(false));
    let scrapers: Vec<_> = (0..3)
        .map(|i| {
            let stop = Arc::clone(&stop);
            let board = Arc::clone(&board);
            std::thread::spawn(move || {
                let mut scrapes = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let (code, body) = http_get(addr, "/metrics").expect("scrape /metrics");
                    assert_eq!(code, 200, "scraper {i}");
                    let parsed = dds_obs::parse_exposition(&body).expect("exposition parses");
                    // The driver seals the board AFTER attaching counters,
                    // so a torn read can only under-report, never over.
                    if let Some(epochs) = parsed.get("dds_stream_epochs_total") {
                        let sealed = board.epoch();
                        assert!(
                            epochs.as_u64() <= Some(sealed + 1),
                            "scraped {epochs} epochs but the driver sealed {sealed}"
                        );
                    }
                    let (code, status) = http_get(addr, "/status").expect("scrape /status");
                    assert_eq!(code, 200, "scraper {i}");
                    assert!(
                        status.starts_with('{') && status.ends_with("}\n"),
                        "status must never tear: {status:?}"
                    );
                    scrapes += 1;
                }
                scrapes
            })
        })
        .collect();

    let mut epochs = 0u64;
    let mut events_total = 0u64;
    let outcome = follow_events(
        &path,
        FollowConfig {
            batch: 50,
            poll: Duration::from_millis(1),
            idle_exit: Some(Duration::ZERO),
            cursor: 0,
        },
        |batch, cur| {
            events_total += batch.events.len() as u64;
            let r = engine.apply(&batch);
            epochs = r.epoch;
            board.seal_epoch(
                r.epoch,
                events_total,
                cur,
                r.density.to_f64(),
                r.lower,
                r.upper,
            );
            board.set_ready();
            std::ops::ControlFlow::Continue(())
        },
    )
    .expect("follow");
    stop.store(true, Ordering::Relaxed);
    let scrapes: u64 = scrapers.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(scrapes > 0, "the scrapers must have gotten through");

    // Final reconciliation: the last scrape agrees with the driver.
    assert_eq!(outcome.epochs, epochs);
    assert_eq!(board.ready_flips(), 1, "readiness flips exactly once");
    let (code, body) = http_get(addr, "/metrics").expect("final scrape");
    assert_eq!(code, 200);
    let parsed = dds_obs::parse_exposition(&body).expect("final exposition parses");
    assert!(
        parsed
            .get("dds_stream_epochs_total")
            .is_some_and(|v| v.as_u64() == Some(epochs)),
        "final scrape must reconcile with {epochs} sealed epochs: {body}"
    );
    let (code, status) = http_get(addr, "/status").expect("final status");
    assert_eq!(code, 200);
    assert!(status.contains(&format!("\"epoch\":{epochs}")), "{status}");
    assert!(
        status.contains(&format!("\"events\":{events_total}")),
        "{status}"
    );
    drop(admin);
    std::fs::remove_file(&path).ok();
}
