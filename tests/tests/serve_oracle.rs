//! The differential oracle for `EpochSnapshot` publication (ISSUE-8): a
//! random churn stream replays through a [`StreamEngine`] in lockstep
//! with a live [`dds_serve::Server`]; after **every** publish, real TCP
//! queries (`DENSITY`, `MEMBER`, `CORE`, `TOPK`) are checked against the
//! engine's own report for that epoch:
//!
//! * every `DENSITY` answer reproduces the epoch's bracket and counters
//!   exactly (same `format!` the server uses — not an epsilon match);
//! * every `MEMBER` answer agrees with the engine's witness pair;
//! * every `CORE` answer agrees with a fresh [`xy_core`] of the
//!   materialized graph;
//! * answers are internally consistent (no torn reads: one response
//!   never mixes fields from two epochs, pinned by the epoch id each
//!   response carries) and epoch ids are strictly monotone across
//!   publishes.
//!
//! Concurrency (readers hammering *during* ingestion) is E18's job; this
//! oracle is deliberately lockstep so every served answer has exactly one
//! correct value to compare against.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use dds_serve::{EpochFacts, PublishOptions, Publisher, ServeMetrics, Server, SnapshotCell};
use dds_stream::{Batch, SolverKind, StreamConfig, StreamEngine};
use dds_xycore::xy_core;

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to serve front end");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { stream, reader }
    }

    fn query(&mut self, q: &str) -> String {
        self.stream
            .write_all(format!("{q}\n").as_bytes())
            .expect("send query");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        assert!(
            line.ends_with('\n'),
            "response must be a full line: {line:?}"
        );
        line.trim_end().to_string()
    }
}

/// Pulls `epoch=N` out of a response line.
fn epoch_of(response: &str) -> u64 {
    response
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("epoch="))
        .unwrap_or_else(|| panic!("response carries no epoch: {response}"))
        .parse()
        .expect("epoch id parses")
}

#[test]
fn served_answers_match_the_engine_report_for_every_epoch() {
    const CORE_X: u64 = 1;
    const CORE_Y: u64 = 1;
    let events = dds_bench::churn(100, 600, (8, 8), 3_000, 0x5EED);

    let mut engine = StreamEngine::new(StreamConfig {
        tolerance: 0.25,
        slack: 2.0,
        solver: SolverKind::Exact,
        threads: 1,
        sketch: None,
    });
    let cell = Arc::new(SnapshotCell::new());
    let metrics = Arc::new(ServeMetrics::new());
    let mut publisher = Publisher::new(
        Arc::clone(&cell),
        PublishOptions {
            core: Some((CORE_X, CORE_Y)),
            top_k: 2,
        },
        Arc::clone(&metrics),
    );
    let server = Server::start("127.0.0.1:0", Arc::clone(&cell), 2, Arc::clone(&metrics))
        .expect("bind ephemeral port");
    let mut client = Client::connect(server.addr());

    // Epoch 0: the pre-ingestion snapshot answers (emptily) too.
    let blank = client.query("DENSITY");
    assert_eq!(
        blank,
        "OK DENSITY epoch=0 n=0 m=0 density=0.000000 lower=0.000000 upper=0.000000"
    );

    let mut last_epoch = 0u64;
    for chunk in events.chunks(50) {
        let r = engine.apply(&Batch::from_events(chunk.to_vec()));
        publisher.publish(
            EpochFacts {
                epoch: r.epoch,
                n: r.n,
                m: r.m as u64,
                density: r.density.to_f64(),
                lower: r.lower,
                upper: r.upper,
                witness: engine.witness(),
                resolved: r.resolved,
            },
            || engine.materialize(),
        );

        // Monotone epoch ids across publishes.
        assert!(
            r.epoch > last_epoch,
            "epoch must advance: {} -> {}",
            last_epoch,
            r.epoch
        );
        last_epoch = r.epoch;

        // DENSITY: byte-for-byte the engine's numbers for this epoch.
        let density = client.query("DENSITY");
        assert_eq!(
            density,
            format!(
                "OK DENSITY epoch={} n={} m={} density={:.6} lower={:.6} upper={:.6}",
                r.epoch,
                r.n,
                r.m,
                r.density.to_f64(),
                r.lower,
                r.upper
            ),
            "epoch {}",
            r.epoch
        );

        // MEMBER: sampled vertices agree with the engine's witness pair.
        let witness = engine.witness().cloned();
        for v in (0..r.n as u32).step_by((r.n / 7).max(1)) {
            let response = client.query(&format!("MEMBER {v}"));
            assert_eq!(epoch_of(&response), r.epoch, "torn read: {response}");
            let in_s = witness.as_ref().is_some_and(|p| p.s().contains(&v));
            let in_t = witness.as_ref().is_some_and(|p| p.t().contains(&v));
            let want = match (in_s, in_t) {
                (true, true) => "BOTH",
                (true, false) => "S",
                (false, true) => "T",
                (false, false) => "NONE",
            };
            assert_eq!(
                response,
                format!("OK MEMBER epoch={} v={v} side={want}", r.epoch),
                "epoch {}",
                r.epoch
            );
        }

        // CORE: sampled vertices agree with a fresh xy_core of the
        // materialized graph (the publisher's own recompute path).
        let graph = engine.materialize();
        let mask = xy_core(&graph, CORE_X, CORE_Y);
        for v in (0..r.n).step_by((r.n / 5).max(1)) {
            let response = client.query(&format!("CORE {CORE_X} {CORE_Y} {v}"));
            assert_eq!(epoch_of(&response), r.epoch, "torn read: {response}");
            let in_s = mask.in_s.get(v).copied().unwrap_or(false);
            let in_t = mask.in_t.get(v).copied().unwrap_or(false);
            let want = match (in_s, in_t) {
                (true, true) => "BOTH",
                (true, false) => "S",
                (false, true) => "T",
                (false, false) => "NONE",
            };
            assert_eq!(
                response,
                format!(
                    "OK CORE epoch={} x={CORE_X} y={CORE_Y} v={v} side={want}",
                    r.epoch
                ),
                "epoch {}",
                r.epoch
            );
        }

        // TOPK: the served list is non-increasing and epoch-consistent.
        let topk = client.query("TOPK 2");
        assert_eq!(epoch_of(&topk), r.epoch, "torn read: {topk}");
        assert!(topk.starts_with("OK TOPK "), "{topk}");
        let densities: Vec<f64> = topk
            .split_whitespace()
            .skip(4)
            .map(|entry| {
                entry
                    .split(':')
                    .next()
                    .unwrap()
                    .parse()
                    .expect("top-k density parses")
            })
            .collect();
        assert!(densities.len() <= 2, "{topk}");
        assert!(
            densities.windows(2).all(|w| w[0] >= w[1]),
            "top-k densities must be non-increasing: {topk}"
        );

        // A core the publisher does not maintain is an ERR naming the
        // served one — never a silent wrong answer.
        let mismatch = client.query(&format!("CORE {} {} 0", CORE_X + 7, CORE_Y));
        assert!(
            mismatch.starts_with(&format!("ERR epoch={}", r.epoch)),
            "{mismatch}"
        );
        assert!(
            mismatch.contains(&format!("serving [{CORE_X},{CORE_Y}]")),
            "{mismatch}"
        );
    }

    assert!(last_epoch >= 10, "the stream must produce real epochs");
    assert_eq!(
        metrics.publishes.get(),
        last_epoch,
        "one publish per sealed epoch"
    );
    assert_eq!(
        metrics.query_errors.get(),
        last_epoch,
        "exactly the one deliberate core-mismatch ERR per epoch"
    );
    drop(client);
    drop(server); // shuts down on drop
}
