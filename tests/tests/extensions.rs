//! Integration: the extension features (top-k, refinement, DOT export)
//! compose with the solvers across crates.

use dds_core::{refine_to_component, top_k_dense_pairs, DcExact, TopKSolver};
use dds_graph::{gen, to_dot, weakly_connected_components, GraphBuilder};

#[test]
fn top_k_then_refine_yields_connected_disjoint_findings() {
    // Two planted blocks at different densities inside one background.
    let mut b = GraphBuilder::with_min_vertices(60);
    for (u, v) in gen::gnm(60, 90, 3).edges() {
        b.add_edge(u, v);
    }
    for u in 0..4u32 {
        for v in 4..9u32 {
            b.add_edge(u, v); // block A: density √20
        }
    }
    for u in 20..23u32 {
        for v in 23..26u32 {
            b.add_edge(u, v); // block B: density 3
        }
    }
    let g = b.build();

    let found = top_k_dense_pairs(&g, 2, TopKSolver::Exact);
    assert_eq!(found.len(), 2);
    assert!(found[0].density >= found[1].density);
    for sol in &found {
        // Refinement of an optimal (per-round) answer cannot improve it.
        let refined = refine_to_component(&g, &sol.pair);
        assert_eq!(refined.density(&g), sol.density);
        // The top block must be recovered in the first round.
    }
    let first_s = found[0].pair.s();
    assert!(
        (0..4u32).all(|v| first_s.contains(&v)),
        "block A sources missing from the densest finding: {first_s:?}"
    );
}

#[test]
fn dot_highlighting_matches_the_exact_answer() {
    let g = gen::complete_bipartite(2, 3);
    let sol = DcExact::new().solve(&g).solution;
    let dot = to_dot(&g, Some(&sol.pair));
    // Every pair edge is bold; K_{2,3} has 6 of them.
    assert_eq!(dot.matches("crimson").count(), 6);
    assert_eq!(dot.matches("lightblue").count(), sol.pair.s().len());
    assert_eq!(dot.matches("lightsalmon").count(), sol.pair.t().len());
}

#[test]
fn component_labels_agree_with_solver_locality() {
    // The exact optimum of a disconnected graph lives inside one weak
    // component.
    let mut b = GraphBuilder::with_min_vertices(12);
    for u in 0..3u32 {
        for v in 3..6u32 {
            b.add_edge(u, v);
        }
    }
    b.add_edge(8, 9).add_edge(9, 10).add_edge(10, 8);
    let g = b.build();
    let (labels, count) = weakly_connected_components(&g);
    assert!(count >= 2);
    let sol = DcExact::new().solve(&g).solution;
    let pair_labels: std::collections::HashSet<u32> = sol
        .pair
        .s()
        .iter()
        .chain(sol.pair.t())
        .map(|&v| labels[v as usize])
        .collect();
    assert_eq!(pair_labels.len(), 1, "optimum spans one weak component");
}
