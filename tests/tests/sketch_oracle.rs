//! The differential oracle harness for the sketch tier (the ISSUE-4
//! headline test): replay random insert/delete streams on small graphs —
//! canonicalised through a full [`DynamicGraph`] mirror, exactly how the
//! engines feed their embedded sketches — and check at **every** epoch
//! that
//!
//! * the sketch's certified bracket contains a fresh [`DcExact`] solve of
//!   the full graph: `lower ≤ ρ_opt ≤ upper`;
//! * the retained edge count never exceeds the configured state bound;
//! * the retained subgraph really is a subgraph of the full graph, and
//!   the sketch's exact `m`/`n` counters agree with the mirror;
//! * at subsampling level 0 a refreshed epoch is *exact* (the sketch IS
//!   the graph, so exact-on-sketch must land on the optimum).
//!
//! Small state bounds are part of the strategy space, so the subsampler
//! engages even on these tiny graphs — the oracle exercises level bumps,
//! witness decay, and refunds, not just the trivial level-0 regime.

use dds_core::DcExact;
use dds_sketch::{SketchConfig, SketchEngine};
use dds_stream::{DynamicGraph, Event, TimedEvent};
use proptest::prelude::*;

/// Random event streams over ≤ `max_n` vertices: mostly inserts, some
/// deletes, duplicates and absent-deletes included (the mirror dedupes —
/// that is the point of the canonicalisation contract).
fn events(max_n: u32, len: usize) -> impl Strategy<Value = Vec<TimedEvent>> {
    prop::collection::vec((0u32..4, 0u32..max_n, 0u32..max_n), 1..len).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (op, u, v))| TimedEvent {
                time: i as u64,
                event: if op < 3 {
                    Event::Insert(u, v)
                } else {
                    Event::Delete(u, v)
                },
            })
            .collect()
    })
}

fn check_epochs(
    stream: &[TimedEvent],
    batch_size: usize,
    config: SketchConfig,
) -> Result<(), TestCaseError> {
    let mut mirror = DynamicGraph::new();
    let mut sketch = SketchEngine::new(config);
    for chunk in stream.chunks(batch_size) {
        for ev in chunk {
            match ev.event {
                Event::Insert(u, v) => {
                    if mirror.insert(u, v) {
                        sketch.insert(u, v);
                    }
                }
                Event::Delete(u, v) => {
                    if mirror.delete(u, v) {
                        sketch.delete(u, v);
                    }
                }
            }
        }
        let report = sketch.seal_epoch();

        // 1. State bound compliance, every epoch.
        prop_assert!(
            report.retained <= config.state_bound,
            "epoch {}: retained {} > bound {}",
            report.epoch,
            report.retained,
            config.state_bound
        );

        // 2. Counters agree with the mirror; the retained subgraph is a
        //    genuine subgraph.
        let full = mirror.materialize();
        prop_assert_eq!(report.m as usize, mirror.m(), "m counter drifted");
        let h = sketch.materialize();
        prop_assert_eq!(h.m(), report.retained);
        for (u, v) in h.edges() {
            prop_assert!(
                full.has_edge(u, v),
                "epoch {}: retained edge {} -> {} not in the graph",
                report.epoch,
                u,
                v
            );
        }

        // 3. The certified bracket contains the true optimum.
        let exact = DcExact::new().solve(&full).solution.density;
        prop_assert!(
            report.density <= exact,
            "epoch {}: lower {} exceeds exact {}",
            report.epoch,
            report.density,
            exact
        );
        prop_assert!(
            exact.to_f64() <= report.upper * (1.0 + 1e-9),
            "epoch {}: upper {} below exact {}",
            report.epoch,
            report.upper,
            exact
        );

        // 4. An unsampled sketch whose refresh escalated to exact-on-sketch
        //    must land exactly on the optimum (H = G at level 0). A
        //    core-sweep-only refresh only owes its ½-guarantee.
        if report.refreshed && report.level == 0 {
            prop_assert_eq!(report.loss, 0.0);
            prop_assert!(
                2.0 * report.lower * (1.0 + 1e-9) >= exact.to_f64(),
                "epoch {}: level-0 refresh broke the sweep guarantee",
                report.epoch
            );
            if report.solve_stats.is_some() {
                prop_assert_eq!(
                    report.density,
                    exact,
                    "epoch {}: escalated level-0 refresh missed the optimum",
                    report.epoch
                );
            }
        }

        // 5. Internal consistency of the report.
        prop_assert!(report.lower <= report.upper * (1.0 + 1e-9));
        prop_assert!(report.estimate >= report.lower - 1e-12);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tight state bounds: the subsampler engages on tiny graphs, and the
    /// bracket must survive level bumps and witness decay.
    #[test]
    fn sketch_bracket_contains_exact_under_subsampling(
        stream in events(8, 48),
        batch_size in 1usize..6,
        bound in 3usize..16,
        seed in 0u64..64,
    ) {
        check_epochs(&stream, batch_size, SketchConfig {
            state_bound: bound,
            seed,
            ..SketchConfig::default()
        })?;
    }

    /// Roomy bounds: the sketch should stay at level 0 and behave as an
    /// exact (if lazily refreshed) engine.
    #[test]
    fn roomy_sketches_stay_exact(
        stream in events(7, 40),
        batch_size in 1usize..5,
    ) {
        check_epochs(&stream, batch_size, SketchConfig {
            state_bound: 10_000,
            refresh_drift: 0.05,
            ..SketchConfig::default()
        })?;
    }

    /// The embedded form: a `StreamEngine` whose every re-solve goes
    /// through the sketch tier must still bracket a fresh exact solve at
    /// every epoch (its lower bound is the sketched witness recounted on
    /// the full graph).
    #[test]
    fn sketch_tier_stream_engine_brackets_exact(
        stream in events(8, 40),
        batch_size in 1usize..5,
        bound in 4usize..16,
    ) {
        use dds_stream::{Batch, SketchTier, StreamConfig, StreamEngine};
        let mut engine = StreamEngine::new(StreamConfig {
            tolerance: 0.25,
            slack: 1.0,
            sketch: Some(SketchTier {
                min_m: 0,
                config: SketchConfig { state_bound: bound, ..SketchConfig::default() },
            }),
            ..Default::default()
        });
        for chunk in stream.chunks(batch_size) {
            let report = engine.apply(&Batch::from_events(chunk.to_vec()));
            let exact = DcExact::new().solve(&engine.materialize()).solution.density;
            prop_assert!(report.density <= exact, "epoch {}: lower above exact", report.epoch);
            prop_assert!(
                exact.to_f64() <= report.upper * (1.0 + 1e-9),
                "epoch {}: upper {} below exact {}",
                report.epoch,
                report.upper,
                exact
            );
            if let Some(stats) = report.sketch {
                prop_assert!(stats.retained <= bound);
            }
        }
        prop_assert_eq!(engine.sketch_resolves(), engine.resolves());
    }
}
