//! Property tests pinning the full solver stack against ground truth.

use dds_core::validate::brute_force_dds;
use dds_core::{core_approx, DcExact, ExhaustivePeel, GridPeel};
use dds_graph::GraphBuilder;
use dds_tests::assert_within_factor;
use proptest::prelude::*;

fn graph_strategy(max_n: u32, max_m: usize) -> impl Strategy<Value = dds_graph::DiGraph> {
    prop::collection::vec((0..max_n, 0..max_n), 0..max_m).prop_map(move |edges| {
        let mut b = GraphBuilder::with_min_vertices(max_n as usize);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline property: DcExact equals exhaustive enumeration.
    #[test]
    fn dc_exact_equals_brute_force(g in graph_strategy(8, 30)) {
        let want = brute_force_dds(&g).density;
        let got = DcExact::new().solve(&g);
        prop_assert_eq!(got.solution.density, want);
        prop_assert_eq!(got.solution.pair.density(&g), want);
    }

    /// Approximation guarantees hold on arbitrary graphs.
    #[test]
    fn approximations_hold_their_guarantees(g in graph_strategy(8, 26)) {
        let opt = brute_force_dds(&g).density;
        assert_within_factor(2, core_approx(&g).solution.density, opt);
        assert_within_factor(2, ExhaustivePeel.solve(&g).solution.density, opt);
        let grid = GridPeel::new(0.1).solve(&g).solution.density;
        prop_assert!(2.2 * grid.to_f64() + 1e-9 >= opt.to_f64());
    }

    /// Adding an edge never decreases the optimum; removing never raises it.
    #[test]
    fn optimum_is_monotone_in_edges(
        g in graph_strategy(7, 20),
        extra in (0u32..7, 0u32..7),
    ) {
        let base = DcExact::new().solve(&g).solution.density;
        let mut b = GraphBuilder::with_min_vertices(7);
        for (u, v) in g.edges() {
            b.add_edge(u, v);
        }
        b.add_edge(extra.0, extra.1);
        let bigger = b.build();
        let denser = DcExact::new().solve(&bigger).solution.density;
        prop_assert!(denser >= base);
    }

    /// Transposing the graph transposes the answer (ρ is invariant, S/T swap).
    #[test]
    fn optimum_is_invariant_under_transpose(g in graph_strategy(8, 26)) {
        let fwd = DcExact::new().solve(&g).solution.density;
        let rev = DcExact::new().solve(&g.reverse()).solution.density;
        prop_assert_eq!(fwd, rev);
    }
}
