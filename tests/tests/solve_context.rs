//! Equivalence suite for the `SolveContext` pipeline: the context-backed
//! exact engine (serial and parallel, warm and cold) must be
//! indistinguishable — in answers — from the `Θ(n²)` flow baseline and
//! from fresh-state solves.

use dds_core::{parallel, DcExact, ExactOptions, FlowExact, SolveContext};
use dds_graph::{gen, GraphBuilder};
use proptest::prelude::*;

fn graph_strategy(max_n: u32, max_m: usize) -> impl Strategy<Value = dds_graph::DiGraph> {
    prop::collection::vec((0..max_n, 0..max_n), 0..max_m).prop_map(move |edges| {
        let mut b = GraphBuilder::with_min_vertices(max_n as usize);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// DcExact on a SolveContext — serial and parallel — pins to the
    /// all-ratios flow baseline on random digraphs.
    #[test]
    fn context_engine_serial_and_parallel_match_flow_exact(g in graph_strategy(9, 32)) {
        let want = FlowExact.solve(&g).solution.density;

        let mut ctx = SolveContext::new();
        let serial = DcExact::new().solve_with(&mut ctx, &g);
        prop_assert_eq!(serial.solution.density, want);
        prop_assert_eq!(serial.solution.pair.density(&g), serial.solution.density);

        let par = parallel::dc_exact_parallel(&g, 3);
        prop_assert_eq!(par.solution.density, want);
        prop_assert_eq!(par.solution.pair.density(&g), par.solution.density);
    }

    /// A context reused across two *different* random graphs returns
    /// exactly what fresh contexts return on each — cache invalidation and
    /// incumbent revalidation can never leak one graph's answer into
    /// another's.
    #[test]
    fn reused_context_matches_fresh_contexts_across_graphs(
        g1 in graph_strategy(8, 28),
        g2 in graph_strategy(10, 24),
    ) {
        let mut shared = SolveContext::new();
        let first = DcExact::new().solve_with(&mut shared, &g1);
        let second = DcExact::new().solve_with(&mut shared, &g2);
        let back = DcExact::new().solve_with(&mut shared, &g1);

        let fresh1 = DcExact::new().solve(&g1);
        let fresh2 = DcExact::new().solve(&g2);
        prop_assert_eq!(first.solution.density, fresh1.solution.density);
        prop_assert_eq!(second.solution.density, fresh2.solution.density);
        prop_assert_eq!(back.solution.density, fresh1.solution.density);
        // Whatever pair the warm solves report is a genuine pair of the
        // graph they ran on, at the reported density.
        prop_assert_eq!(second.solution.pair.density(&g2), second.solution.density);
        prop_assert_eq!(back.solution.pair.density(&g1), back.solution.density);
    }

    /// Exact tie pruning is invisible in answers on random digraphs (its
    /// wins are on structured instances; its *correctness* must hold
    /// everywhere).
    #[test]
    fn tie_pruning_never_changes_the_answer(g in graph_strategy(9, 30)) {
        let with = DcExact::new().solve(&g);
        let without = DcExact::with_options(ExactOptions {
            tie_pruning: false,
            ..ExactOptions::default()
        })
        .solve(&g);
        prop_assert_eq!(with.solution.density, without.solution.density);
        prop_assert!(with.ratios_solved <= without.ratios_solved);
    }
}

/// The planted-block regression at integration scale: counting solved
/// ratios with and without the exact tie test (the ROADMAP bug).
#[test]
fn tie_pruning_counts_on_a_planted_block() {
    let p = gen::planted(80, 160, 5, 6, 1.0, 23);
    let with = DcExact::new().solve(&p.graph);
    let without = DcExact::with_options(ExactOptions {
        tie_pruning: false,
        ..ExactOptions::default()
    })
    .solve(&p.graph);
    assert_eq!(with.solution.density, without.solution.density);
    assert!(with.solution.density >= p.pair.density(&p.graph));
    assert!(with.ratios_pruned_tie > 0, "tie prunes must fire");
    assert!(
        with.ratios_solved * 2 <= without.ratios_solved,
        "tie pruning must at least halve the solved ratios ({} vs {})",
        with.ratios_solved,
        without.ratios_solved
    );
}

/// Warm contexts across a mutating graph sequence: every answer matches a
/// cold solve, and the reuse instrumentation actually reports reuse.
#[test]
fn warm_context_equivalence_under_churn() {
    let base = gen::planted(60, 120, 4, 5, 1.0, 31).graph;
    let mut ctx = SolveContext::new();
    let mut prev_seed = None;
    for epoch in 0..4usize {
        let mut k = 0usize;
        let g = base.filter_edges(|_, _| {
            k += 1;
            !(k + epoch).is_multiple_of(13) // churn ~8% of edges per epoch
        });
        let warm = DcExact::new().solve_with(&mut ctx, &g);
        let cold = DcExact::new().solve(&g);
        assert_eq!(
            warm.solution.density, cold.solution.density,
            "epoch {epoch}"
        );
        if epoch > 0 {
            assert!(
                warm.context_seed_density.is_some(),
                "epoch {epoch} must seed from the previous witness"
            );
            assert!(warm.arena_reuse_hits > 0, "arenas must be recycled");
        }
        prev_seed = warm.context_seed_density;
    }
    assert!(prev_seed.is_some());
    assert_eq!(ctx.solves(), 4);
}
