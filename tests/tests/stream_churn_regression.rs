//! Regression lock on [`StreamEngine`]'s churn-replay behaviour: the
//! window-native engine (ISSUE 3) refactored the bound-tracking internals
//! the lazy re-solve engine is built on (`WitnessState`/`DeltaDrift`), so
//! this test pins the PR-1 numbers — epoch count, re-solve count, and the
//! certification band — on a seeded 10k-event churn replay. Every count
//! here is deterministic: seeded generator, deterministic solver, no
//! wall-clock in any decision.

use dds_bench::stream_workloads::churn;
use dds_stream::{replay, BatchBy, SolverKind, StreamConfig, StreamEngine};

#[test]
fn seeded_churn_replay_numbers_are_pinned() {
    // A 16×16 planted ring (ρ = 16) under 10k events of background churn
    // on 200 vertices — the canonical lazy-re-solve workload.
    let events = churn(200, 800, (16, 16), 10_000, 0xC0FFEE);
    assert_eq!(events.len(), 10_969, "generator drifted");

    let mut engine = StreamEngine::new(StreamConfig {
        tolerance: 0.25,
        slack: 2.0,
        solver: SolverKind::Exact,
        ..Default::default()
    });
    let reports = replay(&mut engine, &events, BatchBy::Count(25));

    // Epoch count: ceil(10 969 / 25).
    assert_eq!(reports.len(), 439, "epoch count changed");
    assert_eq!(engine.epoch(), 439);

    // Re-solve count: the warm-up solve plus the drift-triggered ones —
    // 92.7% of epochs absorbed incrementally. The churn is concentrated
    // enough (n = 200) that the delta-degree bound crosses the band
    // periodically, so this pins the *policy*, not a trivial all-lazy run.
    let resolves = reports.iter().filter(|r| r.resolved).count();
    assert_eq!(resolves, 32, "lazy re-solve policy changed");
    assert_eq!(engine.resolves(), 32);

    // The maintained answer is the ring, at its exact density, on every
    // re-solve after warm-up (the ring plus background finish arriving
    // within the first 43 epochs).
    let last = reports.last().unwrap();
    assert_eq!(last.density.to_f64(), 16.0);
    assert!(reports
        .iter()
        .filter(|r| r.epoch > 43)
        .all(|r| !r.resolved || r.density.to_f64() == 16.0));

    // Certification band: every epoch certified, worst factor pinned to
    // the PR-1 envelope (tolerance 0.25 ⇒ factor ≤ 1.25 with the planted
    // lower bound of 16 dominating the slack term).
    let max_factor = reports
        .iter()
        .map(|r| r.certified_factor)
        .fold(1.0f64, f64::max);
    assert!(
        max_factor <= 1.25 * (1.0 + 1e-8), // two 1e-9 safety inflations stack
        "certification band widened: {max_factor}"
    );
    // …and the band is genuinely exercised (drift accumulates), not
    // trivially 1.0 — guards against a tracker that stops counting.
    assert!(
        max_factor > 1.05,
        "drift tracking looks dead: max factor {max_factor}"
    );

    // The bracket at the end still pins the ring exactly (upper 18.0 =
    // the lower+slack arm right after the final re-solve's drift reset).
    let bounds = engine.bounds();
    assert_eq!(bounds.lower.to_f64(), 16.0);
    assert!(bounds.upper >= 16.0 && bounds.upper <= 18.0 * (1.0 + 1e-8));
}
