//! The differential oracle for the cross-process cluster tier (ISSUE-10).
//! Runs without the libtest harness (`harness = false`) because the test
//! binary doubles as its own worker fleet: re-invoked with
//! `DDS_CLUSTER_ORACLE_ROLE=k/K` it becomes one real worker *process*
//! that dials the coordinator over TCP, exactly like `dds cluster-shard`.
//!
//! Three claims are checked:
//!
//! * **wire transparency** — a TCP coordinator fed by `K` real worker
//!   processes seals epochs **byte-identical**
//!   ([`ClusterEpoch::to_bytes`]) to an in-process [`ClusterCore`] fed
//!   the digests the same worker state machine produces locally, and
//!   both end in the same merged state ([`ClusterCore::state_digest`]).
//!   The network adds nothing and loses nothing;
//! * **bracket validity and reconciliation** — every sealed epoch's
//!   certified bracket contains a fresh [`DcExact`] solve of the full
//!   graph, and the merged counters (`m`, `n`) agree with a
//!   single-process [`ShardedEngine`] fed the same batches;
//! * **delta-chain equivalence** — restoring a worker from its DDSD
//!   base + delta chain is bit-identical to restoring from a full
//!   snapshot, across random dirty streams, batch sizes, tight bounds,
//!   and compaction cadences (proptest, driven manually since there is
//!   no harness).

use std::net::TcpListener;
use std::path::Path;
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};

use dds_cluster::{
    run_coordinator, run_worker, ClusterConfig, ClusterCore, CoordinatorOptions, WorkerConfig,
    WorkerOptions, WorkerState,
};
use dds_core::DcExact;
use dds_shard::{ShardConfig, ShardedEngine};
use dds_sketch::SketchConfig;
use dds_stream::delta::{DeltaChain, DeltaTracker};
use dds_stream::snapshot::SnapshotKind;
use dds_stream::{save_events, Batch, DynamicGraph, Event, TimedEvent};
use proptest::prelude::*;
use proptest::run_proptest;

const ROLE: &str = "DDS_CLUSTER_ORACLE_ROLE";

fn main() {
    if std::env::var(ROLE).is_ok() {
        worker_process();
        return;
    }
    tcp_coordinator_matches_the_in_process_core();
    println!("cluster_oracle: tcp_coordinator_matches_the_in_process_core ... ok");
    delta_chain_restore_equals_full_restore();
    println!("cluster_oracle: delta_chain_restore_equals_full_restore ... ok");
}

fn env(name: &str) -> String {
    std::env::var(name).unwrap_or_else(|_| panic!("{name} must be set in the worker role"))
}

/// The worker half of the re-exec harness: one real OS process running
/// the same loop `dds cluster-shard` runs.
fn worker_process() {
    let role = env(ROLE);
    let (shard, shards) = role.split_once('/').expect("role is k/K");
    let config = WorkerConfig {
        shard: shard.parse().expect("shard index"),
        shards: shards.parse().expect("shard count"),
        batch: env("DDS_CLUSTER_ORACLE_BATCH").parse().expect("batch"),
        sketch: SketchConfig {
            state_bound: env("DDS_CLUSTER_ORACLE_BOUND").parse().expect("bound"),
            seed: env("DDS_CLUSTER_ORACLE_SEED").parse().expect("seed"),
            ..SketchConfig::default()
        },
    };
    let events = env("DDS_CLUSTER_ORACLE_EVENTS");
    let connect = env("DDS_CLUSTER_ORACLE_CONNECT");
    let opts = WorkerOptions {
        poll: std::time::Duration::from_millis(10),
        idle_exit: Some(std::time::Duration::from_millis(400)),
        ..WorkerOptions::default()
    };
    run_worker(config, Path::new(&events), &connect, &opts).expect("worker run");
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dds_cluster_oracle_{tag}_{}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Wire transparency + bracket validity: real worker processes over TCP
/// against the in-process twin, epoch bytes compared one by one.
fn tcp_coordinator_matches_the_in_process_core() {
    const SHARDS: usize = 3;
    const BATCH: usize = 100;
    const BOUND: usize = 64;
    const SEED: u64 = 0xC1A5;
    let events = dds_bench::churn(100, 600, (8, 8), 2_000, 0x0AC1E);
    let dir = unique_dir("tcp");
    let events_path = dir.join("stream.events");
    save_events(&events, &events_path).expect("write events");

    let config = ClusterConfig {
        shards: SHARDS,
        batch: BATCH,
        refresh_drift: 0.25,
        sketch: SketchConfig {
            state_bound: BOUND,
            seed: SEED,
            ..SketchConfig::default()
        },
    };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let coordinator = std::thread::spawn(move || {
        let mut sealed = Vec::new();
        let report = run_coordinator(config, listener, &CoordinatorOptions::default(), |epoch| {
            sealed.push(epoch.clone())
        })
        .expect("coordinator run");
        (report, sealed)
    });

    let exe = std::env::current_exe().expect("own binary path");
    let children: Vec<_> = (0..SHARDS)
        .map(|k| {
            Command::new(&exe)
                .env(ROLE, format!("{k}/{SHARDS}"))
                .env("DDS_CLUSTER_ORACLE_EVENTS", &events_path)
                .env("DDS_CLUSTER_ORACLE_CONNECT", addr.to_string())
                .env("DDS_CLUSTER_ORACLE_BATCH", BATCH.to_string())
                .env("DDS_CLUSTER_ORACLE_BOUND", BOUND.to_string())
                .env("DDS_CLUSTER_ORACLE_SEED", SEED.to_string())
                .spawn()
                .expect("spawn worker process")
        })
        .collect();
    for mut child in children {
        let status = child.wait().expect("wait for worker");
        assert!(status.success(), "worker process failed: {status}");
    }
    let (report, sealed) = coordinator.join().expect("coordinator thread");
    assert!(report.epochs > 0, "the stream must seal real epochs");
    assert_eq!(report.epochs as usize, sealed.len());
    assert!(
        sealed.iter().all(|e| !e.degraded),
        "strict mode never degrades"
    );
    assert!(
        report.digest_bytes > 0 && report.digest_bytes < report.raw_bytes,
        "digests must cost less than the raw stream ({} vs {})",
        report.digest_bytes,
        report.raw_bytes
    );

    // The in-process twin: the same worker state machine feeding the
    // same core directly, no sockets. `sync_baseline` mirrors the fresh
    // handshake (epoch 0 == resume_from 0), so every digest is a delta.
    let mut core = ClusterCore::new(config);
    let mut workers: Vec<WorkerState> = (0..SHARDS)
        .map(|shard| {
            let mut w = WorkerState::new(WorkerConfig {
                shard,
                shards: SHARDS,
                batch: BATCH,
                sketch: config.sketch,
            });
            w.sync_baseline();
            w
        })
        .collect();
    let mut sharded = ShardedEngine::new(ShardConfig {
        shards: SHARDS,
        threads: 1,
        refresh_drift: 0.25,
        sketch: config.sketch,
    });
    let mut mirror = DynamicGraph::new();
    let mut twin_sealed = Vec::new();
    for chunk in events.chunks(BATCH) {
        let batch = Batch::from_events(chunk.to_vec());
        for worker in &mut workers {
            let tallies = worker.apply_batch(&batch);
            let digest = worker.digest(tallies, 0, 0, false);
            core.offer(digest, 0).expect("offer digest");
        }
        let epoch = core
            .seal_next(false)
            .expect("seal")
            .expect("all digests present, the epoch must seal");

        for ev in chunk {
            match ev.event {
                Event::Insert(u, v) => {
                    mirror.insert(u, v);
                }
                Event::Delete(u, v) => {
                    mirror.delete(u, v);
                }
            }
        }
        let r = sharded.apply(&batch);
        assert_eq!(epoch.m, r.m, "epoch {}: m must reconcile", epoch.epoch);
        assert_eq!(
            epoch.n as usize, r.n,
            "epoch {}: n must reconcile",
            epoch.epoch
        );
        let exact = DcExact::new().solve(&mirror.materialize()).solution.density;
        assert!(
            epoch.density <= exact,
            "epoch {}: lower {} exceeds exact {exact}",
            epoch.epoch,
            epoch.density
        );
        assert!(
            exact.to_f64() <= epoch.upper * (1.0 + 1e-9),
            "epoch {}: upper {} below exact {exact}",
            epoch.epoch,
            epoch.upper
        );
        twin_sealed.push(epoch);
    }

    assert_eq!(
        sealed.len(),
        twin_sealed.len(),
        "TCP and in-process seal counts"
    );
    for (tcp, twin) in sealed.iter().zip(&twin_sealed) {
        assert_eq!(
            tcp.to_bytes(),
            twin.to_bytes(),
            "epoch {}: TCP seal diverges from the in-process twin",
            twin.epoch
        );
    }
    assert_eq!(
        report.state_digest,
        core.state_digest(),
        "final merged state must be byte-identical"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Random dirty event streams (dups, self-loops, absent deletes — the
/// same contract the shard oracle exercises).
fn dirty_events(max_n: u32, len: usize) -> impl Strategy<Value = Vec<TimedEvent>> {
    prop::collection::vec((0u32..4, 0u32..max_n, 0u32..max_n), 1..len).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (op, u, v))| TimedEvent {
                time: i as u64,
                event: if op < 3 {
                    Event::Insert(u, v)
                } else {
                    Event::Delete(u, v)
                },
            })
            .collect()
    })
}

/// Delta-chain equivalence: `restore(base + deltas) == restore(full)`,
/// bit-for-bit on the snapshot encoding, at every compaction cadence.
fn delta_chain_restore_equals_full_restore() {
    run_proptest(
        ProptestConfig::with_cases(16),
        "delta_chain_restore_equals_full_restore",
        (
            dirty_events(8, 60),
            1usize..6,
            4usize..24,
            0u64..64,
            0u32..4,
        ),
        |(stream, batch, bound, seed, compact_every)| {
            let dir = unique_dir("chain");
            let base = dir.join("worker.snap");
            let config = WorkerConfig {
                shard: 0,
                shards: 1,
                batch,
                sketch: SketchConfig {
                    state_bound: bound,
                    seed,
                    ..SketchConfig::default()
                },
            };
            let mut state = WorkerState::new(config);
            let mut tracker = DeltaTracker::new(&base, SnapshotKind::ClusterWorker, compact_every);
            let mut cursor = 0u64;
            for chunk in stream.chunks(batch) {
                state.apply_batch(&Batch::from_events(chunk.to_vec()));
                cursor += chunk.len() as u64;
                let edges: Vec<_> = state.edges().collect();
                tracker
                    .save(
                        state.epoch(),
                        cursor,
                        edges,
                        || state.snapshot(cursor),
                        || state.snapshot_meta(cursor),
                    )
                    .expect("chain save");
            }

            let chain = DeltaChain::new(&base);
            let (chained, chain_cursor) =
                WorkerState::restore_chain_from(config, &chain).expect("chain restore");
            prop_assert_eq!(chain_cursor, cursor, "chain cursor");
            let (full, full_cursor) =
                WorkerState::restore(config, &state.snapshot(cursor)).expect("full restore");
            prop_assert_eq!(full_cursor, cursor, "full cursor");
            // One canonical encoding to compare all three through.
            let want = state.snapshot(cursor);
            prop_assert_eq!(
                &chained.snapshot(cursor),
                &want,
                "base+deltas diverged from the live state"
            );
            prop_assert_eq!(
                &full.snapshot(cursor),
                &want,
                "full-snapshot restore diverged from the live state"
            );
            std::fs::remove_dir_all(&dir).ok();
            Ok(())
        },
    );
}
