//! Failure injection: malformed inputs, degenerate graphs, and boundary
//! conditions across the crate stack (the checklist from `DESIGN.md §7`).

use dds_core::{core_approx, DcExact, DdsSolution, GridPeel};
use dds_graph::io::{read_edge_list, ParseOptions};
use dds_graph::{DiGraph, GraphBuilder, GraphError, Pair};

#[test]
fn malformed_edge_lists_report_precise_positions() {
    let cases: &[(&str, usize)] = &[
        ("0 1\nbroken\n", 2),
        ("x y\n", 1),
        ("0 1\n1 2 3\n", 2),
        ("0 1\n\n# ok\n9999999999999 3\n", 4), // exceeds u32
        ("0 -1\n", 1),
    ];
    for (text, want_line) in cases {
        match read_edge_list(text.as_bytes(), &ParseOptions::default()) {
            Err(GraphError::Parse { line, .. }) => {
                assert_eq!(line, *want_line, "input {text:?}");
            }
            other => panic!("expected parse error for {text:?}, got {other:?}"),
        }
    }
}

#[test]
fn solvers_are_total_on_degenerate_graphs() {
    let degenerates = [
        DiGraph::empty(0),
        DiGraph::empty(1),
        DiGraph::empty(100),                                // all isolated
        DiGraph::from_edges(2, &[(0, 1)]).unwrap(),         // single edge
        DiGraph::from_edges(2, &[(0, 1), (1, 0)]).unwrap(), // 2-cycle
    ];
    for g in &degenerates {
        let exact = DcExact::new().solve(g).solution;
        let core = core_approx(g).solution;
        let grid = GridPeel::default().solve(g).solution;
        // Nothing panics; approximations never exceed the exact optimum.
        assert!(core.density <= exact.density);
        assert!(grid.density <= exact.density);
        if g.m() == 0 {
            assert_eq!(exact, DdsSolution::empty());
        }
    }
}

#[test]
fn all_self_loops_graph_behaves_per_policy() {
    // Default policy drops loops ⇒ edgeless ⇒ empty solution.
    let mut b = GraphBuilder::new();
    for v in 0..5u32 {
        b.add_edge(v, v);
    }
    let dropped = b.build();
    assert_eq!(dropped.m(), 0);
    assert_eq!(
        DcExact::new().solve(&dropped).solution,
        DdsSolution::empty()
    );

    // Keeping loops: best pair is a single vertex against itself, ρ = 1.
    let mut b = GraphBuilder::new().keep_self_loops(true);
    for v in 0..5u32 {
        b.add_edge(v, v);
    }
    let kept = b.build();
    let sol = DcExact::new().solve(&kept).solution;
    assert_eq!(sol.density.to_f64(), 1.0);
}

#[test]
fn dense_complete_digraph_stresses_capacity_scaling() {
    // K_45 complete digraph: m = 1980, every pair near-uniform density;
    // the exact search must not overflow its scaled capacities.
    let g = dds_graph::gen::gnm(45, 45 * 44, 0);
    let r = DcExact::new().solve(&g);
    // ρ_opt of the complete digraph is attained by (V, V): (n²−n)/n = n−1.
    assert_eq!(r.solution.density.to_f64(), 44.0);
    let full: Vec<u32> = (0..45).collect();
    assert_eq!(r.solution.pair, Pair::new(full.clone(), full));
}

#[test]
fn mask_length_mismatch_is_caught() {
    let g = DiGraph::from_edges(3, &[(0, 1)]).unwrap();
    let result = std::panic::catch_unwind(|| g.induced_subgraph(&[true, false]));
    assert!(
        result.is_err(),
        "short mask must panic with a clear message"
    );
}

#[test]
fn out_of_range_edges_rejected_by_from_edges() {
    for bad in [(3u32, 0u32), (0, 3), (7, 9)] {
        let err = DiGraph::from_edges(3, &[bad]).unwrap_err();
        assert!(
            matches!(err, GraphError::VertexOutOfRange { .. }),
            "{bad:?}"
        );
    }
}
