//! Observability determinism: the deterministic trace mode must make two
//! identical follow replays byte-identical, and metric counters must
//! survive snapshot → restore → replay with the same values an
//! uninterrupted run accumulates.

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dds_obs::{Registry, Tracer};
use dds_shard::{replay_sharded, ShardConfig, ShardedEngine};
use dds_sketch::SketchConfig;
use dds_stream::{follow_events, FollowConfig, StreamConfig, StreamEngine};

/// A `Write` sink whose bytes the test can read back after the tracer
/// (which owns its writer) is dropped.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn bytes(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn temp_events(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "dds_obs_determinism_{tag}_{}_{:?}.events",
        std::process::id(),
        std::thread::current().id()
    ));
    let events = dds_bench::stream_workloads::churn(120, 900, (12, 12), 6_000, 0xDD5);
    dds_stream::save_events(&events, &path).expect("write events");
    path
}

/// One follow replay to EOF with a deterministic (timing-free) tracer;
/// returns the trace bytes.
fn traced_follow(path: &std::path::Path) -> Vec<u8> {
    let buf = SharedBuf::default();
    let tracer = Tracer::to_writer(Box::new(buf.clone()), false);
    let mut engine = StreamEngine::new(StreamConfig::default());
    engine.attach_tracer(tracer.clone());
    follow_events(
        path,
        FollowConfig {
            batch: 50,
            poll: Duration::from_millis(1),
            idle_exit: Some(Duration::ZERO),
            cursor: 0,
        },
        |batch, _| {
            engine.apply(&batch);
            std::ops::ControlFlow::Continue(())
        },
    )
    .expect("follow");
    tracer.flush().expect("flush trace");
    buf.bytes()
}

#[test]
fn identical_follow_replays_trace_byte_identically() {
    let path = temp_events("trace");
    let first = traced_follow(&path);
    let second = traced_follow(&path);
    assert!(!first.is_empty(), "the replay must emit spans");
    let text = String::from_utf8(first.clone()).expect("trace is utf-8");
    assert!(
        text.contains("\"span\":\"stream.apply\""),
        "apply spans must appear: {text}"
    );
    assert!(
        !text.contains("dur_us"),
        "deterministic mode must not record wall-clock: {text}"
    );
    assert_eq!(first, second, "identical replays must diff clean");
    std::fs::remove_file(&path).ok();
}

/// The shard counters a snapshot must carry (the sharded engine is the
/// bit-identical one by contract — see `dds-bench snapshot-smoke`).
const SHARD_COUNTERS: [&str; 7] = [
    "dds_shard_epochs_total",
    "dds_shard_refreshes_total",
    "dds_shard_escalations_total",
    "dds_shard_cold_escalations_total",
    "dds_shard_inserts_total",
    "dds_shard_deletes_total",
    "dds_shard_ignored_total",
];

#[test]
fn snapshot_restore_replay_keeps_counter_values() {
    let events = dds_bench::stream_workloads::churn(150, 1_200, (16, 16), 10_000, 0xDD5);
    // Cut on a batch boundary so both runs see identical epoch batching
    // (a mid-batch cut would insert an extra, shorter epoch).
    let half = (events.len() / 2) / 100 * 100;
    let config = ShardConfig {
        shards: 3,
        threads: 1,
        sketch: SketchConfig {
            state_bound: 300,
            ..SketchConfig::default()
        },
        ..ShardConfig::default()
    };

    // Uninterrupted run, metrics attached from the start.
    let full_registry = Registry::new();
    let mut full = ShardedEngine::new(config);
    full.attach_obs(&full_registry);
    replay_sharded(&mut full, &events, 100);

    // Interrupted run: half, snapshot, restore, attach fresh metrics
    // (the attach transfers the restored counter values), finish.
    let mut first = ShardedEngine::new(config);
    replay_sharded(&mut first, &events[..half], 100);
    let snap = first.snapshot(0);
    let (mut resumed, _) = ShardedEngine::restore(config, &snap).expect("restore");
    let resumed_registry = Registry::new();
    resumed.attach_obs(&resumed_registry);
    replay_sharded(&mut resumed, &events[half..], 100);

    for name in SHARD_COUNTERS {
        assert_eq!(
            resumed_registry.counter_value(name),
            full_registry.counter_value(name),
            "{name} diverged across snapshot/restore"
        );
    }
    assert_eq!(
        resumed_registry.counter_value("dds_shard_epochs_total"),
        Some(resumed.epoch()),
        "the epochs counter is the engine's own epoch source"
    );
}
