//! The differential oracle harness for the window-native engine (the
//! ISSUE-3 headline test): replay random timestamped streams through
//! [`WindowEngine`] and, at **every** epoch, rebuild the live window from
//! scratch with an independent model, then check
//!
//! * the engine's live edge set equals the model's (expiry, renewal, and
//!   explicit-deletion semantics agree event by event);
//! * the certified band brackets a fresh [`DcExact`] solve of the rebuilt
//!   window: `lower ≤ ρ_opt ≤ upper`;
//! * epochs that escalated to an exact solve report exactly `ρ_opt`;
//! * every epoch the engine claims is inside its band really is.
//!
//! The model is deliberately naive — a timestamp map folded event by
//! event — so the two implementations share no code beyond the event
//! type.

use std::collections::BTreeMap;

use dds_core::DcExact;
use dds_graph::DiGraph;
use dds_stream::{Batch, Event, TimedEvent, WindowConfig, WindowEngine, WindowMode};
use proptest::prelude::*;

/// A naive sliding window: the latest arrival time of each live edge.
struct NaiveWindow {
    window: u64,
    live: BTreeMap<(u32, u32), u64>,
    now: u64,
}

impl NaiveWindow {
    fn new(window: u64) -> Self {
        NaiveWindow {
            window,
            live: BTreeMap::new(),
            now: 0,
        }
    }

    fn apply(&mut self, ev: &TimedEvent) {
        self.now = self.now.max(ev.time);
        let (window, now) = (self.window, self.now);
        self.live.retain(|_, &mut t0| t0 + window > now);
        match ev.event {
            Event::Insert(u, v) if u != v => {
                self.live.insert((u, v), ev.time); // arrival or renewal
            }
            Event::Insert(..) => {}
            Event::Delete(u, v) => {
                self.live.remove(&(u, v));
            }
        }
    }

    fn graph(&self, n: usize) -> DiGraph {
        let edges: Vec<(u32, u32)> = self.live.keys().copied().collect();
        DiGraph::from_edges(n, &edges).expect("model edges are valid")
    }
}

/// Random timestamped streams over ≤ `max_n` vertices: mostly arrivals
/// (so windows fill up), some explicit deletions, time advancing by
/// 0..3 ticks per event (repeats and jumps both covered).
fn timed_events(max_n: u32, len: usize) -> impl Strategy<Value = Vec<TimedEvent>> {
    prop::collection::vec((0u32..4, 0u32..max_n, 0u32..max_n, 0u64..3), 1..len).prop_map(|raw| {
        let mut time = 0u64;
        raw.into_iter()
            .map(|(op, u, v, dt)| {
                time += dt;
                TimedEvent {
                    time,
                    event: if op < 3 {
                        Event::Insert(u, v)
                    } else {
                        Event::Delete(u, v)
                    },
                }
            })
            .collect()
    })
}

fn check_epochs(
    events: &[TimedEvent],
    batch_size: usize,
    config: WindowConfig,
) -> Result<(), TestCaseError> {
    let max_n = 8usize;
    let mut engine = WindowEngine::new(config);
    let mut model = NaiveWindow::new(config.window);
    for chunk in events.chunks(batch_size) {
        let report = engine.apply(&Batch::from_events(chunk.to_vec()));
        for ev in chunk {
            model.apply(ev);
        }

        // 1. The live edge sets agree exactly.
        let g = engine.materialize();
        prop_assert_eq!(
            g.m(),
            model.live.len(),
            "epoch {}: engine has {} edges, model {}",
            report.epoch,
            g.m(),
            model.live.len()
        );
        for &(u, v) in model.live.keys() {
            prop_assert!(
                g.has_edge(u, v),
                "epoch {}: missing {} -> {}",
                report.epoch,
                u,
                v
            );
        }

        // 2. The certified band brackets a fresh exact solve of the
        //    from-scratch rebuild.
        let rebuilt = model.graph(max_n);
        let exact = DcExact::new().solve(&rebuilt).solution.density;
        prop_assert!(
            report.density <= exact,
            "epoch {}: lower {} exceeds exact {}",
            report.epoch,
            report.density,
            exact
        );
        prop_assert!(
            exact.to_f64() <= report.upper * (1.0 + 1e-9),
            "epoch {}: upper {} below exact {}",
            report.epoch,
            report.upper,
            exact
        );

        // 3. Escalated epochs land exactly on the optimum.
        if report.mode == WindowMode::ExactResolve {
            prop_assert_eq!(
                report.density,
                exact,
                "epoch {}: escalation missed the optimum",
                report.epoch
            );
        }

        // 4. The engine's own band verdict is honest.
        prop_assert!(
            report.within_band,
            "epoch {}: ended outside its certified band [{}, {}]",
            report.epoch,
            report.lower,
            report.upper
        );
        prop_assert!(report.lower <= report.upper * (1.0 + 1e-9));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Default-style config (escalation on): every epoch must satisfy the
    /// four oracle properties for arbitrary streams, windows, and batching.
    #[test]
    fn window_engine_matches_the_oracle(
        events in timed_events(8, 48),
        batch_size in 1usize..6,
        window in 2u64..14,
        tol_steps in 0u32..5,
    ) {
        check_epochs(&events, batch_size, WindowConfig {
            tolerance: f64::from(tol_steps) * 0.25,
            slack: 0.5,
            exact_escalation: true,
            ..WindowConfig::new(window)
        })?;
    }

    /// Escalation off: the core bracket alone must still bracket the
    /// optimum at every epoch (factor ≤ ~2 is allowed, unsoundness is not).
    #[test]
    fn core_only_windows_still_bracket_exact(
        events in timed_events(7, 40),
        batch_size in 1usize..5,
        window in 2u64..10,
    ) {
        check_epochs(&events, batch_size, WindowConfig {
            tolerance: 0.25,
            slack: 2.0,
            exact_escalation: false,
            ..WindowConfig::new(window)
        })?;
    }

    /// Degenerate windows: W = 1 expires everything after one tick, so the
    /// engine must keep certifying a graph that is mostly empty.
    #[test]
    fn unit_windows_never_desync(
        events in timed_events(6, 32),
        batch_size in 1usize..4,
    ) {
        check_epochs(&events, batch_size, WindowConfig {
            tolerance: 0.0,
            slack: 0.0,
            exact_escalation: true,
            ..WindowConfig::new(1)
        })?;
    }
}
