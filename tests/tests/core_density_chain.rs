//! Integration: the density-bound chain that powers the whole paper,
//! verified end to end on real solver outputs:
//!
//! ```text
//! sqrt(x·y)  ≤  ρ([x,y]-core)  ≤  ρ_opt  ≤  2·sqrt(P)
//! ```

use dds_core::DcExact;
use dds_graph::gen;
use dds_num::cmp_prod;
use dds_xycore::{max_product_core, skyline, xy_core, y_max_core};
use std::cmp::Ordering;

/// `ρ(core)² ≥ x·y` checked in integers.
fn density_at_least_sqrt(product: u64, d: dds_num::Density) -> bool {
    let e2 = u128::from(d.edges) * u128::from(d.edges);
    let xyst = u128::from(product) * u128::from(d.s) * u128::from(d.t);
    cmp_prod(e2, 1, xyst, 1) != Ordering::Less
}

#[test]
fn every_skyline_core_meets_its_lower_bound() {
    for (name, g) in dds_tests::small_workloads() {
        for p in skyline(&g) {
            let core = xy_core(&g, p.x, p.y);
            assert!(
                !core.is_empty(),
                "{name}: skyline point [{},{}] empty",
                p.x,
                p.y
            );
            let d = core.density(&g);
            assert!(
                density_at_least_sqrt(p.x * p.y, d),
                "{name}: [{},{}]-core density {d} < sqrt(xy)",
                p.x,
                p.y
            );
        }
    }
}

#[test]
fn optimum_is_bracketed_by_the_max_product_core() {
    for (name, g) in dds_tests::small_workloads() {
        if g.m() == 0 {
            continue;
        }
        let best = max_product_core(&g).unwrap();
        let opt = DcExact::new().solve(&g).solution.density;
        // ρ_opt² ≤ 4·P exactly.
        let rho2 = u128::from(opt.edges) * u128::from(opt.edges);
        let bound = 4 * u128::from(best.product()) * u128::from(opt.s) * u128::from(opt.t);
        assert!(
            cmp_prod(rho2, 1, bound, 1) != Ordering::Greater,
            "{name}: ρ_opt {opt} above 2·sqrt({})",
            best.product()
        );
    }
}

#[test]
fn optimum_lives_inside_its_own_degree_core() {
    // The pruning lemma itself: the DDS is contained in the
    // [⌈ρ/2·√(t/s)⌉, ⌈ρ/2·√(s/t)⌉]-core.
    for (name, g) in dds_tests::small_workloads() {
        let sol = DcExact::new().solve(&g).solution;
        if sol.pair.is_empty() {
            continue;
        }
        let (s, t) = (sol.pair.s().len() as u64, sol.pair.t().len() as u64);
        let e = sol.density.edges;
        // x = ⌈e/(2s)⌉ ≤ ⌈ρ√(t/s)/2⌉ since ρ√(t/s)/2 = e/(2s).
        let x = e.div_ceil(2 * s);
        let y = e.div_ceil(2 * t);
        let core = xy_core(&g, x, y);
        for &u in sol.pair.s() {
            assert!(
                core.in_s[u as usize],
                "{name}: S vertex {u} outside the [{x},{y}]-core"
            );
        }
        for &v in sol.pair.t() {
            assert!(
                core.in_t[v as usize],
                "{name}: T vertex {v} outside the [{x},{y}]-core"
            );
        }
    }
}

#[test]
fn y_max_is_consistent_with_skyline_on_medium_graphs() {
    let g = gen::power_law(150, 900, 2.2, 17);
    let sky = skyline(&g);
    assert!(!sky.is_empty());
    for p in sky.iter().take(6) {
        let via_sweep = y_max_core(&g, &dds_graph::StMask::full(g.n()), p.x).unwrap();
        assert_eq!(via_sweep.y, p.y, "x={}", p.x);
    }
}
