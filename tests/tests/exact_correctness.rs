//! Integration: the exact solvers agree with ground truth and each other
//! across crates.

use dds_core::validate::{brute_force_dds, is_locally_maximal};
use dds_core::{DcExact, ExactOptions, FlowExact};
use dds_graph::gen;

#[test]
fn dc_exact_matches_brute_force_on_tiny_graphs() {
    for seed in 0..12 {
        let g = gen::gnm(8, 22, seed);
        let want = brute_force_dds(&g).density;
        let got = DcExact::new().solve(&g);
        assert_eq!(got.solution.density, want, "seed={seed}");
        assert_eq!(
            got.solution.pair.density(&g),
            want,
            "reported pair must realise it"
        );
    }
}

#[test]
fn baseline_matches_brute_force_on_tiny_graphs() {
    for seed in 0..6 {
        let g = gen::power_law(8, 24, 2.1, seed);
        let want = brute_force_dds(&g).density;
        assert_eq!(FlowExact.solve(&g).solution.density, want, "seed={seed}");
    }
}

#[test]
fn dc_and_baseline_agree_on_all_workloads() {
    for (name, g) in dds_tests::small_workloads() {
        let dc = DcExact::new().solve(&g);
        let base = FlowExact.solve(&g);
        assert_eq!(dc.solution.density, base.solution.density, "{name}");
        if !dc.solution.pair.is_empty() {
            assert!(is_locally_maximal(&g, &dc.solution.pair), "{name}");
        }
    }
}

#[test]
fn ablation_combos_agree_on_structured_graphs() {
    let g = gen::planted(40, 80, 3, 5, 1.0, 7).graph;
    let want = DcExact::new().solve(&g).solution.density;
    for dc in [false, true] {
        for core in [false, true] {
            for gamma in [false, true] {
                for warm in [false, true] {
                    let opts = ExactOptions {
                        divide_and_conquer: dc,
                        core_pruning: core,
                        gamma_pruning: gamma,
                        warm_start: warm,
                        ..ExactOptions::default()
                    };
                    let got = DcExact::with_options(opts).solve(&g);
                    assert_eq!(got.solution.density, want, "{opts:?}");
                }
            }
        }
    }
}

#[test]
fn exact_is_deterministic() {
    let g = gen::power_law(40, 200, 2.3, 3);
    let a = DcExact::new().solve(&g);
    let b = DcExact::new().solve(&g);
    assert_eq!(a.solution, b.solution);
    assert_eq!(a.ratios_solved, b.ratios_solved);
    assert_eq!(a.flow_decisions, b.flow_decisions);
    assert_eq!(a.network_nodes, b.network_nodes);
}

#[test]
fn report_instrumentation_is_consistent() {
    let g = gen::gnm(25, 120, 9);
    let r = DcExact::new().solve(&g);
    assert_eq!(r.network_nodes.len(), r.flow_decisions);
    assert_eq!(r.network_edges.len(), r.flow_decisions);
    assert!(r.ratios_solved <= r.ratios_considered);
    assert!(
        r.ratios_solved + r.ratios_pruned_gamma + r.ratios_pruned_structural <= r.ratios_considered
    );
}

#[test]
fn exact_on_disconnected_graph_picks_the_denser_component() {
    // Component A: K_{2,2} (density 2); component B: a 3-cycle (density 1).
    let mut edges = vec![(0u32, 2u32), (0, 3), (1, 2), (1, 3)];
    edges.extend([(4, 5), (5, 6), (6, 4)]);
    let g = dds_graph::DiGraph::from_edges(7, &edges).unwrap();
    let r = DcExact::new().solve(&g);
    assert_eq!(r.solution.density.to_f64(), 2.0);
    assert_eq!(r.solution.pair.s(), &[0, 1]);
    assert_eq!(r.solution.pair.t(), &[2, 3]);
}
