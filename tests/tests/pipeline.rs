//! Integration: full user pipeline — generate, persist, reload, solve —
//! across every crate boundary.

use dds_core::{core_approx, DcExact};
use dds_graph::io::{read_edge_list, write_edge_list, ParseOptions};
use dds_graph::{gen, Pair};

#[test]
fn generate_save_load_solve_round_trip() {
    let g = gen::power_law(60, 320, 2.3, 77);
    let mut buf = Vec::new();
    write_edge_list(&g, &mut buf).unwrap();
    let reloaded = read_edge_list(buf.as_slice(), &ParseOptions::default()).unwrap();
    assert_eq!(g, reloaded);

    let before = DcExact::new().solve(&g).solution;
    let after = DcExact::new().solve(&reloaded).solution;
    assert_eq!(
        before, after,
        "solving a reloaded graph must not change the answer"
    );
}

#[test]
fn solutions_relabel_through_induced_subgraphs() {
    // Solve on a core-restricted induced subgraph and map the answer back:
    // the relabelled pair must have the same density in the original graph.
    let p = gen::planted(50, 100, 4, 4, 1.0, 21);
    let g = &p.graph;
    let core = dds_xycore::max_product_core(g).unwrap();
    let keep: Vec<bool> = (0..g.n())
        .map(|v| core.mask.in_s[v] || core.mask.in_t[v])
        .collect();
    let (sub, map) = g.induced_subgraph(&keep);
    let sub_sol = DcExact::new().solve(&sub).solution;
    let lifted = sub_sol.pair.relabel(&map);
    assert_eq!(
        lifted.density(g),
        sub_sol.density,
        "edges inside the pair must be preserved by relabelling"
    );
}

#[test]
fn masks_and_pairs_agree_through_every_crate() {
    let g = gen::gnm(40, 200, 3);
    let r = core_approx(&g);
    let pair = &r.solution.pair;
    let mask = pair.to_mask(g.n());
    assert_eq!(mask.to_pair(), *pair);
    assert_eq!(mask.density(&g), r.solution.density);
    assert_eq!(
        pair.edges_between(&g),
        mask.edges_between(&g),
        "two edge counters, one answer"
    );
}

#[test]
fn self_loops_are_policy_not_accident() {
    // With loops dropped (default), a pure self-loop graph has no DDS; with
    // loops kept, ({v}, {v}) has density 1.
    let text = "0 0\n1 1\n0 1\n";
    let dropped = read_edge_list(text.as_bytes(), &ParseOptions::default()).unwrap();
    assert_eq!(dropped.m(), 1);
    let kept = read_edge_list(
        text.as_bytes(),
        &ParseOptions {
            keep_self_loops: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(kept.m(), 3);
    let sol = DcExact::new().solve(&kept).solution;
    // S = T = {0, 1} captures all 3 edges: ρ = 3/2 — beats a single edge.
    assert_eq!(sol.density.to_f64(), 1.5);
    let expected = Pair::new(vec![0, 1], vec![0, 1]);
    assert_eq!(sol.pair, expected);
}

#[test]
fn edge_sampling_pipeline_used_by_scalability_experiments() {
    let g = gen::gnm(100, 800, 5);
    // Keep a deterministic 50% of edges the way E7 does.
    let mut k = 0usize;
    let half = g.filter_edges(|_, _| {
        k += 1;
        k.is_multiple_of(2)
    });
    assert_eq!(half.m(), 400);
    let full_sol = DcExact::new().solve(&g).solution;
    let half_sol = DcExact::new().solve(&half).solution;
    // Removing edges can only lower the optimum.
    assert!(half_sol.density <= full_sol.density);
}
