//! Pinning the pool-backed parallel paths to their serial counterparts.
//!
//! The parallelism contract of the worker pool: scheduling changes,
//! answers do not. The pool-backed divide-and-conquer engine must return
//! the same exact density (and a witness certifying it) as the serial
//! engine at every thread count, and the parallel Dinic must compute the
//! same max-flow value and the same *canonical* min-cut sides as the
//! serial implementation — the minimal cut (residual-reachable from `s`)
//! and the maximal cut (residual-coreachable to `t`) are invariant
//! across all maximum flows, so they must match bit-for-bit no matter
//! how the augmentations interleaved.

use dds_core::{parallel, DcExact, ExactOptions, SolveContext, WorkerPool};
use dds_flow::{FlowNetwork, PARALLEL_EDGE_THRESHOLD};
use dds_graph::GraphBuilder;
use proptest::prelude::*;

fn graph_strategy(max_n: u32, max_m: usize) -> impl Strategy<Value = dds_graph::DiGraph> {
    prop::collection::vec((0..max_n, 0..max_n), 0..max_m).prop_map(move |edges| {
        let mut b = GraphBuilder::with_min_vertices(max_n as usize);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    })
}

/// A layered `s → A → B → t` network wide enough to cross
/// [`PARALLEL_EDGE_THRESHOLD`], with proptest-chosen capacities tiled
/// over the middle bipartite block so the min cut lands in different
/// places on different cases.
fn layered_network(caps: &[u128], side: u128, k: usize) -> (FlowNetwork, usize, usize) {
    let n = 2 * k + 2;
    let (s, t) = (0, 1);
    let mut net = FlowNetwork::new(n);
    for i in 0..k {
        net.add_edge(s, 2 + i, side + (i as u128 % 7));
        net.add_edge(2 + k + i, t, side + (i as u128 % 5));
    }
    for i in 0..k {
        for j in 0..k {
            let cap = caps[(i * k + j) % caps.len()];
            net.add_edge(2 + i, 2 + k + j, cap);
        }
    }
    assert!(net.num_edges() >= PARALLEL_EDGE_THRESHOLD);
    (net, s, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pool-backed divide-and-conquer equals the serial engine: same
    /// exact density at every thread count, and the parallel witness
    /// certifies the density it claims.
    #[test]
    fn pool_backed_engine_matches_serial(
        g in graph_strategy(10, 40),
        threads in 1usize..5,
    ) {
        let serial = DcExact::new().solve(&g);
        let mut ctx = SolveContext::new();
        let par = parallel::dc_exact_parallel_with(&mut ctx, &g, ExactOptions::default(), threads);
        prop_assert_eq!(par.solution.density, serial.solution.density);
        prop_assert_eq!(par.solution.pair.density(&g), serial.solution.density);
    }

    /// Speculation and per-ratio parallelism are answer-preserving too:
    /// every lever combination lands on the serial density.
    #[test]
    fn parallel_levers_are_answer_preserving(
        g in graph_strategy(9, 32),
        per_ratio in any::<bool>(),
        speculation in any::<bool>(),
    ) {
        let serial = DcExact::new().solve(&g);
        let opts = ExactOptions { per_ratio_parallel: per_ratio, speculation, ..ExactOptions::default() };
        let mut ctx = SolveContext::new();
        let par = parallel::dc_exact_parallel_with(&mut ctx, &g, opts, 3);
        prop_assert_eq!(par.solution.density, serial.solution.density);
        prop_assert_eq!(par.solution.pair.density(&g), serial.solution.density);
    }
}

proptest! {
    // Each case builds two ≥4096-edge networks; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Parallel Dinic through a real multi-worker pool is bit-identical
    /// to the serial solver: same flow value, same canonical cut sides.
    #[test]
    fn parallel_dinic_matches_serial_flow_and_cuts(
        caps in prop::collection::vec(1u128..60, 32),
        side in 8u128..64,
    ) {
        let k = 66; // 66² + 2·66 = 4488 ≥ PARALLEL_EDGE_THRESHOLD
        let (mut serial, s, t) = layered_network(&caps, side, k);
        let (mut par, _, _) = layered_network(&caps, side, k);
        let pool = WorkerPool::with_workers(3);
        let want = serial.max_flow(s, t);
        let got = par.max_flow_with(s, t, &pool);
        prop_assert_eq!(got, want);
        prop_assert_eq!(par.min_cut_source_side(s), serial.min_cut_source_side(s));
        prop_assert_eq!(par.max_cut_source_side(t), serial.max_cut_source_side(t));
    }
}
