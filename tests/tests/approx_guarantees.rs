//! Integration: every approximation algorithm honours its guarantee
//! against the exact optimum.

use dds_core::{core_approx, parallel, DcExact, ExhaustivePeel, GridPeel};
use dds_graph::gen;
use dds_tests::assert_within_factor;

#[test]
fn core_approx_is_a_2_approximation_everywhere() {
    for (name, g) in dds_tests::small_workloads() {
        let opt = DcExact::new().solve(&g).solution.density;
        let r = core_approx(&g);
        assert_within_factor(2, r.solution.density, opt);
        // The certified bracket really brackets ρ_opt.
        assert!(opt.to_f64() <= r.upper_bound + 1e-9, "{name}");
        assert!(
            r.solution.density.to_f64() >= r.lower_bound - 1e-9,
            "{name}"
        );
    }
}

#[test]
fn exhaustive_peel_is_a_2_approximation_everywhere() {
    for (name, g) in dds_tests::small_workloads() {
        let opt = DcExact::new().solve(&g).solution.density;
        let r = ExhaustivePeel.solve(&g);
        assert_within_factor(2, r.solution.density, opt);
        let _ = name;
    }
}

#[test]
fn grid_peel_guarantee_scales_with_epsilon() {
    for (name, g) in dds_tests::small_workloads() {
        let opt = DcExact::new().solve(&g).solution.density;
        for eps in [0.05, 0.1, 0.5] {
            let r = GridPeel::new(eps).solve(&g);
            // 2(1+ε) in f64 with slack.
            assert!(
                2.0 * (1.0 + eps) * r.solution.density.to_f64() + 1e-9 >= opt.to_f64(),
                "{name} eps={eps}: {} vs {opt}",
                r.solution.density
            );
        }
    }
}

#[test]
fn parallel_variants_match_sequential_quality() {
    let g = gen::power_law(200, 1200, 2.2, 31);
    let seq_grid = GridPeel::new(0.2).solve(&g);
    let par_grid = parallel::grid_peel_parallel(&g, 0.2, 4);
    assert_eq!(seq_grid.solution.density, par_grid.solution.density);

    let seq_core = core_approx(&g);
    let par_core = parallel::core_approx_parallel(&g, 4);
    assert_eq!(seq_core.x * seq_core.y, par_core.x * par_core.y);
}

#[test]
fn approximations_stack_up_as_theory_predicts_on_a_planted_graph() {
    // Planted block density √(5·6·0.9)… with p = 1.0: exactly √30.
    let p = gen::planted(80, 160, 5, 6, 1.0, 13);
    let g = &p.graph;
    let opt = DcExact::new().solve(g);
    assert!(opt.solution.density >= p.pair.density(g));
    let core = core_approx(g);
    let grid = GridPeel::new(0.1).solve(g);
    assert_within_factor(2, core.solution.density, opt.solution.density);
    // Grid peel at a planted near-square ratio is usually exact; at minimum
    // its guarantee holds.
    assert!(2.2 * grid.solution.density.to_f64() + 1e-9 >= opt.solution.density.to_f64());
}

#[test]
fn quality_ordering_exhaustive_dominates_grid_on_fixed_seeds() {
    for seed in [2u64, 5, 11] {
        let g = gen::gnm(30, 140, seed);
        let exhaustive = ExhaustivePeel.solve(&g).solution.density;
        let grid = GridPeel::new(1.0).solve(&g).solution.density;
        assert!(exhaustive >= grid, "seed={seed}");
    }
}
