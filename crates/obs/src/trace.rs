//! Lightweight structured tracing: nested spans with sequence numbers, a
//! small k/v payload, and one JSONL line per closed span.
//!
//! A [`Tracer`] is either **detached** (the default — spans are inert and
//! nothing ever touches the clock or a file) or writing to a sink. Spans
//! take their sequence number at open (so nesting order is stable) and
//! emit at close, carrying their depth and parent sequence number.
//!
//! # Determinism
//!
//! In the deterministic mode (`timing: false`, the default for replay
//! paths) a span line carries **no wall-clock at all** — only sequence
//! numbers, names, depth, and payload — so two identical replays produce
//! byte-identical trace files that diff cleanly. Enabling `timing` adds a
//! `dur_us` field per span.

use std::fmt::Write as _;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::SlowRing;

struct TracerState {
    seq: u64,
    /// Open spans' sequence numbers, innermost last.
    stack: Vec<u64>,
    out: Box<dyn Write + Send>,
}

struct TracerInner {
    timing: bool,
    /// Slow-op sink for timed spans (set once; reads are lock-free).
    slow: OnceLock<Arc<SlowRing>>,
    state: Mutex<TracerState>,
}

impl std::fmt::Debug for TracerInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TracerInner")
            .field("timing", &self.timing)
            .finish_non_exhaustive()
    }
}

/// Hands out [`Span`] guards; see the module docs. Cloning shares the
/// sink and the sequence counter.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// The detached tracer: spans are inert, nothing is written, the
    /// clock is never read (also [`Default`]).
    #[must_use]
    pub fn detached() -> Self {
        Tracer { inner: None }
    }

    /// A tracer writing JSONL span lines to `writer`. `timing: false` is
    /// the deterministic mode (no wall-clock in the output).
    #[must_use]
    pub fn to_writer(writer: Box<dyn Write + Send>, timing: bool) -> Self {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                timing,
                slow: OnceLock::new(),
                state: Mutex::new(TracerState {
                    seq: 0,
                    stack: Vec::new(),
                    out: writer,
                }),
            })),
        }
    }

    /// Feeds over-threshold timed spans into `ring` as they close. Only
    /// meaningful on a timing tracer (the deterministic mode never has a
    /// duration to offer); at most one ring per tracer, first wins.
    pub fn attach_slow_ring(&self, ring: Arc<SlowRing>) {
        if let Some(inner) = &self.inner {
            let _ = inner.slow.set(ring);
        }
    }

    /// A tracer writing JSONL span lines to the file at `path`
    /// (truncated).
    ///
    /// # Errors
    /// Returns the file-creation error.
    pub fn to_file(path: impl AsRef<Path>, timing: bool) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Tracer::to_writer(Box::new(BufWriter::new(file)), timing))
    }

    /// Whether spans actually record (false for the detached tracer).
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span. The guard emits one JSONL line when dropped (or
    /// [`Span::close`]d); nested spans opened before then record this
    /// span's sequence number as their parent.
    #[must_use]
    pub fn span(&self, name: &'static str) -> Span {
        let Some(inner) = &self.inner else {
            return Span {
                tracer: Tracer::detached(),
                name,
                seq: 0,
                parent: None,
                depth: 0,
                start: None,
                fields: String::new(),
            };
        };
        let mut state = inner.state.lock().expect("tracer poisoned");
        state.seq += 1;
        let seq = state.seq;
        let parent = state.stack.last().copied();
        let depth = state.stack.len() as u32;
        state.stack.push(seq);
        drop(state);
        Span {
            tracer: self.clone(),
            name,
            seq,
            parent,
            depth,
            start: inner.timing.then(Instant::now),
            fields: String::new(),
        }
    }

    /// Flushes the underlying sink.
    ///
    /// # Errors
    /// Returns the flush error.
    pub fn flush(&self) -> io::Result<()> {
        if let Some(inner) = &self.inner {
            inner.state.lock().expect("tracer poisoned").out.flush()?;
        }
        Ok(())
    }

    fn close_span(&self, span: &Span) {
        let Some(inner) = &self.inner else { return };
        let mut line = String::with_capacity(96);
        let _ = write!(
            line,
            "{{\"seq\":{},\"span\":\"{}\",\"depth\":{}",
            span.seq, span.name, span.depth
        );
        if let Some(parent) = span.parent {
            let _ = write!(line, ",\"parent\":{parent}");
        }
        line.push_str(&span.fields);
        if let Some(start) = span.start {
            let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
            let _ = write!(line, ",\"dur_us\":{us}");
            if let Some(ring) = inner.slow.get() {
                ring.record(span.name, us, span.fields.strip_prefix(',').unwrap_or(""));
            }
        }
        line.push_str("}\n");
        let mut state = inner.state.lock().expect("tracer poisoned");
        // Spans close LIFO on one thread; tolerate out-of-order drops by
        // removing this seq wherever it sits.
        if state.stack.last() == Some(&span.seq) {
            state.stack.pop();
        } else if let Some(pos) = state.stack.iter().rposition(|&s| s == span.seq) {
            state.stack.remove(pos);
        }
        let _ = state.out.write_all(line.as_bytes());
    }
}

/// An open span; emits one JSONL line when it closes. Obtained from
/// [`Tracer::span`].
#[derive(Debug)]
pub struct Span {
    tracer: Tracer,
    name: &'static str,
    seq: u64,
    parent: Option<u64>,
    depth: u32,
    start: Option<Instant>,
    fields: String,
}

impl Span {
    /// This span's sequence number (0 for inert spans).
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Attaches an integer payload field (no-op on an inert span).
    pub fn record(&mut self, key: &str, value: u64) {
        if self.tracer.is_live() {
            let _ = write!(self.fields, ",\"{key}\":{value}");
        }
    }

    /// Attaches a boolean payload field (no-op on an inert span).
    pub fn record_flag(&mut self, key: &str, value: bool) {
        if self.tracer.is_live() {
            let _ = write!(self.fields, ",\"{key}\":{value}");
        }
    }

    /// Attaches a string payload field (no-op on an inert span). The
    /// value must not contain `"` or `\` (metric-style tokens only).
    pub fn record_str(&mut self, key: &str, value: &str) {
        if self.tracer.is_live() {
            debug_assert!(!value.contains(['"', '\\']), "span strings are tokens");
            let _ = write!(self.fields, ",\"{key}\":\"{value}\"");
        }
    }

    /// Closes the span now (the guard's drop does the same).
    pub fn close(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.tracer.is_live() {
            let tracer = self.tracer.clone();
            tracer.close_span(self);
        }
    }
}

/// Opens a span on a tracer, optionally recording payload fields:
/// `span!(tracer, "stream.apply")` or
/// `span!(tracer, "stream.apply", epoch = 3, events = n)`.
#[macro_export]
macro_rules! span {
    ($tracer:expr, $name:expr) => {
        $tracer.span($name)
    };
    ($tracer:expr, $name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let mut s = $tracer.span($name);
        $(s.record(stringify!($key), u64::from($value));)+
        s
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Vec<u8> sink shareable with the test after the tracer writes.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn capture(timing: bool, run: impl FnOnce(&Tracer)) -> String {
        let buf = SharedBuf::default();
        let tracer = Tracer::to_writer(Box::new(buf.clone()), timing);
        run(&tracer);
        tracer.flush().unwrap();
        let bytes = buf.0.lock().unwrap().clone();
        String::from_utf8(bytes).unwrap()
    }

    #[test]
    fn spans_nest_with_sequence_numbers_and_parents() {
        let text = capture(false, |tracer| {
            let mut outer = span!(tracer, "stream.apply", epoch = 1u32);
            {
                let mut inner = tracer.span("stream.resolve");
                inner.record_flag("sketched", false);
            }
            outer.record("events", 25);
        });
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        // Inner closes first but opened second: seq 2, parent 1, depth 1.
        assert_eq!(
            lines[0],
            "{\"seq\":2,\"span\":\"stream.resolve\",\"depth\":1,\"parent\":1,\"sketched\":false}"
        );
        assert_eq!(
            lines[1],
            "{\"seq\":1,\"span\":\"stream.apply\",\"depth\":0,\"epoch\":1,\"events\":25}"
        );
    }

    #[test]
    fn deterministic_mode_has_no_wall_clock() {
        let run = || {
            capture(false, |tracer| {
                for i in 0..5u32 {
                    let mut s = tracer.span("epoch");
                    s.record("i", u64::from(i));
                    std::thread::sleep(std::time::Duration::from_micros(50 * u64::from(i)));
                }
            })
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "deterministic traces must be byte-identical");
        assert!(!a.contains("dur_us"));
    }

    #[test]
    fn timing_mode_records_durations() {
        let text = capture(true, |tracer| {
            let s = tracer.span("work");
            std::thread::sleep(std::time::Duration::from_millis(2));
            s.close();
        });
        assert!(text.contains("\"dur_us\":"), "{text}");
    }

    #[test]
    fn timed_spans_feed_the_slow_ring_and_deterministic_ones_do_not() {
        let ring = Arc::new(SlowRing::new(4, 0));
        let _ = capture(true, |tracer| {
            tracer.attach_slow_ring(Arc::clone(&ring));
            let mut s = tracer.span("work");
            s.record("epoch", 7);
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        let ops = ring.snapshot();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].name, "work");
        assert_eq!(ops[0].detail, "\"epoch\":7");
        assert!(ops[0].dur_us >= 1_000);

        // The deterministic mode never reads the clock, so nothing feeds.
        let quiet = Arc::new(SlowRing::new(4, 0));
        let _ = capture(false, |tracer| {
            tracer.attach_slow_ring(Arc::clone(&quiet));
            let _s = tracer.span("work");
        });
        assert!(quiet.snapshot().is_empty());
    }

    #[test]
    fn detached_tracer_spans_are_inert() {
        let tracer = Tracer::detached();
        assert!(!tracer.is_live());
        let mut s = tracer.span("noop");
        s.record("k", 1);
        s.record_str("s", "v");
        assert_eq!(s.seq(), 0);
        drop(s);
        tracer.flush().unwrap();
    }
}
