//! The admin HTTP endpoint: a minimal hand-rolled HTTP/1.1 listener
//! serving live introspection for a running serving process.
//!
//! Routes:
//!
//! * `GET /metrics` — the Prometheus exposition rendered straight from
//!   the live [`Registry`] (no file round-trip).
//! * `GET /healthz` — liveness: `200 ok` while the process runs.
//! * `GET /readyz` — readiness: `503` until the owner marks the
//!   [`StatusBoard`] ready (first sealed epoch / first published
//!   snapshot), `200` after; the body surfaces reader saturation when
//!   the serve tier exports it.
//! * `GET /status` — a JSON summary: epoch, event/byte cursors, the
//!   certified bracket, snapshot age.
//! * `GET /slow` — the slow-op ring as JSON, slowest first.
//!
//! The scrape path is lock-free with respect to ingest: every datum it
//! renders is either a relaxed atomic ([`StatusBoard`], counter and
//! gauge cells), a `try_lock` slot claim ([`crate::SlowRing`]), or the
//! registry's name-map mutex — which ingest hot paths never take (they
//! hold pre-resolved handles; the map is only locked at attach time and
//! by scrapes). An admin request can therefore never stall an apply or
//! a query, the same discipline as the serve tier's snapshot cell.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use crate::slow::escape_json;
use crate::{Registry, SlowRing};

/// How long the listener waits on a request before dropping the
/// connection (a stuck scraper must not pin the admin thread).
const REQUEST_TIMEOUT: Duration = Duration::from_secs(2);

/// Longest request head (request line + headers) we accept.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Live serving-process facts behind the admin plane, all relaxed
/// atomics: the ingest loop stores at epoch fold points, admin requests
/// (and the serve `STATS` verb) load — no locks in either direction.
#[derive(Debug)]
pub struct StatusBoard {
    role: &'static str,
    ready: AtomicBool,
    ready_flips: AtomicU64,
    epoch: AtomicU64,
    events: AtomicU64,
    cursor: AtomicU64,
    tail_bytes: AtomicU64,
    density_bits: AtomicU64,
    lower_bits: AtomicU64,
    upper_bits: AtomicU64,
    snapshot_epoch: AtomicU64,
    /// Per-shard digest facts, present only on a cluster coordinator
    /// ([`StatusBoard::init_shards`]); sized once, cells updated with
    /// relaxed stores like everything else on the board.
    shards: OnceLock<Vec<ShardCell>>,
}

/// One remote shard's live digest facts on a coordinator's board.
#[derive(Debug, Default)]
struct ShardCell {
    epoch: AtomicU64,
    bytes_behind: AtomicU64,
    last_digest_unix_ms: AtomicU64,
}

impl StatusBoard {
    /// A board for a serving process of the given role (`"stream"`,
    /// `"shard"`, `"serve"`, …), not yet ready.
    #[must_use]
    pub fn new(role: &'static str) -> Self {
        StatusBoard {
            role,
            ready: AtomicBool::new(false),
            ready_flips: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            events: AtomicU64::new(0),
            cursor: AtomicU64::new(0),
            tail_bytes: AtomicU64::new(0),
            density_bits: AtomicU64::new(0f64.to_bits()),
            lower_bits: AtomicU64::new(0f64.to_bits()),
            upper_bits: AtomicU64::new(0f64.to_bits()),
            snapshot_epoch: AtomicU64::new(0),
            shards: OnceLock::new(),
        }
    }

    /// Declares this board a cluster coordinator over `count` shards:
    /// `/status` grows a `shards[]` array. Idempotent; only the first
    /// call sizes the cells.
    pub fn init_shards(&self, count: usize) {
        let _ = self
            .shards
            .set((0..count).map(|_| ShardCell::default()).collect());
    }

    /// Records one shard's latest digest facts: its acked epoch, how many
    /// event bytes it trails the stream head, and the wall-clock moment
    /// (ms since the UNIX epoch) the digest arrived. Out-of-range shard
    /// ids and boards without [`StatusBoard::init_shards`] are no-ops.
    pub fn shard_seen(&self, shard: usize, epoch: u64, bytes_behind: u64, at_unix_ms: u64) {
        let Some(cell) = self.shards.get().and_then(|cells| cells.get(shard)) else {
            return;
        };
        cell.epoch.store(epoch, Ordering::Relaxed);
        cell.bytes_behind.store(bytes_behind, Ordering::Relaxed);
        cell.last_digest_unix_ms
            .store(at_unix_ms, Ordering::Relaxed);
    }

    /// Milliseconds since the UNIX epoch right now — the timestamp feed
    /// for [`StatusBoard::shard_seen`].
    #[must_use]
    pub fn unix_ms() -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
    }

    /// Records a sealed epoch: id, cumulative applied events, the byte
    /// cursor into the event file, and the certified bracket.
    pub fn seal_epoch(
        &self,
        epoch: u64,
        events: u64,
        cursor: u64,
        density: f64,
        lower: f64,
        upper: f64,
    ) {
        self.epoch.store(epoch, Ordering::Relaxed);
        self.events.store(events, Ordering::Relaxed);
        self.cursor.store(cursor, Ordering::Relaxed);
        self.density_bits
            .store(density.to_bits(), Ordering::Relaxed);
        self.lower_bits.store(lower.to_bits(), Ordering::Relaxed);
        self.upper_bits.store(upper.to_bits(), Ordering::Relaxed);
    }

    /// Records how many bytes of the event file trail the ingest cursor.
    pub fn set_tail_bytes(&self, bytes: u64) {
        self.tail_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Records the epoch of the last published query snapshot.
    pub fn publish_snapshot(&self, epoch: u64) {
        self.snapshot_epoch.store(epoch, Ordering::Relaxed);
    }

    /// Flips the board to ready. Idempotent in effect; every *flip* (a
    /// false→true transition) is counted so tests can pin "exactly one".
    pub fn set_ready(&self) {
        if !self.ready.swap(true, Ordering::Relaxed) {
            self.ready_flips.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether the process reached readiness.
    #[must_use]
    pub fn ready(&self) -> bool {
        self.ready.load(Ordering::Relaxed)
    }

    /// Number of false→true readiness transitions (must end up 1).
    #[must_use]
    pub fn ready_flips(&self) -> u64 {
        self.ready_flips.load(Ordering::Relaxed)
    }

    /// The last sealed epoch id.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Epoch of the last published snapshot (0 = none yet).
    #[must_use]
    pub fn snapshot_epoch(&self) -> u64 {
        self.snapshot_epoch.load(Ordering::Relaxed)
    }

    /// How many epochs the published snapshot trails the sealed epoch.
    #[must_use]
    pub fn snapshot_age_epochs(&self) -> u64 {
        self.epoch().saturating_sub(self.snapshot_epoch())
    }

    /// Renders the `/status` JSON body. `registry` contributes the serve
    /// tier's reader-saturation gauges when they exist.
    #[must_use]
    pub fn status_json(&self, registry: &Registry) -> String {
        let density = f64::from_bits(self.density_bits.load(Ordering::Relaxed));
        let lower = f64::from_bits(self.lower_bits.load(Ordering::Relaxed));
        let upper = f64::from_bits(self.upper_bits.load(Ordering::Relaxed));
        let mut out = format!(
            "{{\"role\":\"{}\",\"ready\":{},\"epoch\":{},\"events\":{},\"cursor\":{},\
             \"tail_bytes\":{},\"density\":{density},\"lower\":{lower},\"upper\":{upper},\
             \"snapshot_epoch\":{},\"snapshot_age_epochs\":{}",
            escape_json(self.role),
            self.ready(),
            self.epoch(),
            self.events.load(Ordering::Relaxed),
            self.cursor.load(Ordering::Relaxed),
            self.tail_bytes.load(Ordering::Relaxed),
            self.snapshot_epoch(),
            self.snapshot_age_epochs(),
        );
        if let (Some(readers), Some(busy)) = (
            registry.gauge_value("dds_serve_readers"),
            registry.gauge_value("dds_serve_readers_busy"),
        ) {
            out.push_str(&format!(",\"readers\":{readers},\"readers_busy\":{busy}"));
        }
        if let Some(cells) = self.shards.get() {
            let now = Self::unix_ms();
            out.push_str(",\"shards\":[");
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let at = cell.last_digest_unix_ms.load(Ordering::Relaxed);
                let age = if at == 0 {
                    "null".to_string()
                } else {
                    now.saturating_sub(at).to_string()
                };
                out.push_str(&format!(
                    "{{\"shard\":{i},\"epoch\":{},\"bytes_behind\":{},\
                     \"last_digest_age_ms\":{age}}}",
                    cell.epoch.load(Ordering::Relaxed),
                    cell.bytes_behind.load(Ordering::Relaxed),
                ));
            }
            out.push(']');
        }
        out.push_str("}\n");
        out
    }
}

/// The admin HTTP listener. One accept thread answers requests
/// sequentially (admin traffic is a scraper or an operator, not user
/// load); dropping the handle shuts the listener down.
#[derive(Debug)]
pub struct AdminServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Binds `addr` (e.g. `127.0.0.1:9100`, port 0 for ephemeral) and
    /// starts answering admin requests against the given live state.
    ///
    /// # Errors
    /// Returns the bind error.
    pub fn start(
        addr: &str,
        registry: Registry,
        status: Arc<StatusBoard>,
        slow: Arc<SlowRing>,
    ) -> std::io::Result<AdminServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("dds-admin".into())
                .spawn(move || accept_loop(&listener, &stop, &registry, &status, &slow))?
        };
        Ok(AdminServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn shutdown_inner(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    registry: &Registry,
    status: &StatusBoard,
    slow: &SlowRing,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = stream else {
            continue;
        };
        // A misbehaving client costs at most the request timeout; the
        // serving loops never wait on this thread, so that's acceptable.
        let _ = handle_request(stream, registry, status, slow);
    }
}

fn handle_request(
    stream: TcpStream,
    registry: &Registry,
    status: &StatusBoard,
    slow: &SlowRing,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(REQUEST_TIMEOUT))?;
    stream.set_write_timeout(Some(REQUEST_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader
        .by_ref()
        .take(MAX_REQUEST_BYTES as u64)
        .read_line(&mut request_line)?;
    // Drain the headers (we need none of them).
    let mut header = String::new();
    let mut total = request_line.len();
    loop {
        header.clear();
        let n = reader
            .by_ref()
            .take(MAX_REQUEST_BYTES as u64)
            .read_line(&mut header)?;
        total += n;
        if n == 0 || header == "\r\n" || header == "\n" || total > MAX_REQUEST_BYTES {
            break;
        }
    }
    let mut stream = reader.into_inner();
    let mut parts = request_line.split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return respond(
            &mut stream,
            405,
            "Method Not Allowed",
            "text/plain",
            "method not allowed\n",
        );
    }
    let path = target.split('?').next().unwrap_or(target);
    match path {
        "/metrics" => {
            let body = registry.exposition();
            respond(&mut stream, 200, "OK", "text/plain; version=0.0.4", &body)
        }
        "/healthz" => respond(&mut stream, 200, "OK", "text/plain", "ok\n"),
        "/readyz" => {
            let busy = registry
                .gauge_value("dds_serve_readers_busy")
                .zip(registry.gauge_value("dds_serve_readers"))
                .map(|(busy, total)| format!(" readers_busy={busy}/{total}"))
                .unwrap_or_default();
            if status.ready() {
                respond(
                    &mut stream,
                    200,
                    "OK",
                    "text/plain",
                    &format!("ready{busy}\n"),
                )
            } else {
                respond(
                    &mut stream,
                    503,
                    "Service Unavailable",
                    "text/plain",
                    &format!("not ready{busy}\n"),
                )
            }
        }
        "/status" => respond(
            &mut stream,
            200,
            "OK",
            "application/json",
            &status.status_json(registry),
        ),
        "/slow" => respond(
            &mut stream,
            200,
            "OK",
            "application/json",
            &slow.render_json(),
        ),
        _ => respond(&mut stream, 404, "Not Found", "text/plain", "not found\n"),
    }
}

fn respond(
    stream: &mut TcpStream,
    code: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// A minimal HTTP/1.1 GET client for the admin plane (tests, smokes, and
/// quick operator checks): returns `(status_code, body)`.
///
/// # Errors
/// Returns connection/IO errors and malformed status lines as
/// [`std::io::Error`].
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> std::io::Result<(u16, String)> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, REQUEST_TIMEOUT)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(REQUEST_TIMEOUT))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header break"))?;
    let status_line = head.lines().next().unwrap_or("");
    let code = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line {status_line:?}"),
            )
        })?;
    Ok((code, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rig() -> (AdminServer, Registry, Arc<StatusBoard>, Arc<SlowRing>) {
        let registry = Registry::new();
        let status = Arc::new(StatusBoard::new("test"));
        let slow = Arc::new(SlowRing::new(4, 100));
        let server = AdminServer::start(
            "127.0.0.1:0",
            registry.clone(),
            Arc::clone(&status),
            Arc::clone(&slow),
        )
        .expect("bind admin");
        (server, registry, status, slow)
    }

    #[test]
    fn routes_answer_and_readiness_flips_once() {
        let (server, registry, status, slow) = rig();
        let addr = server.addr();

        let (code, body) = http_get(addr, "/healthz").unwrap();
        assert_eq!((code, body.as_str()), (200, "ok\n"));

        let (code, body) = http_get(addr, "/readyz").unwrap();
        assert_eq!(code, 503);
        assert_eq!(body, "not ready\n");

        registry.counter("dds_stream_epochs_total").add(3);
        status.seal_epoch(3, 300, 9000, 2.5, 2.0, 3.0);
        status.set_ready();
        status.set_ready(); // idempotent: still one flip
        let (code, body) = http_get(addr, "/readyz").unwrap();
        assert_eq!((code, body.as_str()), (200, "ready\n"));
        assert_eq!(status.ready_flips(), 1);

        let (code, body) = http_get(addr, "/metrics").unwrap();
        assert_eq!(code, 200);
        let samples = crate::parse_exposition(&body).expect("exposition parses");
        assert_eq!(samples["dds_stream_epochs_total"], 3u64);

        let (code, body) = http_get(addr, "/status").unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("\"role\":\"test\""), "{body}");
        assert!(body.contains("\"epoch\":3"), "{body}");
        assert!(body.contains("\"density\":2.5"), "{body}");
        assert!(body.contains("\"snapshot_age_epochs\":3"), "{body}");
        assert!(!body.contains("readers"), "no serve gauges registered");

        slow.record("stream.apply", 5_000, "batch=100");
        let (code, body) = http_get(addr, "/slow").unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("\"name\":\"stream.apply\""), "{body}");

        let (code, _) = http_get(addr, "/nope").unwrap();
        assert_eq!(code, 404);
    }

    #[test]
    fn status_surfaces_reader_saturation_when_exported() {
        let (server, registry, status, _slow) = rig();
        registry.gauge("dds_serve_readers").set(4);
        registry.gauge("dds_serve_readers_busy").set(2);
        status.publish_snapshot(1);
        status.set_ready();
        let (code, body) = http_get(server.addr(), "/readyz").unwrap();
        assert_eq!(code, 200);
        assert_eq!(body, "ready readers_busy=2/4\n");
        let (_, body) = http_get(server.addr(), "/status").unwrap();
        assert!(body.contains("\"readers\":4,\"readers_busy\":2"), "{body}");
    }

    #[test]
    fn status_renders_shard_array_for_coordinators() {
        let (server, _registry, status, _slow) = rig();
        // Plain boards have no shards key at all.
        let (_, body) = http_get(server.addr(), "/status").unwrap();
        assert!(!body.contains("\"shards\""), "{body}");
        status.init_shards(2);
        status.shard_seen(0, 7, 1234, StatusBoard::unix_ms());
        status.shard_seen(9, 1, 1, 1); // out of range: ignored
        let (_, body) = http_get(server.addr(), "/status").unwrap();
        assert!(
            body.contains("{\"shard\":0,\"epoch\":7,\"bytes_behind\":1234,"),
            "{body}"
        );
        // Shard 1 never reported: age is null.
        assert!(
            body.contains(
                "{\"shard\":1,\"epoch\":0,\"bytes_behind\":0,\"last_digest_age_ms\":null}"
            ),
            "{body}"
        );
        // Re-init is a no-op, not a resize.
        status.init_shards(5);
        let (_, body) = http_get(server.addr(), "/status").unwrap();
        assert!(!body.contains("\"shard\":2"), "{body}");
    }

    #[test]
    fn board_tracks_snapshot_age() {
        let b = StatusBoard::new("serve");
        b.seal_epoch(10, 1_000, 40_000, 1.0, 1.0, 1.0);
        b.publish_snapshot(8);
        assert_eq!(b.snapshot_age_epochs(), 2);
        b.publish_snapshot(10);
        assert_eq!(b.snapshot_age_epochs(), 0);
    }
}
