//! The slow-op ring: a fixed-capacity, non-blocking record of the
//! slowest operations seen so far.
//!
//! The ring keeps the N slowest over-threshold operations (spans, apply
//! batches, queries) by duration. Recording never blocks and never waits:
//! a slot is *claimed* with a single `try_lock` compare-and-swap and
//! overwritten in place; if the claim races with another writer or a
//! drain, the record is dropped and counted — an ingest or reader thread
//! can never be stalled by the ring, and a drain can never be stalled by
//! ingest. The per-slot duration lives in a plain atomic so the
//! find-the-minimum scan touches no slot claims at all.
//!
//! Feeding is behind a threshold knob: an op shorter than `threshold_us`
//! costs one compare and returns. With timing off (the deterministic
//! replay mode) no durations exist, so the ring stays empty and drains
//! print nothing — byte-identical replays stay byte-identical.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One recorded slow operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowOp {
    /// Operation name (span name, `serve.query`, …).
    pub name: String,
    /// Free-form context (the query line, batch size, …); may be empty.
    pub detail: String,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Global record sequence (later records have larger seq).
    pub seq: u64,
}

#[derive(Debug, Default)]
struct SlotData {
    name: String,
    detail: String,
    dur_us: u64,
    seq: u64,
}

#[derive(Debug, Default)]
struct Slot {
    /// Scan-side copy of the duration (`u64::MAX` = empty). Updated under
    /// the claim, read lock-free by the victim scan.
    dur_us: AtomicU64,
    /// The claim: held only for the handful of stores of an overwrite or
    /// the clone of a drain, and only ever `try_lock`ed — no blocking.
    data: Mutex<SlotData>,
}

const EMPTY: u64 = u64::MAX;

/// The fixed-capacity slow-op ring. See the module docs for the claim
/// discipline; construction picks the capacity and the threshold knob.
#[derive(Debug)]
pub struct SlowRing {
    threshold_us: u64,
    slots: Box<[Slot]>,
    seq: AtomicU64,
    recorded: AtomicU64,
    contended: AtomicU64,
}

impl SlowRing {
    /// A ring keeping the `capacity` slowest ops at or above
    /// `threshold_us` microseconds.
    ///
    /// # Panics
    /// Panics on zero capacity.
    #[must_use]
    pub fn new(capacity: usize, threshold_us: u64) -> Self {
        assert!(capacity > 0, "slow ring needs at least one slot");
        let slots: Vec<Slot> = (0..capacity)
            .map(|_| {
                let s = Slot::default();
                s.dur_us.store(EMPTY, Ordering::Relaxed);
                s
            })
            .collect();
        SlowRing {
            threshold_us,
            slots: slots.into_boxed_slice(),
            seq: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }

    /// The threshold knob: ops shorter than this are not recorded.
    #[must_use]
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us
    }

    /// Slot count.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Ops accepted into a slot (lifetime total).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Ops dropped because a claim raced (lifetime total). Drops are the
    /// price of never blocking; under any realistic scrape cadence this
    /// stays 0.
    #[must_use]
    pub fn contended(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// Records one operation. Below-threshold ops cost one compare; an op
    /// slower than the current minimum overwrites that slot; claim races
    /// drop the record (counted) rather than wait.
    pub fn record(&self, name: &str, dur_us: u64, detail: &str) {
        if dur_us < self.threshold_us {
            return;
        }
        // Find the victim: an empty slot, else the stable minimum
        // strictly below the new duration.
        let mut victim = None;
        let mut victim_dur = dur_us;
        for (i, slot) in self.slots.iter().enumerate() {
            let d = slot.dur_us.load(Ordering::Relaxed);
            if d == EMPTY {
                victim = Some(i);
                break;
            }
            if d < victim_dur {
                victim = Some(i);
                victim_dur = d;
            }
        }
        let Some(i) = victim else {
            // Not among the slowest: correct rejection, not contention.
            return;
        };
        let Ok(mut data) = self.slots[i].data.try_lock() else {
            self.contended.fetch_add(1, Ordering::Relaxed);
            return;
        };
        data.name.clear();
        data.name.push_str(name);
        data.detail.clear();
        data.detail.push_str(detail);
        data.dur_us = dur_us;
        data.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.slots[i].dur_us.store(dur_us, Ordering::Relaxed);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the ring, slowest first (ties broken by
    /// recency, later first). Slots claimed by an in-flight write are
    /// skipped — the drain never waits on a writer.
    #[must_use]
    pub fn snapshot(&self) -> Vec<SlowOp> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            if slot.dur_us.load(Ordering::Relaxed) == EMPTY {
                continue;
            }
            let Ok(data) = slot.data.try_lock() else {
                continue;
            };
            if data.name.is_empty() {
                continue;
            }
            out.push(SlowOp {
                name: data.name.clone(),
                detail: data.detail.clone(),
                dur_us: data.dur_us,
                seq: data.seq,
            });
        }
        out.sort_by(|a, b| b.dur_us.cmp(&a.dur_us).then(b.seq.cmp(&a.seq)));
        out
    }

    /// Renders [`SlowRing::snapshot`] as a JSON array (the `/slow` body).
    #[must_use]
    pub fn render_json(&self) -> String {
        let ops = self.snapshot();
        let mut out = String::from("[");
        for (i, op) in ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"dur_us\":{},\"detail\":\"{}\",\"seq\":{}}}",
                escape_json(&op.name),
                op.dur_us,
                escape_json(&op.detail),
                op.seq
            );
        }
        out.push_str("]\n");
        out
    }

    /// Renders the ring as a human-readable table (the exit drain);
    /// empty string when nothing was recorded.
    #[must_use]
    pub fn render_table(&self) -> String {
        let ops = self.snapshot();
        if ops.is_empty() {
            return String::new();
        }
        let mut out = format!(
            "slow ops (threshold {} us, {} recorded, {} contended):\n",
            self.threshold_us,
            self.recorded(),
            self.contended()
        );
        for op in &ops {
            let _ = writeln!(
                out,
                "  {:>10} us  {}{}{}",
                op.dur_us,
                op.name,
                if op.detail.is_empty() { "" } else { "  " },
                op.detail
            );
        }
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn keeps_the_slowest_and_respects_the_threshold() {
        let ring = SlowRing::new(3, 100);
        ring.record("fast", 50, ""); // below threshold
        ring.record("a", 100, "");
        ring.record("b", 300, "q1");
        ring.record("c", 200, "");
        ring.record("d", 150, "");
        // Ring is full with {300, 200, 150}; 120 must not displace.
        ring.record("e", 120, "");
        let ops = ring.snapshot();
        assert_eq!(
            ops.iter().map(|o| o.name.as_str()).collect::<Vec<_>>(),
            ["b", "c", "d"],
            "slowest first"
        );
        assert_eq!(ops[0].dur_us, 300);
        assert_eq!(ops[0].detail, "q1");
        assert_eq!(ring.recorded(), 4, "a was displaced but still recorded");
        assert_eq!(ring.contended(), 0);
        // A genuinely slower op displaces the minimum.
        ring.record("f", 500, "");
        let ops = ring.snapshot();
        assert_eq!(ops[0].name, "f");
        assert_eq!(ops.len(), 3);
        assert!(ops.iter().all(|o| o.name != "d"));
    }

    #[test]
    fn json_rendering_escapes_details() {
        let ring = SlowRing::new(2, 0);
        ring.record("serve.query", 42, "DENSITY \"x\"\n");
        let json = ring.render_json();
        assert!(json.starts_with('['));
        assert!(json.contains("\"dur_us\":42"));
        assert!(json.contains("DENSITY \\\"x\\\"\\n"));
        assert_eq!(SlowRing::new(1, 0).render_json(), "[]\n");
        assert_eq!(SlowRing::new(1, 0).render_table(), "");
    }

    #[test]
    fn concurrent_recording_and_draining_never_blocks_or_tears() {
        let ring = Arc::new(SlowRing::new(8, 10));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        ring.record("op", 10 + (i % 97) + w * 1000, "detail");
                    }
                })
            })
            .collect();
        let drainer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for _ in 0..200 {
                    for op in ring.snapshot() {
                        // A torn read would mix fields from two records.
                        assert_eq!(op.name, "op");
                        assert_eq!(op.detail, "detail");
                        assert!(op.dur_us >= 10);
                    }
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        drainer.join().unwrap();
        let ops = ring.snapshot();
        assert!(!ops.is_empty());
        assert!(ops.len() <= 8);
        assert!(
            ops.windows(2).all(|w| w[0].dur_us >= w[1].dur_us),
            "snapshot must come back slowest first"
        );
        // Every record either landed or was counted as contended — none
        // vanished silently (drops by displacement don't count: those
        // never claimed a slot).
        assert!(ring.recorded() + ring.contended() <= 8_000);
        assert!(ring.recorded() >= 8, "the ring must have filled");
    }
}
