//! Zero-dependency observability for the DDS engines: a metrics registry
//! (counters, gauges, log2-bucket latency histograms) with lock-cheap
//! handles, a Prometheus-style text exposition writer, a JSONL snapshot
//! writer, and lightweight structured tracing ([`Tracer`] / [`Span`]).
//!
//! # Design
//!
//! The engines own their counters whether or not anyone is scraping them:
//! a [`Counter`] or [`Gauge`] is a single relaxed atomic the stats structs
//! (`SolveStats`, `SketchStats`, `ShardStats`) read as *views*, so the
//! always-on cost is one `fetch_add` at epoch-level fold points — never in
//! a flow inner loop. Everything beyond that — latency histograms, span
//! emission, file exposition — is **off by default** with an exact no-op
//! fast path: a detached [`Histogram`] is a `None` and observes nothing,
//! a detached [`Tracer`] hands out inert spans, and neither ever calls
//! `Instant::now`. Attaching a [`Registry`] (the `--metrics` flag) swaps
//! the handles for registered ones, transferring the values accumulated
//! so far, so a scrape always sees lifetime totals.
//!
//! # Naming
//!
//! Metrics follow `dds_<tier>_<name>` with Prometheus-style suffixes:
//! `_total` for counters, `_us` for microsecond histograms, bare names
//! for gauges. See the README's Observability section for the full
//! taxonomy.

mod http;
mod profile;
mod slow;
mod trace;

pub use http::{http_get, AdminServer, StatusBoard};
pub use profile::{render_folded, render_table, TraceProfile};
pub use slow::{SlowOp, SlowRing};
pub use trace::{Span, Tracer};

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Histogram bucket count: bucket `i ≥ 1` covers `[2^(i-1), 2^i)` µs and
/// bucket 0 covers exactly 0 µs; the last bucket saturates (it absorbs
/// everything at or above `2^(BUCKETS-2)` µs ≈ 18 minutes).
pub const BUCKETS: usize = 32;

/// A monotonically increasing counter (one relaxed atomic).
#[derive(Clone, Debug)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Default for Counter {
    fn default() -> Self {
        Counter::standalone()
    }
}

impl Counter {
    /// A counter not registered anywhere — the engines' default state.
    /// [`Registry::counter`] hands out registered ones.
    #[must_use]
    pub fn standalone() -> Self {
        Counter {
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Overwrites the value. **Restore-only**: snapshot restores put a
    /// saved counter back so a resumed process reports lifetime totals;
    /// live code paths must only ever [`add`](Counter::add).
    pub fn store(&self, value: u64) {
        self.cell.store(value, Ordering::Relaxed);
    }
}

/// A point-in-time value (one relaxed atomic, set at fold points).
#[derive(Clone, Debug)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::standalone()
    }
}

impl Gauge {
    /// A gauge not registered anywhere.
    #[must_use]
    pub fn standalone() -> Self {
        Gauge {
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Sets the value.
    pub fn set(&self, value: u64) {
        self.cell.store(value, Ordering::Relaxed);
    }

    /// Adds 1 (occupancy gauges: a reader going busy).
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts 1, saturating at 0. Must pair with [`Gauge::inc`]; the
    /// saturation only guards against a missed increment turning the
    /// gauge into a u64 wraparound.
    pub fn dec(&self) {
        let _ = self
            .cell
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// The staleness/lag gauge family (`dds_lag_*`): how far a serving
/// process trails its input and its readers. Starts as standalone cells
/// (engine pattern); [`LagGauges::attach_obs`] re-homes the handles into
/// a registry so scrapes and the serve `STATS` verb see live values.
#[derive(Clone, Debug, Default)]
pub struct LagGauges {
    /// Epochs between the last sealed epoch and the last published
    /// query snapshot (serve mode; 0 when publish keeps up).
    pub snapshot_age_epochs: Gauge,
    /// Bytes of the event file trailing the ingest cursor (follow mode).
    pub tail_bytes: Gauge,
    /// Last seal→publish latency in µs (serve mode).
    pub seal_publish_us: Gauge,
    /// Cumulative follow-loop idle time (waiting for new events), ms.
    pub follow_idle_ms: Gauge,
}

impl LagGauges {
    /// Fresh standalone gauges.
    #[must_use]
    pub fn standalone() -> Self {
        LagGauges::default()
    }

    /// Re-homes the handles into `registry` under the `dds_lag_*` names,
    /// carrying the current values over.
    pub fn attach_obs(&mut self, registry: &Registry) {
        let transfer = |old: &mut Gauge, name: &str| {
            let new = registry.gauge(name);
            new.set(old.get());
            *old = new;
        };
        transfer(&mut self.snapshot_age_epochs, "dds_lag_snapshot_age_epochs");
        transfer(&mut self.tail_bytes, "dds_lag_tail_bytes");
        transfer(&mut self.seal_publish_us, "dds_lag_seal_publish_us");
        transfer(&mut self.follow_idle_ms, "dds_lag_follow_idle_ms");
    }
}

#[derive(Debug, Default)]
struct HistogramCell {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

/// A fixed-bucket latency histogram: log2 buckets at µs resolution.
///
/// The default handle is **detached** (an exact no-op — observing costs a
/// branch, [`Histogram::timer`] never reads the clock); a handle from
/// [`Registry::histogram`] is live. Bucket layout: see [`BUCKETS`].
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    cell: Option<Arc<HistogramCell>>,
}

/// Which bucket a µs value lands in: 0 for 0, else `1 + floor(log2 v)`,
/// saturating at the last bucket.
#[must_use]
pub fn bucket_of(us: u64) -> usize {
    ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
}

impl Histogram {
    /// The detached no-op handle (also [`Default`]).
    #[must_use]
    pub fn detached() -> Self {
        Histogram { cell: None }
    }

    /// Whether observations actually record (false for the no-op handle).
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.cell.is_some()
    }

    /// Records one µs observation.
    pub fn observe_us(&self, us: u64) {
        if let Some(cell) = &self.cell {
            cell.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.sum_us.fetch_add(us, Ordering::Relaxed);
        }
    }

    /// Records a duration (truncated to whole µs, saturating).
    pub fn observe(&self, d: Duration) {
        if self.cell.is_some() {
            self.observe_us(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
        }
    }

    /// Starts a timer that observes on [`HistTimer::stop`]. The detached
    /// handle's timer never reads the clock — the no-op fast path for
    /// code that has no `Instant` of its own.
    #[must_use]
    pub fn timer(&self) -> HistTimer {
        HistTimer {
            histogram: self.clone(),
            start: self.cell.as_ref().map(|_| Instant::now()),
        }
    }

    /// Folds another histogram's observations into this one (used when
    /// per-worker histograms collapse into one). No-op unless both are
    /// live.
    pub fn merge(&self, other: &Histogram) {
        if let (Some(a), Some(b)) = (&self.cell, &other.cell) {
            for (dst, src) in a.buckets.iter().zip(&b.buckets) {
                dst.fetch_add(src.load(Ordering::Relaxed), Ordering::Relaxed);
            }
            a.count
                .fetch_add(b.count.load(Ordering::Relaxed), Ordering::Relaxed);
            a.sum_us
                .fetch_add(b.sum_us.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Sum of observed µs.
    #[must_use]
    pub fn sum_us(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.sum_us.load(Ordering::Relaxed))
    }

    /// Per-bucket counts (all zeros for the detached handle).
    #[must_use]
    pub fn buckets(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        if let Some(cell) = &self.cell {
            for (dst, src) in out.iter_mut().zip(&cell.buckets) {
                *dst = src.load(Ordering::Relaxed);
            }
        }
        out
    }
}

/// An in-flight histogram observation (see [`Histogram::timer`]).
#[derive(Debug)]
pub struct HistTimer {
    histogram: Histogram,
    start: Option<Instant>,
}

impl HistTimer {
    /// Stops the timer and records the elapsed time (no-op when the
    /// histogram is detached).
    pub fn stop(self) {
        if let Some(start) = self.start {
            self.histogram.observe(start.elapsed());
        }
    }
}

#[derive(Clone, Debug)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metrics, shared by handle ([`Clone`] is cheap).
///
/// `counter`/`gauge`/`histogram` get-or-create by name: asking twice for
/// the same name yields handles over the same cell, which is how several
/// engines (e.g. per-shard sketches) sum into one series.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    slots: Arc<Mutex<BTreeMap<String, Slot>>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    fn slot(&self, name: &str, make: impl FnOnce() -> Slot) -> Slot {
        let mut slots = self.slots.lock().expect("registry poisoned");
        slots.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// A registered counter handle (get-or-create).
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        match self.slot(name, || Slot::Counter(Counter::standalone())) {
            Slot::Counter(c) => c,
            other => panic!("{name} is registered as a {}", other.kind()),
        }
    }

    /// A registered gauge handle (get-or-create).
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.slot(name, || Slot::Gauge(Gauge::standalone())) {
            Slot::Gauge(g) => g,
            other => panic!("{name} is registered as a {}", other.kind()),
        }
    }

    /// A registered (live) histogram handle (get-or-create).
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        let live = || {
            Slot::Histogram(Histogram {
                cell: Some(Arc::new(HistogramCell::default())),
            })
        };
        match self.slot(name, live) {
            Slot::Histogram(h) => h,
            other => panic!("{name} is registered as a {}", other.kind()),
        }
    }

    /// The value of a registered counter, if any (tests, reconciliation).
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.slots.lock().expect("registry poisoned").get(name) {
            Some(Slot::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// The value of a registered gauge, if any.
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<u64> {
        match self.slots.lock().expect("registry poisoned").get(name) {
            Some(Slot::Gauge(g)) => Some(g.get()),
            _ => None,
        }
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (`# TYPE` comments, `_bucket{le="..."}`/`_sum`/`_count` series for
    /// histograms, with `le` the exclusive power-of-two upper edge).
    #[must_use]
    pub fn exposition(&self) -> String {
        let slots = self.slots.lock().expect("registry poisoned");
        let mut out = String::new();
        for (name, slot) in slots.iter() {
            let _ = writeln!(out, "# TYPE {name} {}", slot.kind());
            match slot {
                Slot::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Slot::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Slot::Histogram(h) => {
                    let buckets = h.buckets();
                    let mut cumulative = 0u64;
                    for (i, n) in buckets.iter().enumerate() {
                        cumulative += n;
                        if i + 1 < BUCKETS {
                            let _ =
                                writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", 1u64 << i);
                        }
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                    let _ = writeln!(out, "{name}_sum {}", h.sum_us());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }

    /// Renders every metric as one JSON object per line (the snapshot
    /// format appended to trace/summary files).
    #[must_use]
    pub fn jsonl_snapshot(&self) -> String {
        let slots = self.slots.lock().expect("registry poisoned");
        let mut out = String::new();
        for (name, slot) in slots.iter() {
            match slot {
                Slot::Counter(c) => {
                    let _ = writeln!(
                        out,
                        "{{\"metric\":\"{name}\",\"type\":\"counter\",\"value\":{}}}",
                        c.get()
                    );
                }
                Slot::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{{\"metric\":\"{name}\",\"type\":\"gauge\",\"value\":{}}}",
                        g.get()
                    );
                }
                Slot::Histogram(h) => {
                    let buckets = h.buckets();
                    let rendered: Vec<String> = buckets.iter().map(|n| n.to_string()).collect();
                    let _ = writeln!(
                        out,
                        "{{\"metric\":\"{name}\",\"type\":\"histogram\",\"count\":{},\"sum_us\":{},\"buckets\":[{}]}}",
                        h.count(),
                        h.sum_us(),
                        rendered.join(",")
                    );
                }
            }
        }
        out
    }

    /// Writes [`Registry::exposition`] to `path` atomically (temp file in
    /// the same directory, then rename), so a scraper never reads a torn
    /// file.
    ///
    /// # Errors
    /// Returns the underlying IO error.
    pub fn write_exposition_file(&self, path: impl AsRef<Path>) -> io::Result<()> {
        write_atomic(path.as_ref(), self.exposition().as_bytes())
    }

    /// Writes [`Registry::jsonl_snapshot`] to `path` atomically.
    ///
    /// # Errors
    /// Returns the underlying IO error.
    pub fn write_jsonl_file(&self, path: impl AsRef<Path>) -> io::Result<()> {
        write_atomic(path.as_ref(), self.jsonl_snapshot().as_bytes())
    }
}

/// Writes `bytes` to `path` atomically: a `.tmp` sibling is written,
/// flushed, and renamed over the target.
///
/// # Errors
/// Returns the underlying IO error.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// One parsed exposition sample: counters, gauges, and histogram series
/// are rendered as unsigned integers and parse back **exactly** (an `f64`
/// round-trip would silently corrupt counters past 2^53); only genuinely
/// non-integer samples fall back to `Float`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MetricValue {
    /// An exactly-parsed non-negative integer sample.
    Int(u64),
    /// A non-integer (or out-of-`u64`-range) sample.
    Float(f64),
}

impl MetricValue {
    /// The sample as an `f64` (lossy past 2^53 for `Int`).
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        match *self {
            MetricValue::Int(v) => v as f64,
            MetricValue::Float(v) => v,
        }
    }

    /// The exact integer sample, if this is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            MetricValue::Int(v) => Some(v),
            MetricValue::Float(_) => None,
        }
    }
}

impl PartialEq<u64> for MetricValue {
    fn eq(&self, other: &u64) -> bool {
        matches!(*self, MetricValue::Int(v) if v == *other)
    }
}

impl PartialEq<f64> for MetricValue {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == *other
    }
}

impl std::fmt::Display for MetricValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            MetricValue::Int(v) => write!(f, "{v}"),
            MetricValue::Float(v) => write!(f, "{v}"),
        }
    }
}

/// Parses a text exposition back into `name → value` samples (histogram
/// series appear under their full sample names, e.g. `foo_count`).
/// This is the smoke-test side of [`Registry::exposition`]: it validates
/// the format strictly enough that a torn or malformed file fails.
/// Integer samples parse exactly ([`MetricValue::Int`]); `f64` is only
/// the fallback for non-integer fields.
///
/// # Errors
/// Returns a description of the first malformed line.
pub fn parse_exposition(text: &str) -> Result<BTreeMap<String, MetricValue>, String> {
    let mut out = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut fields = rest.split_whitespace();
            let (name, kind) = (fields.next(), fields.next());
            if name.is_none() || !matches!(kind, Some("counter" | "gauge" | "histogram")) {
                return Err(format!("line {}: malformed TYPE comment", idx + 1));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no sample value", idx + 1))?;
        let value = match value_part.parse::<u64>() {
            Ok(v) => MetricValue::Int(v),
            Err(_) => MetricValue::Float(
                value_part
                    .parse::<f64>()
                    .map_err(|_| format!("line {}: bad sample value {value_part:?}", idx + 1))?,
            ),
        };
        let name = match name_part.split_once('{') {
            Some((base, labels)) => {
                let labels = labels
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {}: unterminated label set", idx + 1))?;
                format!("{base}{{{labels}}}")
            }
            None => name_part.to_string(),
        };
        if name.is_empty() {
            return Err(format!("line {}: empty metric name", idx + 1));
        }
        out.insert(name, value);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_cells_by_name() {
        let reg = Registry::new();
        let a = reg.counter("dds_test_total");
        let b = reg.counter("dds_test_total");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(reg.counter_value("dds_test_total"), Some(4));
        let g = reg.gauge("dds_test_level");
        g.set(7);
        assert_eq!(reg.gauge_value("dds_test_level"), Some(7));
    }

    #[test]
    #[should_panic(expected = "registered as a counter")]
    fn name_collisions_across_types_panic() {
        let reg = Registry::new();
        let _ = reg.counter("dds_test_total");
        let _ = reg.gauge("dds_test_total");
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket 0 holds exactly 0; bucket i ≥ 1 holds [2^(i-1), 2^i).
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of((1 << 30) - 1), 30);
    }

    #[test]
    fn histogram_saturates_at_the_last_bucket() {
        assert_eq!(bucket_of(1 << 30), BUCKETS - 1);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        let reg = Registry::new();
        let h = reg.histogram("dds_test_us");
        h.observe_us(u64::MAX);
        h.observe_us(1 << 40);
        assert_eq!(h.buckets()[BUCKETS - 1], 2);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn histogram_merge_adds_buckets_counts_and_sums() {
        let reg = Registry::new();
        let a = reg.histogram("dds_test_a_us");
        let b = reg.histogram("dds_test_b_us");
        a.observe_us(0);
        a.observe_us(5);
        b.observe_us(5);
        b.observe_us(100);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum_us(), 110);
        assert_eq!(a.buckets()[bucket_of(5)], 2);
        assert_eq!(a.buckets()[bucket_of(100)], 1);
        assert_eq!(a.buckets()[0], 1);
        // Merging into a detached histogram is an exact no-op.
        let noop = Histogram::detached();
        noop.merge(&a);
        assert_eq!(noop.count(), 0);
    }

    #[test]
    fn detached_histogram_is_an_exact_noop() {
        let h = Histogram::detached();
        assert!(!h.is_live());
        h.observe_us(10);
        h.observe(Duration::from_millis(1));
        let t = h.timer();
        t.stop();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum_us(), 0);
        assert_eq!(h.buckets(), [0u64; BUCKETS]);
    }

    #[test]
    fn exposition_round_trips_through_the_parser() {
        let reg = Registry::new();
        reg.counter("dds_stream_epochs_total").add(42);
        reg.gauge("dds_sketch_level").set(3);
        let h = reg.histogram("dds_stream_apply_latency_us");
        h.observe_us(7);
        h.observe_us(900);
        let text = reg.exposition();
        let samples = parse_exposition(&text).expect("own exposition must parse");
        assert_eq!(samples["dds_stream_epochs_total"], 42u64);
        assert_eq!(samples["dds_sketch_level"], 3u64);
        assert_eq!(samples["dds_stream_apply_latency_us_count"], 2u64);
        assert_eq!(samples["dds_stream_apply_latency_us_sum"], 907u64);
        assert_eq!(
            samples["dds_stream_apply_latency_us_bucket{le=\"+Inf\"}"],
            2u64
        );
        // Cumulative buckets: everything ≤ 1024 covers both samples.
        assert_eq!(
            samples["dds_stream_apply_latency_us_bucket{le=\"1024\"}"],
            2u64
        );
        assert_eq!(
            samples["dds_stream_apply_latency_us_bucket{le=\"8\"}"],
            1u64
        );
    }

    #[test]
    fn parser_keeps_counters_past_f64_precision_exact() {
        // 2^53 + 1 is the first integer an f64 cannot represent: the old
        // f64 round-trip silently mapped it to 2^53. The parser must hand
        // the exact integer back.
        let big = (1u64 << 53) + 1;
        let reg = Registry::new();
        reg.counter("dds_test_big_total").add(big);
        let samples = parse_exposition(&reg.exposition()).expect("parse");
        assert_eq!(samples["dds_test_big_total"], MetricValue::Int(big));
        assert_eq!(samples["dds_test_big_total"].as_u64(), Some(big));
        assert_ne!(
            samples["dds_test_big_total"],
            MetricValue::Int(1u64 << 53),
            "the exact value must survive, not the f64 rounding"
        );
        // Non-integer samples still parse, as the f64 fallback.
        let parsed = parse_exposition("name 1.5\n").expect("float sample");
        assert_eq!(parsed["name"], MetricValue::Float(1.5));
        assert_eq!(parsed["name"].as_u64(), None);
    }

    #[test]
    fn parser_rejects_malformed_expositions() {
        assert!(parse_exposition("# TYPE broken\n").is_err());
        assert!(parse_exposition("name_without_value\n").is_err());
        assert!(parse_exposition("name not_a_number\n").is_err());
        assert!(parse_exposition("name{le=\"1\" 3\n").is_err());
    }

    #[test]
    fn jsonl_snapshot_has_one_object_per_metric() {
        let reg = Registry::new();
        reg.counter("dds_a_total").add(1);
        reg.histogram("dds_b_us").observe_us(3);
        let text = reg.jsonl_snapshot();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"metric\":\"dds_a_total\""));
        assert!(text.contains("\"type\":\"histogram\""));
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn atomic_write_replaces_the_target() {
        let path = std::env::temp_dir().join(format!(
            "dds_obs_atomic_{}_{:?}.prom",
            std::process::id(),
            std::thread::current().id()
        ));
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(!path.with_extension("prom.tmp").exists());
        std::fs::remove_file(&path).ok();
    }
}
