//! Trace profiling: aggregate a span JSONL file (the [`crate::Tracer`]
//! output) into a per-span count / total / self-time table and a
//! folded-stacks rendering (`a;b;c weight` — the flamegraph input
//! format).
//!
//! Works on both trace modes. A timing trace (`dur_us` per span) yields
//! microsecond totals with self time = a span's duration minus its
//! children's; a deterministic trace has no durations, so weights fall
//! back to span counts (the table's `total_us`/`self_us` columns read 0
//! and the folded stacks carry one sample per occurrence). Both
//! renderings are fully deterministic for a given input file — the
//! golden test diffs them byte-for-byte.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One parsed span line.
#[derive(Clone, Debug)]
struct SpanRec {
    name: String,
    parent: Option<u64>,
    dur_us: Option<u64>,
}

/// An aggregated trace: per-span rows plus folded stacks.
#[derive(Clone, Debug)]
pub struct TraceProfile {
    /// `name → (count, total_us, self_us)`, extracted in render order.
    rows: Vec<(String, u64, u64, u64)>,
    /// `stack path → weight` (self µs when timed, samples otherwise).
    folded: BTreeMap<String, u64>,
    timed: bool,
    spans: usize,
}

impl TraceProfile {
    /// Aggregates a span JSONL document (one object per line, the
    /// [`crate::Tracer`] format).
    ///
    /// # Errors
    /// Returns a description of the first malformed line.
    pub fn from_jsonl(text: &str) -> Result<TraceProfile, String> {
        let mut recs: BTreeMap<u64, SpanRec> = BTreeMap::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            // The registry snapshot appended after spans uses "metric"
            // keys; skip anything that is not a span line.
            if !line.contains("\"span\":") {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}", idx + 1);
            let fields = parse_flat_object(line).map_err(|e| err(&e))?;
            let mut seq = None;
            let mut name = None;
            let mut parent = None;
            let mut dur_us = None;
            for (key, value) in fields {
                match (key.as_str(), value) {
                    ("seq", JsonScalar::Int(v)) => seq = Some(v),
                    ("span", JsonScalar::Str(s)) => name = Some(s),
                    ("parent", JsonScalar::Int(v)) => parent = Some(v),
                    ("dur_us", JsonScalar::Int(v)) => dur_us = Some(v),
                    _ => {} // depth + payload fields don't shape the profile
                }
            }
            let seq = seq.ok_or_else(|| err("span line without seq"))?;
            let name = name.ok_or_else(|| err("span line without name"))?;
            recs.insert(
                seq,
                SpanRec {
                    name,
                    parent,
                    dur_us,
                },
            );
        }
        Ok(TraceProfile::aggregate(&recs))
    }

    fn aggregate(recs: &BTreeMap<u64, SpanRec>) -> TraceProfile {
        let timed = recs.values().any(|r| r.dur_us.is_some());
        // Children's duration per parent seq, for self time.
        let mut child_us: BTreeMap<u64, u64> = BTreeMap::new();
        for rec in recs.values() {
            if let (Some(parent), Some(dur)) = (rec.parent, rec.dur_us) {
                if recs.contains_key(&parent) {
                    *child_us.entry(parent).or_insert(0) += dur;
                }
            }
        }
        let stack_of = |seq: u64| -> String {
            let mut names = Vec::new();
            let mut cursor = Some(seq);
            while let Some(s) = cursor {
                let Some(rec) = recs.get(&s) else { break };
                names.push(rec.name.as_str());
                // A parent missing from the file (truncated trace) makes
                // this span a root.
                cursor = rec.parent.filter(|p| recs.contains_key(p));
            }
            names.reverse();
            names.join(";")
        };
        let mut by_name: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        for (&seq, rec) in recs {
            let total = rec.dur_us.unwrap_or(0);
            let self_us = total.saturating_sub(child_us.get(&seq).copied().unwrap_or(0));
            let row = by_name.entry(rec.name.as_str()).or_insert((0, 0, 0));
            row.0 += 1;
            row.1 += total;
            row.2 += self_us;
            let weight = if timed { self_us } else { 1 };
            if weight > 0 {
                *folded.entry(stack_of(seq)).or_insert(0) += weight;
            }
        }
        let mut rows: Vec<(String, u64, u64, u64)> = by_name
            .into_iter()
            .map(|(name, (count, total, selfs))| (name.to_string(), count, total, selfs))
            .collect();
        rows.sort_by(|a, b| {
            b.2.cmp(&a.2) // total_us desc
                .then(b.1.cmp(&a.1)) // count desc
                .then(a.0.cmp(&b.0)) // name asc
        });
        TraceProfile {
            rows,
            folded,
            timed,
            spans: recs.len(),
        }
    }

    /// Number of spans aggregated.
    #[must_use]
    pub fn spans(&self) -> usize {
        self.spans
    }

    /// Whether the trace carried wall-clock durations.
    #[must_use]
    pub fn timed(&self) -> bool {
        self.timed
    }
}

/// Renders the per-span table: name, count, total µs, self µs — widest
/// totals first. Byte-deterministic for a given trace file.
#[must_use]
pub fn render_table(profile: &TraceProfile) -> String {
    let name_w = profile
        .rows
        .iter()
        .map(|r| r.0.len())
        .chain(std::iter::once("span".len()))
        .max()
        .unwrap_or(4);
    let mut out = format!(
        "{:<name_w$}  {:>8}  {:>12}  {:>12}\n",
        "span", "count", "total_us", "self_us"
    );
    for (name, count, total, selfs) in &profile.rows {
        let _ = writeln!(out, "{name:<name_w$}  {count:>8}  {total:>12}  {selfs:>12}");
    }
    let _ = writeln!(
        out,
        "# {} spans, {}",
        profile.spans,
        if profile.timed {
            "timed (us)"
        } else {
            "deterministic (no wall clock; folded weights are span counts)"
        }
    );
    out
}

/// Renders folded stacks (`root;child;leaf weight`, lexicographic order)
/// — the input format flamegraph tools consume. Weights are self µs on a
/// timing trace and occurrence counts on a deterministic one.
#[must_use]
pub fn render_folded(profile: &TraceProfile) -> String {
    let mut out = String::new();
    for (stack, weight) in &profile.folded {
        let _ = writeln!(out, "{stack} {weight}");
    }
    out
}

#[derive(Clone, Debug, PartialEq)]
enum JsonScalar {
    Int(u64),
    Str(String),
    Other,
}

/// Parses one flat JSON object (`{"k":v,...}`, scalar values only) into
/// its key/value pairs. Handles string escapes; nested containers are
/// rejected.
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonScalar)>, String> {
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("not a JSON object")?;
    let mut out = Vec::new();
    let mut chars = inner.chars().peekable();
    loop {
        // Key.
        match chars.peek() {
            None => break,
            Some('"') => {}
            Some(c) => return Err(format!("expected key, found {c:?}")),
        }
        let key = parse_string(&mut chars)?;
        if chars.next() != Some(':') {
            return Err(format!("missing colon after key {key:?}"));
        }
        // Value.
        let value = match chars.peek() {
            Some('"') => JsonScalar::Str(parse_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() || *c == '-' => {
                let mut num = String::new();
                while let Some(c) = chars.peek() {
                    if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                        num.push(*c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                num.parse::<u64>()
                    .map_or(JsonScalar::Other, JsonScalar::Int)
            }
            Some('t' | 'f' | 'n') => {
                while let Some(c) = chars.peek() {
                    if c.is_ascii_alphabetic() {
                        chars.next();
                    } else {
                        break;
                    }
                }
                JsonScalar::Other
            }
            other => return Err(format!("unsupported value start {other:?}")),
        };
        out.push((key, value));
        match chars.next() {
            Some(',') => continue,
            None => break,
            Some(c) => return Err(format!("expected comma, found {c:?}")),
        }
    }
    Ok(out)
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected string".into());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".into()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let code: String = (0..4).filter_map(|_| chars.next()).collect();
                    let v = u32::from_str_radix(&code, 16)
                        .map_err(|_| format!("bad \\u escape {code:?}"))?;
                    out.push(char::from_u32(v).unwrap_or('\u{FFFD}'));
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TIMED: &str = concat!(
        "{\"seq\":2,\"span\":\"stream.resolve\",\"depth\":1,\"parent\":1,\"dur_us\":300}\n",
        "{\"seq\":1,\"span\":\"stream.apply\",\"depth\":0,\"epoch\":1,\"dur_us\":500}\n",
        "{\"seq\":4,\"span\":\"stream.resolve\",\"depth\":1,\"parent\":3,\"dur_us\":100}\n",
        "{\"seq\":3,\"span\":\"stream.apply\",\"depth\":0,\"epoch\":2,\"dur_us\":150}\n",
    );

    #[test]
    fn timed_traces_aggregate_totals_and_self_time() {
        let p = TraceProfile::from_jsonl(TIMED).unwrap();
        assert!(p.timed());
        assert_eq!(p.spans(), 4);
        let table = render_table(&p);
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].starts_with("span"));
        // apply: count 2, total 650, self 650-400=250; resolve: 2/400/400.
        assert!(lines[1].contains("stream.apply"), "{table}");
        assert!(lines[1].contains("650"), "{table}");
        assert!(lines[1].contains("250"), "{table}");
        assert!(lines[2].contains("stream.resolve"), "{table}");
        let folded = render_folded(&p);
        assert_eq!(
            folded,
            "stream.apply 250\nstream.apply;stream.resolve 400\n"
        );
    }

    #[test]
    fn deterministic_traces_fall_back_to_counts() {
        let text = "{\"seq\":2,\"span\":\"b\",\"depth\":1,\"parent\":1}\n\
                    {\"seq\":1,\"span\":\"a\",\"depth\":0}\n\
                    {\"seq\":3,\"span\":\"a\",\"depth\":0}\n";
        let p = TraceProfile::from_jsonl(text).unwrap();
        assert!(!p.timed());
        assert_eq!(render_folded(&p), "a 2\na;b 1\n");
        let table = render_table(&p);
        assert!(table.contains("deterministic"), "{table}");
    }

    #[test]
    fn non_span_lines_are_skipped_and_garbage_rejected() {
        let mixed = "{\"seq\":1,\"span\":\"a\",\"depth\":0}\n\
                     {\"metric\":\"dds_a_total\",\"type\":\"counter\",\"value\":1}\n";
        let p = TraceProfile::from_jsonl(mixed).unwrap();
        assert_eq!(p.spans(), 1);
        assert!(TraceProfile::from_jsonl("{\"span\":\"x\" garbage}\n").is_err());
        assert!(
            TraceProfile::from_jsonl("{\"span\":\"x\"}\n").is_err(),
            "seq required"
        );
    }

    #[test]
    fn truncated_parents_become_roots() {
        // Parent seq 99 never closed (still open when the file ended).
        let text = "{\"seq\":2,\"span\":\"child\",\"depth\":1,\"parent\":99,\"dur_us\":10}\n";
        let p = TraceProfile::from_jsonl(text).unwrap();
        assert_eq!(render_folded(&p), "child 10\n");
    }
}
