//! Edge-partitioned parallel DDS ingestion: hash-sharded counters and
//! sketches, batch applies spread over a work queue, and globally
//! certified density brackets recovered by **merging** the shard state —
//! plus snapshot/restore, so the whole thing runs as a restartable
//! serving loop (`dds shard`, `dds stream --follow`).
//!
//! # Why sharding works here
//!
//! A [`ShardedEngine`] routes every edge to one of `K` shards by a
//! deterministic hash of the edge alone, so the same edge always lands on
//! the same shard and each shard owns a *disjoint partition* of the live
//! edge set. Per shard, the state is exactly what one
//! [`dds_sketch::SketchEngine`] keeps: the authoritative partition (for
//! turnstile dedup and sample rebuilds), exact `O(1)` counters (live `m`,
//! count-of-counts degree maxima), and the subsampled retained set at the
//! shard's own level — all of it updated by that shard alone, which is
//! what makes batch applies embarrassingly parallel
//! ([`dds_core::parallel::for_each_mut`] drives them through the same
//! work-queue discipline as the exact solver's ratio intervals).
//!
//! Global certification then needs two merges, both exact:
//!
//! * **counters sum** — the partition is disjoint, so a vertex's global
//!   degree is the sum of its per-shard degrees
//!   ([`dds_sketch::MaxTracker::merge`]), and the structural upper bound
//!   `min(√m, √(d⁺_max·d⁻_max))` computed from the summed counters is the
//!   true full-graph bound, not an approximation of it;
//! * **sketches union** — every shard admits edges with the *same* seeded
//!   hash, and admission is nested across levels, so filtering the union
//!   of retained sets at `L = max(shard levels)` yields precisely the
//!   retained set a single engine at level `L` would hold over the whole
//!   graph ([`dds_sketch::SketchEngine::merged`]; property-tested against
//!   a single engine in `tests/tests/shard_oracle.rs`). The merged sample
//!   is refreshed with the same two-tier solve the sketch tier runs
//!   everywhere else — core sweep of the sample, escalated to
//!   exact-on-sketch when the sweep's own bracket is loose — and the
//!   winning pair is adopted only if it beats the incumbent witness
//!   *measured on the full graph* ([`dds_stream::denser_pair`]).
//!
//! The certified bracket per epoch is therefore the familiar one: lower =
//! the witness pair's exact density on the full graph (maintained per
//! event, across shards), upper = the structural bound from the summed
//! counters. Refreshes are drift-triggered, pooling the shards' retained-
//! set churn exactly like the standalone sketch policy.
//!
//! # Restartability
//!
//! [`ShardedEngine::snapshot`] serializes the restart-relevant state —
//! the global edge set (canonical order), per-shard subsampling levels
//! and drift counters, the incumbent witness, and the armed-escalation
//! bit — in the versioned format of [`dds_stream::snapshot`]. Everything
//! else is recomputed on restore: the router re-partitions the edges,
//! deterministic admission rebuilds every retained set, and the witness
//! is recounted. Because merged refreshes run on a *fresh* solver context
//! each time (the sample is small; warmth buys little and
//! history-independence buys exact resumability), a restored engine
//! replays the remaining stream **bit-identically** to the engine that
//! wrote the snapshot — asserted per epoch by the oracle tests and
//! experiment E16's kill/restore check.

#![warn(missing_docs)]

mod engine;

pub use engine::{replay_sharded, route_edge, ShardConfig, ShardReport, ShardStats, ShardedEngine};
