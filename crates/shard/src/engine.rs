//! The sharded engine: deterministic edge routing, parallel batch apply,
//! merged certification, and snapshot/restore.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use dds_core::{parallel, SolveStats};
use dds_graph::{DiGraph, GraphBuilder, Pair, VertexId};
use dds_num::Density;
use dds_obs::{span, Counter, Gauge, Histogram, Registry, Tracer};
use dds_sketch::{MaxTracker, SketchConfig, SketchEngine};
use dds_stream::delta::{replay_chain_edges, DeltaChain, DeltaFrame};
use dds_stream::snapshot::{
    read_snapshot_file, write_snapshot_file, SnapshotError, SnapshotKind, SnapshotReader,
    SnapshotWriter,
};
use dds_stream::{denser_pair, Batch, CertifiedBounds, Event, TimedEvent};

/// Relative inflation applied to the floating-point upper bound so
/// rounding can never flip the certificate (same discipline as the other
/// engines).
const SAFETY: f64 = 1e-9;

/// Pooled retained sets smaller than this still wait for a few mutations
/// before refreshing (mirrors the standalone sketch policy).
const DRIFT_FLOOR: usize = 32;

/// Configuration of a [`ShardedEngine`].
#[derive(Clone, Copy, Debug)]
pub struct ShardConfig {
    /// Number of edge partitions `K`. Must be positive; 1 is the serial
    /// baseline (same code path, no spawns).
    pub shards: usize,
    /// Worker threads for the parallel batch apply (capped at `shards`;
    /// 1 applies inline). Must be positive.
    pub threads: usize,
    /// Fraction of the pooled retained set that must have churned since
    /// the last merged refresh before one fires. Must be positive.
    pub refresh_drift: f64,
    /// The per-shard sketch configuration. The admission `seed` is shared
    /// by every shard (that is what makes the union sound) and
    /// `state_bound` bounds both each shard's retained set and the merged
    /// sample (the merge re-enforces it, raising the level if the union
    /// overflows).
    pub sketch: SketchConfig,
}

impl Default for ShardConfig {
    /// 4 shards, 4 apply workers, the standalone sketch drift (0.25), and
    /// the default sketch configuration.
    fn default() -> Self {
        ShardConfig {
            shards: 4,
            threads: 4,
            refresh_drift: 0.25,
            sketch: SketchConfig::default(),
        }
    }
}

/// Lifetime counters of a [`ShardedEngine`].
#[derive(Clone, Debug)]
pub struct ShardStats {
    /// Retained edges right now, summed over shards.
    pub retained: usize,
    /// Per-shard subsampling levels.
    pub levels: Vec<u32>,
    /// Level of the last merged refresh's sample.
    pub merged_level: u32,
    /// Merged refreshes run so far.
    pub refreshes: u64,
    /// How many of those escalated to an exact solve of the merged sample.
    pub escalations: u64,
    /// How many ran with the cold-start one-shot escalation armed.
    pub cold_escalations: u64,
    /// Wall-clock spent in the (possibly parallel) batch applies.
    pub apply: Duration,
    /// Wall-clock spent certifying (counter merges, merged refreshes).
    pub certify: Duration,
    /// Accumulated instrumentation of every escalated merged solve.
    pub solve: SolveStats,
}

/// What one [`ShardedEngine::apply`] call did and certified.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// 1-based epoch number (one per applied batch).
    pub epoch: u64,
    /// Events in the batch, including no-ops.
    pub events: usize,
    /// Insertions that changed the graph.
    pub inserts: usize,
    /// Deletions that changed the graph.
    pub deletes: usize,
    /// No-op events (duplicate inserts, absent deletes, self-loops).
    pub ignored: usize,
    /// Vertex count after the batch (one past the largest id seen).
    pub n: usize,
    /// Live edge count after the batch, summed over shards.
    pub m: u64,
    /// Retained (sampled) edges after the batch, summed over shards.
    pub retained: usize,
    /// Whether this epoch ran a merged refresh.
    pub refreshed: bool,
    /// The merged sample's level, when this epoch refreshed.
    pub merged_level: Option<u32>,
    /// The witness pair's exact density on the **full** graph — the
    /// certified lower bound.
    pub density: Density,
    /// `density` as `f64`.
    pub lower: f64,
    /// Certified upper bound: the structural `min(√m, √(d⁺·d⁻))` over the
    /// exact summed counters.
    pub upper: f64,
    /// Proven approximation factor (`upper / lower`).
    pub certified_factor: f64,
    /// Instrumentation of this epoch's escalated merged solve (`None` for
    /// unescalated refreshes and quiet epochs).
    pub solve_stats: Option<SolveStats>,
    /// Wall-clock spent applying the batch (the parallel section).
    pub apply: Duration,
    /// Wall-clock spent certifying the epoch.
    pub certify: Duration,
    /// Total wall-clock of this `apply` call.
    pub elapsed: Duration,
}

/// One edge partition: the authoritative edge set (turnstile dedup, the
/// sample's rebuild source, snapshot payload) plus the shard's sketch.
#[derive(Debug)]
struct Shard {
    edges: HashSet<(VertexId, VertexId)>,
    sketch: SketchEngine,
    n: usize,
}

/// What one shard's batch apply reports back to the engine.
#[derive(Clone, Copy, Debug, Default)]
struct ApplyOut {
    inserts: usize,
    deletes: usize,
    ignored: usize,
    witness_delta: i64,
    n: usize,
}

impl Shard {
    fn new(sketch: SketchConfig) -> Self {
        Shard {
            edges: HashSet::new(),
            sketch: SketchEngine::new(sketch),
            n: 0,
        }
    }

    /// Applies this shard's slice of a batch: dedup against the partition,
    /// forward applied mutations to the sketch, and track how many of the
    /// incumbent witness's edges appeared/vanished (`in_s`/`in_t` are the
    /// engine's read-only witness bitmaps — the witness only changes at
    /// refresh time, never mid-apply).
    fn apply(&mut self, events: &[TimedEvent], in_s: &[bool], in_t: &[bool]) -> ApplyOut {
        let mut out = ApplyOut::default();
        let in_witness = |u: VertexId, v: VertexId| {
            in_s.get(u as usize).copied().unwrap_or(false)
                && in_t.get(v as usize).copied().unwrap_or(false)
        };
        for ev in events {
            match ev.event {
                Event::Insert(u, v) => {
                    // Ids register even for no-ops, like `DynamicGraph`.
                    self.n = self.n.max(u as usize + 1).max(v as usize + 1);
                    if u == v || !self.edges.insert((u, v)) {
                        out.ignored += 1;
                        continue;
                    }
                    self.sketch.insert(u, v);
                    out.inserts += 1;
                    if in_witness(u, v) {
                        out.witness_delta += 1;
                    }
                }
                Event::Delete(u, v) => {
                    if !self.edges.remove(&(u, v)) {
                        out.ignored += 1;
                        continue;
                    }
                    self.sketch.delete(u, v);
                    out.deletes += 1;
                    if in_witness(u, v) {
                        out.witness_delta -= 1;
                    }
                }
            }
        }
        // A partition that shrank far below its peak leaves the sample
        // over-thinned; the shard owns its authoritative edge set, so it
        // recovers locally (no cross-shard coordination).
        if self.sketch.is_undersampled() {
            self.sketch.rebuild(self.edges.iter().copied());
        }
        out.n = self.n;
        out
    }
}

/// A decoded snapshot payload, identity not yet checked.
#[derive(Debug)]
struct ShardSnapshotParts {
    shards: usize,
    seed: u64,
    state_bound: usize,
    n: usize,
    epoch: u64,
    refreshes: u64,
    escalations: u64,
    cold_escalations: u64,
    inserts: u64,
    deletes: u64,
    ignored: u64,
    merged_level: u32,
    escalate_next: bool,
    levels: Vec<(u32, u64)>,
    edges: Vec<(VertexId, VertexId)>,
    witness: Option<Pair>,
}

impl ShardSnapshotParts {
    /// Rejects a checkpoint whose identity fields (shard count, admission
    /// seed, state bound) disagree with `config`, naming each mismatched
    /// field. Partitioning and admission are pure functions of these, so
    /// restoring across a mismatch would silently re-hash every edge onto
    /// different shards — the failure `dds shard --resume` must surface as
    /// an error, never absorb.
    fn check_identity(&self, config: ShardConfig) -> Result<(), SnapshotError> {
        let mut wrong = Vec::new();
        if self.shards != config.shards {
            wrong.push(format!(
                "shard count (checkpoint {}, requested {})",
                self.shards, config.shards
            ));
        }
        if self.seed != config.sketch.seed {
            wrong.push(format!(
                "admission seed (checkpoint {:#x}, requested {:#x})",
                self.seed, config.sketch.seed
            ));
        }
        if self.state_bound != config.sketch.state_bound {
            wrong.push(format!(
                "state bound (checkpoint {}, requested {})",
                self.state_bound, config.sketch.state_bound
            ));
        }
        if wrong.is_empty() {
            return Ok(());
        }
        Err(SnapshotError::Format(format!(
            "checkpoint identity mismatch: {} — edge routing and sample admission are derived \
             from these, so resuming would silently re-hash edges onto different shards; rerun \
             with the checkpoint's flags or start fresh without --resume",
            wrong.join(", ")
        )))
    }
}

/// Edge-partitioned parallel DDS maintenance (see the crate docs).
#[derive(Debug)]
pub struct ShardedEngine {
    config: ShardConfig,
    shards: Vec<Shard>,
    n: usize,
    /// The incumbent witness with its full-graph edge count maintained per
    /// event (bitmaps sized to `n` at adoption).
    witness: Option<Pair>,
    in_s: Vec<bool>,
    in_t: Vec<bool>,
    witness_edges: u64,
    /// Cold-start one-shot, carried across merged refreshes (each merge
    /// starts a fresh [`SketchEngine`]).
    escalate_next: bool,
    merged_level: u32,
    metrics: ShardMetrics,
    tracer: Tracer,
    /// Registry to re-home each merged refresh's fresh [`SketchEngine`]
    /// into (the merged engines are short-lived; their `dds_sketch_*`
    /// counters only survive by summing into a shared registry).
    obs: Option<Registry>,
    solve_totals: SolveStats,
    apply_wall: Duration,
    certify_wall: Duration,
}

/// Obs-backed lifetime counters of a [`ShardedEngine`] (the `dds_shard_*`
/// series): standalone atomics by default — [`ShardStats`] and the public
/// accessors read them as views — re-homed into a shared registry by
/// [`ShardedEngine::attach_obs`]. The gauges and the latency histograms
/// are no-ops until attached.
#[derive(Debug, Default)]
struct ShardMetrics {
    epochs: Counter,
    refreshes: Counter,
    escalations: Counter,
    cold_escalations: Counter,
    inserts: Counter,
    deletes: Counter,
    ignored: Counter,
    retained: Option<Gauge>,
    merged_level: Option<Gauge>,
    edges: Option<Gauge>,
    apply_latency: Histogram,
    certify_latency: Histogram,
    merge_latency: Histogram,
}

impl ShardMetrics {
    fn attach(&mut self, registry: &Registry) {
        let transfer = |old: &mut Counter, name: &str| {
            let new = registry.counter(name);
            new.add(old.get());
            *old = new;
        };
        transfer(&mut self.epochs, "dds_shard_epochs_total");
        transfer(&mut self.refreshes, "dds_shard_refreshes_total");
        transfer(&mut self.escalations, "dds_shard_escalations_total");
        transfer(
            &mut self.cold_escalations,
            "dds_shard_cold_escalations_total",
        );
        transfer(&mut self.inserts, "dds_shard_inserts_total");
        transfer(&mut self.deletes, "dds_shard_deletes_total");
        transfer(&mut self.ignored, "dds_shard_ignored_total");
        self.retained = Some(registry.gauge("dds_shard_retained"));
        self.merged_level = Some(registry.gauge("dds_shard_merged_level"));
        self.edges = Some(registry.gauge("dds_shard_edges"));
        self.apply_latency = registry.histogram("dds_shard_apply_latency_us");
        self.certify_latency = registry.histogram("dds_shard_certify_latency_us");
        self.merge_latency = registry.histogram("dds_shard_merge_latency_us");
    }
}

/// The deterministic edge router: a seeded splitmix64 finaliser over the
/// packed endpoints, salted away from the admission hash so routing and
/// sampling stay independent. Same `(seed, u, v)` → same shard, always —
/// on every run, on every restore.
fn route_hash(seed: u64, u: VertexId, v: VertexId) -> u64 {
    let mut z = (seed ^ 0xA076_1D64_78BD_642F)
        .wrapping_add((u64::from(u) << 32 | u64::from(v)).wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which of `shards` partitions owns the edge `u → v` under `seed`.
///
/// This is the same deterministic router [`ShardedEngine`] uses
/// internally, exposed so out-of-process ingesters (`dds-cluster` worker
/// processes) can claim exactly the partition an in-process engine would
/// hand them — identical placement is what makes their digests mergeable.
///
/// # Panics
/// Panics if `shards` is zero.
#[must_use]
pub fn route_edge(seed: u64, u: VertexId, v: VertexId, shards: usize) -> usize {
    assert!(shards > 0, "need at least one shard");
    (route_hash(seed, u, v) % shards as u64) as usize
}

impl ShardedEngine {
    /// A fresh engine over an empty graph.
    ///
    /// # Panics
    /// Panics on zero shards, zero threads, or non-positive drift (the
    /// sketch config's own invariants are checked by the shards).
    #[must_use]
    pub fn new(config: ShardConfig) -> Self {
        assert!(config.shards > 0, "need at least one shard");
        assert!(config.threads > 0, "need at least one apply worker");
        assert!(config.refresh_drift > 0.0, "refresh drift must be positive");
        ShardedEngine {
            shards: (0..config.shards)
                .map(|_| Shard::new(config.sketch))
                .collect(),
            config,
            n: 0,
            witness: None,
            in_s: Vec::new(),
            in_t: Vec::new(),
            witness_edges: 0,
            escalate_next: false,
            merged_level: 0,
            metrics: ShardMetrics::default(),
            tracer: Tracer::detached(),
            obs: None,
            solve_totals: SolveStats::default(),
            apply_wall: Duration::ZERO,
            certify_wall: Duration::ZERO,
        }
    }

    /// Re-homes this engine's lifetime counters in `registry` (the
    /// `dds_shard_*` series, plus the `dds_sketch_*`/`dds_exact_*` series
    /// of every per-shard sketch — and of every future merged refresh's
    /// sketch — which sum into the shared registry handles), transferring
    /// the values accumulated so far and enabling the gauges and latency
    /// histograms.
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.metrics.attach(registry);
        for shard in &mut self.shards {
            shard.sketch.attach_obs(registry);
        }
        self.obs = Some(registry.clone());
    }

    /// Routes this engine's spans (`shard.apply` with a nested
    /// `shard.merge`) to `tracer`. The default is the detached tracer:
    /// spans are inert and never read the clock.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Which shard owns the edge `u → v` (deterministic, seed-keyed).
    #[must_use]
    pub fn shard_of(&self, u: VertexId, v: VertexId) -> usize {
        (route_hash(self.config.sketch.seed, u, v) % self.config.shards as u64) as usize
    }

    /// Applies one batch — partition by the edge router, apply the slices
    /// across the work-queue workers, then certify the epoch globally
    /// (summed counters; a merged-sketch refresh when the pooled drift
    /// policy asks for one).
    pub fn apply(&mut self, batch: &Batch) -> ShardReport {
        let start = Instant::now();
        let mut span = span!(self.tracer, "shard.apply");
        let shards_n = self.config.shards;
        let mut parts: Vec<Vec<TimedEvent>> = vec![Vec::new(); shards_n];
        for ev in &batch.events {
            let (u, v) = match ev.event {
                Event::Insert(u, v) | Event::Delete(u, v) => (u, v),
            };
            parts[(route_hash(self.config.sketch.seed, u, v) % shards_n as u64) as usize].push(*ev);
        }
        let workers = self.config.threads.min(shards_n);
        let (shards, in_s, in_t) = (&mut self.shards, &self.in_s, &self.in_t);
        let outs = parallel::for_each_mut(shards, workers, |i, shard| {
            shard.apply(&parts[i], in_s, in_t)
        });
        let apply = start.elapsed();
        self.apply_wall += apply;
        self.metrics.apply_latency.observe(apply);

        let (mut inserts, mut deletes, mut ignored) = (0usize, 0usize, 0usize);
        let mut witness_delta = 0i64;
        for out in &outs {
            inserts += out.inserts;
            deletes += out.deletes;
            ignored += out.ignored;
            witness_delta += out.witness_delta;
            self.n = self.n.max(out.n);
        }
        self.witness_edges = self
            .witness_edges
            .checked_add_signed(witness_delta)
            .expect("witness edge count underflow");
        self.metrics.epochs.inc();
        let epoch = self.metrics.epochs.get();
        self.metrics.inserts.add(inserts as u64);
        self.metrics.deletes.add(deletes as u64);
        self.metrics.ignored.add(ignored as u64);

        let certify_start = Instant::now();
        let refreshed = self.needs_refresh();
        let (solve_stats, merged_level) = if refreshed {
            let (stats, level) = self.refresh_merged();
            (stats, Some(level))
        } else {
            (None, None)
        };
        let density = self.witness_density();
        let lower = density.to_f64();
        let upper = self.structural_upper();
        let certify = certify_start.elapsed();
        self.certify_wall += certify;
        self.metrics.certify_latency.observe(certify);
        if let Some(g) = &self.metrics.retained {
            g.set(self.retained() as u64);
        }
        if let Some(g) = &self.metrics.edges {
            g.set(self.m());
        }
        span.record("epoch", epoch);
        span.record("events", batch.events.len() as u64);
        span.record("m", self.m());
        span.record_flag("refreshed", refreshed);

        ShardReport {
            epoch,
            events: batch.events.len(),
            inserts,
            deletes,
            ignored,
            n: self.n,
            m: self.m(),
            retained: self.retained(),
            refreshed,
            merged_level,
            density,
            lower,
            upper,
            certified_factor: if lower > 0.0 {
                upper / lower
            } else if upper > 0.0 {
                f64::INFINITY
            } else {
                1.0
            },
            solve_stats,
            apply,
            certify,
            elapsed: start.elapsed(),
        }
    }

    /// Whether the pooled drift policy wants a merged refresh now
    /// (mirrors the standalone sketch policy over the summed state).
    fn needs_refresh(&self) -> bool {
        let retained = self.retained();
        if retained == 0 {
            return false;
        }
        if self.witness.is_none() || self.witness_density().is_zero() {
            return true;
        }
        let mutations: u64 = self
            .shards
            .iter()
            .map(|s| s.sketch.sample_mutations())
            .sum();
        mutations as f64 >= self.config.refresh_drift * (retained.max(DRIFT_FLOOR) as f64)
    }

    /// Runs a merged refresh now: union the shard sketches at the maximum
    /// shard level, run the two-tier solve of the merged sample, and keep
    /// the denser of the fresh pair and the incumbent witness measured on
    /// the full graph. The merged engine is **fresh every time** (cold
    /// solver context): the sample is small, so warmth buys little, and
    /// history-independence is what makes a restored engine resume
    /// bit-identically.
    fn refresh_merged(&mut self) -> (Option<SolveStats>, u32) {
        let timer = self.metrics.merge_latency.timer();
        let mut span = span!(self.tracer, "shard.merge");
        self.metrics.refreshes.inc();
        let incumbent_dead = self.witness.is_none() || self.witness_density().is_zero();
        let parts: Vec<&SketchEngine> = self.shards.iter().map(|s| &s.sketch).collect();
        let mut merged = SketchEngine::merged(self.config.sketch, &parts);
        if let Some(registry) = &self.obs {
            merged.attach_obs(registry);
        }
        if std::mem::take(&mut self.escalate_next) {
            merged.arm_escalation();
            self.metrics.cold_escalations.inc();
        }
        let stats = merged.force_refresh();
        if let Some(stats) = stats {
            self.metrics.escalations.inc();
            self.solve_totals.merge(stats);
        }
        // The merged engine's cold-start detector always sees a dead
        // incumbent (it is freshly built); only honour it when the
        // *sharded* engine's incumbent is dead too.
        self.escalate_next = merged.escalation_armed() && incumbent_dead;
        self.merged_level = merged.level();
        let fresh = merged.witness_pair().cloned().filter(|p| !p.is_empty());
        let pair = match (fresh, self.witness.take()) {
            (Some(a), Some(b)) => Some(denser_pair(self.n, self.edges(), a, b)),
            (a, b) => a.or(b),
        };
        self.adopt_witness(pair);
        for shard in &mut self.shards {
            shard.sketch.set_sample_mutations(0);
        }
        if let Some(g) = &self.metrics.merged_level {
            g.set(u64::from(self.merged_level));
        }
        span.record("level", u64::from(self.merged_level));
        span.record_flag("escalated", stats.is_some());
        span.close();
        timer.stop();
        (stats, self.merged_level)
    }

    /// Forces a merged refresh regardless of the drift policy and returns
    /// the refreshed bracket.
    pub fn force_refresh(&mut self) -> CertifiedBounds {
        self.refresh_merged();
        self.bounds()
    }

    /// Adopts `pair` (or clears), rebuilding the bitmaps and recounting
    /// its live edges across every shard.
    fn adopt_witness(&mut self, pair: Option<Pair>) {
        self.in_s = vec![false; self.n];
        self.in_t = vec![false; self.n];
        self.witness_edges = 0;
        if let Some(pair) = &pair {
            for &u in pair.s() {
                self.in_s[u as usize] = true;
            }
            for &v in pair.t() {
                self.in_t[v as usize] = true;
            }
            let (in_s, in_t) = (&self.in_s, &self.in_t);
            self.witness_edges = self
                .shards
                .iter()
                .flat_map(|s| s.edges.iter())
                .filter(|&&(u, v)| in_s[u as usize] && in_t[v as usize])
                .count() as u64;
        }
        self.witness = pair;
    }

    /// Exact density of the incumbent witness on the full graph
    /// ([`Density::ZERO`] before the first refresh).
    #[must_use]
    pub fn witness_density(&self) -> Density {
        match &self.witness {
            Some(pair) if !pair.is_empty() => Density::new(
                self.witness_edges,
                pair.s().len() as u64,
                pair.t().len() as u64,
            ),
            _ => Density::ZERO,
        }
    }

    /// The structural upper bound from the **summed** shard counters:
    /// `min(√m, √(d⁺_max · d⁻_max))`, safety-inflated. Degrees sum across
    /// shards (disjoint partition), so this is the exact full-graph bound.
    #[must_use]
    pub fn structural_upper(&self) -> f64 {
        let m = self.m();
        if m == 0 {
            return 0.0;
        }
        let mut out = MaxTracker::default();
        let mut inc = MaxTracker::default();
        for shard in &self.shards {
            let (o, i) = shard.sketch.degree_trackers();
            out.merge(o);
            inc.merge(i);
        }
        let sqrt_m = (m as f64).sqrt();
        let degree = ((out.max() as f64) * (inc.max() as f64)).sqrt();
        sqrt_m.min(degree) * (1.0 + SAFETY)
    }

    /// The current certified bracket `lower ≤ ρ_opt ≤ upper`.
    #[must_use]
    pub fn bounds(&self) -> CertifiedBounds {
        CertifiedBounds {
            lower: self.witness_density(),
            upper: self.structural_upper(),
        }
    }

    /// The incumbent witness pair, if a refresh has produced one.
    #[must_use]
    pub fn witness(&self) -> Option<&Pair> {
        self.witness.as_ref()
    }

    /// Live edge count, summed over shards.
    #[must_use]
    pub fn m(&self) -> u64 {
        self.shards.iter().map(|s| s.edges.len() as u64).sum()
    }

    /// Vertex count (one past the largest id seen).
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Retained (sampled) edges, summed over shards.
    #[must_use]
    pub fn retained(&self) -> usize {
        self.shards.iter().map(|s| s.sketch.retained()).sum()
    }

    /// Number of batches applied so far.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.metrics.epochs.get()
    }

    /// Number of merged refreshes so far.
    #[must_use]
    pub fn refreshes(&self) -> u64 {
        self.metrics.refreshes.get()
    }

    /// Number of shards `K`.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    /// Iterates the full live edge set (arbitrary order, shard by shard).
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.shards.iter().flat_map(|s| s.edges.iter().copied())
    }

    /// The per-shard sketches, in shard order — what a merged refresh
    /// unions, exposed so differential oracles can compare the union
    /// against a single engine over the whole stream.
    pub fn shard_sketches(&self) -> Vec<&SketchEngine> {
        self.shards.iter().map(|s| &s.sketch).collect()
    }

    /// Freezes the full graph into the CSR form the static solvers use.
    #[must_use]
    pub fn materialize(&self) -> DiGraph {
        let mut b = GraphBuilder::with_min_vertices(self.n);
        for (u, v) in self.edges() {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Lifetime counters in one struct.
    #[must_use]
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            retained: self.retained(),
            levels: self.shards.iter().map(|s| s.sketch.level()).collect(),
            merged_level: self.merged_level,
            refreshes: self.metrics.refreshes.get(),
            escalations: self.metrics.escalations.get(),
            cold_escalations: self.metrics.cold_escalations.get(),
            apply: self.apply_wall,
            certify: self.certify_wall,
            solve: self.solve_totals,
        }
    }

    /// Serializes the engine to the versioned snapshot format
    /// ([`dds_stream::snapshot`], kind [`SnapshotKind::Shard`]): identity
    /// (shard count, admission seed, state bound — a restore must be
    /// asked for the same partitioning), the global edge set in canonical
    /// order, per-shard subsampling levels and drift counters, the
    /// incumbent witness, and the armed-escalation bit. The lifetime
    /// metric counters (epochs, refreshes, escalations, ingest tallies)
    /// ride along so a restored engine's `dds_shard_*_total` series
    /// continue instead of restarting at zero. Retained samples, degree
    /// counters, and witness edge counts are recomputed on restore (pure
    /// functions of the above). `cursor` is the source-stream byte offset
    /// a follow loop should resume from.
    #[must_use]
    pub fn snapshot(&self, cursor: u64) -> Vec<u8> {
        self.encode_snapshot(cursor, true)
    }

    /// The snapshot **meta** payload: [`ShardedEngine::snapshot`] with an
    /// empty edge list — everything a restore needs besides the edge set.
    /// This is what rides inside a `DDSD` delta frame, whose edge diffs
    /// reconstruct the set the meta omits.
    #[must_use]
    pub fn snapshot_meta(&self, cursor: u64) -> Vec<u8> {
        self.encode_snapshot(cursor, false)
    }

    fn encode_snapshot(&self, cursor: u64, with_edges: bool) -> Vec<u8> {
        let mut w = SnapshotWriter::new(SnapshotKind::Shard, cursor);
        w.put_u32(self.config.shards as u32);
        w.put_u64(self.config.sketch.seed);
        w.put_u64(self.config.sketch.state_bound as u64);
        w.put_u64(self.n as u64);
        w.put_u64(self.metrics.epochs.get());
        w.put_u64(self.metrics.refreshes.get());
        w.put_u64(self.metrics.escalations.get());
        w.put_u64(self.metrics.cold_escalations.get());
        w.put_u64(self.metrics.inserts.get());
        w.put_u64(self.metrics.deletes.get());
        w.put_u64(self.metrics.ignored.get());
        w.put_u32(self.merged_level);
        w.put_u8(u8::from(self.escalate_next));
        for shard in &self.shards {
            w.put_u32(shard.sketch.level());
            w.put_u64(shard.sketch.sample_mutations());
        }
        let mut edges: Vec<(VertexId, VertexId)> = if with_edges {
            self.edges().collect()
        } else {
            Vec::new()
        };
        w.put_edges(&mut edges);
        w.put_pair(self.witness.as_ref());
        w.finish()
    }

    /// Reconstructs an engine from snapshot bytes under `config`. The
    /// snapshot's identity fields (shard count, seed, state bound) must
    /// match `config` — partitioning and admission are determined by
    /// them, so a mismatch would silently scramble every invariant.
    /// Returns the engine and the stored stream cursor.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Format`] on malformed bytes or an
    /// identity mismatch.
    pub fn restore(config: ShardConfig, bytes: &[u8]) -> Result<(Self, u64), SnapshotError> {
        let (parts, cursor) = Self::decode_parts(bytes)?;
        parts.check_identity(config)?;
        Ok((Self::from_parts(config, parts)?, cursor))
    }

    /// Reconstructs an engine from a **delta checkpoint chain**: the base
    /// snapshot plus consecutive `DDSD` frames ([`dds_stream::delta`]).
    /// The edge diffs replay over the base edge set; the last adopted
    /// frame's embedded meta supplies everything else, so the result is
    /// bit-identical to restoring a full snapshot taken at that epoch.
    /// Returns the engine and the final checkpoint's stream cursor.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Format`] on malformed bytes, an identity
    /// mismatch, or a broken chain (diff or epoch linkage).
    pub fn restore_chain(
        config: ShardConfig,
        base: &[u8],
        frames: &[DeltaFrame],
    ) -> Result<(Self, u64), SnapshotError> {
        let (base_parts, base_cursor) = Self::decode_parts(base)?;
        base_parts.check_identity(config)?;
        let (edges, adopted, _) = replay_chain_edges(
            base_parts.epoch,
            base_cursor,
            base_parts.edges.clone(),
            frames,
        )?;
        if adopted == 0 {
            return Ok((Self::from_parts(config, base_parts)?, base_cursor));
        }
        let (mut parts, cursor) = Self::decode_parts(&frames[adopted - 1].meta)?;
        parts.check_identity(config)?;
        if !parts.edges.is_empty() {
            return Err(SnapshotError::Format(
                "delta frame meta must carry an empty edge list".to_string(),
            ));
        }
        parts.edges = edges;
        Ok((Self::from_parts(config, parts)?, cursor))
    }

    /// Loads a delta checkpoint chain from disk ([`DeltaChain`]) and
    /// [`ShardedEngine::restore_chain`]s from it.
    ///
    /// # Errors
    /// Propagates read and format errors.
    pub fn restore_chain_from(
        config: ShardConfig,
        chain: &DeltaChain,
    ) -> Result<(Self, u64), SnapshotError> {
        let (base, frames) = chain.load(SnapshotKind::Shard)?;
        ShardedEngine::restore_chain(config, &base, &frames)
    }

    /// Decodes a snapshot payload into its parts without building an
    /// engine (no identity check — callers run
    /// [`ShardSnapshotParts::check_identity`] against their config).
    fn decode_parts(bytes: &[u8]) -> Result<(ShardSnapshotParts, u64), SnapshotError> {
        let (mut r, cursor) = SnapshotReader::open(bytes, SnapshotKind::Shard)?;
        let shards = r.take_u32()? as usize;
        let seed = r.take_u64()?;
        let state_bound = r.take_u64()? as usize;
        let n = r.take_u64()? as usize;
        let epoch = r.take_u64()?;
        let refreshes = r.take_u64()?;
        let escalations = r.take_u64()?;
        let cold_escalations = r.take_u64()?;
        let inserts = r.take_u64()?;
        let deletes = r.take_u64()?;
        let ignored = r.take_u64()?;
        let merged_level = r.take_u32()?;
        let escalate_next = match r.take_u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(SnapshotError::Format(format!(
                    "bad escalation byte {other}"
                )))
            }
        };
        let mut levels = Vec::with_capacity(shards);
        for _ in 0..shards {
            let level = r.take_u32()?;
            let mutations = r.take_u64()?;
            levels.push((level, mutations));
        }
        let edges = r.take_edges()?;
        let witness = r.take_pair()?;
        r.finish()?;
        Ok((
            ShardSnapshotParts {
                shards,
                seed,
                state_bound,
                n,
                epoch,
                refreshes,
                escalations,
                cold_escalations,
                inserts,
                deletes,
                ignored,
                merged_level,
                escalate_next,
                levels,
                edges,
                witness,
            },
            cursor,
        ))
    }

    /// Builds an engine from decoded (and identity-checked) parts.
    fn from_parts(config: ShardConfig, parts: ShardSnapshotParts) -> Result<Self, SnapshotError> {
        let ShardSnapshotParts {
            shards,
            n,
            epoch,
            refreshes,
            escalations,
            cold_escalations,
            inserts,
            deletes,
            ignored,
            merged_level,
            escalate_next,
            levels,
            edges,
            witness,
            ..
        } = parts;
        // Untrusted ids must be range-checked against the stored vertex
        // count before anything sizes a bitmap to it — a flipped byte
        // must be a Format error, not an index panic.
        if let Some(&(u, v)) = edges.iter().find(|&&(u, v)| u.max(v) as usize >= n) {
            return Err(SnapshotError::Format(format!(
                "edge {u} -> {v} is beyond the stored vertex count {n}"
            )));
        }
        if let Some(pair) = &witness {
            if let Some(&id) = pair
                .s()
                .iter()
                .chain(pair.t())
                .find(|&&id| id as usize >= n)
            {
                return Err(SnapshotError::Format(format!(
                    "witness vertex {id} is beyond the stored vertex count {n}"
                )));
            }
        }
        let mut engine = ShardedEngine::new(config);
        // Re-partition with the router, then rebuild every shard's state
        // deterministically from its partition at the stored level.
        let mut parts: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); shards];
        for &(u, v) in &edges {
            if u == v {
                return Err(SnapshotError::Format(format!("self-loop {u} -> {u}")));
            }
            parts[engine.shard_of(u, v)].push((u, v));
        }
        for (shard, (part, &(level, mutations))) in engine
            .shards
            .iter_mut()
            .zip(parts.into_iter().zip(levels.iter()))
        {
            let before = part.len();
            shard.edges = part.iter().copied().collect();
            if shard.edges.len() != before {
                return Err(SnapshotError::Format(
                    "duplicate edge in snapshot".to_string(),
                ));
            }
            shard.n = part
                .iter()
                .map(|&(u, v)| (u.max(v) as usize) + 1)
                .max()
                .unwrap_or(0);
            shard.sketch = SketchEngine::restore_at(config.sketch, level, part);
            shard.sketch.set_sample_mutations(mutations);
        }
        engine.n = n;
        engine.metrics.epochs.store(epoch);
        engine.metrics.refreshes.store(refreshes);
        engine.metrics.escalations.store(escalations);
        engine.metrics.cold_escalations.store(cold_escalations);
        engine.metrics.inserts.store(inserts);
        engine.metrics.deletes.store(deletes);
        engine.metrics.ignored.store(ignored);
        engine.merged_level = merged_level;
        engine.escalate_next = escalate_next;
        engine.adopt_witness(witness);
        Ok(engine)
    }

    /// Writes [`ShardedEngine::snapshot`] to `path` atomically.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Io`] on write failure.
    pub fn save_snapshot(
        &self,
        path: impl AsRef<std::path::Path>,
        cursor: u64,
    ) -> Result<(), SnapshotError> {
        write_snapshot_file(&self.snapshot(cursor), path)
    }

    /// Reads a snapshot file and [`ShardedEngine::restore`]s from it.
    ///
    /// # Errors
    /// Propagates read and format errors.
    pub fn restore_from(
        config: ShardConfig,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(Self, u64), SnapshotError> {
        let bytes = read_snapshot_file(path)?;
        ShardedEngine::restore(config, &bytes)
    }
}

/// Replays `events` through `engine` in `batch`-sized slices, returning
/// one report per epoch (the sharded analog of [`dds_stream::replay`]).
///
/// # Panics
/// Panics if `batch` is zero.
pub fn replay_sharded(
    engine: &mut ShardedEngine,
    events: &[TimedEvent],
    batch: usize,
) -> Vec<ShardReport> {
    assert!(batch > 0, "batch size must be positive");
    events
        .chunks(batch)
        .map(|chunk| engine.apply(&Batch::from_events(chunk.to_vec())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_core::DcExact;
    use dds_graph::gen;
    use dds_stream::DynamicGraph;

    fn config(shards: usize) -> ShardConfig {
        ShardConfig {
            shards,
            threads: shards,
            sketch: SketchConfig {
                state_bound: 64,
                ..SketchConfig::default()
            },
            ..ShardConfig::default()
        }
    }

    fn insert_all(engine: &mut ShardedEngine, edges: &[(u32, u32)]) -> ShardReport {
        let mut batch = Batch::new();
        for &(u, v) in edges {
            batch.insert(u, v);
        }
        engine.apply(&batch)
    }

    #[test]
    fn routing_is_deterministic_and_covers_every_shard() {
        let engine = ShardedEngine::new(config(4));
        let mut hit = [false; 4];
        for u in 0..40u32 {
            for v in 40..80u32 {
                let s = engine.shard_of(u, v);
                assert_eq!(s, engine.shard_of(u, v), "routing must be stable");
                hit[s] = true;
            }
        }
        assert!(hit.iter().all(|&h| h), "1600 edges must touch all 4 shards");
    }

    #[test]
    fn apply_matches_a_dynamic_graph_mirror_through_dirty_events() {
        let mut engine = ShardedEngine::new(config(3));
        let mut mirror = DynamicGraph::new();
        let mut batch = Batch::new();
        // Dirty stream: dups, self-loops, absent deletes.
        for (u, v) in [(0, 1), (0, 1), (2, 2), (1, 2), (0, 1)] {
            batch.insert(u, v);
        }
        batch.delete(9, 9).delete(0, 1).delete(0, 1);
        for ev in &batch.events {
            match ev.event {
                Event::Insert(u, v) => {
                    mirror.insert(u, v);
                }
                Event::Delete(u, v) => {
                    mirror.delete(u, v);
                }
            }
        }
        let report = engine.apply(&batch);
        assert_eq!(report.m as usize, mirror.m());
        assert_eq!(report.n, mirror.n());
        assert_eq!(report.inserts, 2);
        assert_eq!(report.deletes, 1);
        assert_eq!(report.ignored, 5);
        let mut ours: Vec<_> = engine.edges().collect();
        let mut theirs: Vec<_> = mirror.edges().collect();
        ours.sort_unstable();
        theirs.sort_unstable();
        assert_eq!(ours, theirs);
    }

    #[test]
    fn brackets_contain_the_exact_optimum_under_churn() {
        let g = gen::planted(40, 120, 5, 5, 1.0, 7).graph;
        let all: Vec<(u32, u32)> = g.edges().collect();
        let mut engine = ShardedEngine::new(config(4));
        for chunk in all.chunks(25) {
            let report = insert_all(&mut engine, chunk);
            assert!(report.lower <= report.upper * (1.0 + 1e-9));
            let exact = DcExact::new().solve(&engine.materialize()).solution.density;
            assert!(report.density <= exact, "lower bound must hold");
            assert!(
                exact.to_f64() <= report.upper * (1.0 + 1e-9),
                "upper bound must hold: exact {exact} vs upper {}",
                report.upper
            );
        }
        // Tear a third of the edges back out.
        let mut batch = Batch::new();
        for &(u, v) in all.iter().step_by(3) {
            batch.delete(u, v);
        }
        let report = engine.apply(&batch);
        let exact = DcExact::new().solve(&engine.materialize()).solution.density;
        assert!(report.density <= exact);
        assert!(exact.to_f64() <= report.upper * (1.0 + 1e-9));
        assert!(engine.refreshes() >= 1);
    }

    #[test]
    fn one_shard_is_the_serial_baseline_with_identical_semantics() {
        let g = gen::gnm(30, 150, 9);
        let all: Vec<(u32, u32)> = g.edges().collect();
        let mut one = ShardedEngine::new(config(1));
        let report = insert_all(&mut one, &all);
        assert_eq!(report.m, 150);
        assert!(report.refreshed);
        assert!(report.lower > 0.0);
        let exact = DcExact::new().solve(&one.materialize()).solution.density;
        assert!(report.density <= exact);
        assert!(exact.to_f64() <= report.upper * (1.0 + 1e-9));
    }

    #[test]
    fn per_shard_state_bounds_hold() {
        let mut engine = ShardedEngine::new(ShardConfig {
            shards: 4,
            threads: 2,
            sketch: SketchConfig {
                state_bound: 16,
                ..SketchConfig::default()
            },
            ..ShardConfig::default()
        });
        let edges: Vec<(u32, u32)> = (0..600u32).map(|i| (i % 57, 57 + (i * 5) % 97)).collect();
        for chunk in edges.chunks(50) {
            insert_all(&mut engine, chunk);
            assert!(
                engine.shards.iter().all(|s| s.sketch.retained() <= 16),
                "a shard broke its state bound"
            );
        }
        assert!(engine.stats().levels.iter().any(|&l| l > 0));
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let g = gen::planted(40, 120, 5, 5, 1.0, 3).graph;
        let all: Vec<(u32, u32)> = g.edges().collect();
        let cfg = config(3);
        let mut engine = ShardedEngine::new(cfg);
        for chunk in all.chunks(30) {
            insert_all(&mut engine, chunk);
        }
        let bytes = engine.snapshot(1234);
        let (restored, cursor) = ShardedEngine::restore(cfg, &bytes).unwrap();
        assert_eq!(cursor, 1234);
        assert_eq!(restored.snapshot(1234), bytes, "round-trip identity");
        assert_eq!(restored.m(), engine.m());
        assert_eq!(restored.n(), engine.n());
        assert_eq!(restored.epoch(), engine.epoch());
        assert_eq!(restored.witness(), engine.witness());
        assert_eq!(restored.witness_edges, engine.witness_edges);
        let (a, b) = (engine.bounds(), restored.bounds());
        assert_eq!(a.lower, b.lower);
        assert_eq!(a.upper.to_bits(), b.upper.to_bits());
        assert_eq!(restored.stats().levels, engine.stats().levels);
    }

    #[test]
    fn restore_resumes_bit_identically_mid_replay() {
        let g = gen::planted(50, 200, 6, 6, 1.0, 21).graph;
        let all: Vec<(u32, u32)> = g.edges().collect();
        let cfg = config(4);
        let mut original = ShardedEngine::new(cfg);
        for chunk in all[..100].chunks(20) {
            insert_all(&mut original, chunk);
        }
        let bytes = original.snapshot(0);
        let (mut restored, _) = ShardedEngine::restore(cfg, &bytes).unwrap();
        // Replay the same remaining batches (with some churn) on both; the
        // trajectories must be indistinguishable, report by report.
        for round in 0..6 {
            let mut batch = Batch::new();
            for &(u, v) in all[100..].iter().skip(round).step_by(5).take(8) {
                batch.insert(u, v);
            }
            for &(u, v) in all[..100].iter().skip(round * 7).step_by(11).take(3) {
                batch.delete(u, v);
            }
            let a = original.apply(&batch);
            let b = restored.apply(&batch);
            assert_eq!(a.m, b.m, "round {round}");
            assert_eq!(a.refreshed, b.refreshed, "round {round}");
            assert_eq!(a.density, b.density, "round {round}");
            assert_eq!(a.lower.to_bits(), b.lower.to_bits(), "round {round}");
            assert_eq!(a.upper.to_bits(), b.upper.to_bits(), "round {round}");
        }
        assert_eq!(
            original.snapshot(0),
            restored.snapshot(0),
            "final states must be bit-identical"
        );
    }

    #[test]
    fn restore_rejects_out_of_range_witness_and_edge_ids() {
        use dds_stream::snapshot::{SnapshotKind, SnapshotWriter};
        let cfg = config(2);
        // Write header + identity by hand, then corrupt payload variants.
        let build = |witness_id: VertexId, edge_v: VertexId| {
            let mut w = SnapshotWriter::new(SnapshotKind::Shard, 0);
            w.put_u32(2); // shards
            w.put_u64(cfg.sketch.seed);
            w.put_u64(cfg.sketch.state_bound as u64);
            w.put_u64(2); // n
            w.put_u64(1); // epoch
            w.put_u64(0); // refreshes
            w.put_u64(0); // escalations
            w.put_u64(0); // cold escalations
            w.put_u64(1); // inserts
            w.put_u64(0); // deletes
            w.put_u64(0); // ignored
            w.put_u32(0); // merged level
            w.put_u8(0); // escalate_next
            for _ in 0..2 {
                w.put_u32(0); // level
                w.put_u64(0); // mutations
            }
            w.put_edges(&mut [(0, edge_v)]);
            w.put_pair(Some(&Pair::new(vec![0], vec![witness_id])));
            w.finish()
        };
        // Witness id beyond n: Format error, not an index panic.
        let err = ShardedEngine::restore(cfg, &build(9, 1))
            .expect_err("out-of-range witness must be rejected");
        assert!(err.to_string().contains("witness vertex 9"), "{err}");
        // Edge endpoint beyond n: same.
        let err = ShardedEngine::restore(cfg, &build(1, 7))
            .expect_err("out-of-range edge must be rejected");
        assert!(
            err.to_string().contains("beyond the stored vertex count"),
            "{err}"
        );
        // The clean variant restores fine.
        assert!(ShardedEngine::restore(cfg, &build(1, 1)).is_ok());
    }

    #[test]
    fn restore_rejects_identity_mismatches() {
        let engine = ShardedEngine::new(config(3));
        let bytes = engine.snapshot(0);
        let err = ShardedEngine::restore(config(4), &bytes).unwrap_err();
        assert!(
            err.to_string()
                .contains("shard count (checkpoint 3, requested 4)"),
            "{err}"
        );
        assert!(err.to_string().contains("re-hash"), "{err}");
        let mut other = config(3);
        other.sketch.seed = 99;
        let err = ShardedEngine::restore(other, &bytes).unwrap_err();
        assert!(err.to_string().contains("admission seed"), "{err}");
        let mut other = config(3);
        other.sketch.state_bound = 128;
        let err = ShardedEngine::restore(other, &bytes).unwrap_err();
        assert!(err.to_string().contains("state bound"), "{err}");
        assert!(ShardedEngine::restore(config(3), b"junk").is_err());
    }

    /// The delta-chain restore must land bit-identically on the state a
    /// full snapshot at the same epoch would produce — the property that
    /// lets `dds-cluster` workers checkpoint diffs instead of blobs.
    #[test]
    fn restore_chain_matches_restore_full() {
        use dds_stream::delta::DeltaTracker;
        let g = gen::planted(40, 160, 5, 5, 1.0, 17).graph;
        let all: Vec<(u32, u32)> = g.edges().collect();
        let cfg = config(3);
        let mut engine = ShardedEngine::new(cfg);
        let base = std::env::temp_dir().join(format!(
            "dds_shard_chain_{}_{:?}.snap",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut tracker = DeltaTracker::new(&base, SnapshotKind::Shard, 4);
        let mut cursor = 0u64;
        for chunk in all.chunks(20) {
            insert_all(&mut engine, chunk);
            cursor += 100;
            let edges: Vec<_> = engine.edges().collect();
            tracker
                .save(
                    engine.epoch(),
                    cursor,
                    edges,
                    || engine.snapshot(cursor),
                    || engine.snapshot_meta(cursor),
                )
                .unwrap();
        }
        assert!(tracker.chain().delta_count() > 0, "chain must have deltas");
        let (restored, got_cursor) =
            ShardedEngine::restore_chain_from(cfg, tracker.chain()).unwrap();
        assert_eq!(got_cursor, cursor);
        assert_eq!(
            restored.snapshot(cursor),
            engine.snapshot(cursor),
            "chain restore must be bit-identical to the live engine"
        );
        // And identical to restoring a freshly taken full snapshot.
        let (full, _) = ShardedEngine::restore(cfg, &engine.snapshot(cursor)).unwrap();
        assert_eq!(full.snapshot(cursor), restored.snapshot(cursor));
        for i in 1..=tracker.chain().delta_count() {
            std::fs::remove_file(tracker.chain().delta_path(i)).ok();
        }
        std::fs::remove_file(&base).ok();
    }

    #[test]
    fn route_edge_matches_shard_of() {
        let engine = ShardedEngine::new(config(4));
        for u in 0..30u32 {
            for v in 30..60u32 {
                assert_eq!(
                    route_edge(engine.config.sketch.seed, u, v, 4),
                    engine.shard_of(u, v)
                );
            }
        }
    }

    #[test]
    fn replay_sharded_chunks_like_the_stream_replay() {
        let events: Vec<TimedEvent> = (0..30u32)
            .map(|i| TimedEvent {
                time: u64::from(i),
                event: Event::Insert(i % 6, 6 + (i + 1) % 6),
            })
            .collect();
        let mut engine = ShardedEngine::new(config(2));
        let reports = replay_sharded(&mut engine, &events, 7);
        assert_eq!(reports.len(), 5);
        assert_eq!(reports.last().unwrap().epoch, 5);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedEngine::new(ShardConfig {
            shards: 0,
            ..ShardConfig::default()
        });
    }
}
