//! `dds` — command-line interface for directed densest subgraph discovery.
//!
//! ```text
//! dds stats   <edge-list>
//! dds exact   <edge-list> [--baseline] [--no-core] [--no-gamma] [--no-warm] [--no-dc] [--verbose]
//! dds approx  <edge-list> [--algo core|grid|exhaustive] [--epsilon ε] [--threads N]
//! dds core    <edge-list> (--xy X,Y | --max-product | --skyline)
//! dds peel    <edge-list> --ratio A/B
//! dds gen     (gnm|powerlaw|planted) --n N --m M [--seed S] [--alpha α]
//!             [--plant S,T,P] --out <file>
//! ```
//!
//! Edge lists are whitespace-separated `u v` lines with `#`/`%` comments
//! (SNAP/KONECT style). All logic lives in [`cli`]; `main` only wires up
//! stdio so the whole surface is unit-testable.

mod cli;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match cli::run(&args, &mut out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dds: {e}");
            eprintln!("run `dds help` for usage");
            ExitCode::FAILURE
        }
    }
}
