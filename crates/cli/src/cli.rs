//! Command implementations and argument parsing for the `dds` binary.

use std::fmt;
use std::io::Write;

use dds_core::{
    core_approx, parallel, top_k_dense_pairs, DcExact, DdsSolution, ExactOptions, ExhaustivePeel,
    FlowExact, GridPeel, SolveStats, TopKSolver,
};
use dds_graph::io::{load_edge_list, save_edge_list, ParseOptions};
use dds_graph::{gen, DiGraph, GraphStats};
use dds_obs::{AdminServer, LagGauges, Registry, SlowRing, StatusBoard, TraceProfile, Tracer};
use dds_serve::{EpochFacts, PublishOptions, Publisher, ServeMetrics, Server, SnapshotCell};
use dds_shard::{ShardConfig, ShardedEngine};
use dds_sketch::{SketchConfig, SketchEngine, SketchStats};
use dds_stream::{
    batch_slices, follow_events, BatchBy, DynamicGraph, Event, FollowConfig, SketchTier,
    SolverKind, StreamConfig, StreamEngine, WindowConfig, WindowEngine, WindowMode,
};
use dds_xycore::{max_product_core, skyline, xy_core};

/// Errors surfaced to the user with exit code 1.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line (unknown command/flag, missing value…).
    Usage(String),
    /// Failure loading/saving a graph.
    Graph(dds_graph::GraphError),
    /// Failure loading/parsing an event stream.
    Stream(dds_stream::StreamError),
    /// Failure reading/writing an engine snapshot.
    Snapshot(dds_stream::SnapshotError),
    /// Cluster wire-protocol or digest-merge failure.
    Cluster(dds_cluster::WireError),
    /// Output stream failure.
    Io(std::io::Error),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Graph(e) => write!(f, "{e}"),
            CliError::Stream(e) => write!(f, "{e}"),
            CliError::Snapshot(e) => write!(f, "{e}"),
            CliError::Cluster(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl From<dds_stream::StreamError> for CliError {
    fn from(e: dds_stream::StreamError) -> Self {
        CliError::Stream(e)
    }
}

impl From<dds_stream::SnapshotError> for CliError {
    fn from(e: dds_stream::SnapshotError) -> Self {
        CliError::Snapshot(e)
    }
}

impl From<dds_graph::GraphError> for CliError {
    fn from(e: dds_graph::GraphError) -> Self {
        CliError::Graph(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<dds_cluster::WireError> for CliError {
    fn from(e: dds_cluster::WireError) -> Self {
        CliError::Cluster(e)
    }
}

const USAGE: &str = "usage:
  dds stats   <edge-list>
  dds exact   <edge-list> [--baseline] [--no-core] [--no-gamma] [--no-tie] [--no-warm] [--no-dc] [--threads N] [--verbose]
              [--metrics FILE] (write a Prometheus-style exposition of the dds_exact_* solve counters at exit)
  dds approx  <edge-list> [--algo core|grid|exhaustive] [--epsilon E] [--threads N]
  dds core    <edge-list> (--xy X,Y | --max-product | --skyline)
  dds peel    <edge-list> --ratio A/B
  dds topk    <edge-list> --k K [--algo exact|core|grid]
  dds dot     <edge-list> [--highlight]
  dds gen     (gnm|powerlaw|planted) --n N --m M [--seed S] [--alpha A] [--plant S,T,P] --out <file>
  dds stream  <event-file> [--batch N | --time-window T] [--tolerance T] [--slack S] [--solver exact|approx] [--log-every K]
              [--threads N] [--window W [--no-escalate]] [--sketch [--sketch-min-m M] [--sketch-bound B]]
              [--follow [--poll-ms P] [--idle-ms T]] [--checkpoint FILE [--checkpoint-every E]] [--resume]
              [--metrics FILE [--metrics-every E]] [--trace FILE] [--admin ADDR] [--slow-us N]
              (--window: expire edges W ticks after arrival; --sketch: re-certify via exact-on-sketch past M live edges;
               --follow: tail the growing event file, sealing epochs every N events and checkpointing to FILE
               (composes with --window, except --checkpoint: the window engine has no snapshot);
               --metrics: keep a Prometheus-style exposition file fresh every E epochs, plus FILE.jsonl at exit;
               --trace: stream deterministic span JSONL — identical replays diff byte-for-byte;
               --admin: live HTTP introspection on ADDR (/metrics /healthz /readyz /status /slow);
               --slow-us: record epoch seals slower than N µs in the slow-op ring, drained at exit and by /slow)
  dds sketch  <event-file> [--batch N | --time-window T] [--bound B] [--drift F] [--threads N] [--seed S] [--log-every K]
              (standalone sublinear sketch replay: certified bracket + (1+eps) estimate per epoch)
  dds shard   <event-file> [--shards K] [--batch N] [--bound B] [--seed S] [--threads N] [--drift F] [--log-every K]
              [--follow [--poll-ms P] [--idle-ms T]] [--checkpoint FILE [--checkpoint-every E]] [--resume]
              [--metrics FILE [--metrics-every E]] [--trace FILE] [--admin ADDR] [--slow-us N]
              (edge-partitioned parallel ingestion over K shards with merged certification; --resume restarts
               from the checkpoint and replays nothing twice)
  dds serve   <event-file> --listen ADDR [--readers R] [--core X,Y] [--topk K] [--shards K] [--batch N]
              [--tolerance T] [--slack S] [--solver exact|approx] [--threads N] [--log-every K]
              [--poll-ms P] [--idle-ms T] [--checkpoint FILE [--checkpoint-every E]] [--resume]
              [--metrics FILE [--metrics-every E]] [--trace FILE] [--admin ADDR] [--slow-us N]
              (follow the event file AND answer DENSITY / MEMBER v / CORE x y v / TOPK k / STATS queries over
               TCP, one line each, from an immutable snapshot published once per sealed epoch — readers never
               block on ingestion; --shards K ingests through the sharded engine, --core/--topk enable
               the derived query types; --listen 127.0.0.1:0 picks a free port and prints it)
  dds cluster-shard <event-file> --connect ADDR --shard-id I/K [--batch N] [--bound B] [--seed S]
              [--poll-ms P] [--idle-ms T] [--checkpoint FILE [--compact-every E]] [--resume]
              (one cluster worker process: ingest the I-th edge partition of the shared event file and ship
               per-epoch digests to the coordinator at ADDR; --checkpoint maintains an incremental DDSD delta
               chain and --resume restores from it, re-admitting through the digest-cursor handshake)
  dds cluster-coordinator --listen ADDR --shards K [--batch N] [--bound B] [--seed S] [--drift F]
              [--straggler-ms T] [--log-every K] [--serve ADDR [--readers R]]
              [--metrics FILE [--metrics-every E]] [--trace FILE] [--admin ADDR] [--slow-us N]
              (merge K workers' digests into globally certified epochs; --straggler-ms forces sound but wider
               degraded seals when a shard lags past T ms; --serve publishes each sealed epoch to the query
               tier (DENSITY/MEMBER/STATS); --admin adds a per-shard shards[] array to /status;
               --listen 127.0.0.1:0 picks a free port and prints it)
  dds trace-report <trace-jsonl> [--folded FILE]
              (aggregate a --trace file into a per-span count/total/self-time table; --folded also writes
               flamegraph-ready folded stacks — weights are self-µs for timed traces, span counts otherwise)
  dds help
(--threads 0 or omitted on exact/stream/shard auto-detects the host parallelism; the resolved
 count is printed in each command's stats footer, marked \"(auto)\" when detected)";

/// Entry point shared by `main` and the tests.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help" | "--help" | "-h") => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        Some("stats") => cmd_stats(&mut it, out),
        Some("exact") => cmd_exact(&mut it, out),
        Some("approx") => cmd_approx(&mut it, out),
        Some("core") => cmd_core(&mut it, out),
        Some("peel") => cmd_peel(&mut it, out),
        Some("topk") => cmd_topk(&mut it, out),
        Some("dot") => cmd_dot(&mut it, out),
        Some("gen") => cmd_gen(&mut it, out),
        Some("stream") => cmd_stream(&mut it, out),
        Some("sketch") => cmd_sketch(&mut it, out),
        Some("shard") => cmd_shard(&mut it, out),
        Some("serve") => cmd_serve(&mut it, out),
        Some("cluster-shard") => cmd_cluster_shard(&mut it, out),
        Some("cluster-coordinator") => cmd_cluster_coordinator(&mut it, out),
        Some("trace-report") => cmd_trace_report(&mut it, out),
        Some(other) => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

fn load(path: Option<&str>) -> Result<DiGraph, CliError> {
    let path = path.ok_or_else(|| CliError::Usage("missing <edge-list> path".into()))?;
    Ok(load_edge_list(path, &ParseOptions::default())?)
}

fn parse_flag_value<T: std::str::FromStr>(flag: &str, value: Option<&str>) -> Result<T, CliError> {
    let v = value.ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))?;
    v.parse()
        .map_err(|_| CliError::Usage(format!("invalid value {v:?} for {flag}")))
}

/// Resolve a `--threads` flag for the commands that auto-detect: an
/// explicit positive count is taken as given; `0` or an omitted flag
/// picks the host parallelism ([`dds_core::auto_threads`]). The second
/// element is a footer suffix so auto-picked counts are visible in the
/// stats output.
fn resolve_threads(flag: Option<usize>) -> (usize, &'static str) {
    match flag {
        Some(t) if t > 0 => (t, ""),
        _ => (dds_core::auto_threads(), " (auto)"),
    }
}

fn write_solution(out: &mut dyn Write, sol: &DdsSolution) -> Result<(), CliError> {
    writeln!(out, "density     {}", sol.density)?;
    writeln!(
        out,
        "|S| = {}, |T| = {}",
        sol.pair.s().len(),
        sol.pair.t().len()
    )?;
    writeln!(out, "S = {:?}", sol.pair.s())?;
    writeln!(out, "T = {:?}", sol.pair.t())?;
    Ok(())
}

/// The one formatter for accumulated [`SolveStats`] — every command that
/// reports exact-solve instrumentation (`dds exact`, the stream/window
/// replay summaries, `dds sketch`, `dds shard`) goes through here, so the
/// counters and their order cannot drift between commands again.
fn write_solve_totals(out: &mut dyn Write, label: &str, s: &SolveStats) -> Result<(), CliError> {
    writeln!(
        out,
        "{label}: {} ratios, {} flow decisions, {} arena reuse hits, {} core cache hits",
        s.ratios_solved, s.flow_decisions, s.arena_reuse_hits, s.core_cache_hits,
    )?;
    Ok(())
}

/// The one formatter for the sketch-tier summary line shared by the
/// stream and window replays (`what` names their re-certification unit:
/// "re-solves" vs "refreshes").
fn write_sketch_tier(
    out: &mut dyn Write,
    sketched: impl fmt::Display,
    total: impl fmt::Display,
    what: &str,
    stats: &SketchStats,
) -> Result<(), CliError> {
    writeln!(
        out,
        "sketch tier: {sketched} of {total} {what} sketched; retained {} (peak {}), level {}, {} subsamples, {} refreshes",
        stats.retained, stats.peak_retained, stats.level, stats.subsamples, stats.refreshes,
    )?;
    Ok(())
}

/// Per-epoch mode label for an exact re-certification (`verb` is the
/// command's word for it: RESOLVE, EXACT, …).
fn solve_mode_label(verb: &str, s: Option<SolveStats>) -> String {
    match s {
        Some(s) => format!(
            "{verb} ({} ratios, {} flows, {} arena hits)",
            s.ratios_solved, s.flow_decisions, s.arena_reuse_hits
        ),
        None => verb.to_string(),
    }
}

/// Per-epoch mode label for a sketch-backed re-certification.
fn sketch_mode_label(
    verb: &str,
    retained: impl fmt::Display,
    level: impl fmt::Display,
    flows: impl fmt::Display,
) -> String {
    format!("{verb} (retained {retained}, level {level}, {flows} flows)")
}

/// Mode label for a stream-engine re-solve — sketch tier if it ran,
/// exact otherwise. Shared by the replay summary and the follow loop.
fn stream_mode_label(sketch: Option<&SketchStats>, solve: Option<SolveStats>) -> String {
    match sketch {
        Some(sk) => sketch_mode_label(
            "SKETCH RESOLVE",
            sk.retained,
            sk.level,
            solve.map_or(0, |s| s.flow_decisions),
        ),
        None => solve_mode_label("RESOLVE", solve),
    }
}

fn cmd_stats<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let g = load(it.next())?;
    let s = GraphStats::compute(&g);
    writeln!(out, "vertices        {}", s.n)?;
    writeln!(out, "edges           {}", s.m)?;
    writeln!(out, "max out-degree  {}", s.max_out_degree)?;
    writeln!(out, "max in-degree   {}", s.max_in_degree)?;
    writeln!(out, "avg degree      {:.4}", s.avg_degree)?;
    writeln!(out, "isolated        {}", s.isolated)?;
    writeln!(out, "reciprocity     {:.4}", s.reciprocity)?;
    Ok(())
}

fn cmd_exact<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let g = load(it.next())?;
    let mut opts = ExactOptions::default();
    let mut baseline = false;
    let mut verbose = false;
    let mut threads: Option<usize> = None;
    let mut metrics: Option<String> = None;
    while let Some(flag) = it.next() {
        match flag {
            "--baseline" => baseline = true,
            "--no-core" => opts.core_pruning = false,
            "--no-gamma" => opts.gamma_pruning = false,
            "--no-tie" => opts.tie_pruning = false,
            "--no-warm" => opts.warm_start = false,
            "--no-dc" => opts.divide_and_conquer = false,
            "--threads" => threads = Some(parse_flag_value("--threads", it.next())?),
            "--verbose" => verbose = true,
            "--metrics" => metrics = Some(parse_flag_value("--metrics", it.next())?),
            other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    if baseline && metrics.is_some() {
        return Err(CliError::Usage(
            "--metrics does not apply with --baseline (no dds_exact_* counters)".into(),
        ));
    }
    let (threads, threads_auto) = resolve_threads(threads);
    let registry = metrics.as_ref().map(|_| Registry::new());
    let report = if baseline {
        FlowExact.solve(&g)
    } else {
        let mut ctx = dds_core::SolveContext::new();
        if let Some(reg) = &registry {
            ctx.attach_obs(reg);
            dds_core::WorkerPool::global().attach_obs(reg);
        }
        if threads > 1 {
            parallel::dc_exact_parallel_with(&mut ctx, &g, opts, threads)
        } else {
            DcExact::with_options(opts).solve_with(&mut ctx, &g)
        }
    };
    write_solution(out, &report.solution)?;
    write_solve_totals(out, "solve totals", &report.stats())?;
    writeln!(out, "threads              {threads}{threads_auto}")?;
    writeln!(
        out,
        "pruned (structural)  {}",
        report.ratios_pruned_structural
    )?;
    writeln!(out, "pruned (gamma)       {}", report.ratios_pruned_gamma)?;
    writeln!(out, "pruned (exact tie)   {}", report.ratios_pruned_tie)?;
    if let Some(w) = report.warm_start_density {
        writeln!(out, "warm start density   {w:.6}")?;
    }
    if verbose {
        writeln!(
            out,
            "network nodes per decision: {:?}",
            report.network_nodes
        )?;
    }
    if let (Some(reg), Some(path)) = (&registry, &metrics) {
        reg.write_exposition_file(path)?;
        writeln!(out, "metrics exposition at {path}")?;
    }
    Ok(())
}

/// `dds trace-report`: aggregate a `--trace` JSONL file into a per-span
/// count/total/self-time table, optionally emitting flamegraph-ready
/// folded stacks. Works on both timed and deterministic traces (the
/// latter fall back to span counts as weights).
fn cmd_trace_report<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let path = it
        .next()
        .ok_or_else(|| CliError::Usage("missing <trace-jsonl> path".into()))?;
    let mut folded: Option<String> = None;
    while let Some(flag) = it.next() {
        match flag {
            "--folded" => folded = Some(parse_flag_value("--folded", it.next())?),
            other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    let text = std::fs::read_to_string(path)?;
    let profile = TraceProfile::from_jsonl(&text)
        .map_err(|e| CliError::Usage(format!("bad trace {path}: {e}")))?;
    write!(out, "{}", dds_obs::render_table(&profile))?;
    if let Some(folded_path) = &folded {
        std::fs::write(folded_path, dds_obs::render_folded(&profile))?;
        writeln!(out, "folded stacks at {folded_path}")?;
    }
    Ok(())
}

fn cmd_approx<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let g = load(it.next())?;
    let mut algo = "core".to_string();
    let mut epsilon = 0.1f64;
    let mut threads = 1usize;
    while let Some(flag) = it.next() {
        match flag {
            "--algo" => algo = parse_flag_value("--algo", it.next())?,
            "--epsilon" => epsilon = parse_flag_value("--epsilon", it.next())?,
            "--threads" => threads = parse_flag_value("--threads", it.next())?,
            other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    match algo.as_str() {
        "core" => {
            let r = if threads > 1 {
                parallel::core_approx_parallel(&g, threads)
            } else {
                core_approx(&g)
            };
            write_solution(out, &r.solution)?;
            writeln!(out, "core            [{}, {}]", r.x, r.y)?;
            writeln!(
                out,
                "certified range [{:.6}, {:.6}]",
                r.lower_bound, r.upper_bound
            )?;
            writeln!(out, "guarantee       2-approximation")?;
        }
        "grid" => {
            let r = if threads > 1 {
                parallel::grid_peel_parallel(&g, epsilon, threads)
            } else {
                GridPeel::new(epsilon).solve(&g)
            };
            write_solution(out, &r.solution)?;
            writeln!(out, "ratios tried    {}", r.ratios_tried)?;
            writeln!(out, "guarantee       2(1+ε)-approximation, ε = {epsilon}")?;
        }
        "exhaustive" => {
            let r = ExhaustivePeel.solve(&g);
            write_solution(out, &r.solution)?;
            writeln!(out, "ratios tried    {}", r.ratios_tried)?;
            writeln!(out, "guarantee       2-approximation")?;
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown --algo {other:?} (expected core|grid|exhaustive)"
            )))
        }
    }
    Ok(())
}

fn cmd_core<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let g = load(it.next())?;
    let mut xy: Option<(u64, u64)> = None;
    let mut max_product = false;
    let mut want_skyline = false;
    while let Some(flag) = it.next() {
        match flag {
            "--xy" => {
                let v: String = parse_flag_value("--xy", it.next())?;
                let (x, y) = v
                    .split_once(',')
                    .ok_or_else(|| CliError::Usage("--xy expects X,Y".into()))?;
                xy = Some((
                    x.parse()
                        .map_err(|_| CliError::Usage(format!("bad x {x:?}")))?,
                    y.parse()
                        .map_err(|_| CliError::Usage(format!("bad y {y:?}")))?,
                ));
            }
            "--max-product" => max_product = true,
            "--skyline" => want_skyline = true,
            other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    if let Some((x, y)) = xy {
        let core = xy_core(&g, x, y);
        writeln!(
            out,
            "[{x},{y}]-core: |S| = {}, |T| = {}",
            core.s_count(),
            core.t_count()
        )?;
        if !core.is_empty() {
            writeln!(out, "density {}", core.density(&g))?;
        }
    } else if max_product {
        match max_product_core(&g) {
            Some(best) => {
                writeln!(
                    out,
                    "max product core [{},{}], x·y = {}",
                    best.x,
                    best.y,
                    best.product()
                )?;
                writeln!(
                    out,
                    "|S| = {}, |T| = {}, density {}",
                    best.mask.s_count(),
                    best.mask.t_count(),
                    best.mask.density(&g)
                )?;
            }
            None => writeln!(out, "graph has no edges; no core exists")?,
        }
    } else if want_skyline {
        writeln!(out, "x\ty_max")?;
        for p in skyline(&g) {
            writeln!(out, "{}\t{}", p.x, p.y)?;
        }
    } else {
        return Err(CliError::Usage(
            "core needs one of --xy X,Y | --max-product | --skyline".into(),
        ));
    }
    Ok(())
}

fn cmd_peel<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let g = load(it.next())?;
    let mut ratio: Option<(u64, u64)> = None;
    while let Some(flag) = it.next() {
        match flag {
            "--ratio" => {
                let v: String = parse_flag_value("--ratio", it.next())?;
                let (a, b) = v
                    .split_once('/')
                    .ok_or_else(|| CliError::Usage("--ratio expects A/B".into()))?;
                ratio = Some((
                    a.parse()
                        .map_err(|_| CliError::Usage(format!("bad numerator {a:?}")))?,
                    b.parse()
                        .map_err(|_| CliError::Usage(format!("bad denominator {b:?}")))?,
                ));
            }
            other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    let (a, b) = ratio.ok_or_else(|| CliError::Usage("peel needs --ratio A/B".into()))?;
    if a == 0 || b == 0 {
        return Err(CliError::Usage("ratio components must be positive".into()));
    }
    let sol = dds_core::peel_at_rational_ratio(&g, a, b);
    write_solution(out, &sol)?;
    Ok(())
}

fn cmd_topk<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let g = load(it.next())?;
    let mut k = 3usize;
    let mut algo = "exact".to_string();
    while let Some(flag) = it.next() {
        match flag {
            "--k" => k = parse_flag_value("--k", it.next())?,
            "--algo" => algo = parse_flag_value("--algo", it.next())?,
            other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    let solver = match algo.as_str() {
        "exact" => TopKSolver::Exact,
        "core" => TopKSolver::CoreApprox,
        "grid" => TopKSolver::GridPeel(0.1),
        other => {
            return Err(CliError::Usage(format!(
                "unknown --algo {other:?} (expected exact|core|grid)"
            )))
        }
    };
    let found = top_k_dense_pairs(&g, k, solver);
    writeln!(out, "found {} vertex-disjoint dense pairs", found.len())?;
    for (i, sol) in found.iter().enumerate() {
        writeln!(
            out,
            "
#{} density {}",
            i + 1,
            sol.density
        )?;
        writeln!(out, "  S = {:?}", sol.pair.s())?;
        writeln!(out, "  T = {:?}", sol.pair.t())?;
    }
    Ok(())
}

fn cmd_dot<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let g = load(it.next())?;
    let mut highlight = false;
    for flag in it {
        match flag {
            "--highlight" => highlight = true,
            other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    let pair = if highlight {
        Some(DcExact::new().solve(&g).solution.pair)
    } else {
        None
    };
    write!(out, "{}", dds_graph::to_dot(&g, pair.as_ref()))?;
    Ok(())
}

fn cmd_gen<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let family = it
        .next()
        .ok_or_else(|| CliError::Usage("gen needs a family: gnm|powerlaw|planted".into()))?
        .to_string();
    let mut n: Option<usize> = None;
    let mut m: Option<usize> = None;
    let mut seed = 42u64;
    let mut alpha = 2.2f64;
    let mut plant: Option<(usize, usize, f64)> = None;
    let mut out_path: Option<String> = None;
    while let Some(flag) = it.next() {
        match flag {
            "--n" => n = Some(parse_flag_value("--n", it.next())?),
            "--m" => m = Some(parse_flag_value("--m", it.next())?),
            "--seed" => seed = parse_flag_value("--seed", it.next())?,
            "--alpha" => alpha = parse_flag_value("--alpha", it.next())?,
            "--plant" => {
                let v: String = parse_flag_value("--plant", it.next())?;
                let parts: Vec<&str> = v.split(',').collect();
                if parts.len() != 3 {
                    return Err(CliError::Usage("--plant expects S,T,P".into()));
                }
                plant = Some((
                    parts[0]
                        .parse()
                        .map_err(|_| CliError::Usage("bad plant S".into()))?,
                    parts[1]
                        .parse()
                        .map_err(|_| CliError::Usage("bad plant T".into()))?,
                    parts[2]
                        .parse()
                        .map_err(|_| CliError::Usage("bad plant P".into()))?,
                ));
            }
            "--out" => out_path = Some(parse_flag_value("--out", it.next())?),
            other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    let n = n.ok_or_else(|| CliError::Usage("gen needs --n".into()))?;
    let m = m.ok_or_else(|| CliError::Usage("gen needs --m".into()))?;
    let graph = match family.as_str() {
        "gnm" => gen::gnm(n, m, seed),
        "powerlaw" => gen::power_law(n, m, alpha, seed),
        "planted" => {
            let (s, t, p) = plant
                .ok_or_else(|| CliError::Usage("planted family needs --plant S,T,P".into()))?;
            let planted = gen::planted(n, m, s, t, p, seed);
            writeln!(out, "# planted S = {:?}", planted.pair.s())?;
            writeln!(out, "# planted T = {:?}", planted.pair.t())?;
            planted.graph
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown family {other:?} (expected gnm|powerlaw|planted)"
            )))
        }
    };
    let path = out_path.ok_or_else(|| CliError::Usage("gen needs --out <file>".into()))?;
    save_edge_list(&graph, &path)?;
    writeln!(
        out,
        "wrote {} vertices, {} edges to {path}",
        graph.n(),
        graph.m()
    )?;
    Ok(())
}

fn cmd_stream<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let path = it
        .next()
        .ok_or_else(|| CliError::Usage("missing <event-file> path".into()))?;
    let mut batch_by = BatchBy::Count(25);
    let mut tolerance = 0.25f64;
    let mut slack = 2.0f64;
    let mut solver: Option<SolverKind> = None;
    let mut log_every = 0usize;
    let mut window: Option<u64> = None;
    let mut escalate = true;
    let mut threads: Option<usize> = None;
    let mut sketch = false;
    let mut sketch_min_m = 50_000usize;
    let mut sketch_flags_used = false;
    let mut sketch_bound = SketchConfig::default().state_bound;
    let mut follow = false;
    let mut serving = ServingFlags::default();
    let mut obs = ObsFlags::default();
    while let Some(flag) = it.next() {
        if serving.parse(flag, it)? || obs.parse(flag, it)? {
            continue;
        }
        match flag {
            "--follow" => follow = true,
            "--threads" => threads = Some(parse_flag_value("--threads", it.next())?),
            "--sketch" => sketch = true,
            "--sketch-min-m" => {
                sketch_min_m = parse_flag_value("--sketch-min-m", it.next())?;
                sketch_flags_used = true;
            }
            "--sketch-bound" => {
                sketch_bound = parse_flag_value("--sketch-bound", it.next())?;
                sketch_flags_used = true;
                if sketch_bound == 0 {
                    return Err(CliError::Usage("--sketch-bound must be positive".into()));
                }
            }
            "--window" => {
                let w: u64 = parse_flag_value("--window", it.next())?;
                if w == 0 {
                    return Err(CliError::Usage("--window must be positive".into()));
                }
                window = Some(w);
            }
            "--no-escalate" => escalate = false,
            "--batch" => {
                let n: usize = parse_flag_value("--batch", it.next())?;
                if n == 0 {
                    return Err(CliError::Usage("--batch must be positive".into()));
                }
                batch_by = BatchBy::Count(n);
            }
            "--time-window" => {
                let w: u64 = parse_flag_value("--time-window", it.next())?;
                if w == 0 {
                    return Err(CliError::Usage("--time-window must be positive".into()));
                }
                batch_by = BatchBy::TimeWindow(w);
            }
            "--tolerance" => {
                tolerance = parse_flag_value("--tolerance", it.next())?;
                if tolerance.is_nan() || tolerance < 0.0 {
                    return Err(CliError::Usage("--tolerance must be ≥ 0".into()));
                }
            }
            "--slack" => {
                slack = parse_flag_value("--slack", it.next())?;
                if slack.is_nan() || slack < 0.0 {
                    return Err(CliError::Usage("--slack must be ≥ 0".into()));
                }
            }
            "--solver" => {
                let v: String = parse_flag_value("--solver", it.next())?;
                solver = Some(match v.as_str() {
                    "exact" => SolverKind::Exact,
                    "approx" => SolverKind::CoreApprox,
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown --solver {other:?} (expected exact|approx)"
                        )))
                    }
                });
            }
            "--log-every" => log_every = parse_flag_value("--log-every", it.next())?,
            other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
        }
    }

    if sketch_flags_used && !sketch {
        return Err(CliError::Usage(
            "--sketch-min-m/--sketch-bound require --sketch".into(),
        ));
    }
    let (threads, threads_auto) = resolve_threads(threads);
    serving.validate(follow)?;
    obs.validate()?;
    if serving.checkpoint.is_some() && !follow {
        return Err(CliError::Usage(
            "--checkpoint requires --follow for dds stream (replay mode loads the whole file; \
             there is no cursor to resume from)"
                .into(),
        ));
    }
    let tier = sketch.then_some(SketchTier {
        min_m: sketch_min_m,
        config: SketchConfig {
            state_bound: sketch_bound,
            threads,
            ..SketchConfig::default()
        },
    });
    if follow {
        // Only `--checkpoint` actually needs an engine snapshot; plain
        // `--follow --window` (tail the file, expire edges, no restart
        // story) is a perfectly serviceable combination.
        if window.is_some() && serving.checkpoint.is_some() {
            return Err(CliError::Usage(
                "--checkpoint does not support --window (the window engine has no snapshot)".into(),
            ));
        }
        let batch = match batch_by {
            BatchBy::Count(n) => n,
            BatchBy::TimeWindow(_) => {
                return Err(CliError::Usage(
                    "--follow seals epochs by event count; use --batch, not --time-window".into(),
                ))
            }
        };
        if let Some(w) = window {
            if solver.is_some() {
                return Err(CliError::Usage(
                    "--solver does not apply with --window (the window engine picks its own escalation; see --no-escalate)".into(),
                ));
            }
            let config = WindowConfig {
                tolerance,
                slack,
                exact_escalation: escalate,
                threads,
                sketch: tier,
                ..WindowConfig::new(w)
            };
            return stream_follow_window(
                out,
                path,
                config,
                batch,
                log_every,
                threads_auto,
                &serving,
                &obs,
            );
        }
        if !escalate {
            return Err(CliError::Usage("--no-escalate requires --window".into()));
        }
        let config = StreamConfig {
            tolerance,
            slack,
            solver: solver.unwrap_or(SolverKind::Exact),
            threads,
            sketch: tier,
        };
        return stream_follow(
            out,
            path,
            config,
            batch,
            log_every,
            threads_auto,
            &serving,
            &obs,
        );
    }
    let events = dds_stream::load_events(path)?;
    if let Some(w) = window {
        if solver.is_some() {
            return Err(CliError::Usage(
                "--solver does not apply with --window (the window engine picks its own escalation; see --no-escalate)".into(),
            ));
        }
        return stream_window(
            out,
            &events,
            WindowConfig {
                tolerance,
                slack,
                exact_escalation: escalate,
                threads,
                sketch: tier,
                ..WindowConfig::new(w)
            },
            batch_by,
            log_every,
            threads_auto,
            &obs,
        );
    }
    if !escalate {
        return Err(CliError::Usage("--no-escalate requires --window".into()));
    }
    let mut engine = StreamEngine::new(StreamConfig {
        tolerance,
        slack,
        solver: solver.unwrap_or(SolverKind::Exact),
        threads,
        sketch: tier,
    });
    let registry = obs.registry();
    if let Some(reg) = &registry {
        engine.attach_obs(reg);
        dds_core::WorkerPool::global().attach_obs(reg);
    }
    let tracer = obs.tracer()?;
    engine.attach_tracer(tracer.clone());
    let started = std::time::Instant::now();
    let reports = dds_stream::replay(&mut engine, &events, batch_by);
    let wall = started.elapsed();

    writeln!(
        out,
        "epoch      m    density      [lower, upper]      factor  mode"
    )?;
    let last_epoch = reports.last().map_or(0, |r| r.epoch);
    for r in &reports {
        let logged = r.resolved
            || (log_every > 0 && r.epoch % log_every as u64 == 0)
            || r.epoch == last_epoch;
        if logged {
            let mode = if r.resolved {
                stream_mode_label(r.sketch.as_ref(), r.solve_stats)
            } else {
                "incremental".into()
            };
            writeln!(
                out,
                "{:>5} {:>6}   {:>8.4}   [{:>8.4}, {:>8.4}]   {:>6.3}  {}",
                r.epoch,
                r.m,
                r.density.to_f64(),
                r.lower,
                r.upper,
                r.certified_factor,
                mode,
            )?;
        }
    }

    let epochs = reports.len();
    let resolves = reports.iter().filter(|r| r.resolved).count();
    let incremental = 100.0 * (epochs.saturating_sub(resolves)) as f64 / epochs.max(1) as f64;
    let max_factor = reports
        .iter()
        .map(|r| r.certified_factor)
        .fold(1.0f64, f64::max);
    writeln!(out)?;
    writeln!(
        out,
        "replayed {} events in {} epochs ({wall:.2?}): {} re-solves, {:.1}% incremental",
        events.len(),
        epochs,
        resolves,
        incremental,
    )?;
    writeln!(out, "threads {threads}{threads_auto}")?;
    writeln!(
        out,
        "max certified factor {max_factor:.4} (tolerance {tolerance}, slack {slack})"
    )?;
    let totals =
        reports
            .iter()
            .filter_map(|r| r.solve_stats)
            .fold(SolveStats::default(), |mut acc, s| {
                acc.merge(s);
                acc
            });
    if totals.ratios_solved > 0 {
        write_solve_totals(out, "re-solve totals", &totals)?;
    }
    if let Some(stats) = engine.sketch_stats() {
        write_sketch_tier(
            out,
            engine.sketch_resolves(),
            engine.resolves(),
            "re-solves",
            &stats,
        )?;
    }
    if let Some(last) = reports.last() {
        writeln!(
            out,
            "final density {} over n = {}, m = {}",
            last.density, last.n, last.m
        )?;
        if let Some(pair) = engine.witness() {
            writeln!(
                out,
                "witness |S| = {}, |T| = {}",
                pair.s().len(),
                pair.t().len()
            )?;
        }
    }
    if let Some(sink) = obs.sink(registry.as_ref()) {
        sink.finish(out)?;
    }
    tracer.flush()?;
    Ok(())
}

/// The `--window` replay path: sliding-window maintenance through
/// [`WindowEngine`] (expiry handled by the engine; the event file only
/// needs arrivals, though explicit deletions still work).
fn stream_window(
    out: &mut dyn Write,
    events: &[dds_stream::TimedEvent],
    config: WindowConfig,
    batch_by: BatchBy,
    log_every: usize,
    threads_auto: &str,
    obs: &ObsFlags,
) -> Result<(), CliError> {
    let (window, tolerance, slack, escalate, threads) = (
        config.window,
        config.tolerance,
        config.slack,
        config.exact_escalation,
        config.threads,
    );
    let mut engine = WindowEngine::new(config);
    let registry = obs.registry();
    if let Some(reg) = &registry {
        engine.attach_obs(reg);
        dds_core::WorkerPool::global().attach_obs(reg);
    }
    let tracer = obs.tracer()?;
    engine.attach_tracer(tracer.clone());
    let started = std::time::Instant::now();
    let reports = dds_stream::replay_window(&mut engine, events, batch_by);
    let wall = started.elapsed();

    writeln!(
        out,
        "epoch      m    density      [lower, upper]      factor  mode"
    )?;
    let last_epoch = reports.last().map_or(0, |r| r.epoch);
    for r in &reports {
        let refreshed = r.mode != WindowMode::Incremental;
        let logged = refreshed
            || (log_every > 0 && r.epoch % log_every as u64 == 0)
            || r.epoch == last_epoch;
        if logged {
            let mode = window_mode_label(r);
            writeln!(
                out,
                "{:>5} {:>6}   {:>8.4}   [{:>8.4}, {:>8.4}]   {:>6.3}  {}",
                r.epoch,
                r.m,
                r.density.to_f64(),
                r.lower,
                r.upper,
                r.certified_factor,
                mode,
            )?;
        }
    }

    let epochs = reports.len();
    let refreshes = reports
        .iter()
        .filter(|r| r.mode != WindowMode::Incremental)
        .count();
    let exact = reports
        .iter()
        .filter(|r| r.mode == WindowMode::ExactResolve)
        .count();
    let incremental = 100.0 * (epochs.saturating_sub(refreshes)) as f64 / epochs.max(1) as f64;
    let certified = reports.iter().filter(|r| r.within_band).count();
    let max_factor = reports
        .iter()
        .map(|r| r.certified_factor)
        .fold(1.0f64, f64::max);
    writeln!(out)?;
    writeln!(
        out,
        "replayed {} events in {} epochs ({wall:.2?}): {} core refreshes ({} escalated to exact), {:.1}% incremental",
        events.len(),
        epochs,
        refreshes,
        exact,
        incremental,
    )?;
    writeln!(
        out,
        "window {window}: {} edges expired, {} core-repair peels, {certified}/{epochs} epochs within band",
        engine.expired(),
        engine.repairs(),
    )?;
    writeln!(out, "threads {threads}{threads_auto}")?;
    if let Some(stats) = engine.sketch_stats() {
        write_sketch_tier(
            out,
            engine.sketch_refreshes(),
            engine.refreshes(),
            "refreshes",
            &stats,
        )?;
    }
    writeln!(
        out,
        "max certified factor {max_factor:.4} (tolerance {tolerance}, slack {slack}, escalation {})",
        if escalate { "on" } else { "off" }
    )?;
    if let Some(last) = reports.last() {
        writeln!(
            out,
            "final density {} over n = {}, m = {} live edges at t = {}",
            last.density, last.n, last.m, last.now
        )?;
        if let Some((x, y)) = engine.core_thresholds() {
            writeln!(out, "maintained core [{x},{y}]")?;
        }
    }
    if let Some(sink) = obs.sink(registry.as_ref()) {
        sink.finish(out)?;
    }
    tracer.flush()?;
    Ok(())
}

/// How a window epoch certified itself, as one row label — shared by the
/// replay and follow paths so the vocabulary cannot drift.
fn window_mode_label(r: &dds_stream::WindowReport) -> String {
    match r.mode {
        WindowMode::Incremental => "incremental".to_string(),
        WindowMode::CoreRefresh => {
            let (x, y) = r.core.unwrap_or((0, 0));
            format!("CORE REFRESH [{x},{y}]")
        }
        WindowMode::ExactResolve => solve_mode_label("EXACT", r.solve_stats),
        WindowMode::SketchRefresh => match &r.sketch {
            Some(sk) => sketch_mode_label(
                "SKETCH REFRESH",
                sk.retained,
                sk.level,
                r.solve_stats.map_or(0, |s| s.flow_decisions),
            ),
            None => "SKETCH REFRESH".into(),
        },
    }
}

/// The `dds stream --follow --window` serving loop: tail the event file
/// with sliding-window expiry. No checkpoint/resume — the window engine
/// has no snapshot, and `cmd_stream` rejects `--checkpoint` up front —
/// so the loop always starts from byte 0 of the event file.
#[allow(clippy::too_many_arguments)] // parsed CLI flags + borrowed sinks
fn stream_follow_window(
    out: &mut dyn Write,
    path: &str,
    config: WindowConfig,
    batch: usize,
    log_every: usize,
    threads_auto: &str,
    serving: &ServingFlags,
    obs: &ObsFlags,
) -> Result<(), CliError> {
    let (window, threads) = (config.window, config.threads);
    let mut engine = WindowEngine::new(config);
    let registry = obs.registry();
    if let Some(reg) = &registry {
        engine.attach_obs(reg);
        dds_core::WorkerPool::global().attach_obs(reg);
    }
    let tracer = obs.tracer()?;
    engine.attach_tracer(tracer.clone());
    let admin = obs.admin_rig(out, "stream", registry.as_ref(), &tracer)?;
    writeln!(
        out,
        "following {path} from byte 0 (batch {batch}, window {window})"
    )?;
    let setup = ServingSetup {
        path,
        follow: true,
        batch,
        log_every,
        cursor: 0,
    };
    let (outcome, elapsed) = run_serving_loop(
        out,
        &setup,
        serving,
        &LoopObs {
            metrics: obs.sink(registry.as_ref()).as_ref(),
            admin: admin.as_ref(),
        },
        &mut engine,
        |engine, batch| {
            let r = engine.apply(batch);
            EpochRow {
                epoch: r.epoch,
                m: r.m as u64,
                density: r.density.to_f64(),
                lower: r.lower,
                upper: r.upper,
                factor: r.certified_factor,
                mode: (r.mode != WindowMode::Incremental).then(|| window_mode_label(&r)),
            }
        },
        |_, _, _| -> Result<(), dds_stream::SnapshotError> {
            unreachable!("--checkpoint is rejected with --window before the loop starts")
        },
    )?;
    let bounds = engine.bounds();
    writeln!(
        out,
        "followed {} events in {} epochs ({elapsed:.2?}): {} refreshes ({} exact), final m = {}, bracket [{:.4}, {:.4}], cursor {}",
        outcome.events,
        outcome.epochs,
        engine.refreshes(),
        engine.exact_solves(),
        engine.m(),
        bounds.lower.to_f64(),
        bounds.upper,
        outcome.cursor,
    )?;
    writeln!(
        out,
        "window {window}: {} edges expired, {} core-repair peels",
        engine.expired(),
        engine.repairs(),
    )?;
    writeln!(out, "threads {threads}{threads_auto}")?;
    if let Some(rig) = &admin {
        rig.finish(out)?;
    }
    tracer.flush()?;
    Ok(())
}

/// The serving-loop flags shared by `dds stream --follow` and `dds shard`:
/// poll/idle cadence of the tail loop plus checkpoint/resume plumbing.
#[derive(Debug, Default)]
struct ServingFlags {
    poll_ms: Option<u64>,
    idle_ms: Option<u64>,
    checkpoint: Option<String>,
    checkpoint_every: Option<u64>,
    resume: bool,
}

impl ServingFlags {
    /// Tries to consume `flag`; returns whether it was one of ours.
    fn parse<'a>(
        &mut self,
        flag: &str,
        it: &mut impl Iterator<Item = &'a str>,
    ) -> Result<bool, CliError> {
        match flag {
            "--poll-ms" => {
                let ms: u64 = parse_flag_value("--poll-ms", it.next())?;
                if ms == 0 {
                    return Err(CliError::Usage("--poll-ms must be positive".into()));
                }
                self.poll_ms = Some(ms);
            }
            "--idle-ms" => {
                let ms: u64 = parse_flag_value("--idle-ms", it.next())?;
                if ms == 0 {
                    return Err(CliError::Usage("--idle-ms must be positive".into()));
                }
                self.idle_ms = Some(ms);
            }
            "--checkpoint" => self.checkpoint = Some(parse_flag_value("--checkpoint", it.next())?),
            "--checkpoint-every" => {
                let every: u64 = parse_flag_value("--checkpoint-every", it.next())?;
                if every == 0 {
                    return Err(CliError::Usage(
                        "--checkpoint-every must be positive".into(),
                    ));
                }
                self.checkpoint_every = Some(every);
            }
            "--resume" => self.resume = true,
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn validate(&self, follow: bool) -> Result<(), CliError> {
        if !follow && (self.poll_ms.is_some() || self.idle_ms.is_some()) {
            return Err(CliError::Usage(
                "--poll-ms/--idle-ms require --follow".into(),
            ));
        }
        if self.checkpoint.is_none() && (self.checkpoint_every.is_some() || self.resume) {
            return Err(CliError::Usage(
                "--checkpoint-every/--resume require --checkpoint".into(),
            ));
        }
        Ok(())
    }

    /// The tail-loop configuration: follow mode polls and idles out after
    /// the configured silence; replay mode (`follow == false`, `dds shard`
    /// only) drains to EOF and exits immediately.
    fn follow_config(&self, follow: bool, batch: usize, cursor: u64) -> FollowConfig {
        use std::time::Duration;
        FollowConfig {
            batch,
            poll: Duration::from_millis(self.poll_ms.unwrap_or(200)),
            idle_exit: Some(if follow {
                Duration::from_millis(self.idle_ms.unwrap_or(2000))
            } else {
                Duration::ZERO
            }),
            cursor,
        }
    }

    fn checkpoint_every(&self) -> u64 {
        self.checkpoint_every.unwrap_or(50)
    }
}

/// The observability flags shared by `dds stream` and `dds shard`:
/// `--metrics FILE` keeps a Prometheus-style exposition file fresh
/// (rewritten atomically every `--metrics-every` epochs while serving,
/// plus a final `FILE.jsonl` snapshot at exit); `--trace FILE` streams
/// span JSONL in deterministic mode — no wall-clock in the output, so
/// two identical replays produce byte-identical traces.
#[derive(Debug, Default)]
struct ObsFlags {
    metrics: Option<String>,
    metrics_every: Option<u64>,
    trace: Option<String>,
    admin: Option<String>,
    slow_us: Option<u64>,
}

/// Slots in the slow-op ring (`--slow-us` / `--admin`).
const SLOW_RING_CAPACITY: usize = 32;
/// Default slow-op threshold when `--admin` is on but `--slow-us` unset.
const DEFAULT_SLOW_US: u64 = 1_000;

impl ObsFlags {
    /// Tries to consume `flag`; returns whether it was one of ours.
    fn parse<'a>(
        &mut self,
        flag: &str,
        it: &mut impl Iterator<Item = &'a str>,
    ) -> Result<bool, CliError> {
        match flag {
            "--metrics" => self.metrics = Some(parse_flag_value("--metrics", it.next())?),
            "--metrics-every" => {
                let every: u64 = parse_flag_value("--metrics-every", it.next())?;
                if every == 0 {
                    return Err(CliError::Usage("--metrics-every must be positive".into()));
                }
                self.metrics_every = Some(every);
            }
            "--trace" => self.trace = Some(parse_flag_value("--trace", it.next())?),
            "--admin" => self.admin = Some(parse_flag_value("--admin", it.next())?),
            "--slow-us" => self.slow_us = Some(parse_flag_value("--slow-us", it.next())?),
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn validate(&self) -> Result<(), CliError> {
        if self.metrics.is_none() && self.metrics_every.is_some() {
            return Err(CliError::Usage("--metrics-every requires --metrics".into()));
        }
        Ok(())
    }

    /// A fresh registry when `--metrics` or `--admin` asked for one (the
    /// admin plane scrapes it live over `/metrics`, no file needed).
    fn registry(&self) -> Option<Registry> {
        (self.metrics.is_some() || self.admin.is_some()).then(Registry::new)
    }

    /// The live introspection plane, when `--admin`/`--slow-us` asked for
    /// one. Everything clock-shaped in the serving loops is gated on this
    /// returning `Some` — without it a replay never reads the wall clock,
    /// so `--trace` output stays byte-identical across runs.
    fn admin_rig(
        &self,
        out: &mut dyn Write,
        role: &'static str,
        registry: Option<&Registry>,
        tracer: &Tracer,
    ) -> Result<Option<AdminRig>, CliError> {
        if self.admin.is_none() && self.slow_us.is_none() {
            return Ok(None);
        }
        let board = std::sync::Arc::new(StatusBoard::new(role));
        let ring = std::sync::Arc::new(SlowRing::new(
            SLOW_RING_CAPACITY,
            self.slow_us.unwrap_or(DEFAULT_SLOW_US),
        ));
        tracer.attach_slow_ring(std::sync::Arc::clone(&ring));
        let mut lag = LagGauges::standalone();
        if let Some(reg) = registry {
            lag.attach_obs(reg);
        }
        let server = match &self.admin {
            Some(addr) => {
                let registry = registry.expect("--admin implies a registry").clone();
                let server = AdminServer::start(
                    addr,
                    registry,
                    std::sync::Arc::clone(&board),
                    std::sync::Arc::clone(&ring),
                )
                .map_err(CliError::Io)?;
                writeln!(out, "admin endpoint on {}", server.addr())?;
                Some(server)
            }
            None => None,
        };
        Ok(Some(AdminRig {
            board,
            ring,
            lag,
            _server: server,
            last_seal: std::cell::Cell::new(None),
        }))
    }

    /// A live tracer when `--trace` asked for one, detached otherwise.
    fn tracer(&self) -> Result<Tracer, CliError> {
        match &self.trace {
            Some(path) => Ok(Tracer::to_file(path, false)?),
            None => Ok(Tracer::detached()),
        }
    }

    /// Where the serving loop flushes the exposition, if anywhere.
    fn sink<'a>(&'a self, registry: Option<&'a Registry>) -> Option<MetricsSink<'a>> {
        match (registry, &self.metrics) {
            (Some(registry), Some(path)) => Some(MetricsSink {
                registry,
                path,
                every: self.metrics_every.unwrap_or(50),
            }),
            _ => None,
        }
    }
}

/// A metrics exposition file kept fresh by the serving loop.
struct MetricsSink<'a> {
    registry: &'a Registry,
    path: &'a str,
    every: u64,
}

impl MetricsSink<'_> {
    /// Rewrites the exposition file (atomically: tmp sibling + rename, so
    /// a concurrent scraper never sees a torn file).
    fn refresh(&self) -> std::io::Result<()> {
        self.registry.write_exposition_file(self.path)
    }

    /// Final flush: fresh exposition plus the JSONL snapshot next to it.
    fn finish(&self, out: &mut dyn Write) -> Result<(), CliError> {
        self.refresh()?;
        self.registry
            .write_jsonl_file(format!("{}.jsonl", self.path))?;
        writeln!(
            out,
            "metrics exposition at {} (snapshot {}.jsonl)",
            self.path, self.path
        )?;
        Ok(())
    }
}

/// The live introspection plane behind `--admin`/`--slow-us`: the status
/// board the HTTP routes read, the slow-op ring, and the `dds_lag_*`
/// staleness gauges. Only constructed when asked for; its absence is the
/// serving loops' license to never touch the wall clock.
struct AdminRig {
    board: std::sync::Arc<StatusBoard>,
    ring: std::sync::Arc<SlowRing>,
    lag: LagGauges,
    /// Held for its lifetime — dropping it shuts the listener down.
    _server: Option<AdminServer>,
    /// When the previous epoch sealed, for the follow-idle gauge.
    last_seal: std::cell::Cell<Option<std::time::Instant>>,
}

impl AdminRig {
    /// Folds one sealed epoch into the board and staleness gauges, and
    /// records the seal in the slow-op ring if it was over threshold.
    /// `events` is cumulative; `sealed_at` is when `apply` started.
    fn on_seal(
        &self,
        path: &str,
        row: &EpochRow,
        events: u64,
        cursor: u64,
        sealed_at: std::time::Instant,
    ) {
        let now = std::time::Instant::now();
        let us = u64::try_from(now.duration_since(sealed_at).as_micros()).unwrap_or(u64::MAX);
        self.ring
            .record("epoch.seal", us, &format!("epoch={}", row.epoch));
        if let Some(prev) = self.last_seal.get() {
            let idle = sealed_at.saturating_duration_since(prev);
            self.lag
                .follow_idle_ms
                .set(u64::try_from(idle.as_millis()).unwrap_or(u64::MAX));
        }
        self.last_seal.set(Some(now));
        self.board
            .seal_epoch(row.epoch, events, cursor, row.density, row.lower, row.upper);
        self.board.set_ready();
        let len = std::fs::metadata(path).map_or(cursor, |m| m.len());
        let behind = len.saturating_sub(cursor);
        self.board.set_tail_bytes(behind);
        self.lag.tail_bytes.set(behind);
        self.lag
            .snapshot_age_epochs
            .set(self.board.snapshot_age_epochs());
    }

    /// Records a durable snapshot (a checkpoint, or a published query
    /// snapshot for `dds serve`) as the staleness reference point.
    fn on_snapshot(&self, epoch: u64) {
        self.board.publish_snapshot(epoch);
        self.lag
            .snapshot_age_epochs
            .set(self.board.snapshot_age_epochs());
    }

    /// Exit drain: the slowest recorded operations, if any.
    fn finish(&self, out: &mut dyn Write) -> Result<(), CliError> {
        let table = self.ring.render_table();
        if !table.is_empty() {
            write!(out, "{table}")?;
        }
        Ok(())
    }
}

/// One epoch's loggable facts, engine-agnostic — what the shared serving
/// loop prints per row.
struct EpochRow {
    epoch: u64,
    m: u64,
    density: f64,
    lower: f64,
    upper: f64,
    factor: f64,
    /// `Some(label)` when this epoch re-certified (always logged); `None`
    /// for incremental epochs (logged on the `--log-every` cadence only).
    mode: Option<String>,
}

/// What the shared serving loop needs to know about this invocation,
/// besides the flags: where the stream lives and how to pace it.
struct ServingSetup<'a> {
    path: &'a str,
    follow: bool,
    batch: usize,
    log_every: usize,
    cursor: u64,
}

/// The serving loop's optional observability hooks: the `--metrics`
/// exposition sink and the `--admin`/`--slow-us` introspection rig.
#[derive(Clone, Copy)]
struct LoopObs<'a> {
    metrics: Option<&'a MetricsSink<'a>>,
    admin: Option<&'a AdminRig>,
}

/// The serving loop shared by `dds stream --follow` and `dds shard`:
/// tail the event file, apply each sealed batch through `apply`, print
/// the per-epoch row, checkpoint via `save` every `--checkpoint-every`
/// epochs and once more at the end, and keep the `--metrics` exposition
/// fresh on its own epoch cadence — so the row format, checkpoint and
/// scrape cadence, and error plumbing cannot diverge between the two
/// commands. Returns the tail outcome and the wall clock spent.
fn run_serving_loop<E>(
    out: &mut dyn Write,
    setup: &ServingSetup<'_>,
    serving: &ServingFlags,
    hooks: &LoopObs<'_>,
    engine: &mut E,
    mut apply: impl FnMut(&mut E, &dds_stream::Batch) -> EpochRow,
    save: impl Fn(&E, &str, u64) -> Result<(), dds_stream::SnapshotError>,
) -> Result<(dds_stream::FollowOutcome, std::time::Duration), CliError> {
    let LoopObs { metrics, admin } = *hooks;
    let every = serving.checkpoint_every();
    let log_every = setup.log_every as u64;
    writeln!(
        out,
        "epoch      m    density      [lower, upper]      factor  mode"
    )?;
    let mut checkpoints = 0u64;
    let mut events_total = 0u64;
    let mut deferred: Option<CliError> = None;
    let started = std::time::Instant::now();
    let outcome = follow_events(
        setup.path,
        serving.follow_config(setup.follow, setup.batch, setup.cursor),
        |batch, cur| {
            let sealed_at = admin.map(|_| std::time::Instant::now());
            let row = apply(engine, &batch);
            if let (Some(rig), Some(t0)) = (admin, sealed_at) {
                events_total += batch.events.len() as u64;
                rig.on_seal(setup.path, &row, events_total, cur, t0);
            }
            if row.mode.is_some() || (log_every > 0 && row.epoch.is_multiple_of(log_every)) {
                let mode = row.mode.as_deref().unwrap_or("incremental");
                if let Err(e) = writeln!(
                    out,
                    "{:>5} {:>6}   {:>8.4}   [{:>8.4}, {:>8.4}]   {:>6.3}  {mode}",
                    row.epoch, row.m, row.density, row.lower, row.upper, row.factor,
                ) {
                    deferred = Some(e.into());
                    return std::ops::ControlFlow::Break(());
                }
            }
            if let Some(ck) = &serving.checkpoint {
                if row.epoch.is_multiple_of(every) {
                    match save(engine, ck, cur) {
                        Ok(()) => {
                            checkpoints += 1;
                            // Without a query tier, the checkpoint is the
                            // durable snapshot staleness is measured from.
                            if let Some(rig) = admin {
                                if rig.board.snapshot_epoch() < row.epoch {
                                    rig.on_snapshot(row.epoch);
                                }
                            }
                        }
                        Err(e) => {
                            deferred = Some(e.into());
                            return std::ops::ControlFlow::Break(());
                        }
                    }
                }
            }
            if let Some(sink) = metrics {
                if row.epoch.is_multiple_of(sink.every) {
                    if let Err(e) = sink.refresh() {
                        deferred = Some(e.into());
                        return std::ops::ControlFlow::Break(());
                    }
                }
            }
            std::ops::ControlFlow::Continue(())
        },
    )?;
    if let Some(e) = deferred {
        return Err(e);
    }
    if let Some(ck) = &serving.checkpoint {
        save(engine, ck, outcome.cursor)?;
        checkpoints += 1;
        writeln!(out, "checkpointed {checkpoints} times to {ck}")?;
    }
    if let Some(sink) = metrics {
        sink.finish(out)?;
    }
    Ok((outcome, started.elapsed()))
}

/// The `dds stream --follow` serving loop: tail the event file, apply
/// each sealed batch, and checkpoint the engine (with the stream cursor)
/// so a restart resumes with nothing replayed twice.
#[allow(clippy::too_many_arguments)] // parsed CLI flags + borrowed sinks
fn stream_follow(
    out: &mut dyn Write,
    path: &str,
    config: StreamConfig,
    batch: usize,
    log_every: usize,
    threads_auto: &str,
    serving: &ServingFlags,
    obs: &ObsFlags,
) -> Result<(), CliError> {
    let threads = config.threads;
    let (mut engine, cursor) = match &serving.checkpoint {
        Some(ck) if serving.resume && std::path::Path::new(ck).exists() => {
            let (engine, cursor) = StreamEngine::restore_from(config, ck)?;
            writeln!(
                out,
                "resumed from {ck}: epoch {}, m = {}, byte offset {cursor}",
                engine.epoch(),
                engine.m()
            )?;
            (engine, cursor)
        }
        _ => (StreamEngine::new(config), 0),
    };
    let registry = obs.registry();
    if let Some(reg) = &registry {
        engine.attach_obs(reg);
        dds_core::WorkerPool::global().attach_obs(reg);
    }
    let tracer = obs.tracer()?;
    engine.attach_tracer(tracer.clone());
    let admin = obs.admin_rig(out, "stream", registry.as_ref(), &tracer)?;
    writeln!(out, "following {path} from byte {cursor} (batch {batch})")?;
    let setup = ServingSetup {
        path,
        follow: true,
        batch,
        log_every,
        cursor,
    };
    let (outcome, elapsed) = run_serving_loop(
        out,
        &setup,
        serving,
        &LoopObs {
            metrics: obs.sink(registry.as_ref()).as_ref(),
            admin: admin.as_ref(),
        },
        &mut engine,
        |engine, batch| {
            let r = engine.apply(batch);
            EpochRow {
                epoch: r.epoch,
                m: r.m as u64,
                density: r.density.to_f64(),
                lower: r.lower,
                upper: r.upper,
                factor: r.certified_factor,
                mode: r
                    .resolved
                    .then(|| stream_mode_label(r.sketch.as_ref(), r.solve_stats)),
            }
        },
        |engine, ck, cur| engine.save_snapshot(ck, cur),
    )?;
    let bounds = engine.bounds();
    writeln!(
        out,
        "followed {} events in {} epochs ({elapsed:.2?}): {} re-solves, final m = {}, bracket [{:.4}, {:.4}], cursor {}",
        outcome.events,
        outcome.epochs,
        engine.resolves(),
        engine.m(),
        bounds.lower.to_f64(),
        bounds.upper,
        outcome.cursor,
    )?;
    writeln!(out, "threads {threads}{threads_auto}")?;
    if let Some(rig) = &admin {
        rig.finish(out)?;
    }
    tracer.flush()?;
    Ok(())
}

/// `dds shard`: edge-partitioned parallel ingestion over K shards with
/// merged certification — replay mode drains the file and exits; with
/// `--follow` it keeps tailing. Both modes run through the same
/// cursor-aware tail loop, so `--checkpoint`/`--resume` behave
/// identically in each.
fn cmd_shard<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let path = it
        .next()
        .ok_or_else(|| CliError::Usage("missing <event-file> path".into()))?;
    let mut shards = 4usize;
    let mut batch = 100usize;
    let mut bound = SketchConfig::default().state_bound;
    let mut seed = SketchConfig::default().seed;
    let mut threads: Option<usize> = None;
    let mut drift = 0.25f64;
    let mut log_every = 0usize;
    let mut follow = false;
    let mut serving = ServingFlags::default();
    let mut obs = ObsFlags::default();
    while let Some(flag) = it.next() {
        if serving.parse(flag, it)? || obs.parse(flag, it)? {
            continue;
        }
        match flag {
            "--shards" => {
                shards = parse_flag_value("--shards", it.next())?;
                if shards == 0 {
                    return Err(CliError::Usage("--shards must be positive".into()));
                }
            }
            "--batch" => {
                batch = parse_flag_value("--batch", it.next())?;
                if batch == 0 {
                    return Err(CliError::Usage("--batch must be positive".into()));
                }
            }
            "--bound" => {
                bound = parse_flag_value("--bound", it.next())?;
                if bound == 0 {
                    return Err(CliError::Usage("--bound must be positive".into()));
                }
            }
            "--seed" => seed = parse_flag_value("--seed", it.next())?,
            "--threads" => threads = Some(parse_flag_value("--threads", it.next())?),
            "--drift" => {
                drift = parse_flag_value("--drift", it.next())?;
                if drift.is_nan() || drift <= 0.0 {
                    return Err(CliError::Usage("--drift must be positive".into()));
                }
            }
            "--log-every" => log_every = parse_flag_value("--log-every", it.next())?,
            "--follow" => follow = true,
            other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    serving.validate(follow)?;
    obs.validate()?;
    let (threads, threads_auto) = resolve_threads(threads);
    let config = ShardConfig {
        shards,
        threads,
        refresh_drift: drift,
        sketch: SketchConfig {
            state_bound: bound,
            seed,
            ..SketchConfig::default()
        },
    };
    let (mut engine, cursor) = match &serving.checkpoint {
        Some(ck) if serving.resume && std::path::Path::new(ck).exists() => {
            let (engine, cursor) = ShardedEngine::restore_from(config, ck)?;
            writeln!(
                out,
                "resumed from {ck}: epoch {}, m = {}, byte offset {cursor}",
                engine.epoch(),
                engine.m()
            )?;
            (engine, cursor)
        }
        _ => (ShardedEngine::new(config), 0),
    };
    let registry = obs.registry();
    if let Some(reg) = &registry {
        engine.attach_obs(reg);
        dds_core::WorkerPool::global().attach_obs(reg);
    }
    let tracer = obs.tracer()?;
    engine.attach_tracer(tracer.clone());
    let admin = obs.admin_rig(out, "shard", registry.as_ref(), &tracer)?;
    writeln!(
        out,
        "{} {path} across {shards} shards ({} apply workers{threads_auto}, batch {batch}, bound {bound}/shard)",
        if follow { "following" } else { "replaying" },
        config.threads,
    )?;
    let setup = ServingSetup {
        path,
        follow,
        batch,
        log_every,
        cursor,
    };
    let (outcome, elapsed) = run_serving_loop(
        out,
        &setup,
        &serving,
        &LoopObs {
            metrics: obs.sink(registry.as_ref()).as_ref(),
            admin: admin.as_ref(),
        },
        &mut engine,
        |engine, batch| {
            let r = engine.apply(batch);
            EpochRow {
                epoch: r.epoch,
                m: r.m,
                density: r.density.to_f64(),
                lower: r.lower,
                upper: r.upper,
                factor: r.certified_factor,
                mode: r.refreshed.then(|| {
                    sketch_mode_label(
                        "MERGED REFRESH",
                        r.retained,
                        r.merged_level.unwrap_or(0),
                        r.solve_stats.map_or(0, |s| s.flow_decisions),
                    )
                }),
            }
        },
        |engine, ck, cur| engine.save_snapshot(ck, cur),
    )?;
    let stats = engine.stats();
    let bounds = engine.bounds();
    writeln!(out)?;
    writeln!(
        out,
        "{} {} events in {} epochs ({elapsed:.2?}): {} merged refreshes ({} escalated, {} cold-start), cursor {}",
        if follow { "followed" } else { "replayed" },
        outcome.events,
        outcome.epochs,
        stats.refreshes,
        stats.escalations,
        stats.cold_escalations,
        outcome.cursor,
    )?;
    writeln!(
        out,
        "shards: levels {:?}, retained {} of {} live edges, apply {:.2?}, certify {:.2?}",
        stats.levels,
        stats.retained,
        engine.m(),
        stats.apply,
        stats.certify,
    )?;
    writeln!(out, "threads {threads}{threads_auto}")?;
    if stats.solve.ratios_solved > 0 {
        write_solve_totals(out, "escalated solve totals", &stats.solve)?;
    }
    writeln!(
        out,
        "final density {} over n = {}, m = {}, bracket [{:.4}, {:.4}]",
        engine.witness_density(),
        engine.n(),
        engine.m(),
        bounds.lower.to_f64(),
        bounds.upper,
    )?;
    if let Some(pair) = engine.witness() {
        writeln!(
            out,
            "witness |S| = {}, |T| = {}",
            pair.s().len(),
            pair.t().len()
        )?;
    }
    if let Some(rig) = &admin {
        rig.finish(out)?;
    }
    tracer.flush()?;
    Ok(())
}

/// Options specific to `dds serve`, beyond the shared serving/obs flags.
struct ServeOpts {
    listen: String,
    readers: usize,
    core: Option<(u64, u64)>,
    top_k: usize,
}

/// `dds serve`: the query-serving front end. Follows the event file like
/// `dds stream --follow` (or `dds shard --follow` with `--shards`),
/// publishing an immutable [`EpochSnapshot`](dds_serve::EpochSnapshot)
/// once per sealed epoch, while a TCP reader pool answers
/// `DENSITY`/`MEMBER`/`CORE`/`TOPK` queries from the published snapshot —
/// readers never touch the engine, so no query ever waits on a refresh.
fn cmd_serve<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let path = it
        .next()
        .ok_or_else(|| CliError::Usage("missing <event-file> path".into()))?;
    let mut listen: Option<String> = None;
    let mut readers = 4usize;
    let mut core: Option<(u64, u64)> = None;
    let mut top_k = 0usize;
    let mut shards = 0usize;
    let mut batch = 100usize;
    let mut tolerance = 0.25f64;
    let mut slack = 2.0f64;
    let mut solver: Option<SolverKind> = None;
    let mut log_every = 0usize;
    let mut threads: Option<usize> = None;
    let mut serving = ServingFlags::default();
    let mut obs = ObsFlags::default();
    while let Some(flag) = it.next() {
        if serving.parse(flag, it)? || obs.parse(flag, it)? {
            continue;
        }
        match flag {
            "--listen" => listen = Some(parse_flag_value("--listen", it.next())?),
            "--readers" => {
                readers = parse_flag_value("--readers", it.next())?;
                if readers == 0 {
                    return Err(CliError::Usage("--readers must be positive".into()));
                }
            }
            "--core" => {
                let v: String = parse_flag_value("--core", it.next())?;
                let (x, y) = v
                    .split_once(',')
                    .ok_or_else(|| CliError::Usage("--core expects X,Y".into()))?;
                core = Some((
                    x.parse()
                        .map_err(|_| CliError::Usage(format!("bad x {x:?}")))?,
                    y.parse()
                        .map_err(|_| CliError::Usage(format!("bad y {y:?}")))?,
                ));
            }
            "--topk" => top_k = parse_flag_value("--topk", it.next())?,
            "--shards" => shards = parse_flag_value("--shards", it.next())?,
            "--batch" => {
                batch = parse_flag_value("--batch", it.next())?;
                if batch == 0 {
                    return Err(CliError::Usage("--batch must be positive".into()));
                }
            }
            "--tolerance" => {
                tolerance = parse_flag_value("--tolerance", it.next())?;
                if tolerance.is_nan() || tolerance < 0.0 {
                    return Err(CliError::Usage("--tolerance must be ≥ 0".into()));
                }
            }
            "--slack" => {
                slack = parse_flag_value("--slack", it.next())?;
                if slack.is_nan() || slack < 0.0 {
                    return Err(CliError::Usage("--slack must be ≥ 0".into()));
                }
            }
            "--solver" => {
                let v: String = parse_flag_value("--solver", it.next())?;
                solver = Some(match v.as_str() {
                    "exact" => SolverKind::Exact,
                    "approx" => SolverKind::CoreApprox,
                    other => {
                        return Err(CliError::Usage(format!(
                            "unknown --solver {other:?} (expected exact|approx)"
                        )))
                    }
                });
            }
            "--threads" => threads = Some(parse_flag_value("--threads", it.next())?),
            "--log-every" => log_every = parse_flag_value("--log-every", it.next())?,
            other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    let listen =
        listen.ok_or_else(|| CliError::Usage("dds serve requires --listen ADDR".into()))?;
    if shards > 0 && solver.is_some() {
        return Err(CliError::Usage(
            "--solver does not apply with --shards (the sharded engine certifies by merge)".into(),
        ));
    }
    serving.validate(true)?;
    obs.validate()?;
    let (threads, threads_auto) = resolve_threads(threads);
    let opts = ServeOpts {
        listen,
        readers,
        core,
        top_k,
    };
    if shards > 0 {
        serve_shard(
            out,
            path,
            ShardConfig {
                shards,
                threads,
                refresh_drift: 0.25,
                sketch: SketchConfig::default(),
            },
            batch,
            log_every,
            threads_auto,
            &opts,
            &serving,
            &obs,
        )
    } else {
        serve_stream(
            out,
            path,
            StreamConfig {
                tolerance,
                slack,
                solver: solver.unwrap_or(SolverKind::Exact),
                threads,
                sketch: None,
            },
            batch,
            log_every,
            threads_auto,
            &opts,
            &serving,
            &obs,
        )
    }
}

/// The pieces of the query server every `dds serve` engine branch sets up
/// the same way: the snapshot cell, the metrics, and the TCP front end.
struct ServeRig {
    cell: std::sync::Arc<SnapshotCell>,
    metrics: std::sync::Arc<ServeMetrics>,
    server: Server,
}

impl ServeRig {
    fn start(
        out: &mut dyn Write,
        opts: &ServeOpts,
        registry: Option<&Registry>,
        admin: Option<&AdminRig>,
    ) -> Result<ServeRig, CliError> {
        let cell = std::sync::Arc::new(SnapshotCell::new());
        let mut metrics = ServeMetrics::new();
        if let Some(reg) = registry {
            metrics.attach_obs(reg);
        }
        if let Some(rig) = admin {
            // Share the staleness gauges with the admin plane so `STATS`
            // answers from the same atomics `/metrics` exports.
            metrics.lag = rig.lag.clone();
        }
        let metrics = std::sync::Arc::new(metrics);
        if let Some(rig) = admin {
            metrics.attach_slow_ring(std::sync::Arc::clone(&rig.ring));
        }
        let server = Server::start(
            &opts.listen,
            std::sync::Arc::clone(&cell),
            opts.readers,
            std::sync::Arc::clone(&metrics),
        )
        .map_err(CliError::Io)?;
        writeln!(
            out,
            "serving on {} ({} readers{}{})",
            server.addr(),
            opts.readers,
            opts.core
                .map(|(x, y)| format!(", core [{x},{y}]"))
                .unwrap_or_default(),
            if opts.top_k > 0 {
                format!(", top-{}", opts.top_k)
            } else {
                String::new()
            },
        )?;
        Ok(ServeRig {
            cell,
            metrics,
            server,
        })
    }

    /// Final summary + orderly shutdown (stop accepting, join readers).
    fn finish(mut self, out: &mut dyn Write) -> Result<(), CliError> {
        self.server.shutdown();
        writeln!(
            out,
            "served {} queries ({} errors) over {} connections, {} snapshots published",
            self.metrics.queries.get(),
            self.metrics.query_errors.get(),
            self.metrics.connections.get(),
            self.metrics.publishes.get(),
        )?;
        Ok(())
    }
}

/// `dds serve` on the incremental [`StreamEngine`] (the default).
#[allow(clippy::too_many_arguments)] // parsed CLI flags + borrowed sinks
fn serve_stream(
    out: &mut dyn Write,
    path: &str,
    config: StreamConfig,
    batch: usize,
    log_every: usize,
    threads_auto: &str,
    opts: &ServeOpts,
    serving: &ServingFlags,
    obs: &ObsFlags,
) -> Result<(), CliError> {
    let threads = config.threads;
    let (mut engine, cursor) = match &serving.checkpoint {
        Some(ck) if serving.resume && std::path::Path::new(ck).exists() => {
            let (engine, cursor) = StreamEngine::restore_from(config, ck)?;
            writeln!(
                out,
                "resumed from {ck}: epoch {}, m = {}, byte offset {cursor}",
                engine.epoch(),
                engine.m()
            )?;
            (engine, cursor)
        }
        _ => (StreamEngine::new(config), 0),
    };
    let registry = obs.registry();
    if let Some(reg) = &registry {
        engine.attach_obs(reg);
        dds_core::WorkerPool::global().attach_obs(reg);
    }
    let tracer = obs.tracer()?;
    engine.attach_tracer(tracer.clone());
    let admin = obs.admin_rig(out, "serve", registry.as_ref(), &tracer)?;
    let rig = ServeRig::start(out, opts, registry.as_ref(), admin.as_ref())?;
    let mut publisher = Publisher::new(
        std::sync::Arc::clone(&rig.cell),
        PublishOptions {
            core: opts.core,
            top_k: opts.top_k,
        },
        std::sync::Arc::clone(&rig.metrics),
    );
    // A resumed engine has answers before the first new batch arrives:
    // publish them immediately rather than serving the empty epoch 0.
    if engine.epoch() > 0 {
        let bounds = engine.bounds();
        publisher.publish(
            EpochFacts {
                epoch: engine.epoch(),
                n: engine.n(),
                m: engine.m() as u64,
                density: bounds.lower.to_f64(),
                lower: bounds.lower.to_f64(),
                upper: bounds.upper,
                witness: engine.witness(),
                resolved: true,
            },
            || engine.materialize(),
        );
        if let Some(rig) = &admin {
            rig.on_snapshot(engine.epoch());
            rig.board.set_ready();
        }
    }
    writeln!(out, "following {path} from byte {cursor} (batch {batch})")?;
    let setup = ServingSetup {
        path,
        follow: true,
        batch,
        log_every,
        cursor,
    };
    let (outcome, elapsed) = run_serving_loop(
        out,
        &setup,
        serving,
        &LoopObs {
            metrics: obs.sink(registry.as_ref()).as_ref(),
            admin: admin.as_ref(),
        },
        &mut engine,
        |engine, batch| {
            let r = engine.apply(batch);
            let sealed_at = admin.as_ref().map(|_| std::time::Instant::now());
            publisher.publish(
                EpochFacts {
                    epoch: r.epoch,
                    n: r.n,
                    m: r.m as u64,
                    density: r.density.to_f64(),
                    lower: r.lower,
                    upper: r.upper,
                    witness: engine.witness(),
                    resolved: r.resolved,
                },
                || engine.materialize(),
            );
            if let (Some(rig), Some(t0)) = (admin.as_ref(), sealed_at) {
                let us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
                rig.lag.seal_publish_us.set(us);
                rig.on_snapshot(r.epoch);
                rig.board.set_ready();
            }
            EpochRow {
                epoch: r.epoch,
                m: r.m as u64,
                density: r.density.to_f64(),
                lower: r.lower,
                upper: r.upper,
                factor: r.certified_factor,
                mode: r
                    .resolved
                    .then(|| stream_mode_label(r.sketch.as_ref(), r.solve_stats)),
            }
        },
        |engine, ck, cur| engine.save_snapshot(ck, cur),
    )?;
    let bounds = engine.bounds();
    writeln!(
        out,
        "followed {} events in {} epochs ({elapsed:.2?}): {} re-solves, final m = {}, bracket [{:.4}, {:.4}], cursor {}",
        outcome.events,
        outcome.epochs,
        engine.resolves(),
        engine.m(),
        bounds.lower.to_f64(),
        bounds.upper,
        outcome.cursor,
    )?;
    writeln!(out, "threads {threads}{threads_auto}")?;
    rig.finish(out)?;
    if let Some(rig) = &admin {
        rig.finish(out)?;
    }
    tracer.flush()?;
    Ok(())
}

/// `dds serve --shards K`: the same front end over [`ShardedEngine`]
/// ingestion.
#[allow(clippy::too_many_arguments)] // parsed CLI flags + borrowed sinks
fn serve_shard(
    out: &mut dyn Write,
    path: &str,
    config: ShardConfig,
    batch: usize,
    log_every: usize,
    threads_auto: &str,
    opts: &ServeOpts,
    serving: &ServingFlags,
    obs: &ObsFlags,
) -> Result<(), CliError> {
    let threads = config.threads;
    let shards = config.shards;
    let (mut engine, cursor) = match &serving.checkpoint {
        Some(ck) if serving.resume && std::path::Path::new(ck).exists() => {
            let (engine, cursor) = ShardedEngine::restore_from(config, ck)?;
            writeln!(
                out,
                "resumed from {ck}: epoch {}, m = {}, byte offset {cursor}",
                engine.epoch(),
                engine.m()
            )?;
            (engine, cursor)
        }
        _ => (ShardedEngine::new(config), 0),
    };
    let registry = obs.registry();
    if let Some(reg) = &registry {
        engine.attach_obs(reg);
        dds_core::WorkerPool::global().attach_obs(reg);
    }
    let tracer = obs.tracer()?;
    engine.attach_tracer(tracer.clone());
    let admin = obs.admin_rig(out, "serve", registry.as_ref(), &tracer)?;
    let rig = ServeRig::start(out, opts, registry.as_ref(), admin.as_ref())?;
    let mut publisher = Publisher::new(
        std::sync::Arc::clone(&rig.cell),
        PublishOptions {
            core: opts.core,
            top_k: opts.top_k,
        },
        std::sync::Arc::clone(&rig.metrics),
    );
    if engine.epoch() > 0 {
        let bounds = engine.bounds();
        publisher.publish(
            EpochFacts {
                epoch: engine.epoch(),
                n: engine.n(),
                m: engine.m(),
                density: bounds.lower.to_f64(),
                lower: bounds.lower.to_f64(),
                upper: bounds.upper,
                witness: engine.witness(),
                resolved: true,
            },
            || engine.materialize(),
        );
        if let Some(rig) = &admin {
            rig.on_snapshot(engine.epoch());
            rig.board.set_ready();
        }
    }
    writeln!(
        out,
        "following {path} from byte {cursor} across {shards} shards (batch {batch})"
    )?;
    let setup = ServingSetup {
        path,
        follow: true,
        batch,
        log_every,
        cursor,
    };
    let (outcome, elapsed) = run_serving_loop(
        out,
        &setup,
        serving,
        &LoopObs {
            metrics: obs.sink(registry.as_ref()).as_ref(),
            admin: admin.as_ref(),
        },
        &mut engine,
        |engine, batch| {
            let r = engine.apply(batch);
            let sealed_at = admin.as_ref().map(|_| std::time::Instant::now());
            publisher.publish(
                EpochFacts {
                    epoch: r.epoch,
                    n: r.n,
                    m: r.m,
                    density: r.density.to_f64(),
                    lower: r.lower,
                    upper: r.upper,
                    witness: engine.witness(),
                    resolved: r.refreshed,
                },
                || engine.materialize(),
            );
            if let (Some(rig), Some(t0)) = (admin.as_ref(), sealed_at) {
                let us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
                rig.lag.seal_publish_us.set(us);
                rig.on_snapshot(r.epoch);
                rig.board.set_ready();
            }
            EpochRow {
                epoch: r.epoch,
                m: r.m,
                density: r.density.to_f64(),
                lower: r.lower,
                upper: r.upper,
                factor: r.certified_factor,
                mode: r.refreshed.then(|| {
                    sketch_mode_label(
                        "MERGED REFRESH",
                        r.retained,
                        r.merged_level.unwrap_or(0),
                        r.solve_stats.map_or(0, |s| s.flow_decisions),
                    )
                }),
            }
        },
        |engine, ck, cur| engine.save_snapshot(ck, cur),
    )?;
    let bounds = engine.bounds();
    writeln!(
        out,
        "followed {} events in {} epochs ({elapsed:.2?}): {} merged refreshes, final m = {}, bracket [{:.4}, {:.4}], cursor {}",
        outcome.events,
        outcome.epochs,
        engine.stats().refreshes,
        engine.m(),
        bounds.lower.to_f64(),
        bounds.upper,
        outcome.cursor,
    )?;
    writeln!(out, "threads {threads}{threads_auto}")?;
    rig.finish(out)?;
    if let Some(rig) = &admin {
        rig.finish(out)?;
    }
    tracer.flush()?;
    Ok(())
}

/// `dds cluster-shard`: one worker process of the cross-process sharded
/// tier. Ingests its routed partition of the shared event file, ships
/// per-epoch digests to the coordinator over the DDSC wire protocol,
/// and (with `--checkpoint`) maintains an incremental DDSD delta chain
/// it can `--resume` from after a crash — re-admission goes through the
/// digest-cursor handshake, so nothing is double-counted.
fn cmd_cluster_shard<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let path = it
        .next()
        .ok_or_else(|| CliError::Usage("missing <event-file> path".into()))?;
    let mut connect: Option<String> = None;
    let mut shard_id: Option<(usize, usize)> = None;
    let mut batch = 100usize;
    let mut bound = SketchConfig::default().state_bound;
    let mut seed = SketchConfig::default().seed;
    let mut poll_ms = 20u64;
    let mut idle_ms = 2000u64;
    let mut checkpoint: Option<String> = None;
    let mut compact_every = 8u32;
    let mut resume = false;
    while let Some(flag) = it.next() {
        match flag {
            "--connect" => connect = Some(parse_flag_value("--connect", it.next())?),
            "--shard-id" => {
                let v: String = parse_flag_value("--shard-id", it.next())?;
                let (i, k) = v
                    .split_once('/')
                    .ok_or_else(|| CliError::Usage("--shard-id expects I/K".into()))?;
                let i: usize = i
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad shard index {i:?}")))?;
                let k: usize = k
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad shard count {k:?}")))?;
                if k == 0 || i >= k {
                    return Err(CliError::Usage(format!(
                        "--shard-id {i}/{k} is out of range (need I < K)"
                    )));
                }
                shard_id = Some((i, k));
            }
            "--batch" => {
                batch = parse_flag_value("--batch", it.next())?;
                if batch == 0 {
                    return Err(CliError::Usage("--batch must be positive".into()));
                }
            }
            "--bound" => {
                bound = parse_flag_value("--bound", it.next())?;
                if bound == 0 {
                    return Err(CliError::Usage("--bound must be positive".into()));
                }
            }
            "--seed" => seed = parse_flag_value("--seed", it.next())?,
            "--poll-ms" => {
                poll_ms = parse_flag_value("--poll-ms", it.next())?;
                if poll_ms == 0 {
                    return Err(CliError::Usage("--poll-ms must be positive".into()));
                }
            }
            "--idle-ms" => {
                idle_ms = parse_flag_value("--idle-ms", it.next())?;
                if idle_ms == 0 {
                    return Err(CliError::Usage("--idle-ms must be positive".into()));
                }
            }
            "--checkpoint" => checkpoint = Some(parse_flag_value("--checkpoint", it.next())?),
            "--compact-every" => compact_every = parse_flag_value("--compact-every", it.next())?,
            "--resume" => resume = true,
            other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    let connect = connect
        .ok_or_else(|| CliError::Usage("dds cluster-shard requires --connect ADDR".into()))?;
    let (shard, shards) = shard_id
        .ok_or_else(|| CliError::Usage("dds cluster-shard requires --shard-id I/K".into()))?;
    if checkpoint.is_none() && resume {
        return Err(CliError::Usage("--resume requires --checkpoint".into()));
    }
    let config = dds_cluster::WorkerConfig {
        shard,
        shards,
        batch,
        sketch: SketchConfig {
            state_bound: bound,
            seed,
            ..SketchConfig::default()
        },
    };
    let opts = dds_cluster::WorkerOptions {
        poll: std::time::Duration::from_millis(poll_ms),
        idle_exit: Some(std::time::Duration::from_millis(idle_ms)),
        checkpoint: checkpoint.map(std::path::PathBuf::from),
        compact_every,
        resume,
    };
    writeln!(
        out,
        "shard {shard}/{shards} ingesting {path} for {connect} (batch {batch}, bound {bound})"
    )?;
    let summary = dds_cluster::run_worker(config, std::path::Path::new(path), &connect, &opts)?;
    writeln!(out, "{summary}")?;
    Ok(())
}

/// `dds cluster-coordinator`: the merge side of the cross-process tier.
/// Accepts K worker connections, folds their digests into per-slot
/// replicas, and seals one certified epoch per global batch — degrading
/// soundly (wider bracket, stale shard named) when `--straggler-ms`
/// expires on a laggard. `--serve` republishes every sealed epoch to
/// the `dds serve` query tier; `--admin` exposes the per-shard lag on
/// `/status` and `dds_cluster_shard_lag_epochs` gauges.
fn cmd_cluster_coordinator<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let mut listen: Option<String> = None;
    let mut shards = 0usize;
    let mut batch = 100usize;
    let mut bound = SketchConfig::default().state_bound;
    let mut seed = SketchConfig::default().seed;
    let mut drift = 0.25f64;
    let mut straggler_ms: Option<u64> = None;
    let mut log_every = 0u64;
    let mut serve_addr: Option<String> = None;
    let mut readers: Option<usize> = None;
    let mut obs = ObsFlags::default();
    while let Some(flag) = it.next() {
        if obs.parse(flag, it)? {
            continue;
        }
        match flag {
            "--listen" => listen = Some(parse_flag_value("--listen", it.next())?),
            "--shards" => {
                shards = parse_flag_value("--shards", it.next())?;
                if shards == 0 {
                    return Err(CliError::Usage("--shards must be positive".into()));
                }
            }
            "--batch" => {
                batch = parse_flag_value("--batch", it.next())?;
                if batch == 0 {
                    return Err(CliError::Usage("--batch must be positive".into()));
                }
            }
            "--bound" => {
                bound = parse_flag_value("--bound", it.next())?;
                if bound == 0 {
                    return Err(CliError::Usage("--bound must be positive".into()));
                }
            }
            "--seed" => seed = parse_flag_value("--seed", it.next())?,
            "--drift" => {
                drift = parse_flag_value("--drift", it.next())?;
                if drift.is_nan() || drift <= 0.0 {
                    return Err(CliError::Usage("--drift must be positive".into()));
                }
            }
            "--straggler-ms" => {
                let ms: u64 = parse_flag_value("--straggler-ms", it.next())?;
                if ms == 0 {
                    return Err(CliError::Usage("--straggler-ms must be positive".into()));
                }
                straggler_ms = Some(ms);
            }
            "--log-every" => log_every = parse_flag_value("--log-every", it.next())?,
            "--serve" => serve_addr = Some(parse_flag_value("--serve", it.next())?),
            "--readers" => {
                let r: usize = parse_flag_value("--readers", it.next())?;
                if r == 0 {
                    return Err(CliError::Usage("--readers must be positive".into()));
                }
                readers = Some(r);
            }
            other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    let listen = listen
        .ok_or_else(|| CliError::Usage("dds cluster-coordinator requires --listen ADDR".into()))?;
    if shards == 0 {
        return Err(CliError::Usage(
            "dds cluster-coordinator requires --shards K".into(),
        ));
    }
    if serve_addr.is_none() && readers.is_some() {
        return Err(CliError::Usage("--readers requires --serve".into()));
    }
    obs.validate()?;
    let registry = obs.registry();
    let tracer = obs.tracer()?;
    let admin = obs.admin_rig(out, "cluster", registry.as_ref(), &tracer)?;
    let config = dds_cluster::ClusterConfig {
        shards,
        batch,
        refresh_drift: drift,
        sketch: SketchConfig {
            state_bound: bound,
            seed,
            ..SketchConfig::default()
        },
    };
    // The coordinator holds sample replicas, not the full graph, so the
    // query tier serves the snapshot-backed types only (DENSITY / MEMBER
    // / STATS) — no --core/--topk, and the publisher therefore never
    // asks us to materialize.
    let serve_rig = match &serve_addr {
        Some(addr) => Some(ServeRig::start(
            out,
            &ServeOpts {
                listen: addr.clone(),
                readers: readers.unwrap_or(4),
                core: None,
                top_k: 0,
            },
            registry.as_ref(),
            admin.as_ref(),
        )?),
        None => None,
    };
    let mut publisher = serve_rig.as_ref().map(|rig| {
        Publisher::new(
            std::sync::Arc::clone(&rig.cell),
            PublishOptions {
                core: None,
                top_k: 0,
            },
            std::sync::Arc::clone(&rig.metrics),
        )
    });
    let listener = std::net::TcpListener::bind(&listen).map_err(|e| {
        CliError::Io(std::io::Error::new(
            e.kind(),
            format!("binding coordinator listener on {listen}: {e}"),
        ))
    })?;
    writeln!(
        out,
        "coordinating {shards} shards on {} (batch {batch}, bound {bound}{})",
        listener.local_addr()?,
        straggler_ms.map_or_else(
            || ", strict seals".to_string(),
            |ms| format!(", straggler limit {ms} ms")
        ),
    )?;
    writeln!(
        out,
        "epoch      m    density      [lower, upper]      factor  mode"
    )?;
    let opts = dds_cluster::CoordinatorOptions {
        straggler: straggler_ms.map(std::time::Duration::from_millis),
        registry: registry.clone(),
        status: admin.as_ref().map(|rig| std::sync::Arc::clone(&rig.board)),
    };
    let sink = obs.sink(registry.as_ref());
    let mut deferred: Option<CliError> = None;
    let started = std::time::Instant::now();
    let report = dds_cluster::run_coordinator(config, listener, &opts, |epoch| {
        if deferred.is_some() {
            return;
        }
        let mode = if epoch.degraded {
            Some(format!(
                "DEGRADED ({} fresh, stale {:?})",
                epoch.fresh, epoch.stale
            ))
        } else if epoch.refreshed {
            Some(format!(
                "MERGED REFRESH (retained {}, level {})",
                epoch.retained, epoch.merged_level
            ))
        } else {
            None
        };
        if mode.is_some() || (log_every > 0 && epoch.epoch.is_multiple_of(log_every)) {
            let mode = mode.as_deref().unwrap_or("incremental");
            if let Err(e) = writeln!(
                out,
                "{:>5} {:>6}   {:>8.4}   [{:>8.4}, {:>8.4}]   {:>6.3}  {mode}",
                epoch.epoch,
                epoch.m,
                epoch.lower,
                epoch.lower,
                epoch.upper,
                epoch.certified_factor(),
            ) {
                deferred = Some(e.into());
            }
        }
        if let Some(publisher) = publisher.as_mut() {
            publisher.publish(
                EpochFacts {
                    epoch: epoch.epoch,
                    n: epoch.n as usize,
                    m: epoch.m,
                    density: epoch.lower,
                    lower: epoch.lower,
                    upper: epoch.upper,
                    witness: epoch.witness.as_ref(),
                    resolved: epoch.refreshed,
                },
                || unreachable!("no derived query types are configured"),
            );
        }
        if let Some(sink) = &sink {
            if epoch.epoch.is_multiple_of(sink.every) {
                if let Err(e) = sink.refresh() {
                    deferred = Some(e.into());
                }
            }
        }
    })?;
    if let Some(e) = deferred {
        return Err(e);
    }
    let elapsed = started.elapsed();
    writeln!(out)?;
    writeln!(
        out,
        "sealed {} epochs ({elapsed:.2?}): {} degraded, {} merged refreshes ({} escalated)",
        report.epochs, report.degraded, report.refreshes, report.escalations,
    )?;
    let pct = if report.raw_bytes > 0 {
        100.0 * report.digest_bytes as f64 / report.raw_bytes as f64
    } else {
        0.0
    };
    writeln!(
        out,
        "digest traffic {} B over {} raw event bytes ({pct:.2}%)",
        report.digest_bytes, report.raw_bytes,
    )?;
    if let Some(last) = &report.last {
        writeln!(
            out,
            "final bracket [{:.4}, {:.4}] over n = {}, m = {}, retained {}",
            last.lower, last.upper, last.n, last.m, last.retained,
        )?;
        if let Some(pair) = &last.witness {
            writeln!(
                out,
                "witness |S| = {}, |T| = {}",
                pair.s().len(),
                pair.t().len()
            )?;
        }
    }
    if let Some(sink) = &sink {
        sink.finish(out)?;
    }
    if let Some(rig) = serve_rig {
        rig.finish(out)?;
    }
    if let Some(rig) = &admin {
        rig.finish(out)?;
    }
    tracer.flush()?;
    Ok(())
}

/// `dds sketch`: standalone sublinear-sketch replay. A full
/// [`DynamicGraph`] mirror canonicalises the event file (the sketch's
/// turnstile contract: only *applied* mutations reach it — in production
/// that dedup belongs to whatever upstream engine owns the edge set), the
/// sketch maintains its sublinear summary, and each batch seals one epoch:
/// certified bracket, scaled estimate with its `(1+ε)` loss, retained
/// state, and exact-on-sketch instrumentation.
fn cmd_sketch<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let path = it
        .next()
        .ok_or_else(|| CliError::Usage("missing <event-file> path".into()))?;
    let mut batch_by = BatchBy::Count(25);
    let mut config = SketchConfig::default();
    let mut log_every = 0usize;
    while let Some(flag) = it.next() {
        match flag {
            "--batch" => {
                let n: usize = parse_flag_value("--batch", it.next())?;
                if n == 0 {
                    return Err(CliError::Usage("--batch must be positive".into()));
                }
                batch_by = BatchBy::Count(n);
            }
            "--time-window" => {
                let w: u64 = parse_flag_value("--time-window", it.next())?;
                if w == 0 {
                    return Err(CliError::Usage("--time-window must be positive".into()));
                }
                batch_by = BatchBy::TimeWindow(w);
            }
            "--bound" => {
                config.state_bound = parse_flag_value("--bound", it.next())?;
                if config.state_bound == 0 {
                    return Err(CliError::Usage("--bound must be positive".into()));
                }
            }
            "--drift" => {
                config.refresh_drift = parse_flag_value("--drift", it.next())?;
                if config.refresh_drift.is_nan() || config.refresh_drift <= 0.0 {
                    return Err(CliError::Usage("--drift must be positive".into()));
                }
            }
            "--threads" => {
                config.threads = parse_flag_value("--threads", it.next())?;
                if config.threads == 0 {
                    return Err(CliError::Usage("--threads must be positive".into()));
                }
            }
            "--seed" => config.seed = parse_flag_value("--seed", it.next())?,
            "--log-every" => log_every = parse_flag_value("--log-every", it.next())?,
            other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
        }
    }

    let events = dds_stream::load_events(path)?;
    let mut mirror = DynamicGraph::new();
    let mut sketch = SketchEngine::new(config);
    let started = std::time::Instant::now();
    let slices = batch_slices(&events, batch_by);
    let epochs = slices.len();
    writeln!(
        out,
        "epoch      m  retained  lvl   [lower, upper]      estimate (+/-eps)  mode"
    )?;
    for (i, chunk) in slices.iter().enumerate() {
        for ev in *chunk {
            match ev.event {
                Event::Insert(u, v) => {
                    if mirror.insert(u, v) {
                        sketch.insert(u, v);
                    }
                }
                Event::Delete(u, v) => {
                    if mirror.delete(u, v) {
                        sketch.delete(u, v);
                    }
                }
            }
        }
        // The mirror is the authoritative edge set: recover a sample that
        // over-thinned after the live graph shrank (see `is_undersampled`).
        if sketch.is_undersampled() {
            sketch.rebuild(mirror.edges());
        }
        let r = sketch.seal_epoch();
        let logged = r.refreshed
            || (log_every > 0 && r.epoch.is_multiple_of(log_every as u64))
            || i + 1 == epochs;
        if logged {
            let mode = if r.refreshed {
                solve_mode_label("REFRESH", r.solve_stats)
            } else {
                "incremental".into()
            };
            writeln!(
                out,
                "{:>5} {:>6} {:>9} {:>4}   [{:>8.4}, {:>8.4}]   {:>8.4} (1+/-{:.3})  {}",
                r.epoch, r.m, r.retained, r.level, r.lower, r.upper, r.estimate, r.loss, mode,
            )?;
        }
    }
    let wall = started.elapsed();

    let stats = sketch.stats();
    writeln!(out)?;
    writeln!(
        out,
        "replayed {} events in {epochs} epochs ({wall:.2?}): {} refreshes ({} escalated to exact-on-sketch), {} subsamples",
        events.len(),
        stats.refreshes,
        stats.escalations,
        stats.subsamples,
    )?;
    writeln!(
        out,
        "state: {} retained of {} live edges ({:.1}%), peak {}, level {} (rate 1/{}), bound {}",
        stats.retained,
        mirror.m(),
        100.0 * stats.retained as f64 / mirror.m().max(1) as f64,
        stats.peak_retained,
        stats.level,
        1u64 << stats.level.min(63),
        config.state_bound,
    )?;
    write_solve_totals(out, "exact-on-sketch totals", &stats.solve)?;
    if let Some(pair) = sketch.witness_pair() {
        writeln!(
            out,
            "witness |S| = {}, |T| = {} at sketch density {}",
            pair.s().len(),
            pair.t().len(),
            sketch.witness_density(),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ok(args: &[&str]) -> String {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        run(&args, &mut buf).expect("command should succeed");
        String::from_utf8(buf).unwrap()
    }

    fn run_err(args: &[&str]) -> CliError {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        run(&args, &mut buf).expect_err("command should fail")
    }

    fn temp_graph() -> String {
        let path = std::env::temp_dir().join(format!(
            "dds_cli_test_{}_{:?}.txt",
            std::process::id(),
            std::thread::current().id()
        ));
        let g = dds_graph::gen::complete_bipartite(2, 3);
        save_edge_list(&g, &path).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn help_prints_usage() {
        assert!(run_ok(&["help"]).contains("usage:"));
        assert!(run_ok(&[]).contains("usage:"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(matches!(run_err(&["frobnicate"]), CliError::Usage(_)));
    }

    #[test]
    fn stats_reports_counts() {
        let path = temp_graph();
        let out = run_ok(&["stats", &path]);
        assert!(out.contains("vertices        5"), "{out}");
        assert!(out.contains("edges           6"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn exact_finds_the_optimum() {
        let path = temp_graph();
        let out = run_ok(&["exact", &path]);
        assert!(out.contains("6/√(2·3)"), "{out}");
        assert!(out.contains("arena reuse hits"), "{out}");
        let base = run_ok(&["exact", &path, "--baseline"]);
        assert!(base.contains("6/√(2·3)"), "{base}");
        let ablated = run_ok(&[
            "exact",
            &path,
            "--no-core",
            "--no-gamma",
            "--no-tie",
            "--verbose",
        ]);
        assert!(ablated.contains("network nodes"), "{ablated}");
        let par = run_ok(&["exact", &path, "--threads", "2"]);
        assert!(par.contains("6/√(2·3)"), "{par}");
        assert!(par.contains("threads              2\n"), "{par}");
        // --threads 0 (and an omitted flag) auto-detect the host; the
        // footer marks the resolved count so runs stay reproducible.
        let auto = run_ok(&["exact", &path, "--threads", "0"]);
        assert!(auto.contains("6/√(2·3)"), "{auto}");
        assert!(auto.contains("(auto)"), "{auto}");
        assert!(
            out.contains("(auto)"),
            "omitted --threads is auto too: {out}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn approx_variants_run() {
        let path = temp_graph();
        for algo in ["core", "grid", "exhaustive"] {
            let out = run_ok(&["approx", &path, "--algo", algo]);
            assert!(out.contains("density"), "{algo}: {out}");
        }
        let par = run_ok(&["approx", &path, "--algo", "grid", "--threads", "2"]);
        assert!(par.contains("ratios tried"), "{par}");
        assert!(matches!(
            run_err(&["approx", &path, "--algo", "magic"]),
            CliError::Usage(_)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn core_subcommands() {
        let path = temp_graph();
        let out = run_ok(&["core", &path, "--xy", "3,2"]);
        assert!(out.contains("|S| = 2, |T| = 3"), "{out}");
        let out = run_ok(&["core", &path, "--max-product"]);
        assert!(out.contains("x·y = 6"), "{out}");
        let out = run_ok(&["core", &path, "--skyline"]);
        assert!(out.lines().count() >= 3, "{out}");
        assert!(matches!(run_err(&["core", &path]), CliError::Usage(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn peel_requires_ratio() {
        let path = temp_graph();
        let out = run_ok(&["peel", &path, "--ratio", "2/3"]);
        assert!(out.contains("density"), "{out}");
        assert!(matches!(run_err(&["peel", &path]), CliError::Usage(_)));
        assert!(matches!(
            run_err(&["peel", &path, "--ratio", "0/3"]),
            CliError::Usage(_)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn topk_lists_disjoint_pairs() {
        let path = temp_graph();
        let out = run_ok(&["topk", &path, "--k", "2", "--algo", "exact"]);
        assert!(out.contains("#1 density"), "{out}");
        assert!(matches!(
            run_err(&["topk", &path, "--algo", "nope"]),
            CliError::Usage(_)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dot_emits_graphviz() {
        let path = temp_graph();
        let out = run_ok(&["dot", &path]);
        assert!(out.starts_with("digraph dds {"), "{out}");
        let hi = run_ok(&["dot", &path, "--highlight"]);
        assert!(hi.contains("crimson"), "{hi}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gen_writes_a_loadable_graph() {
        let out_path = std::env::temp_dir().join(format!(
            "dds_cli_gen_{}_{:?}.txt",
            std::process::id(),
            std::thread::current().id()
        ));
        let out_str = out_path.to_string_lossy().into_owned();
        let msg = run_ok(&[
            "gen", "gnm", "--n", "20", "--m", "50", "--seed", "7", "--out", &out_str,
        ]);
        assert!(msg.contains("wrote 20 vertices, 50 edges"), "{msg}");
        let g = load_edge_list(&out_path, &ParseOptions::default()).unwrap();
        assert_eq!((g.n(), g.m()), (20, 50));
        std::fs::remove_file(&out_path).ok();
    }

    #[test]
    fn gen_planted_emits_block_location() {
        let out_path = std::env::temp_dir().join(format!(
            "dds_cli_plant_{}_{:?}.txt",
            std::process::id(),
            std::thread::current().id()
        ));
        let out_str = out_path.to_string_lossy().into_owned();
        let msg = run_ok(&[
            "gen", "planted", "--n", "30", "--m", "60", "--plant", "3,4,1.0", "--out", &out_str,
        ]);
        assert!(msg.contains("# planted S"), "{msg}");
        std::fs::remove_file(&out_path).ok();
    }

    #[test]
    fn missing_file_propagates_graph_error() {
        assert!(matches!(
            run_err(&["stats", "/definitely/not/here.txt"]),
            CliError::Graph(_)
        ));
    }

    fn temp_events() -> String {
        let path = std::env::temp_dir().join(format!(
            "dds_cli_stream_{}_{:?}.events",
            std::process::id(),
            std::thread::current().id()
        ));
        // K_{2,2} assembles, a noise edge arrives, then one K edge leaves.
        let text = "# test stream\n\
                    0 + 0 2\n1 + 0 3\n2 + 1 2\n3 + 1 3\n\
                    4 + 7 8\n\
                    5 - 1 3\n";
        std::fs::write(&path, text).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn stream_replays_a_trajectory() {
        let path = temp_events();
        let out = run_ok(&["stream", &path, "--batch", "4"]);
        assert!(out.contains("RESOLVE"), "first batch must solve: {out}");
        assert!(out.contains("epochs"), "{out}");
        assert!(out.contains("final density"), "{out}");
        assert!(out.contains("witness |S|"), "{out}");
        assert!(
            out.contains("re-solve totals:"),
            "exact re-solves must report instrumentation: {out}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_accepts_time_windows_and_solver() {
        let path = temp_events();
        let out = run_ok(&[
            "stream",
            &path,
            "--time-window",
            "2",
            "--solver",
            "approx",
            "--tolerance",
            "0.5",
            "--log-every",
            "1",
        ]);
        assert!(
            out.contains("incremental") || out.contains("RESOLVE"),
            "{out}"
        );
        assert!(out.contains("tolerance 0.5"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_window_replays_with_expiry() {
        let path = temp_events();
        let out = run_ok(&["stream", &path, "--window", "3", "--batch", "2"]);
        assert!(
            out.contains("CORE REFRESH") || out.contains("EXACT"),
            "first batch must certify: {out}"
        );
        assert!(out.contains("edges expired"), "{out}");
        assert!(out.contains("within band"), "{out}");
        // Window 3 over the 6-tick stream: the early K-edges expire.
        assert!(out.contains("window 3:"), "{out}");
        let quiet = run_ok(&["stream", &path, "--window", "100", "--no-escalate"]);
        assert!(quiet.contains("escalation off"), "{quiet}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_window_usage_errors() {
        let path = temp_events();
        assert!(matches!(
            run_err(&["stream", &path, "--window", "0"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&["stream", &path, "--no-escalate"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&["stream", &path, "--window", "5", "--solver", "exact"]),
            CliError::Usage(_)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_usage_errors() {
        let path = temp_events();
        assert!(matches!(run_err(&["stream"]), CliError::Usage(_)));
        assert!(matches!(
            run_err(&["stream", &path, "--batch", "0"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&["stream", &path, "--batch", "x"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&["stream", &path, "--time-window", "0"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&["stream", &path, "--solver", "magic"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&["stream", &path, "--tolerance", "-1"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&["stream", &path, "--frobnicate"]),
            CliError::Usage(_)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_accepts_threads_and_sketch_tier() {
        let path = temp_events();
        let out = run_ok(&["stream", &path, "--threads", "2", "--batch", "3"]);
        assert!(out.contains("RESOLVE"), "{out}");
        // min_m 0: every re-solve goes through the sketch tier.
        let out = run_ok(&[
            "stream",
            &path,
            "--sketch",
            "--sketch-min-m",
            "0",
            "--batch",
            "3",
        ]);
        assert!(out.contains("SKETCH RESOLVE"), "{out}");
        assert!(out.contains("sketch tier:"), "{out}");
        // The tier also rides the window engine.
        let windowed = run_ok(&[
            "stream",
            &path,
            "--window",
            "4",
            "--sketch",
            "--sketch-min-m",
            "0",
        ]);
        assert!(windowed.contains("SKETCH REFRESH"), "{windowed}");
        assert!(windowed.contains("sketch tier:"), "{windowed}");
        assert!(matches!(
            run_err(&["stream", &path, "--sketch-min-m", "0"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&["stream", &path, "--sketch", "--sketch-bound", "0"]),
            CliError::Usage(_)
        ));
        // --threads 0 auto-detects rather than erroring.
        let auto = run_ok(&["stream", &path, "--threads", "0", "--batch", "3"]);
        assert!(auto.contains("(auto)"), "{auto}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sketch_replays_with_bracket_and_stats() {
        let path = temp_events();
        let out = run_ok(&["sketch", &path, "--batch", "2", "--log-every", "1"]);
        assert!(out.contains("REFRESH"), "{out}");
        assert!(out.contains("exact-on-sketch totals:"), "{out}");
        assert!(out.contains("state:"), "{out}");
        assert!(out.contains("witness |S|"), "{out}");
        // A tiny bound forces subsampling even on the toy stream.
        let tiny = run_ok(&["sketch", &path, "--bound", "2", "--batch", "2"]);
        assert!(tiny.contains("bound 2"), "{tiny}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sketch_usage_errors() {
        let path = temp_events();
        assert!(matches!(run_err(&["sketch"]), CliError::Usage(_)));
        for bad in [
            ["sketch", &path, "--bound", "0"],
            ["sketch", &path, "--drift", "0"],
            ["sketch", &path, "--threads", "0"],
            ["sketch", &path, "--batch", "0"],
            ["sketch", &path, "--frobnicate", "1"],
        ] {
            assert!(matches!(run_err(&bad), CliError::Usage(_)), "{bad:?}");
        }
        assert!(matches!(
            run_err(&["sketch", "/definitely/not/here.events"]),
            CliError::Stream(_)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_replays_with_merged_certification() {
        let path = temp_events();
        let out = run_ok(&["shard", &path, "--shards", "3", "--batch", "2"]);
        assert!(out.contains("across 3 shards"), "{out}");
        assert!(
            out.contains("(auto)"),
            "omitted --threads auto-detects: {out}"
        );
        assert!(out.contains("MERGED REFRESH"), "{out}");
        assert!(out.contains("merged refreshes"), "{out}");
        assert!(out.contains("final density"), "{out}");
        assert!(out.contains("witness |S|"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_checkpoint_then_resume_replays_nothing_twice() {
        let path = temp_events();
        let ck = std::env::temp_dir().join(format!(
            "dds_cli_shard_ck_{}_{:?}.snap",
            std::process::id(),
            std::thread::current().id()
        ));
        let ck_str = ck.to_string_lossy().into_owned();
        let first = run_ok(&[
            "shard",
            &path,
            "--shards",
            "2",
            "--batch",
            "2",
            "--checkpoint",
            &ck_str,
        ]);
        assert!(first.contains("checkpointed"), "{first}");
        assert!(ck.exists());
        // Resume from the checkpoint: the cursor sits at EOF, so nothing
        // replays and the engine state carries over.
        let second = run_ok(&[
            "shard",
            &path,
            "--shards",
            "2",
            "--batch",
            "2",
            "--checkpoint",
            &ck_str,
            "--resume",
        ]);
        assert!(second.contains("resumed from"), "{second}");
        assert!(second.contains("replayed 0 events"), "{second}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&ck).ok();
    }

    #[test]
    fn shard_usage_errors() {
        let path = temp_events();
        assert!(matches!(run_err(&["shard"]), CliError::Usage(_)));
        for bad in [
            vec!["shard", &path, "--shards", "0"],
            vec!["shard", &path, "--batch", "0"],
            vec!["shard", &path, "--bound", "0"],
            vec!["shard", &path, "--drift", "0"],
            vec!["shard", &path, "--resume"],
            vec!["shard", &path, "--poll-ms", "50"],
            vec!["shard", &path, "--frobnicate"],
        ] {
            assert!(matches!(run_err(&bad), CliError::Usage(_)), "{bad:?}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_resume_rejects_mismatched_identity() {
        let path = temp_events();
        let ck = std::env::temp_dir().join(format!(
            "dds_cli_shard_idck_{}_{:?}.snap",
            std::process::id(),
            std::thread::current().id()
        ));
        let ck_str = ck.to_string_lossy().into_owned();
        run_ok(&[
            "shard",
            &path,
            "--shards",
            "2",
            "--batch",
            "2",
            "--checkpoint",
            &ck_str,
        ]);
        // Resuming under a different shard count must fail loudly: edge
        // routing is derived from it, so a silent resume would re-hash
        // edges onto different shards.
        let err = run_err(&[
            "shard",
            &path,
            "--shards",
            "3",
            "--batch",
            "2",
            "--checkpoint",
            &ck_str,
            "--resume",
        ]);
        let msg = err.to_string();
        assert!(msg.contains("checkpoint identity mismatch"), "{msg}");
        assert!(msg.contains("shard count"), "{msg}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&ck).ok();
    }

    /// An output sink the test can inspect while the command still runs
    /// — how the cluster tests learn the coordinator's bound port.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8_lossy(&self.0.lock().unwrap()).into_owned()
        }
    }

    #[test]
    fn cluster_round_trip_certifies_over_tcp() {
        let path = temp_events();
        let ckdir = std::env::temp_dir().join(format!(
            "dds_cli_cluster_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&ckdir).unwrap();
        let ck = ckdir.join("shard0.snap").to_string_lossy().into_owned();

        let coord_out = SharedBuf::default();
        let coordinator = {
            let mut sink = coord_out.clone();
            std::thread::spawn(move || {
                let args: Vec<String> = [
                    "cluster-coordinator",
                    "--listen",
                    "127.0.0.1:0",
                    "--shards",
                    "2",
                    "--batch",
                    "2",
                    "--straggler-ms",
                    "5000",
                    "--log-every",
                    "1",
                ]
                .iter()
                .map(|s| s.to_string())
                .collect();
                run(&args, &mut sink).expect("coordinator should succeed");
            })
        };
        // The coordinator prints its resolved address before accepting.
        let addr = loop {
            let text = coord_out.contents();
            if let Some(line) = text.lines().find(|l| l.starts_with("coordinating")) {
                let addr = line
                    .split(" on ")
                    .nth(1)
                    .and_then(|rest| rest.split(' ').next())
                    .expect("address in the banner");
                break addr.to_string();
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        };

        let workers: Vec<_> = (0..2)
            .map(|k| {
                let path = path.clone();
                let addr = addr.clone();
                let ck = ck.clone();
                std::thread::spawn(move || {
                    let mut args = vec![
                        "cluster-shard".to_string(),
                        path,
                        "--connect".to_string(),
                        addr,
                        "--shard-id".to_string(),
                        format!("{k}/2"),
                        "--batch".to_string(),
                        "2".to_string(),
                        "--idle-ms".to_string(),
                        "300".to_string(),
                    ];
                    if k == 0 {
                        args.push("--checkpoint".to_string());
                        args.push(ck);
                    }
                    let mut buf = Vec::new();
                    run(&args, &mut buf).expect("worker should succeed");
                    String::from_utf8(buf).unwrap()
                })
            })
            .collect();
        for (k, worker) in workers.into_iter().enumerate() {
            let out = worker.join().unwrap();
            assert!(out.contains(&format!("shard {k} epoch 3")), "{out}");
        }
        coordinator.join().unwrap();
        let out = coord_out.contents();
        assert!(out.contains("sealed 3 epochs"), "{out}");
        assert!(out.contains("0 degraded"), "{out}");
        assert!(out.contains("MERGED REFRESH"), "{out}");
        assert!(out.contains("digest traffic"), "{out}");

        // Satellite: resuming the worker checkpoint under different
        // identity flags fails before it ever dials the coordinator.
        let err = run_err(&[
            "cluster-shard",
            &path,
            "--connect",
            "127.0.0.1:9",
            "--shard-id",
            "0/2",
            "--batch",
            "7",
            "--checkpoint",
            &ck,
            "--resume",
        ]);
        let msg = err.to_string();
        assert!(msg.contains("checkpoint identity mismatch"), "{msg}");
        assert!(
            msg.contains("batch size (checkpoint 2, requested 7)"),
            "{msg}"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(&ckdir).ok();
    }

    #[test]
    fn cluster_usage_errors() {
        let path = temp_events();
        for bad in [
            vec!["cluster-shard"],
            vec!["cluster-shard", &path],
            vec!["cluster-shard", &path, "--connect", "x:1"],
            vec![
                "cluster-shard",
                &path,
                "--connect",
                "x:1",
                "--shard-id",
                "3",
            ],
            vec![
                "cluster-shard",
                &path,
                "--connect",
                "x:1",
                "--shard-id",
                "2/2",
            ],
            vec![
                "cluster-shard",
                &path,
                "--connect",
                "x:1",
                "--shard-id",
                "0/0",
            ],
            vec![
                "cluster-shard",
                &path,
                "--connect",
                "x:1",
                "--shard-id",
                "0/2",
                "--resume",
            ],
            vec![
                "cluster-shard",
                &path,
                "--connect",
                "x:1",
                "--shard-id",
                "0/2",
                "--batch",
                "0",
            ],
            vec!["cluster-coordinator", "--shards", "2"],
            vec!["cluster-coordinator", "--listen", "127.0.0.1:0"],
            vec![
                "cluster-coordinator",
                "--listen",
                "127.0.0.1:0",
                "--shards",
                "0",
            ],
            vec![
                "cluster-coordinator",
                "--listen",
                "127.0.0.1:0",
                "--shards",
                "2",
                "--straggler-ms",
                "0",
            ],
            vec![
                "cluster-coordinator",
                "--listen",
                "127.0.0.1:0",
                "--shards",
                "2",
                "--readers",
                "4",
            ],
            vec![
                "cluster-coordinator",
                "--listen",
                "127.0.0.1:0",
                "--shards",
                "2",
                "--nope",
            ],
        ] {
            assert!(matches!(run_err(&bad), CliError::Usage(_)), "{bad:?}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_follow_drains_a_static_file_and_checkpoints() {
        let path = temp_events();
        let ck = std::env::temp_dir().join(format!(
            "dds_cli_follow_ck_{}_{:?}.snap",
            std::process::id(),
            std::thread::current().id()
        ));
        let ck_str = ck.to_string_lossy().into_owned();
        let out = run_ok(&[
            "stream",
            &path,
            "--follow",
            "--batch",
            "3",
            "--idle-ms",
            "80",
            "--poll-ms",
            "10",
            "--checkpoint",
            &ck_str,
        ]);
        assert!(out.contains("following"), "{out}");
        assert!(out.contains("RESOLVE"), "{out}");
        assert!(out.contains("followed 6 events"), "{out}");
        assert!(ck.exists(), "final checkpoint must land");
        // Resume: cursor at EOF, nothing to do.
        let resumed = run_ok(&[
            "stream",
            &path,
            "--follow",
            "--batch",
            "3",
            "--idle-ms",
            "80",
            "--poll-ms",
            "10",
            "--checkpoint",
            &ck_str,
            "--resume",
        ]);
        assert!(resumed.contains("resumed from"), "{resumed}");
        assert!(resumed.contains("followed 0 events"), "{resumed}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&ck).ok();
    }

    /// The full serving-flag validation matrix: every flag combination
    /// that must be rejected, in one place — each with the reason the
    /// combination is unserviceable.
    #[test]
    fn stream_follow_usage_errors() {
        let path = temp_events();
        for bad in [
            // --checkpoint needs a cursor to resume from: follow mode only.
            vec!["stream", &path, "--checkpoint", "/tmp/x.snap"],
            // --checkpoint needs an engine snapshot; the window engine has none.
            vec![
                "stream",
                &path,
                "--follow",
                "--window",
                "5",
                "--checkpoint",
                "/tmp/x.snap",
            ],
            // Follow seals epochs by event count, not stream time.
            vec!["stream", &path, "--follow", "--time-window", "2"],
            vec![
                "stream",
                &path,
                "--follow",
                "--window",
                "5",
                "--time-window",
                "2",
            ],
            // Tail-loop pacing flags are follow-only, and must be positive.
            vec!["stream", &path, "--idle-ms", "100"],
            vec!["stream", &path, "--poll-ms", "100"],
            vec!["stream", &path, "--follow", "--idle-ms", "0"],
            vec!["stream", &path, "--follow", "--poll-ms", "0"],
            // --resume/--checkpoint-every ride on --checkpoint.
            vec!["stream", &path, "--follow", "--resume"],
            vec!["stream", &path, "--follow", "--checkpoint-every", "5"],
            // The window engine picks its own escalation; --solver is the
            // stream engine's knob, with or without --follow.
            vec![
                "stream", &path, "--follow", "--window", "5", "--solver", "exact",
            ],
            // --no-escalate is a window knob.
            vec!["stream", &path, "--follow", "--no-escalate"],
        ] {
            assert!(matches!(run_err(&bad), CliError::Usage(_)), "{bad:?}");
        }
        // The --checkpoint rejection must name the flag that needs the
        // snapshot, not blame --follow --window as a pair.
        match run_err(&[
            "stream",
            &path,
            "--follow",
            "--window",
            "5",
            "--checkpoint",
            "/tmp/x.snap",
        ]) {
            CliError::Usage(msg) => assert!(msg.contains("--checkpoint"), "{msg}"),
            other => panic!("expected usage error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    /// `--follow --window` without a checkpoint is a serviceable
    /// combination (the over-broad rejection was the bug): the tail loop
    /// runs the window engine and reports expiry like the replay path.
    #[test]
    fn stream_follow_window_tails_with_expiry() {
        let path = temp_events();
        let out = run_ok(&[
            "stream",
            &path,
            "--follow",
            "--window",
            "3",
            "--batch",
            "2",
            "--idle-ms",
            "80",
            "--poll-ms",
            "10",
        ]);
        assert!(out.contains("following"), "{out}");
        assert!(out.contains("window 3"), "{out}");
        assert!(
            out.contains("CORE REFRESH") || out.contains("EXACT"),
            "first batch must certify: {out}"
        );
        assert!(out.contains("followed 6 events"), "{out}");
        assert!(out.contains("edges expired"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_usage_errors() {
        let path = temp_events();
        for bad in [
            vec!["serve", &path],
            vec!["serve", &path, "--listen", "127.0.0.1:0", "--readers", "0"],
            vec!["serve", &path, "--listen", "127.0.0.1:0", "--core", "5"],
            vec!["serve", &path, "--listen", "127.0.0.1:0", "--topk"],
            vec!["serve", &path, "--listen", "127.0.0.1:0", "--batch", "0"],
            vec!["serve", &path, "--listen", "127.0.0.1:0", "--resume"],
            vec![
                "serve",
                &path,
                "--listen",
                "127.0.0.1:0",
                "--shards",
                "2",
                "--solver",
                "exact",
            ],
            vec!["serve", &path, "--listen", "127.0.0.1:0", "--bogus"],
        ] {
            assert!(matches!(run_err(&bad), CliError::Usage(_)), "{bad:?}");
        }
        std::fs::remove_file(&path).ok();
    }

    /// End-to-end `dds serve`: real TCP queries answered while the follow
    /// loop is live, for both engine back ends.
    #[test]
    fn serve_answers_queries_while_following() {
        use std::io::{BufRead, BufReader, Write as IoWrite};
        for extra in [&[][..], &["--shards", "2"][..]] {
            let path = temp_events();
            // Reserve a port: bind :0, note the address, release it. A
            // tiny race with other processes, but private enough for CI.
            let addr = {
                let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
                probe.local_addr().unwrap().to_string()
            };
            let serve_args: Vec<String> = [
                "serve",
                &path,
                "--listen",
                &addr,
                "--batch",
                "2",
                "--idle-ms",
                "2000",
                "--poll-ms",
                "10",
                "--core",
                "1,1",
                "--topk",
                "2",
            ]
            .iter()
            .map(|s| s.to_string())
            .chain(extra.iter().map(|s| s.to_string()))
            .collect();
            let server = std::thread::spawn(move || {
                let mut buf = Vec::new();
                run(&serve_args, &mut buf).expect("serve should succeed");
                String::from_utf8(buf).unwrap()
            });
            // The listener comes up before the follow loop starts; retry
            // briefly while the serve thread boots.
            let mut stream = None;
            for _ in 0..200 {
                match std::net::TcpStream::connect(&addr) {
                    Ok(s) => {
                        stream = Some(s);
                        break;
                    }
                    Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
                }
            }
            let mut stream = stream.expect("server must come up");
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut query = |q: &str| {
                stream.write_all(format!("{q}\n").as_bytes()).unwrap();
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                line.trim_end().to_string()
            };
            // Wait for the first publish (epoch >= 1) so the answers
            // below come from real ingested state.
            let mut density = String::new();
            for _ in 0..200 {
                density = query("DENSITY");
                if !density.contains("epoch=0") {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            assert!(density.starts_with("OK DENSITY epoch="), "{density}");
            assert!(!density.contains("epoch=0"), "publish must land: {density}");
            let member = query("MEMBER 0");
            assert!(member.starts_with("OK MEMBER"), "{member}");
            let core = query("CORE 1 1 0");
            assert!(core.starts_with("OK CORE epoch="), "{core}");
            let topk = query("TOPK 2");
            assert!(topk.starts_with("OK TOPK"), "{topk}");
            let err = query("CORE 9 9 0");
            assert!(err.starts_with("ERR epoch="), "{err}");
            stream.write_all(b"QUIT\n").unwrap();
            drop(stream);
            let out = server.join().unwrap();
            assert!(out.contains("serving on"), "{out}");
            assert!(out.contains("followed 6 events"), "{out}");
            assert!(out.contains("served"), "{out}");
            assert!(out.contains("snapshots published"), "{out}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn serve_checkpoints_and_resumes_like_follow() {
        let path = temp_events();
        let ck = temp_path("serve_ck.snap");
        let out = run_ok(&[
            "serve",
            &path,
            "--listen",
            "127.0.0.1:0",
            "--batch",
            "3",
            "--idle-ms",
            "80",
            "--poll-ms",
            "10",
            "--checkpoint",
            &ck,
        ]);
        assert!(out.contains("followed 6 events"), "{out}");
        assert!(std::path::Path::new(&ck).exists(), "checkpoint must land");
        let resumed = run_ok(&[
            "serve",
            &path,
            "--listen",
            "127.0.0.1:0",
            "--batch",
            "3",
            "--idle-ms",
            "80",
            "--poll-ms",
            "10",
            "--checkpoint",
            &ck,
            "--resume",
        ]);
        assert!(resumed.contains("resumed from"), "{resumed}");
        assert!(resumed.contains("followed 0 events"), "{resumed}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&ck).ok();
    }

    #[test]
    fn help_mentions_serve() {
        let out = run_ok(&["help"]);
        assert!(out.contains("dds serve"), "{out}");
        assert!(out.contains("DENSITY / MEMBER"), "{out}");
    }

    #[test]
    fn stream_parse_and_io_errors_propagate() {
        assert!(matches!(
            run_err(&["stream", "/definitely/not/here.events"]),
            CliError::Stream(_)
        ));
        let path = std::env::temp_dir().join(format!(
            "dds_cli_badstream_{}_{:?}.events",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, "0 + 1 2\n1 * 3 4\n").unwrap();
        let err = run_err(&["stream", &path.to_string_lossy(), "--batch", "2"]);
        match err {
            CliError::Stream(e) => assert!(e.to_string().contains("line 2"), "{e}"),
            other => panic!("expected stream error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn help_mentions_stream() {
        assert!(run_ok(&["help"]).contains("dds stream"));
    }

    fn temp_path(tag: &str) -> String {
        std::env::temp_dir()
            .join(format!(
                "dds_cli_{tag}_{}_{:?}",
                std::process::id(),
                std::thread::current().id()
            ))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn stream_metrics_and_trace_files_emit() {
        let path = temp_events();
        let metrics = temp_path("metrics.prom");
        let trace = temp_path("trace.jsonl");
        let out = run_ok(&[
            "stream",
            &path,
            "--batch",
            "2",
            "--metrics",
            &metrics,
            "--trace",
            &trace,
        ]);
        assert!(out.contains("metrics exposition at"), "{out}");
        let text = std::fs::read_to_string(&metrics).unwrap();
        let parsed = dds_obs::parse_exposition(&text).unwrap();
        // 6 events at batch 2 seal exactly 3 epochs; the counter must
        // reconcile with the replay's own epoch count.
        assert!(
            parsed
                .get("dds_stream_epochs_total")
                .is_some_and(|v| *v == 3u64),
            "{text}"
        );
        assert!(
            parsed
                .get("dds_stream_inserts_total")
                .is_some_and(|v| v.as_u64() >= Some(4)),
            "{text}"
        );
        assert!(
            parsed.contains_key("dds_pool_tasks_total"),
            "worker-pool counters ride the same exposition: {text}"
        );
        assert!(
            std::fs::metadata(format!("{metrics}.jsonl")).unwrap().len() > 0,
            "jsonl snapshot must land"
        );
        let spans = std::fs::read_to_string(&trace).unwrap();
        assert!(spans.contains("\"span\":\"stream.apply\""), "{spans}");
        assert!(
            !spans.contains("dur_us"),
            "CLI traces are deterministic (no wall-clock): {spans}"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&metrics).ok();
        std::fs::remove_file(format!("{metrics}.jsonl")).ok();
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn stream_follow_keeps_exposition_fresh() {
        let path = temp_events();
        let metrics = temp_path("follow_metrics.prom");
        let out = run_ok(&[
            "stream",
            &path,
            "--follow",
            "--batch",
            "3",
            "--idle-ms",
            "80",
            "--poll-ms",
            "10",
            "--metrics",
            &metrics,
            "--metrics-every",
            "1",
        ]);
        assert!(out.contains("followed 6 events"), "{out}");
        let text = std::fs::read_to_string(&metrics).unwrap();
        let parsed = dds_obs::parse_exposition(&text).unwrap();
        assert!(
            parsed
                .get("dds_stream_epochs_total")
                .is_some_and(|v| *v == 2u64),
            "{text}"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&metrics).ok();
        std::fs::remove_file(format!("{metrics}.jsonl")).ok();
    }

    #[test]
    fn shard_metrics_and_trace_emit() {
        let path = temp_events();
        let metrics = temp_path("shard_metrics.prom");
        let trace = temp_path("shard_trace.jsonl");
        let out = run_ok(&[
            "shard",
            &path,
            "--shards",
            "2",
            "--batch",
            "2",
            "--metrics",
            &metrics,
            "--trace",
            &trace,
        ]);
        assert!(out.contains("metrics exposition at"), "{out}");
        let text = std::fs::read_to_string(&metrics).unwrap();
        let parsed = dds_obs::parse_exposition(&text).unwrap();
        assert!(
            parsed
                .get("dds_shard_epochs_total")
                .is_some_and(|v| *v == 3u64),
            "{text}"
        );
        assert!(
            parsed.contains_key("dds_sketch_refreshes_total"),
            "merged sketch refreshes must sum into the shared registry: {text}"
        );
        let spans = std::fs::read_to_string(&trace).unwrap();
        assert!(spans.contains("\"span\":\"shard.apply\""), "{spans}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&metrics).ok();
        std::fs::remove_file(format!("{metrics}.jsonl")).ok();
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn obs_usage_errors() {
        let path = temp_events();
        for bad in [
            vec!["stream", &path, "--metrics-every", "5"],
            vec![
                "stream",
                &path,
                "--metrics",
                "/tmp/m.prom",
                "--metrics-every",
                "0",
            ],
            vec!["shard", &path, "--metrics-every", "5"],
        ] {
            assert!(matches!(run_err(&bad), CliError::Usage(_)), "{bad:?}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn exact_metrics_exports_solve_counters() {
        let path = temp_graph();
        let metrics = temp_path("exact_metrics.prom");
        let out = run_ok(&["exact", &path, "--metrics", &metrics]);
        assert!(out.contains("metrics exposition at"), "{out}");
        let text = std::fs::read_to_string(&metrics).unwrap();
        let parsed = dds_obs::parse_exposition(&text).unwrap();
        assert!(
            parsed
                .get("dds_exact_ratios_solved_total")
                .is_some_and(|v| v.as_u64() > Some(0)),
            "{text}"
        );
        assert!(
            matches!(
                run_err(&["exact", &path, "--baseline", "--metrics", &metrics]),
                CliError::Usage(_)
            ),
            "--baseline has no context counters to export"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&metrics).ok();
    }

    #[test]
    fn trace_report_reproduces_the_committed_golden() {
        let fixtures = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
        let fixture = format!("{fixtures}/trace_fixture.jsonl");
        let folded_out = temp_path("trace_report.folded");
        let out = run_ok(&["trace-report", &fixture, "--folded", &folded_out]);
        let golden_table =
            std::fs::read_to_string(format!("{fixtures}/trace_report_table.golden")).unwrap();
        assert_eq!(
            out,
            format!("{golden_table}folded stacks at {folded_out}\n"),
            "trace-report table must reproduce the golden byte-for-byte"
        );
        let golden_folded =
            std::fs::read_to_string(format!("{fixtures}/trace_report_folded.golden")).unwrap();
        assert_eq!(std::fs::read_to_string(&folded_out).unwrap(), golden_folded);
        assert!(matches!(
            run_err(&["trace-report", "/definitely/not/here.jsonl"]),
            CliError::Io(_)
        ));
        std::fs::remove_file(&folded_out).ok();
    }

    #[test]
    fn replays_stay_byte_identical_without_admin() {
        // The determinism pin for this PR: with `--admin` unset the trace
        // path never reads the wall clock, so identical replays produce
        // byte-identical trace files (stdout still reports elapsed time).
        let path = temp_events();
        let trace_a = temp_path("det_a.jsonl");
        let trace_b = temp_path("det_b.jsonl");
        run_ok(&["stream", &path, "--batch", "2", "--trace", &trace_a]);
        run_ok(&["stream", &path, "--batch", "2", "--trace", &trace_b]);
        assert_eq!(
            std::fs::read(&trace_a).unwrap(),
            std::fs::read(&trace_b).unwrap(),
            "deterministic traces must be byte-identical"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&trace_a).ok();
        std::fs::remove_file(&trace_b).ok();
    }

    /// A stdout sink the test can inspect while `run` is still inside the
    /// follow loop — how the admin tests learn the ephemeral port.
    #[derive(Clone, Default)]
    struct SharedOut(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl Write for SharedOut {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// Polls the shared buffer until `prefix` appears, returning the rest
    /// of that line (e.g. the bound address it announces).
    fn wait_for_line(buf: &SharedOut, prefix: &str) -> String {
        for _ in 0..400 {
            let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
            if let Some(line) = text.lines().find(|l| l.starts_with(prefix)) {
                return line[prefix.len()..].trim().to_string();
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!("never saw {prefix:?} in the output");
    }

    #[test]
    fn serve_admin_answers_all_routes_and_stats() {
        use std::io::{BufRead, BufReader};
        let path = temp_events();
        let buf = SharedOut::default();
        let handle = {
            let args: Vec<String> = [
                "serve",
                &path,
                "--listen",
                "127.0.0.1:0",
                "--batch",
                "2",
                "--idle-ms",
                "1500",
                "--poll-ms",
                "10",
                "--admin",
                "127.0.0.1:0",
                "--slow-us",
                "0",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            let mut out = buf.clone();
            std::thread::spawn(move || run(&args, &mut out))
        };
        let admin_addr = wait_for_line(&buf, "admin endpoint on ");
        let serve_addr = wait_for_line(&buf, "serving on ");
        let serve_addr = serve_addr.split_whitespace().next().unwrap().to_string();

        // Readiness flips once the first snapshot publishes.
        for _ in 0..400 {
            let (code, _) = dds_obs::http_get(&admin_addr, "/readyz").unwrap();
            if code == 200 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let (code, body) = dds_obs::http_get(&admin_addr, "/healthz").unwrap();
        assert_eq!((code, body.as_str()), (200, "ok\n"));
        let (code, metrics) = dds_obs::http_get(&admin_addr, "/metrics").unwrap();
        assert_eq!(code, 200);
        let parsed = dds_obs::parse_exposition(&metrics).unwrap();
        assert!(parsed.contains_key("dds_serve_readers"), "{metrics}");
        let (code, status) = dds_obs::http_get(&admin_addr, "/status").unwrap();
        assert_eq!(code, 200);
        assert!(status.contains("\"role\":\"serve\""), "{status}");
        assert!(status.contains("\"readers\":4"), "{status}");
        let (code, _) = dds_obs::http_get(&admin_addr, "/slow").unwrap();
        assert_eq!(code, 200);
        let (code, _) = dds_obs::http_get(&admin_addr, "/nope").unwrap();
        assert_eq!(code, 404);

        // The STATS verb answers from the same live counters over TCP.
        let mut stream = std::net::TcpStream::connect(&serve_addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        stream.write_all(b"STATS\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("OK STATS epoch="), "{line}");
        assert!(line.contains("readers=4"), "{line}");
        stream.write_all(b"QUIT\n").unwrap();
        drop(stream);

        handle.join().unwrap().unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(
            text.contains("slow ops (threshold 0 us"),
            "a zero-threshold ring must drain at exit: {text}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_follow_admin_tracks_readiness_and_staleness() {
        let path = temp_events();
        let buf = SharedOut::default();
        let handle = {
            let args: Vec<String> = [
                "stream",
                &path,
                "--follow",
                "--batch",
                "2",
                "--idle-ms",
                "1500",
                "--poll-ms",
                "10",
                "--admin",
                "127.0.0.1:0",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            let mut out = buf.clone();
            std::thread::spawn(move || run(&args, &mut out))
        };
        let admin_addr = wait_for_line(&buf, "admin endpoint on ");
        let mut ready_body = String::new();
        for _ in 0..400 {
            let (code, body) = dds_obs::http_get(&admin_addr, "/readyz").unwrap();
            if code == 200 {
                ready_body = body;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(ready_body.starts_with("ready"), "{ready_body}");
        let (code, status) = dds_obs::http_get(&admin_addr, "/status").unwrap();
        assert_eq!(code, 200);
        assert!(status.contains("\"role\":\"stream\""), "{status}");
        assert!(status.contains("\"ready\":true"), "{status}");
        let (_, metrics) = dds_obs::http_get(&admin_addr, "/metrics").unwrap();
        let parsed = dds_obs::parse_exposition(&metrics).unwrap();
        assert!(
            parsed.contains_key("dds_lag_tail_bytes"),
            "staleness gauges must ride the live exposition: {metrics}"
        );
        assert!(
            parsed
                .get("dds_stream_epochs_total")
                .is_some_and(|v| v.as_u64() >= Some(1)),
            "{metrics}"
        );
        handle.join().unwrap().unwrap();
        std::fs::remove_file(&path).ok();
    }
}
