//! Property tests for [`DecrementalCore`]: under random edge-deletion
//! sequences the maintained core must equal a from-scratch decomposition
//! at **every** step, and under mixed insert/delete workloads it must stay
//! a sound sub-core (the ISSUE-3 satellite contract).

use dds_graph::{DiGraph, VertexId};
use dds_xycore::{xy_core, DecrementalCore};
use proptest::prelude::*;

/// A random edge set over `max_n` vertices (no self-loops, deduplicated by
/// `DiGraph` construction).
fn edge_set(max_n: u32, max_m: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..max_n, 0u32..max_n), 1..max_m).prop_map(|raw| {
        let mut edges: Vec<(u32, u32)> = raw.into_iter().filter(|&(u, v)| u != v).collect();
        edges.sort_unstable();
        edges.dedup();
        edges
    })
}

fn graph_of(n: usize, edges: &[(u32, u32)]) -> DiGraph {
    DiGraph::from_edges(n, edges).expect("generated edges are valid")
}

/// Checks that `core`'s mask is a fixpoint of the `[x, y]` constraints on
/// `g` and that its counters match a direct recount.
fn assert_sound(core: &DecrementalCore, g: &DiGraph, x: u64, y: u64) {
    let mask = core.mask();
    let mut edges = 0u64;
    for u in 0..g.n() {
        if mask.in_s[u] {
            let d = g
                .out_neighbors(u as VertexId)
                .iter()
                .filter(|&&v| mask.in_t[v as usize])
                .count() as u64;
            assert!(d >= x, "S vertex {u} below threshold: {d} < {x}");
            edges += d;
        }
        if mask.in_t[u] {
            let d = g
                .in_neighbors(u as VertexId)
                .iter()
                .filter(|&&w| mask.in_s[w as usize])
                .count() as u64;
            assert!(d >= y, "T vertex {u} below threshold: {d} < {y}");
        }
    }
    assert_eq!(core.live_edges(), edges, "edge counter drifted");
    assert_eq!(core.s_count(), mask.s_count());
    assert_eq!(core.t_count(), mask.t_count());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Deletion-only: the maintained mask equals a from-scratch peel of
    /// the current graph after every single deletion, for every sampled
    /// threshold pair.
    #[test]
    fn teardown_matches_from_scratch_decompose(
        edges in edge_set(10, 40),
        order_seed in 0u64..1_000,
        x in 0u64..4,
        y in 0u64..4,
    ) {
        let n = 10usize;
        let g = graph_of(n, &edges);
        let mut core = DecrementalCore::new(&g, x, y);
        prop_assert_eq!(core.mask(), &xy_core(&g, x, y));

        // Deterministic shuffle of the deletion order.
        let mut order = edges.clone();
        let mut s = order_seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }

        let mut remaining = edges.clone();
        for (u, v) in order {
            remaining.retain(|&e| e != (u, v));
            core.delete_edge(u, v);
            let now = graph_of(n, &remaining);
            prop_assert_eq!(core.mask(), &xy_core(&now, x, y),
                "core diverged after deleting {} -> {} (x={}, y={})", u, v, x, y);
            assert_sound(&core, &now, x, y);
        }
        prop_assert_eq!(core.live_edges(), 0);
    }

    /// Mixed insert/delete: the mask never grows, stays a subset of the
    /// true core, and remains a valid fixpoint (so the `ρ ≥ sqrt(x·y)`
    /// certificate holds throughout) with exact counters.
    #[test]
    fn mixed_workload_stays_a_sound_sub_core(
        edges in edge_set(9, 32),
        ops in prop::collection::vec((0u32..2, 0u32..9, 0u32..9), 1..40),
        x in 1u64..3,
        y in 1u64..3,
    ) {
        let n = 9usize;
        let g = graph_of(n, &edges);
        let mut core = DecrementalCore::new(&g, x, y);
        let mut live: std::collections::BTreeSet<(u32, u32)> = edges.iter().copied().collect();
        for (op, u, v) in ops {
            if u == v {
                continue;
            }
            if op == 0 {
                if live.insert((u, v)) {
                    core.insert_edge(u, v);
                }
            } else if live.remove(&(u, v)) {
                core.delete_edge(u, v);
            }
            let now_edges: Vec<(u32, u32)> = live.iter().copied().collect();
            let now = graph_of(n, &now_edges);
            assert_sound(&core, &now, x, y);
            // Sub-core: contained in the true (maximal) core.
            let truth = xy_core(&now, x, y);
            for w in 0..n {
                prop_assert!(!core.mask().in_s[w] || truth.in_s[w],
                    "S vertex {} outside the true core", w);
                prop_assert!(!core.mask().in_t[w] || truth.in_t[w],
                    "T vertex {} outside the true core", w);
            }
        }
    }
}
