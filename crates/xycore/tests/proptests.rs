//! Property tests for `[x, y]`-core peeling and decomposition.

use dds_graph::{DiGraph, GraphBuilder, StMask, VertexId};
use dds_xycore::{max_product_core, skyline, xy_core, xy_core_within, y_max_core};
use proptest::prelude::*;

fn graph_strategy(max_n: u32, max_m: usize) -> impl Strategy<Value = DiGraph> {
    prop::collection::vec((0..max_n, 0..max_n), 0..max_m).prop_map(move |edges| {
        let mut b = GraphBuilder::with_min_vertices(max_n as usize);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    })
}

/// The defining fixpoint property of a core mask.
fn is_fixpoint(g: &DiGraph, mask: &StMask, x: u64, y: u64) -> bool {
    (0..g.n()).all(|v| {
        let s_ok = !mask.in_s[v] || {
            g.out_neighbors(v as VertexId)
                .iter()
                .filter(|&&w| mask.in_t[w as usize])
                .count() as u64
                >= x
        };
        let t_ok = !mask.in_t[v] || {
            g.in_neighbors(v as VertexId)
                .iter()
                .filter(|&&w| mask.in_s[w as usize])
                .count() as u64
                >= y
        };
        s_ok && t_ok
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Peeling yields a fixpoint that contains every other fixpoint
    /// (checked against a greedily grown witness, not full enumeration).
    #[test]
    fn core_is_a_fixpoint(g in graph_strategy(14, 70), x in 0u64..4, y in 0u64..4) {
        let core = xy_core(&g, x, y);
        prop_assert!(is_fixpoint(&g, &core, x, y));
    }

    /// Nesting in both parameters.
    #[test]
    fn cores_nest(g in graph_strategy(14, 70), x in 0u64..3, y in 0u64..3) {
        let base = xy_core(&g, x, y);
        for (dx, dy) in [(1, 0), (0, 1), (1, 1)] {
            let tighter = xy_core(&g, x + dx, y + dy);
            for v in 0..g.n() {
                prop_assert!(!tighter.in_s[v] || base.in_s[v]);
                prop_assert!(!tighter.in_t[v] || base.in_t[v]);
            }
        }
    }

    /// The core within a sub-mask is the intersection behaviourally: it is
    /// a fixpoint inside the base and contained in the unrestricted core.
    #[test]
    fn core_within_restricts(g in graph_strategy(12, 60), x in 0u64..3, y in 0u64..3) {
        let mut base = StMask::full(g.n());
        for v in (0..g.n()).step_by(3) {
            base.in_s[v] = false;
        }
        let inner = xy_core_within(&g, &base, x, y);
        let outer = xy_core(&g, x, y);
        prop_assert!(is_fixpoint(&g, &inner, x, y));
        for v in 0..g.n() {
            prop_assert!(!inner.in_s[v] || (outer.in_s[v] && base.in_s[v]));
            prop_assert!(!inner.in_t[v] || outer.in_t[v]);
        }
    }

    /// y_max agrees with the naive "peel until empty" loop.
    #[test]
    fn y_max_matches_naive(g in graph_strategy(12, 60), x in 0u64..4) {
        let fast = y_max_core(&g, &StMask::full(g.n()), x);
        let mut naive: Option<(u64, StMask)> = None;
        for y in 1..=(g.m() as u64 + 1) {
            let core = xy_core(&g, x, y);
            if core.is_empty() {
                break;
            }
            naive = Some((y, core));
        }
        match (fast, naive) {
            (None, None) => {}
            (Some(f), Some((ny, nmask))) => {
                prop_assert_eq!(f.y, ny);
                prop_assert_eq!(f.mask, nmask);
            }
            (f, n) => {
                return Err(TestCaseError::fail(format!(
                    "fast={:?} naive={:?}",
                    f.map(|r| r.y),
                    n.map(|r| r.0)
                )));
            }
        }
    }

    /// The double sweep finds the true maximum skyline product, and its
    /// core meets the sqrt(xy) density bound.
    #[test]
    fn max_product_agrees_with_skyline(g in graph_strategy(14, 80)) {
        let sky = skyline(&g);
        let best = max_product_core(&g);
        match (sky.is_empty(), best) {
            (true, None) => {}
            (false, Some(b)) => {
                let sky_max = sky.iter().map(|p| p.x * p.y).max().unwrap();
                prop_assert_eq!(b.product(), sky_max);
                let d = b.mask.density(&g);
                let e2 = u128::from(d.edges) * u128::from(d.edges);
                let bound = u128::from(b.product()) * u128::from(d.s) * u128::from(d.t);
                prop_assert!(e2 >= bound, "density below sqrt(xy)");
            }
            (empty, b) => {
                return Err(TestCaseError::fail(format!(
                    "skyline empty={empty} but max_product={:?}",
                    b.map(|x| x.product())
                )));
            }
        }
    }
}
