//! `[x, y]`-core decomposition: `y_max` sweeps, the skyline, and the
//! maximum-product core behind `CoreApprox`.

use dds_graph::{DiGraph, StMask, VertexId};
use dds_num::isqrt;

use crate::peel::xy_core_within;

/// Result of a `y_max` computation: the largest `y` with a non-empty
/// `[x, y]`-core, together with that core.
#[derive(Clone, Debug)]
pub struct YMaxCore {
    /// The maximal `y`.
    pub y: u64,
    /// The `[x, y]`-core achieving it.
    pub mask: StMask,
}

/// One maximal point of the core skyline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SkylinePoint {
    /// Out-degree threshold.
    pub x: u64,
    /// The largest `y` such that the `[x, y]`-core is non-empty.
    pub y: u64,
}

/// Computes `y_max(x)` within `base`: the largest `y ≥ 1` such that the
/// `[x, y]`-core (inside `base`) is non-empty, plus that core. Returns
/// `None` when even the `[x, 1]`-core is empty.
///
/// Single bucket-peeling pass in `O(n + m + d_max)`: T vertices are drained
/// in increasing current in-degree (the directed analog of
/// Batagelj–Zaversnik k-core decomposition) while S-side violations cascade.
/// Removals are stamped with the level at which they fell, so the core at
/// the final level is reconstructed without cloning per level.
#[must_use]
#[allow(clippy::needless_range_loop)] // parallel-array indexing
pub fn y_max_core(g: &DiGraph, base: &StMask, x: u64) -> Option<YMaxCore> {
    let n = g.n();
    let mut mask = xy_core_within(g, base, x, 1);
    if mask.is_empty() {
        return None;
    }
    // Snapshot of the [x, 1]-core's S side: needed to reconstruct the final
    // core when x = 0 (S vertices are then never peeled and carry no stamp).
    let initial_core_s = mask.in_s.clone();

    // Degrees inside the [x, 1]-core.
    let mut deg_out = vec![0u64; n];
    let mut deg_in = vec![0u64; n];
    for u in 0..n {
        if mask.in_s[u] {
            for &v in g.out_neighbors(u as VertexId) {
                if mask.in_t[v as usize] {
                    deg_out[u] += 1;
                    deg_in[v as usize] += 1;
                }
            }
        }
    }

    let max_deg = (0..n)
        .filter(|&v| mask.in_t[v])
        .map(|v| deg_in[v])
        .max()
        .unwrap_or(0);
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg as usize + 1];
    let mut t_alive = 0usize;
    for v in 0..n {
        if mask.in_t[v] {
            buckets[deg_in[v] as usize].push(v as VertexId);
            t_alive += 1;
        }
    }

    // Removal stamps: the `y` being peeled toward when the vertex fell
    // (vertex belongs to the [x, y−1]-core but not the [x, y]-core).
    const ALIVE: u64 = u64::MAX;
    let mut level_s = vec![ALIVE; n];
    let mut level_t = vec![ALIVE; n];

    let mut final_y = 1; // level whose peel emptied the T side
    let mut s_removal_stack: Vec<VertexId> = Vec::new();
    'levels: for y in 2..=(max_deg + 1) {
        // Peel toward [x, y]: drain every T vertex whose in-degree < y.
        let mut d = 0usize;
        while d < y as usize {
            while let Some(v) = buckets[d].pop() {
                let v_us = v as usize;
                if !mask.in_t[v_us] || deg_in[v_us] as usize != d {
                    continue; // stale bucket entry
                }
                mask.in_t[v_us] = false;
                level_t[v_us] = y;
                t_alive -= 1;
                // Cascade: S vertices losing this target may fall below x.
                for &u in g.in_neighbors(v) {
                    let u_us = u as usize;
                    if mask.in_s[u_us] {
                        deg_out[u_us] -= 1;
                        if deg_out[u_us] < x {
                            s_removal_stack.push(u);
                        }
                    }
                }
                while let Some(u) = s_removal_stack.pop() {
                    let u_us = u as usize;
                    if !mask.in_s[u_us] {
                        continue;
                    }
                    mask.in_s[u_us] = false;
                    level_s[u_us] = y;
                    for &w in g.out_neighbors(u) {
                        let w_us = w as usize;
                        if mask.in_t[w_us] {
                            deg_in[w_us] -= 1;
                            let nd = deg_in[w_us] as usize;
                            buckets[nd].push(w);
                            if nd < d {
                                d = nd; // re-drain the lower bucket
                            }
                        }
                    }
                }
                if t_alive == 0 {
                    final_y = y;
                    break 'levels;
                }
            }
            d += 1;
        }
    }
    assert!(t_alive == 0, "peeling must eventually empty the T side");

    // Reconstruct the [x, final_y − 1]-core: exactly the state of the mask
    // just before the final level's peel began, i.e. vertices stamped at
    // `final_y` plus vertices never removed at all (S side with x = 0; the
    // T side always empties, and with x ≥ 1 the S side empties with it).
    let y_max = final_y - 1;
    let core = StMask {
        in_s: (0..n)
            .map(|v| level_s[v] == final_y || (level_s[v] == ALIVE && initial_core_s[v]))
            .collect(),
        in_t: (0..n).map(|v| level_t[v] == final_y).collect(),
    };
    Some(YMaxCore {
        y: y_max,
        mask: core,
    })
}

/// Computes `x_max(y)`: the largest `x ≥ 1` with a non-empty `[x, y]`-core
/// inside `base`. Convenience wrapper that transposes the graph; callers
/// looping over `y` should transpose once and use [`y_max_core`] directly
/// (as [`max_product_core`] does).
#[must_use]
pub fn x_max(g: &DiGraph, base: &StMask, y: u64) -> Option<YMaxCore> {
    let rev = g.reverse();
    let swapped = StMask {
        in_s: base.in_t.clone(),
        in_t: base.in_s.clone(),
    };
    y_max_core(&rev, &swapped, y).map(|r| YMaxCore {
        y: r.y,
        mask: StMask {
            in_s: r.mask.in_t,
            in_t: r.mask.in_s,
        },
    })
}

/// The full core skyline: for every `x` with a non-empty `[x, 1]`-core, the
/// point `(x, y_max(x))`. `y` values are non-increasing in `x`.
///
/// `O(x_max · (n + m))`; used by the analysis experiments (E10), not by the
/// solvers.
#[must_use]
pub fn skyline(g: &DiGraph) -> Vec<SkylinePoint> {
    let mut points = Vec::new();
    let mut base = StMask::full(g.n());
    let mut x = 1u64;
    loop {
        base = xy_core_within(g, &base, x, 1);
        if base.is_empty() {
            break;
        }
        match y_max_core(g, &base, x) {
            Some(r) => points.push(SkylinePoint { x, y: r.y }),
            None => break,
        }
        x += 1;
    }
    points
}

/// The non-empty `[x, y]`-core maximising `x·y`, found by two `√m`-bounded
/// sweeps (every non-empty core has `x·y ≤ m`, so any skyline point has
/// `min(x, y) ≤ ⌊√m⌋` and is covered by one of the sweeps).
///
/// This core is the `CoreApprox` answer: its density is at least
/// `sqrt(x·y) ≥ ρ_opt / 2`.
#[derive(Clone, Debug)]
pub struct MaxProductCore {
    /// Out-degree threshold of the arg-max core.
    pub x: u64,
    /// In-degree threshold of the arg-max core.
    pub y: u64,
    /// The core itself.
    pub mask: StMask,
    /// Number of `y_max`/`x_max` evaluations performed (instrumentation).
    pub sweep_evals: usize,
}

impl MaxProductCore {
    /// The product `x·y`; `ρ_opt ≤ 2·sqrt(product)` and the core's density
    /// is `≥ sqrt(product)`.
    #[must_use]
    pub fn product(&self) -> u64 {
        self.x * self.y
    }
}

/// See [`MaxProductCore`]. Returns `None` on graphs with no edges.
#[must_use]
pub fn max_product_core(g: &DiGraph) -> Option<MaxProductCore> {
    if g.m() == 0 {
        return None;
    }
    let limit = isqrt(g.m() as u128) as u64;
    let mut best: Option<MaxProductCore> = None;
    let mut evals = 0usize;

    let consider = |x: u64, y: u64, mask: StMask, best: &mut Option<MaxProductCore>| {
        let product = x * y;
        if best.as_ref().is_none_or(|b| product > b.product()) {
            *best = Some(MaxProductCore {
                x,
                y,
                mask,
                sweep_evals: 0,
            });
        }
    };

    // Forward sweep: x = 1..⌊√m⌋, nested bases.
    let mut base = StMask::full(g.n());
    for x in 1..=limit.max(1) {
        base = xy_core_within(g, &base, x, 1);
        if base.is_empty() {
            break;
        }
        let Some(r) = y_max_core(g, &base, x) else {
            break;
        };
        evals += 1;
        let y = r.y;
        consider(x, y, r.mask, &mut best);
        // y_max is non-increasing, so every later product in this sweep is
        // ≤ limit·y_max(x); stop once that cannot beat the best.
        if limit.saturating_mul(y) <= best.as_ref().map_or(0, MaxProductCore::product) {
            break;
        }
    }

    // Reverse sweep: y = 1..⌊√m⌋ on the transpose.
    let rev = g.reverse();
    let mut base = StMask::full(g.n());
    for y in 1..=limit.max(1) {
        base = xy_core_within(&rev, &base, y, 1);
        if base.is_empty() {
            break;
        }
        let Some(r) = y_max_core(&rev, &base, y) else {
            break;
        };
        evals += 1;
        let x = r.y;
        let mask = StMask {
            in_s: r.mask.in_t,
            in_t: r.mask.in_s,
        };
        consider(x, y, mask, &mut best);
        if limit.saturating_mul(x) <= best.as_ref().map_or(0, MaxProductCore::product) {
            break;
        }
    }

    best.map(|mut b| {
        b.sweep_evals = evals;
        b
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peel::xy_core;
    use dds_graph::gen;

    /// Reference y_max: iterate full peels until empty.
    fn naive_y_max(g: &DiGraph, x: u64) -> Option<(u64, StMask)> {
        let mut last: Option<(u64, StMask)> = None;
        for y in 1..=(g.m() as u64 + 1) {
            let core = xy_core(g, x, y);
            if core.is_empty() {
                break;
            }
            last = Some((y, core));
        }
        last
    }

    #[test]
    fn y_max_on_complete_bipartite() {
        let g = gen::complete_bipartite(2, 3);
        let r = y_max_core(&g, &StMask::full(g.n()), 3).unwrap();
        assert_eq!(r.y, 2);
        assert_eq!(r.mask.s_count(), 2);
        assert_eq!(r.mask.t_count(), 3);
        assert!(y_max_core(&g, &StMask::full(g.n()), 4).is_none());
    }

    #[test]
    fn y_max_on_star() {
        let g = gen::out_star(4);
        let r = y_max_core(&g, &StMask::full(g.n()), 4).unwrap();
        assert_eq!(r.y, 1);
        assert_eq!(r.mask.s_count(), 1);
        assert_eq!(r.mask.t_count(), 4);
    }

    #[test]
    fn y_max_with_x_zero() {
        // x = 0: S side unconstrained; y_max = max in-degree achievable.
        let g = gen::complete_bipartite(2, 3);
        let r = y_max_core(&g, &StMask::full(g.n()), 0).unwrap();
        assert_eq!(r.y, 2);
        assert_eq!(r.mask.s_count(), g.n(), "x = 0 keeps every S vertex");
    }

    #[test]
    fn y_max_matches_naive_on_random_graphs() {
        for seed in 0..10 {
            let g = gen::gnm(12, 50, seed);
            for x in 0..5u64 {
                let fast = y_max_core(&g, &StMask::full(g.n()), x);
                let naive = naive_y_max(&g, x);
                match (fast, naive) {
                    (None, None) => {}
                    (Some(f), Some((ny, nmask))) => {
                        assert_eq!(f.y, ny, "seed={seed} x={x}");
                        assert_eq!(f.mask, nmask, "seed={seed} x={x}");
                    }
                    (f, n) => panic!(
                        "seed={seed} x={x}: fast={:?} naive={:?}",
                        f.map(|r| r.y),
                        n.map(|r| r.0)
                    ),
                }
            }
        }
    }

    #[test]
    fn y_max_matches_naive_on_power_law() {
        let g = gen::power_law(60, 400, 2.1, 7);
        for x in [1u64, 2, 3, 5] {
            let fast = y_max_core(&g, &StMask::full(g.n()), x).map(|r| (r.y, r.mask));
            let naive = naive_y_max(&g, x);
            assert_eq!(fast, naive, "x={x}");
        }
    }

    #[test]
    fn x_max_is_y_max_of_transpose() {
        let g = gen::power_law(40, 200, 2.3, 5);
        for y in [1u64, 2, 3] {
            let via_x = x_max(&g, &StMask::full(g.n()), y).map(|r| r.y);
            let rev = g.reverse();
            let via_rev = y_max_core(&rev, &StMask::full(g.n()), y).map(|r| r.y);
            assert_eq!(via_x, via_rev, "y={y}");
        }
    }

    #[test]
    fn skyline_shape() {
        let g = gen::complete_bipartite(2, 3);
        let sky = skyline(&g);
        assert_eq!(
            sky,
            vec![
                SkylinePoint { x: 1, y: 2 },
                SkylinePoint { x: 2, y: 2 },
                SkylinePoint { x: 3, y: 2 }
            ]
        );
    }

    #[test]
    fn skyline_is_non_increasing() {
        let g = gen::gnm(40, 300, 9);
        let sky = skyline(&g);
        assert!(!sky.is_empty());
        for w in sky.windows(2) {
            assert_eq!(w[1].x, w[0].x + 1, "consecutive x");
            assert!(w[1].y <= w[0].y, "y_max must not increase");
        }
        // Cross-check a few points against the naive reference.
        for p in sky.iter().step_by(2) {
            let naive = naive_y_max(&g, p.x).unwrap().0;
            assert_eq!(p.y, naive, "x={}", p.x);
        }
    }

    #[test]
    fn max_product_on_fixtures() {
        // K_{2,3}: best product 3·2 = 6; density √6 equals ρ_opt.
        let g = gen::complete_bipartite(2, 3);
        let best = max_product_core(&g).unwrap();
        assert_eq!(best.product(), 6);
        assert_eq!((best.x, best.y), (3, 2));

        // Star k=4: best product 4·1 = 4.
        let g = gen::out_star(4);
        let best = max_product_core(&g).unwrap();
        assert_eq!(best.product(), 4);

        // Cycle: every vertex has in/out degree 1 ⇒ best is [1,1], product 1.
        let g = gen::cycle(7);
        let best = max_product_core(&g).unwrap();
        assert_eq!(best.product(), 1);
    }

    #[test]
    fn max_product_matches_exhaustive_skyline() {
        for seed in 0..8 {
            let g = gen::gnm(20, 90, seed);
            let best = max_product_core(&g).unwrap();
            let sky_best = skyline(&g).iter().map(|p| p.x * p.y).max().unwrap();
            assert_eq!(best.product(), sky_best, "seed={seed}");
        }
    }

    #[test]
    fn max_product_core_density_guarantee() {
        use dds_num::cmp_prod;
        for seed in [1u64, 4, 9] {
            let g = gen::power_law(80, 600, 2.2, seed);
            let best = max_product_core(&g).unwrap();
            let d = best.mask.density(&g);
            // ρ(core) ≥ √(x·y) ⟺ edges² ≥ x·y·s·t.
            let e2 = u128::from(d.edges) * u128::from(d.edges);
            let xyst = u128::from(best.product()) * u128::from(d.s) * u128::from(d.t);
            assert!(
                cmp_prod(e2, 1, xyst, 1) != std::cmp::Ordering::Less,
                "seed={seed}: density {d} below sqrt({})",
                best.product()
            );
        }
    }

    #[test]
    fn edgeless_graph_has_no_core() {
        assert!(max_product_core(&DiGraph::empty(5)).is_none());
        assert!(skyline(&DiGraph::empty(5)).is_empty());
        assert!(y_max_core(&DiGraph::empty(5), &StMask::full(5), 1).is_none());
    }
}
