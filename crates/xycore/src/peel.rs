//! Cascading peel for a fixed `[x, y]` threshold pair.

use dds_graph::{DiGraph, StMask, VertexId};

/// Computes the `[x, y]`-core of `g` (starting from all vertices on both
/// sides). See the crate docs for the definition.
#[must_use]
pub fn xy_core(g: &DiGraph, x: u64, y: u64) -> StMask {
    xy_core_within(g, &StMask::full(g.n()), x, y)
}

/// Computes the `[x, y]`-core of the subgraph selected by `base`.
///
/// Because cores nest (larger thresholds ⇒ smaller cores, and the core of a
/// sub-mask is contained in the core of the full graph), the exact search
/// calls this with its current working mask to tighten it as the density
/// lower bound grows.
///
/// Runs in `O(n + m)`: every vertex-side is removed at most once and each
/// removal touches its incident edges once.
#[must_use]
#[allow(clippy::needless_range_loop)] // parallel-array indexing
pub fn xy_core_within(g: &DiGraph, base: &StMask, x: u64, y: u64) -> StMask {
    let n = g.n();
    debug_assert_eq!(base.in_s.len(), n);
    let mut mask = base.clone();

    // Current S→T out-degrees and S→T in-degrees under the mask.
    let mut deg_out = vec![0u64; n];
    let mut deg_in = vec![0u64; n];
    for u in 0..n {
        if mask.in_s[u] {
            let d = g
                .out_neighbors(u as VertexId)
                .iter()
                .filter(|&&v| mask.in_t[v as usize])
                .count() as u64;
            deg_out[u] = d;
            for &v in g.out_neighbors(u as VertexId) {
                if mask.in_t[v as usize] {
                    deg_in[v as usize] += 1;
                }
            }
        }
    }

    // Worklist of violating (vertex, side) entries; side false = S-side.
    let mut queue: Vec<(VertexId, bool)> = Vec::new();
    for v in 0..n {
        if mask.in_s[v] && deg_out[v] < x {
            queue.push((v as VertexId, false));
        }
        if mask.in_t[v] && deg_in[v] < y {
            queue.push((v as VertexId, true));
        }
    }

    while let Some((v, t_side)) = queue.pop() {
        let v_us = v as usize;
        if t_side {
            if !mask.in_t[v_us] || deg_in[v_us] >= y {
                continue; // stale entry
            }
            mask.in_t[v_us] = false;
            for &u in g.in_neighbors(v) {
                let u_us = u as usize;
                if mask.in_s[u_us] {
                    deg_out[u_us] -= 1;
                    if deg_out[u_us] < x {
                        queue.push((u, false));
                    }
                }
            }
        } else {
            if !mask.in_s[v_us] || deg_out[v_us] >= x {
                continue; // stale entry
            }
            mask.in_s[v_us] = false;
            for &w in g.out_neighbors(v) {
                let w_us = w as usize;
                if mask.in_t[w_us] {
                    deg_in[w_us] -= 1;
                    if deg_in[w_us] < y {
                        queue.push((w, true));
                    }
                }
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_graph::gen;

    /// Definition check: `mask` is a fixpoint of the `[x, y]` constraints.
    fn assert_is_fixpoint(g: &DiGraph, mask: &StMask, x: u64, y: u64) {
        for u in 0..g.n() {
            if mask.in_s[u] {
                let d = g
                    .out_neighbors(u as VertexId)
                    .iter()
                    .filter(|&&v| mask.in_t[v as usize])
                    .count() as u64;
                assert!(d >= x, "S vertex {u} has out-degree {d} < {x}");
            }
            if mask.in_t[u] {
                let d = g
                    .in_neighbors(u as VertexId)
                    .iter()
                    .filter(|&&w| mask.in_s[w as usize])
                    .count() as u64;
                assert!(d >= y, "T vertex {u} has in-degree {d} < {y}");
            }
        }
    }

    /// Maximality check by brute force: no larger fixpoint exists (checked
    /// by verifying the peel result contains every fixpoint pair found by
    /// exhaustive enumeration). Exponential — tiny graphs only.
    fn brute_core(g: &DiGraph, x: u64, y: u64) -> StMask {
        let n = g.n();
        let mut best = StMask::empty(n);
        let mut best_size = 0usize;
        for s_bits in 0u32..(1 << n) {
            for t_bits in 0u32..(1 << n) {
                let mask = StMask {
                    in_s: (0..n).map(|v| s_bits >> v & 1 == 1).collect(),
                    in_t: (0..n).map(|v| t_bits >> v & 1 == 1).collect(),
                };
                let ok = (0..n).all(|u| {
                    let s_ok = !mask.in_s[u] || {
                        g.out_neighbors(u as VertexId)
                            .iter()
                            .filter(|&&v| mask.in_t[v as usize])
                            .count() as u64
                            >= x
                    };
                    let t_ok = !mask.in_t[u] || {
                        g.in_neighbors(u as VertexId)
                            .iter()
                            .filter(|&&w| mask.in_s[w as usize])
                            .count() as u64
                            >= y
                    };
                    s_ok && t_ok
                });
                if ok {
                    let size = mask.s_count() + mask.t_count();
                    if size > best_size {
                        best_size = size;
                        best = mask;
                    }
                }
            }
        }
        best
    }

    #[test]
    fn complete_bipartite_core() {
        let g = gen::complete_bipartite(2, 3);
        // Every S vertex has 3 out-edges, every T vertex 2 in-edges.
        let core = xy_core(&g, 3, 2);
        assert_eq!(core.s_count(), 2);
        assert_eq!(core.t_count(), 3);
        assert_is_fixpoint(&g, &core, 3, 2);
        // Raising either threshold empties it.
        assert!(xy_core(&g, 4, 2).is_empty());
        assert!(xy_core(&g, 3, 3).is_empty());
    }

    #[test]
    fn cascade_removals() {
        // Path 0→1→2→3: [1,1]-core must be empty (the tail T vertex dies,
        // cascading everything).
        let g = gen::path(4);
        let core = xy_core(&g, 1, 1);
        // S = {0,1,2} survives only if T = {1,2,3} survives; it does:
        // every S vertex has an out-edge into T, every T vertex an in-edge
        // from S. The [1,1]-core is exactly that.
        assert_eq!(core.s_count(), 3);
        assert_eq!(core.t_count(), 3);
        assert_is_fixpoint(&g, &core, 1, 1);
        // [2,1] forces out-degree 2, which no vertex has ⇒ empty.
        assert!(xy_core(&g, 2, 1).is_empty());
    }

    #[test]
    fn zero_thresholds_keep_everything() {
        let g = gen::cycle(5);
        let core = xy_core(&g, 0, 0);
        assert_eq!(core.s_count(), 5);
        assert_eq!(core.t_count(), 5);
    }

    #[test]
    fn matches_brute_force_on_small_graphs() {
        for seed in 0..6 {
            let g = gen::gnm(6, 14, seed);
            for x in 0..4u64 {
                for y in 0..4u64 {
                    let fast = xy_core(&g, x, y);
                    let brute = brute_core(&g, x, y);
                    assert_eq!(
                        (fast.s_count(), fast.t_count()),
                        (brute.s_count(), brute.t_count()),
                        "seed={seed} x={x} y={y}"
                    );
                    assert_eq!(fast, brute, "seed={seed} x={x} y={y}");
                }
            }
        }
    }

    #[test]
    fn cores_are_nested() {
        let g = gen::power_law(80, 500, 2.2, 3);
        let base = xy_core(&g, 1, 1);
        let tighter = xy_core(&g, 2, 2);
        for v in 0..g.n() {
            assert!(!tighter.in_s[v] || base.in_s[v], "S nesting at {v}");
            assert!(!tighter.in_t[v] || base.in_t[v], "T nesting at {v}");
        }
    }

    #[test]
    fn within_base_mask_restricts() {
        let g = gen::complete_bipartite(3, 3);
        let mut base = StMask::full(g.n());
        base.in_s[0] = false; // S candidates limited to {1, 2}
        let core = xy_core_within(&g, &base, 1, 2);
        assert!(!core.in_s[0]);
        assert_is_fixpoint(&g, &core, 1, 2);
        assert_eq!(core.s_count(), 2);
        assert_eq!(core.t_count(), 3);
        // Within an empty base nothing survives.
        let empty = xy_core_within(&g, &StMask::empty(g.n()), 0, 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::empty(4);
        assert!(xy_core(&g, 1, 1).is_empty());
        let all = xy_core(&g, 0, 0);
        assert_eq!(all.s_count(), 4);
    }
}
