//! `[x, y]`-cores: the directed analog of k-cores that powers both the
//! 2-approximation and the pruning inside the exact DDS algorithm.
//!
//! # Definition
//!
//! For integers `x, y ≥ 0`, the **`[x, y]`-core** of a directed graph `G`
//! is the largest pair `(S, T)` of vertex subsets such that
//!
//! * every `u ∈ S` has at least `x` out-neighbours **in `T`**, and
//! * every `v ∈ T` has at least `y` in-neighbours **in `S`**.
//!
//! "Largest" is well defined because pairs satisfying the two constraints
//! are closed under componentwise union, so a unique maximum exists; it is
//! computed by cascading peeling in `O(n + m)` ([`xy_core`]).
//!
//! # Why cores matter for DDS (proofs in `dds-core` docs)
//!
//! * a non-empty `[x, y]`-core has density `ρ ≥ sqrt(x·y)`;
//! * the densest pair lies in the `[⌈ρ_opt/(2√c*)⌉, ⌈ρ_opt·√c*/2⌉]`-core,
//!   so `ρ_opt ≤ 2·sqrt(P)` for `P` = the maximum `x·y` over non-empty
//!   cores — making the arg-max core a deterministic 2-approximation
//!   ([`max_product_core`], the heart of `CoreApprox`);
//! * every maximiser of the flow objective at guess `β` for ratio `a/b`
//!   lies in the `[⌈β/2a⌉, ⌈β/2b⌉]`-core, which is how the exact search
//!   shrinks its flow networks.
//!
//! Because any non-empty `[x, y]`-core satisfies `x·y ≤ m`, every skyline
//! point has `min(x, y) ≤ √m`, and the arg-max product is found by two
//! `√m`-bounded sweeps ([`max_product_core`]) in `O(√m · (n + m))` total.
//!
//! # Example
//!
//! ```
//! use dds_graph::DiGraph;
//! use dds_xycore::{xy_core, max_product_core};
//!
//! // K_{2,3}: every S vertex has 3 out-edges, every T vertex 2 in-edges.
//! let g = DiGraph::from_edges(5, &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]).unwrap();
//!
//! let core = xy_core(&g, 3, 2);
//! assert_eq!((core.s_count(), core.t_count()), (2, 3));
//! assert!(xy_core(&g, 4, 2).is_empty());
//!
//! let best = max_product_core(&g).unwrap();
//! assert_eq!(best.product(), 6); // so ρ_opt ∈ [√6, 2√6]
//! ```

#![warn(missing_docs)]

mod cache;
mod decompose;
mod decremental;
mod peel;

pub use cache::CoreCache;
pub use decompose::{
    max_product_core, skyline, x_max, y_max_core, MaxProductCore, SkylinePoint, YMaxCore,
};
pub use decremental::DecrementalCore;
pub use peel::{xy_core, xy_core_within};
