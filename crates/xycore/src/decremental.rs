//! Decremental `[x, y]`-core maintenance: keep a core valid under edge
//! deletions by **local cascade repair** instead of re-peeling the graph.
//!
//! # Why deletions are the easy direction
//!
//! Deleting an edge can only *shrink* an `[x, y]`-core: the constraints get
//! harder, never easier. Concretely, if `C` is the core before the deletion
//! and `C'` the core after, then `C' ⊆ C` — and `C'` is exactly what the
//! ordinary peel computes when started from `C` with the deleted edge's
//! endpoints as the only seed violations. So a deletion costs
//! `O(affected subgraph)` — usually nothing at all, because most deletions
//! do not touch the core — while a from-scratch recompute costs `O(n + m)`.
//!
//! That asymmetry is the engine room of sliding-window DDS maintenance
//! (`dds-stream`'s `WindowEngine`): every tick expires edges, and the core
//! certificate `ρ ≥ sqrt(x·y)` must survive each expiry without paying for
//! a full decomposition.
//!
//! # Exactness contract
//!
//! * **Deletion-only streams:** after any sequence of
//!   [`DecrementalCore::delete_edge`] calls, the maintained mask equals a
//!   from-scratch [`crate::xy_core`] of the current graph — exactly
//!   (property-tested in `tests/decremental_proptest.rs`).
//! * **Interleaved insertions:** [`DecrementalCore::insert_edge`] keeps the
//!   degree and edge counters exact *within* the mask but never resurrects
//!   a peeled vertex, so the mask is a **sound sub-core**: every member
//!   still satisfies its threshold, hence the certificate
//!   `ρ(mask) ≥ sqrt(x·y)` remains valid, but the mask may be a strict
//!   subset of the true (grown) core. Callers that need maximality after
//!   heavy insertion re-peel — which is what the window engine's periodic
//!   core refresh does.
//!
//! # Example
//!
//! ```
//! use dds_graph::DiGraph;
//! use dds_xycore::DecrementalCore;
//!
//! // K_{2,3}: the [3, 2]-core is the whole graph.
//! let g = DiGraph::from_edges(5, &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]).unwrap();
//! let mut core = DecrementalCore::new(&g, 3, 2);
//! assert_eq!((core.s_count(), core.t_count()), (2, 3));
//!
//! // Deleting one edge drops vertex 0 below x = 3, which cascades until
//! // nothing satisfies the thresholds: the [3, 2]-core of the new graph
//! // is empty, and the repair discovers that locally.
//! core.delete_edge(0, 2);
//! assert!(core.is_empty());
//! ```

use std::collections::{HashMap, HashSet};

use dds_graph::{DiGraph, Pair, StMask, VertexId};
use dds_num::Density;

use crate::cache::CoreCache;
use crate::peel::xy_core;

/// An `[x, y]`-core maintained under edge deletions (and degree-exact under
/// insertions); see the module docs for the contract.
///
/// Besides the mask itself, the structure keeps the live `S → T` edge count
/// and both side sizes, so the certified density of the maintained pair is
/// available in `O(1)` at any time ([`density`](DecrementalCore::density)).
#[derive(Clone, Debug)]
pub struct DecrementalCore {
    x: u64,
    y: u64,
    mask: StMask,
    /// Out-degree into the current T side (S-mask members only).
    deg_out: Vec<u64>,
    /// In-degree from the current S side (T-mask members only).
    deg_in: Vec<u64>,
    /// Live adjacency restricted to the mask, for cascade repair: CSR
    /// snapshots would go stale as the underlying graph mutates, so the
    /// core carries its own (small) edge sets. Entries may point at
    /// since-peeled vertices; iteration filters through the mask.
    out_adj: HashMap<VertexId, HashSet<VertexId>>,
    in_adj: HashMap<VertexId, HashSet<VertexId>>,
    /// Live `S → T` edge count within the mask.
    edges: u64,
    s_count: usize,
    t_count: usize,
    /// Lifetime count of vertices peeled by repair cascades.
    repairs: usize,
}

impl DecrementalCore {
    /// Builds the maintained core by peeling `g` from scratch
    /// (`O(n + m)`), then snapshotting the within-core adjacency.
    #[must_use]
    pub fn new(g: &DiGraph, x: u64, y: u64) -> Self {
        Self::from_mask(g, x, y, xy_core(g, x, y))
    }

    /// Like [`new`](DecrementalCore::new) but answers the initial peel from
    /// a [`CoreCache`] memo (an `O(n)` clone on a hit) — the convenient
    /// path for callers that repeatedly rebuild cores at recurring
    /// threshold pairs. (`dds-stream`'s window engine instead adopts the
    /// max-product mask its certification sweep just computed, via
    /// [`from_mask`](DecrementalCore::from_mask).)
    #[must_use]
    pub fn with_cache(cache: &mut CoreCache, g: &DiGraph, x: u64, y: u64) -> Self {
        Self::from_mask(g, x, y, cache.core(g, x, y))
    }

    /// Adopts an already-computed `[x, y]`-core `mask` of `g` (e.g. the
    /// max-product core the 2-approximation just found) without re-peeling.
    ///
    /// # Panics
    /// In debug builds, panics if `mask` is not a fixpoint of the `[x, y]`
    /// constraints on `g` — adopting a non-core would silently break the
    /// `ρ ≥ sqrt(x·y)` certificate.
    #[must_use]
    pub fn from_mask(g: &DiGraph, x: u64, y: u64, mask: StMask) -> Self {
        let n = g.n();
        let mut core = DecrementalCore {
            x,
            y,
            mask,
            deg_out: vec![0; n],
            deg_in: vec![0; n],
            out_adj: HashMap::new(),
            in_adj: HashMap::new(),
            edges: 0,
            s_count: 0,
            t_count: 0,
            repairs: 0,
        };
        for v in 0..n {
            if core.mask.in_s[v] {
                core.s_count += 1;
            }
            if core.mask.in_t[v] {
                core.t_count += 1;
            }
        }
        for u in 0..n {
            if !core.mask.in_s[u] {
                continue;
            }
            for &v in g.out_neighbors(u as VertexId) {
                if core.mask.in_t[v as usize] {
                    core.deg_out[u] += 1;
                    core.deg_in[v as usize] += 1;
                    core.edges += 1;
                    core.out_adj.entry(u as VertexId).or_default().insert(v);
                    core.in_adj.entry(v).or_default().insert(u as VertexId);
                }
            }
        }
        debug_assert!(
            (0..n).all(|v| (!core.mask.in_s[v] || core.deg_out[v] >= x)
                && (!core.mask.in_t[v] || core.deg_in[v] >= y)),
            "adopted mask is not an [{x}, {y}]-core fixpoint"
        );
        core
    }

    /// Out-degree threshold of the maintained core.
    #[must_use]
    pub fn x(&self) -> u64 {
        self.x
    }

    /// In-degree threshold of the maintained core.
    #[must_use]
    pub fn y(&self) -> u64 {
        self.y
    }

    /// The threshold product `x·y`; while the core is non-empty its density
    /// is at least `sqrt(x·y)`.
    #[must_use]
    pub fn product(&self) -> u64 {
        self.x * self.y
    }

    /// The current membership mask.
    #[must_use]
    pub fn mask(&self) -> &StMask {
        &self.mask
    }

    /// Current `|S|`.
    #[must_use]
    pub fn s_count(&self) -> usize {
        self.s_count
    }

    /// Current `|T|`.
    #[must_use]
    pub fn t_count(&self) -> usize {
        self.t_count
    }

    /// Live `S → T` edge count within the mask.
    #[must_use]
    pub fn live_edges(&self) -> u64 {
        self.edges
    }

    /// `true` iff either side has been peeled away entirely.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.s_count == 0 || self.t_count == 0
    }

    /// Exact density of the maintained pair on the current graph, `O(1)`.
    /// At least `sqrt(x·y)` whenever the core is non-empty (every member
    /// still satisfies its threshold), [`Density::ZERO`] once empty.
    #[must_use]
    pub fn density(&self) -> Density {
        if self.is_empty() {
            return Density::ZERO;
        }
        Density::new(self.edges, self.s_count as u64, self.t_count as u64)
    }

    /// The maintained pair in explicit form (allocates; use
    /// [`density`](DecrementalCore::density) for the hot path).
    #[must_use]
    pub fn pair(&self) -> Pair {
        self.mask.to_pair()
    }

    /// Lifetime count of vertices peeled by repair cascades.
    #[must_use]
    pub fn repairs(&self) -> usize {
        self.repairs
    }

    /// Records that `u → v` was deleted from the underlying graph and
    /// repairs the core by cascade peeling from any vertex the deletion
    /// pushed below its threshold. Returns the number of vertices peeled
    /// (0 for the common case of a deletion outside the core).
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) -> usize {
        let (u_us, v_us) = (u as usize, v as usize);
        let in_core = self.mask.in_s.get(u_us).copied().unwrap_or(false)
            && self.mask.in_t.get(v_us).copied().unwrap_or(false);
        if !in_core {
            // Keep adjacency tight: one endpoint may still be alive and
            // carry a stale entry for the other.
            if let Some(set) = self.out_adj.get_mut(&u) {
                set.remove(&v);
            }
            if let Some(set) = self.in_adj.get_mut(&v) {
                set.remove(&u);
            }
            return 0;
        }
        let present = self.out_adj.get_mut(&u).is_some_and(|set| set.remove(&v));
        debug_assert!(present, "core adjacency out of sync at {u} -> {v}");
        if !present {
            return 0;
        }
        if let Some(set) = self.in_adj.get_mut(&v) {
            set.remove(&u);
        }
        self.deg_out[u_us] -= 1;
        self.deg_in[v_us] -= 1;
        self.edges -= 1;
        let mut queue = Vec::new();
        if self.deg_out[u_us] < self.x {
            queue.push((u, false));
        }
        if self.deg_in[v_us] < self.y {
            queue.push((v, true));
        }
        let peeled = self.repair(queue);
        self.repairs += peeled;
        peeled
    }

    /// Records that `u → v` was inserted into the underlying graph. The
    /// mask never grows (see the module docs), but counters stay exact for
    /// edges landing inside it, so the reported density keeps tracking the
    /// maintained pair under mixed workloads.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) {
        let (u_us, v_us) = (u as usize, v as usize);
        let in_core = self.mask.in_s.get(u_us).copied().unwrap_or(false)
            && self.mask.in_t.get(v_us).copied().unwrap_or(false);
        if !in_core {
            return;
        }
        let fresh = self.out_adj.entry(u).or_default().insert(v);
        debug_assert!(
            fresh,
            "insert of an edge the core already tracks: {u} -> {v}"
        );
        if !fresh {
            return;
        }
        self.in_adj.entry(v).or_default().insert(u);
        self.deg_out[u_us] += 1;
        self.deg_in[v_us] += 1;
        self.edges += 1;
    }

    /// Cascade peel from the seed violations: the same worklist discipline
    /// as [`crate::xy_core_within`], but walking the core's own live
    /// adjacency instead of a (stale) CSR. Returns vertices peeled.
    fn repair(&mut self, mut queue: Vec<(VertexId, bool)>) -> usize {
        let mut peeled = 0usize;
        while let Some((w, t_side)) = queue.pop() {
            let w_us = w as usize;
            if t_side {
                if !self.mask.in_t[w_us] || self.deg_in[w_us] >= self.y {
                    continue; // stale entry
                }
                self.mask.in_t[w_us] = false;
                self.t_count -= 1;
                peeled += 1;
                if let Some(sources) = self.in_adj.remove(&w) {
                    for u in sources {
                        let u_us = u as usize;
                        if !self.mask.in_s[u_us] {
                            continue;
                        }
                        self.deg_out[u_us] -= 1;
                        self.edges -= 1;
                        if self.deg_out[u_us] < self.x {
                            queue.push((u, false));
                        }
                    }
                }
            } else {
                if !self.mask.in_s[w_us] || self.deg_out[w_us] >= self.x {
                    continue; // stale entry
                }
                self.mask.in_s[w_us] = false;
                self.s_count -= 1;
                peeled += 1;
                if let Some(targets) = self.out_adj.remove(&w) {
                    for v in targets {
                        let v_us = v as usize;
                        if !self.mask.in_t[v_us] {
                            continue;
                        }
                        self.deg_in[v_us] -= 1;
                        self.edges -= 1;
                        if self.deg_in[v_us] < self.y {
                            queue.push((v, true));
                        }
                    }
                }
            }
        }
        peeled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_graph::gen;

    #[test]
    fn tracks_complete_bipartite_teardown() {
        let g = gen::complete_bipartite(3, 3);
        let mut core = DecrementalCore::new(&g, 3, 3);
        assert_eq!((core.s_count(), core.t_count()), (3, 3));
        assert_eq!(core.live_edges(), 9);
        assert_eq!(core.density(), Density::new(9, 3, 3));
        // One deletion pushes a whole side below threshold: total collapse.
        let peeled = core.delete_edge(0, 3);
        assert!(core.is_empty());
        assert_eq!(peeled, 6, "every vertex cascades out");
        assert_eq!(core.density(), Density::ZERO);
        assert_eq!(core.live_edges(), 0);
    }

    #[test]
    fn deletions_outside_the_core_are_noops() {
        let g = DiGraph::from_edges(6, &[(0, 2), (0, 3), (1, 2), (1, 3), (4, 5), (0, 5)]).unwrap();
        let mut core = DecrementalCore::new(&g, 2, 2);
        assert_eq!((core.s_count(), core.t_count()), (2, 2));
        assert_eq!(core.delete_edge(4, 5), 0);
        assert_eq!(core.delete_edge(0, 5), 0, "one endpoint outside T");
        assert_eq!((core.s_count(), core.t_count()), (2, 2));
        assert_eq!(core.repairs(), 0);
    }

    #[test]
    fn matches_from_scratch_peel_under_teardown() {
        let g = gen::gnm(14, 60, 5);
        let mut core = DecrementalCore::new(&g, 2, 2);
        let mut edges: Vec<(u32, u32)> = g.edges().collect();
        // Deterministic shuffle.
        let mut s = 0x9E3779B97F4A7C15u64;
        for i in (1..edges.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            edges.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut remaining: Vec<(u32, u32)> = edges.clone();
        for (u, v) in edges {
            remaining.retain(|&e| e != (u, v));
            core.delete_edge(u, v);
            let now = DiGraph::from_edges(g.n(), &remaining).unwrap();
            assert_eq!(core.mask(), &xy_core(&now, 2, 2), "after deleting {u}->{v}");
            let d = core.density();
            if !core.is_empty() {
                // Certificate: density ≥ √(x·y) = 2.
                assert!(d.edges * d.edges >= 4 * d.s * d.t, "certificate broke: {d}");
            }
        }
    }

    #[test]
    fn inserts_keep_counters_exact_within_the_mask() {
        let g = gen::complete_bipartite(2, 3);
        // Build from the [2, 1]-core, then delete + reinsert an edge: both
        // endpoints keep slack above their thresholds, so nothing peels.
        let mut core = DecrementalCore::new(&g, 2, 1);
        let before = core.density();
        assert_eq!(core.delete_edge(0, 2), 0, "slack above threshold");
        assert_eq!(core.live_edges(), 5);
        core.insert_edge(0, 2);
        assert_eq!(core.density(), before);
        // An insert outside the mask is ignored entirely.
        core.insert_edge(0, 0);
        assert_eq!(core.density(), before);
    }

    #[test]
    fn with_cache_and_from_mask_agree_with_new() {
        let g = gen::power_law(40, 220, 2.2, 9);
        let mut cache = CoreCache::new();
        let a = DecrementalCore::new(&g, 2, 1);
        let b = DecrementalCore::with_cache(&mut cache, &g, 2, 1);
        let c = DecrementalCore::from_mask(&g, 2, 1, xy_core(&g, 2, 1));
        assert_eq!(a.mask(), b.mask());
        assert_eq!(a.mask(), c.mask());
        assert_eq!(a.live_edges(), b.live_edges());
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn empty_graph_core_is_empty() {
        let core = DecrementalCore::new(&DiGraph::empty(4), 1, 1);
        assert!(core.is_empty());
        assert_eq!(core.density(), Density::ZERO);
    }

    use dds_graph::DiGraph;
}
