//! Memoised `[x, y]`-core lookups for the exact search.
//!
//! The per-ratio flow search derives its core thresholds from the current
//! β guess (`x = ⌈β/2a⌉`, `y = ⌈β/2b⌉`). Different ratios — and repeated
//! solves over the same graph — keep landing on the *same* handful of
//! threshold pairs, yet each previously re-peeled the whole graph in
//! `O(n + m)`. [`CoreCache`] memoises the peel per `(x, y)` key so a
//! repeat costs one `O(n)` mask clone instead.
//!
//! The cache is only valid for one graph: the owner (`dds-core`'s
//! `SolveContext`) compares the graph against the previous solve's and calls
//! [`clear`](CoreCache::clear) whenever it changes — which is also what the
//! stream engine relies on when an epoch's re-solve runs on a mutated
//! graph.

use std::collections::HashMap;

use dds_graph::{DiGraph, StMask};

use crate::peel::xy_core_within;

/// Entry cap: the keyed thresholds are bounded by the density range, so
/// real solves stay far below this; it only guards pathological churn.
const MAX_ENTRIES: usize = 4096;

/// A memo table of full-graph `[x, y]`-cores with hit/miss counters.
#[derive(Clone, Debug, Default)]
pub struct CoreCache {
    map: HashMap<(u64, u64), StMask>,
    hits: usize,
    misses: usize,
}

impl CoreCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        CoreCache::default()
    }

    /// The `[x, y]`-core of `g` (full base), memoised. Returns a clone of
    /// the cached mask; the clone is `O(n)` against the `O(n + m)` peel it
    /// replaces.
    pub fn core(&mut self, g: &DiGraph, x: u64, y: u64) -> StMask {
        if let Some(mask) = self.map.get(&(x, y)) {
            self.hits += 1;
            return mask.clone();
        }
        self.misses += 1;
        if self.map.len() >= MAX_ENTRIES {
            self.map.clear();
        }
        let mask = xy_core_within(g, &StMask::full(g.n()), x, y);
        self.map.insert((x, y), mask.clone());
        mask
    }

    /// Drops every memoised core (the graph changed).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Number of lookups answered from the memo table.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of lookups that had to peel.
    #[must_use]
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Number of distinct cores currently memoised.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` iff nothing is memoised.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peel::xy_core;
    use dds_graph::gen;

    #[test]
    fn memoised_cores_match_direct_peels() {
        let g = gen::gnm(30, 140, 3);
        let mut cache = CoreCache::new();
        for (x, y) in [(1, 1), (2, 3), (1, 1), (4, 2), (2, 3), (1, 1)] {
            assert_eq!(cache.core(&g, x, y), xy_core(&g, x, y), "({x},{y})");
        }
        assert_eq!(cache.misses(), 3, "three distinct keys");
        assert_eq!(cache.hits(), 3, "three repeats");
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn clear_forgets_but_keeps_counters() {
        let g = gen::gnm(12, 40, 9);
        let mut cache = CoreCache::new();
        let before = cache.core(&g, 1, 1);
        cache.clear();
        assert!(cache.is_empty());
        let after = cache.core(&g, 1, 1);
        assert_eq!(before, after);
        assert_eq!(cache.misses(), 2, "clear forces a re-peel");
    }
}
