//! Property tests pinning the stream engine against the static solvers.
//!
//! The contract under test (the ISSUE's acceptance property): after **any**
//! random insert/delete sequence,
//!
//! * at every epoch that re-solved (or was forced to), the engine's
//!   reported density equals a fresh [`DcExact`] solve of the materialised
//!   graph, and
//! * between re-solves, the engine's certified bounds bracket the true
//!   optimum of the current graph.

use dds_core::DcExact;
use dds_stream::{Batch, Event, SolverKind, StreamConfig, StreamEngine, TimedEvent};
use proptest::prelude::*;

/// Random event sequences over ≤ 8 vertices: inserts and deletes in a
/// ~2:1 ratio so the graph both grows and churns.
fn event_sequence(max_n: u32, len: usize) -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec((0u32..3, 0u32..max_n, 0u32..max_n), 1..len).prop_map(|raw| {
        raw.into_iter()
            .map(|(op, u, v)| {
                if op < 2 {
                    Event::Insert(u, v)
                } else {
                    Event::Delete(u, v)
                }
            })
            .collect()
    })
}

fn batch_of(events: &[Event]) -> Batch {
    Batch::from_events(
        events
            .iter()
            .map(|&event| TimedEvent { time: 0, event })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Zero tolerance forces a re-solve whenever anything at all drifts,
    /// so every epoch's reported density must equal a fresh exact solve.
    #[test]
    fn zero_tolerance_tracks_exact_every_epoch(
        events in event_sequence(8, 40),
        batch_size in 1usize..6,
    ) {
        let mut engine = StreamEngine::new(StreamConfig {
            tolerance: 0.0,
            slack: 0.0,
            solver: SolverKind::Exact,
            ..Default::default()
        });
        for chunk in events.chunks(batch_size) {
            let report = engine.apply(&batch_of(chunk));
            let exact = DcExact::new().solve(&engine.materialize()).solution.density;
            prop_assert_eq!(report.density, exact,
                "epoch {} (resolved={}) diverged from exact", report.epoch, report.resolved);
        }
    }

    /// With a lazy tolerance, most epochs skip the solver — but the
    /// certified bracket must still contain the true optimum at every
    /// epoch, and a forced re-solve must land exactly on it.
    #[test]
    fn lazy_bounds_always_bracket_exact(
        events in event_sequence(8, 48),
        batch_size in 1usize..7,
        tol_steps in 1u32..8,
    ) {
        let tolerance = f64::from(tol_steps) * 0.25;
        let mut engine = StreamEngine::new(StreamConfig {
            tolerance,
            slack: 0.0,
            solver: SolverKind::Exact,
            ..Default::default()
        });
        for chunk in events.chunks(batch_size) {
            let report = engine.apply(&batch_of(chunk));
            let exact = DcExact::new().solve(&engine.materialize()).solution.density;
            // Lower bound: the witness is a real pair of the current graph.
            prop_assert!(report.density <= exact,
                "lower bound {} exceeds exact {} at epoch {}",
                report.density, exact, report.epoch);
            // Upper bound: certified bracket contains the optimum.
            prop_assert!(exact.to_f64() <= report.upper * (1.0 + 1e-9),
                "upper bound {} below exact {} at epoch {}",
                report.upper, exact, report.epoch);
            // The advertised factor really covers the reported density.
            if !report.density.is_zero() {
                prop_assert!(exact.to_f64() <= report.density.to_f64() * report.certified_factor * (1.0 + 1e-9));
            }
            if report.resolved {
                prop_assert_eq!(report.density, exact,
                    "a re-solved epoch must report the exact optimum");
            }
        }
        // A forced re-solve closes the bracket back onto the optimum.
        let bounds = engine.force_resolve();
        let exact = DcExact::new().solve(&engine.materialize()).solution.density;
        prop_assert_eq!(bounds.lower, exact);
        prop_assert!(bounds.certified_factor() <= 1.0 + 1e-6);
    }

    /// The approximate re-solver never certifies a bracket wider than its
    /// own 2-approximation guarantee allows, and the bracket still holds.
    #[test]
    fn approx_solver_brackets_hold(
        events in event_sequence(8, 40),
        batch_size in 1usize..6,
    ) {
        let mut engine = StreamEngine::new(StreamConfig {
            tolerance: 0.5,
            slack: 0.0,
            solver: SolverKind::CoreApprox,
            ..Default::default()
        });
        for chunk in events.chunks(batch_size) {
            let report = engine.apply(&batch_of(chunk));
            let exact = DcExact::new().solve(&engine.materialize()).solution.density;
            prop_assert!(report.density <= exact);
            prop_assert!(exact.to_f64() <= report.upper * (1.0 + 1e-9));
        }
    }

    /// Replaying a stream must leave the engine's graph equal to building
    /// the final edge set directly (events fold correctly).
    #[test]
    fn engine_state_matches_direct_fold(
        events in event_sequence(10, 60),
    ) {
        let mut engine = StreamEngine::new(StreamConfig {
            tolerance: 1.0,
            slack: 0.0,
            solver: SolverKind::Exact,
            ..Default::default()
        });
        engine.apply(&batch_of(&events));
        let mut edges = std::collections::BTreeSet::new();
        for &event in &events {
            match event {
                Event::Insert(u, v) if u != v => { edges.insert((u, v)); }
                Event::Delete(u, v) => { edges.remove(&(u, v)); }
                Event::Insert(..) => {}
            }
        }
        let g = engine.materialize();
        prop_assert_eq!(g.m(), edges.len());
        for &(u, v) in &edges {
            prop_assert!(g.has_edge(u, v), "missing edge {} -> {}", u, v);
        }
    }
}
