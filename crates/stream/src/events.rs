//! Edge-stream event model and timestamped event-file IO.
//!
//! The on-disk format is line-oriented, in the same whitespace-tolerant
//! spirit as the SNAP/KONECT edge lists `dds-graph::io` reads:
//!
//! ```text
//! # comments with '#' or '%'
//! <time> + <u> <v>      insert edge u → v
//! <time> - <u> <v>      delete edge u → v
//! ```
//!
//! Timestamps are non-negative integers in arbitrary units; replay only
//! requires them to be non-decreasing when batching by time window.

use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use dds_graph::VertexId;

/// One edge mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// Add the edge `u → v` (a no-op if already present or a self-loop).
    Insert(VertexId, VertexId),
    /// Remove the edge `u → v` (a no-op if absent).
    Delete(VertexId, VertexId),
}

/// An [`Event`] with its stream timestamp.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimedEvent {
    /// Stream time in arbitrary units (must be non-decreasing for
    /// time-window batching).
    pub time: u64,
    /// The mutation itself.
    pub event: Event,
}

/// A group of events applied atomically by [`crate::StreamEngine::apply`]:
/// bounds are updated per event, but the re-solve decision is made once
/// per batch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Batch {
    /// Events in application order.
    pub events: Vec<TimedEvent>,
}

impl Batch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        Batch::default()
    }

    /// Builds a batch from timestamped events.
    #[must_use]
    pub fn from_events(events: Vec<TimedEvent>) -> Self {
        Batch { events }
    }

    /// Appends an insertion (timestamp 0 — convenience for tests/examples).
    pub fn insert(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.insert_at(0, u, v)
    }

    /// Appends a deletion (timestamp 0 — convenience for tests/examples).
    pub fn delete(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.delete_at(0, u, v)
    }

    /// Appends a timestamped insertion. Timestamps drive the expiry ring
    /// of [`crate::WindowEngine`], which expects them non-decreasing.
    pub fn insert_at(&mut self, time: u64, u: VertexId, v: VertexId) -> &mut Self {
        self.events.push(TimedEvent {
            time,
            event: Event::Insert(u, v),
        });
        self
    }

    /// Appends a timestamped deletion.
    pub fn delete_at(&mut self, time: u64, u: VertexId, v: VertexId) -> &mut Self {
        self.events.push(TimedEvent {
            time,
            event: Event::Delete(u, v),
        });
        self
    }

    /// Number of events in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the batch holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Errors from event-file IO.
#[derive(Debug)]
pub enum StreamError {
    /// A line failed to parse; carries the 1-based line number and reason.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// What went wrong on that line.
        msg: String,
    },
    /// A line failed to parse mid-tail ([`crate::follow_events`]); beyond
    /// the line number it pins the exact stream position, so an operator
    /// can fix the producer and resume from a cursor before the damage.
    Tail {
        /// 1-based line number counted from the follow start cursor.
        line: usize,
        /// Byte offset where the offending line begins.
        byte: u64,
        /// Index of the next event (events successfully decoded before
        /// the offending line, counted from the follow start cursor).
        event: u64,
        /// What went wrong on that line.
        msg: String,
    },
    /// An underlying IO failure.
    Io(std::io::Error),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            StreamError::Tail {
                line,
                byte,
                event,
                msg,
            } => write!(f, "line {line} (byte {byte}, event {event}): {msg}"),
            StreamError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e)
    }
}

/// Parses a timestamped event stream from a reader.
///
/// # Errors
/// Returns [`StreamError::Parse`] with the offending line number on
/// malformed input, [`StreamError::Io`] on read failure.
pub fn read_events(reader: impl Read) -> Result<Vec<TimedEvent>, StreamError> {
    let mut out = Vec::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        if let Some(ev) = parse_event_line(&line?, idx + 1)? {
            out.push(ev);
        }
    }
    Ok(out)
}

/// Parses one line of the event format: `Ok(None)` for blanks and
/// comments, `Ok(Some(event))` for a mutation. Shared by [`read_events`]
/// and the incremental tail loop in [`crate::follow_events`], so a
/// followed file and a batch-loaded file can never parse differently.
pub(crate) fn parse_event_line(
    line: &str,
    lineno: usize,
) -> Result<Option<TimedEvent>, StreamError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
        return Ok(None);
    }
    let mut fields = trimmed.split_whitespace();
    let time: u64 = parse_field(fields.next(), "timestamp", lineno)?;
    let op = fields.next().ok_or_else(|| StreamError::Parse {
        line: lineno,
        msg: "missing op (+ or -)".into(),
    })?;
    let u: VertexId = parse_field(fields.next(), "source vertex", lineno)?;
    let v: VertexId = parse_field(fields.next(), "target vertex", lineno)?;
    if let Some(extra) = fields.next() {
        return Err(StreamError::Parse {
            line: lineno,
            msg: format!("unexpected trailing field {extra:?}"),
        });
    }
    let event = match op {
        "+" => Event::Insert(u, v),
        "-" => Event::Delete(u, v),
        other => {
            return Err(StreamError::Parse {
                line: lineno,
                msg: format!("unknown op {other:?} (expected + or -)"),
            })
        }
    };
    Ok(Some(TimedEvent { time, event }))
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    what: &str,
    line: usize,
) -> Result<T, StreamError> {
    let raw = field.ok_or_else(|| StreamError::Parse {
        line,
        msg: format!("missing {what}"),
    })?;
    raw.parse().map_err(|_| StreamError::Parse {
        line,
        msg: format!("invalid {what} {raw:?}"),
    })
}

/// Reads an event file from `path` (see module docs for the format).
///
/// # Errors
/// Propagates [`read_events`] errors and file-open failures.
pub fn load_events(path: impl AsRef<Path>) -> Result<Vec<TimedEvent>, StreamError> {
    read_events(File::open(path)?)
}

/// Writes events in the textual format [`read_events`] parses.
///
/// # Errors
/// Returns [`StreamError::Io`] on write failure.
pub fn write_events(events: &[TimedEvent], writer: impl Write) -> Result<(), StreamError> {
    let mut w = BufWriter::new(writer);
    for ev in events {
        match ev.event {
            Event::Insert(u, v) => writeln!(w, "{} + {} {}", ev.time, u, v)?,
            Event::Delete(u, v) => writeln!(w, "{} - {} {}", ev.time, u, v)?,
        }
    }
    w.flush()?;
    Ok(())
}

/// Writes an event file to `path` (see module docs for the format).
///
/// # Errors
/// Propagates [`write_events`] errors and file-create failures.
pub fn save_events(events: &[TimedEvent], path: impl AsRef<Path>) -> Result<(), StreamError> {
    write_events(events, File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let events = vec![
            TimedEvent {
                time: 0,
                event: Event::Insert(0, 1),
            },
            TimedEvent {
                time: 3,
                event: Event::Insert(4, 2),
            },
            TimedEvent {
                time: 9,
                event: Event::Delete(0, 1),
            },
        ];
        let mut buf = Vec::new();
        write_events(&events, &mut buf).unwrap();
        assert_eq!(read_events(buf.as_slice()).unwrap(), events);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n% konect style\n5 + 1 2\n";
        let events = read_events(text.as_bytes()).unwrap();
        assert_eq!(
            events,
            vec![TimedEvent {
                time: 5,
                event: Event::Insert(1, 2)
            }]
        );
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        for (text, line) in [
            ("1 + 2\n", 1),
            ("1 + 2 3\n0 * 1 2\n", 2),
            ("1 + 2 3\n2 - 4 five\n", 2),
            ("1 + 2 3 4\n", 1),
            ("x + 2 3\n", 1),
        ] {
            match read_events(text.as_bytes()) {
                Err(StreamError::Parse { line: l, .. }) => assert_eq!(l, line, "{text:?}"),
                other => panic!("expected parse error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn batch_builder() {
        let mut b = Batch::new();
        b.insert(1, 2).delete(1, 2);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.events[1].event, Event::Delete(1, 2));
    }
}
