//! Follow mode: tail a growing event file and seal epochs on batch
//! boundaries — the serving loop that turns the replay engines into a
//! restartable process.
//!
//! [`follow_events`] owns the file-side mechanics only: incremental reads
//! from a byte cursor, partial-line carry (a producer may be mid-`write`
//! when we poll), batch assembly, and idle detection. What to *do* with
//! each batch is the caller's closure — the CLI drives a
//! [`crate::StreamEngine`] or a `dds-shard` engine through it and
//! checkpoints on its own cadence.
//!
//! The cursor handed to the callback is the byte offset **just past the
//! last event of that batch**: persisting it (snapshots reserve a header
//! field for exactly this) lets a restarted process resume tailing with
//! no event replayed twice and none skipped, because batches are always
//! cut at event boundaries and events at line boundaries.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::ops::ControlFlow;
use std::path::Path;
use std::time::{Duration, Instant};

use crate::events::{parse_event_line, Batch, StreamError, TimedEvent};

/// Configuration of [`follow_events`].
#[derive(Clone, Copy, Debug)]
pub struct FollowConfig {
    /// Events per sealed batch. Must be positive.
    pub batch: usize,
    /// How long to sleep between polls of the file size.
    pub poll: Duration,
    /// Stop after the file has not grown for this long; a final short
    /// batch flushes whatever is pending first. `None` follows forever
    /// (stop from the callback with [`ControlFlow::Break`]).
    pub idle_exit: Option<Duration>,
    /// Byte offset to start tailing from (0 for a fresh file; a restored
    /// snapshot's cursor to resume).
    pub cursor: u64,
}

impl Default for FollowConfig {
    /// 25-event batches (the replay default), 200 ms polls, exit after 2 s
    /// of silence, from the start of the file.
    fn default() -> Self {
        FollowConfig {
            batch: 25,
            poll: Duration::from_millis(200),
            idle_exit: Some(Duration::from_secs(2)),
            cursor: 0,
        }
    }
}

/// What a finished follow loop saw.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FollowOutcome {
    /// Byte offset just past the last consumed event.
    pub cursor: u64,
    /// Events consumed (parsed mutations; comments/blanks excluded).
    pub events: u64,
    /// Batches handed to the callback.
    pub epochs: u64,
    /// Whether the loop ended because the callback broke (vs idling out).
    pub stopped_by_callback: bool,
}

/// Tails `path`, handing `on_batch` one [`Batch`] of `config.batch` events
/// at a time together with the byte cursor just past that batch's last
/// event. See the module docs for the resume contract.
///
/// # Errors
/// Returns [`StreamError::Io`] on file errors and [`StreamError::Tail`]
/// on a malformed line — the tail variant carries the byte offset where
/// the offending line begins and the index of the next event, so an
/// operator can fix the producer and resume from a cursor just before the
/// damage. The reported line number counts from the start cursor, not the
/// start of the file (a resumed tail never reads the bytes before its
/// cursor, so it cannot know their line count) — it is absolute exactly
/// when `config.cursor == 0`.
///
/// # Panics
/// Panics if `config.batch` is zero.
pub fn follow_events<F>(
    path: impl AsRef<Path>,
    config: FollowConfig,
    mut on_batch: F,
) -> Result<FollowOutcome, StreamError>
where
    F: FnMut(Batch, u64) -> ControlFlow<()>,
{
    assert!(config.batch > 0, "batch size must be positive");
    let path = path.as_ref();
    let mut file = File::open(path)?;
    file.seek(SeekFrom::Start(config.cursor))?;

    // `line_start` is the byte offset where the current (possibly still
    // incomplete) line begins; `carry` holds its bytes read so far.
    let mut line_start = config.cursor;
    let mut carry: Vec<u8> = Vec::new();
    let mut lineno = 0usize; // counts from the cursor (see the Errors doc)
    let mut pending: Vec<(TimedEvent, u64)> = Vec::new();
    let mut outcome = FollowOutcome {
        cursor: config.cursor,
        events: 0,
        epochs: 0,
        stopped_by_callback: false,
    };
    let mut last_growth = Instant::now();
    let mut chunk = vec![0u8; 64 * 1024];

    loop {
        // Drain everything currently readable.
        let mut grew = false;
        loop {
            let read = file.read(&mut chunk)?;
            if read == 0 {
                break;
            }
            grew = true;
            let mut slice = &chunk[..read];
            while let Some(nl) = slice.iter().position(|&b| b == b'\n') {
                carry.extend_from_slice(&slice[..nl]);
                slice = &slice[nl + 1..];
                let begins_at = line_start;
                let end = line_start + carry.len() as u64 + 1;
                lineno += 1;
                let line = String::from_utf8_lossy(&carry).into_owned();
                carry.clear();
                line_start = end;
                let parsed = parse_event_line(&line, lineno)
                    .map_err(|e| tail_error(e, begins_at, outcome.events + pending.len() as u64))?;
                if let Some(ev) = parsed {
                    pending.push((ev, end));
                }
            }
            carry.extend_from_slice(slice);
        }
        if grew {
            last_growth = Instant::now();
        }

        // Seal full batches.
        while pending.len() >= config.batch {
            let rest = pending.split_off(config.batch);
            let sealed = std::mem::replace(&mut pending, rest);
            let cursor = sealed.last().expect("non-empty batch").1;
            let events: Vec<TimedEvent> = sealed.into_iter().map(|(ev, _)| ev).collect();
            outcome.events += events.len() as u64;
            outcome.epochs += 1;
            outcome.cursor = cursor;
            if on_batch(Batch::from_events(events), cursor).is_break() {
                outcome.stopped_by_callback = true;
                return Ok(outcome);
            }
        }

        if let Some(idle) = config.idle_exit {
            if last_growth.elapsed() >= idle {
                // A final line without a trailing newline is complete once
                // the producer has gone idle — parse it like `read_events`
                // would, so a replay through the tail loop and a bulk load
                // see the same events.
                if !carry.is_empty() {
                    lineno += 1;
                    let line = String::from_utf8_lossy(&carry).into_owned();
                    let end = line_start + carry.len() as u64;
                    carry.clear();
                    let parsed = parse_event_line(&line, lineno).map_err(|e| {
                        tail_error(e, line_start, outcome.events + pending.len() as u64)
                    })?;
                    if let Some(ev) = parsed {
                        pending.push((ev, end));
                    }
                }
                // Flush the short tail, if any, then stop.
                if !pending.is_empty() {
                    let cursor = pending.last().expect("non-empty tail").1;
                    let events: Vec<TimedEvent> = pending.drain(..).map(|(ev, _)| ev).collect();
                    outcome.events += events.len() as u64;
                    outcome.epochs += 1;
                    outcome.cursor = cursor;
                    if on_batch(Batch::from_events(events), cursor).is_break() {
                        outcome.stopped_by_callback = true;
                    }
                }
                return Ok(outcome);
            }
        }
        std::thread::sleep(config.poll);
    }
}

/// Upgrades a [`StreamError::Parse`] from the line parser to the richer
/// [`StreamError::Tail`], pinning the byte offset where the offending line
/// begins and the index of the next event.
fn tail_error(err: StreamError, byte: u64, event: u64) -> StreamError {
    match err {
        StreamError::Parse { line, msg } => StreamError::Tail {
            line,
            byte,
            event,
            msg,
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Event;
    use std::io::Write;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "dds_follow_{tag}_{}_{:?}.events",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn quick(batch: usize, cursor: u64) -> FollowConfig {
        FollowConfig {
            batch,
            poll: Duration::from_millis(5),
            idle_exit: Some(Duration::from_millis(50)),
            cursor,
        }
    }

    #[test]
    fn static_file_is_consumed_in_batches_then_idles_out() {
        let path = temp_path("static");
        let mut text = String::from("# header\n");
        for i in 0..7u32 {
            text.push_str(&format!("{i} + {i} {}\n", i + 100));
        }
        std::fs::write(&path, &text).unwrap();
        let mut batches = Vec::new();
        let outcome = follow_events(&path, quick(3, 0), |batch, cursor| {
            batches.push((batch.events.len(), cursor));
            ControlFlow::Continue(())
        })
        .unwrap();
        assert_eq!(outcome.events, 7);
        assert_eq!(outcome.epochs, 3, "3 + 3 + flush(1)");
        assert!(!outcome.stopped_by_callback);
        assert_eq!(
            batches.iter().map(|&(n, _)| n).collect::<Vec<_>>(),
            vec![3, 3, 1]
        );
        assert_eq!(outcome.cursor, text.len() as u64, "cursor reaches EOF");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resuming_from_a_batch_cursor_replays_nothing_and_skips_nothing() {
        let path = temp_path("resume");
        let mut text = String::new();
        for i in 0..6u32 {
            text.push_str(&format!("{i} + {i} {}\n", i + 50));
        }
        std::fs::write(&path, &text).unwrap();
        // First pass: stop after the first 2-event batch.
        let mut first_cursor = 0;
        let outcome = follow_events(&path, quick(2, 0), |_, cursor| {
            first_cursor = cursor;
            ControlFlow::Break(())
        })
        .unwrap();
        assert!(outcome.stopped_by_callback);
        assert_eq!(outcome.events, 2);
        // Second pass from the persisted cursor: exactly the other 4.
        let mut seen = Vec::new();
        let outcome = follow_events(&path, quick(2, first_cursor), |batch, _| {
            seen.extend(batch.events.iter().map(|ev| ev.event));
            ControlFlow::Continue(())
        })
        .unwrap();
        assert_eq!(outcome.events, 4);
        assert_eq!(
            seen,
            (2..6u32)
                .map(|i| Event::Insert(i, i + 50))
                .collect::<Vec<_>>()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn growing_file_is_tailed_across_partial_lines() {
        let path = temp_path("grow");
        std::fs::write(&path, "0 + 1 2\n").unwrap();
        let writer_path = path.clone();
        // A producer that appends with a mid-line pause, so the tail loop
        // must carry a partial line across polls.
        let writer = std::thread::spawn(move || {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&writer_path)
                .unwrap();
            std::thread::sleep(Duration::from_millis(15));
            write!(f, "1 + 3").unwrap();
            f.flush().unwrap();
            std::thread::sleep(Duration::from_millis(15));
            writeln!(f, " 4").unwrap();
            writeln!(f, "2 - 1 2").unwrap();
            f.flush().unwrap();
        });
        let mut seen = Vec::new();
        let outcome = follow_events(
            &path,
            FollowConfig {
                batch: 1,
                poll: Duration::from_millis(5),
                idle_exit: Some(Duration::from_millis(120)),
                cursor: 0,
            },
            |batch, _| {
                seen.extend(batch.events.iter().map(|ev| ev.event));
                ControlFlow::Continue(())
            },
        )
        .unwrap();
        writer.join().unwrap();
        assert_eq!(outcome.events, 3);
        assert_eq!(
            seen,
            vec![
                Event::Insert(1, 2),
                Event::Insert(3, 4),
                Event::Delete(1, 2)
            ]
        );
        std::fs::remove_file(&path).ok();
    }

    /// The resume contract after an idle-exit on an unterminated final
    /// line. The flush gives that line a cursor *excluding* its eventual
    /// trailing newline (it has not been written yet). When the producer
    /// later appends `\n` + more events and the follower resumes from the
    /// stored cursor, the first byte it reads is that stray `\n`: an empty
    /// line, which `parse_event_line` skips like any blank — so the tail
    /// event is neither replayed nor does the resume error. Only the
    /// (documented, cursor-relative) line numbering shifts by one.
    #[test]
    fn resume_after_unterminated_tail_neither_double_counts_nor_errors() {
        let path = temp_path("resume_unterminated");
        let head = "0 + 1 2\n1 + 3 4"; // no trailing newline
        std::fs::write(&path, head).unwrap();
        let mut seen = Vec::new();
        let outcome = follow_events(&path, quick(10, 0), |batch, _| {
            seen.extend(batch.events.iter().map(|ev| ev.event));
            ControlFlow::Continue(())
        })
        .unwrap();
        assert_eq!(outcome.events, 2, "the unterminated tail line flushes");
        assert_eq!(seen, vec![Event::Insert(1, 2), Event::Insert(3, 4)]);
        assert_eq!(
            outcome.cursor,
            head.len() as u64,
            "cursor stops before the missing newline"
        );

        // The producer finishes the line and appends one more event.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        write!(f, "\n2 + 5 6\n").unwrap();
        drop(f);

        let mut resumed = Vec::new();
        let outcome2 = follow_events(&path, quick(10, outcome.cursor), |batch, _| {
            resumed.extend(batch.events.iter().map(|ev| ev.event));
            ControlFlow::Continue(())
        })
        .expect("the stray newline must not be a tail error");
        assert_eq!(
            outcome2.events, 1,
            "exactly the new event, nothing replayed"
        );
        assert_eq!(resumed, vec![Event::Insert(5, 6)]);
        assert_eq!(
            outcome2.cursor,
            head.len() as u64 + "\n2 + 5 6\n".len() as u64,
            "resumed cursor reaches the new EOF"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_errors_surface_with_line_numbers() {
        let path = temp_path("bad");
        std::fs::write(&path, "0 + 1 2\n1 * 3 4\n").unwrap();
        let err = follow_events(&path, quick(10, 0), |_, _| ControlFlow::Continue(()))
            .expect_err("malformed line must fail");
        assert!(err.to_string().contains("line 2"), "{err}");
        // The tail variant pins the stream position: the bad line starts
        // at byte 8 and one event decoded before it.
        match err {
            StreamError::Tail {
                line, byte, event, ..
            } => {
                assert_eq!((line, byte, event), (2, 8, 1));
            }
            other => panic!("expected a tail error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn idle_flush_parse_errors_pin_the_tail_position() {
        let path = temp_path("bad_tail");
        // The final line has no trailing newline: it parses at idle-exit
        // time, and its error must still carry cursor and event index.
        std::fs::write(&path, "0 + 1 2\n1 + 3 4\n2 * 5 6").unwrap();
        let err = follow_events(&path, quick(10, 0), |_, _| ControlFlow::Continue(()))
            .expect_err("malformed unterminated line must fail");
        match err {
            StreamError::Tail {
                line, byte, event, ..
            } => {
                assert_eq!((line, byte, event), (3, 16, 2));
            }
            other => panic!("expected a tail error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_is_rejected() {
        let path = temp_path("zero");
        std::fs::write(&path, "").unwrap();
        let _ = follow_events(
            &path,
            FollowConfig {
                batch: 0,
                ..quick(1, 0)
            },
            |_, _| ControlFlow::Continue(()),
        );
    }
}
