//! The stream engine: batched ingestion, certified lazy re-solve, epoch
//! reports, and replay helpers.

use std::time::{Duration, Instant};

use dds_core::{core_approx, parallel, DcExact, ExactOptions, SolveContext, SolveStats};
use dds_graph::{DiGraph, Pair};
use dds_num::Density;
use dds_obs::{span, Counter, Gauge, Histogram, Registry, Tracer};
use dds_sketch::{SketchConfig, SketchEngine, SketchStats};

use crate::bounds::{structural_upper, BoundTracker, CertifiedBounds};
use crate::events::{Batch, Event, TimedEvent};
use crate::snapshot::{SnapshotError, SnapshotKind, SnapshotReader, SnapshotWriter};
use crate::state::DynamicGraph;
use crate::witness::denser_pair;

/// Which full solver backs a re-solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolverKind {
    /// [`dds_core::DcExact`] — re-solves cost more, but every epoch's
    /// density is certified within `1 + tolerance` of the exact optimum.
    Exact,
    /// [`dds_core::core_approx`] — cheap `O(√m·(n+m))` re-solves; epochs
    /// are certified within `gap₀·(1 + tolerance)` where `gap₀ ≤ 2` is the
    /// bracket the approximation itself certifies at solve time.
    CoreApprox,
}

/// The sketch-fallback knob shared by [`StreamConfig`] and
/// [`crate::WindowConfig`]: when set, an engine maintains a
/// [`SketchEngine`] alongside its full edge set (`O(1)` per event) and —
/// whenever its band breaks while the live edge count is at least
/// `min_m` — replaces the full-graph solver with a **sketch refresh**: a
/// core sweep of the retained subgraph (bounded by
/// [`SketchConfig::state_bound`]), escalated to an exact-on-sketch solve
/// when the sweep's own bracket is loose. The witness pair is adopted as
/// the full-graph lower bound (its true live edge count is recounted and
/// then maintained per event); the upper bound re-anchors to the
/// structural `min(√m, √(d⁺·d⁻))`, so certification proceeds with the
/// same gap-relative band semantics as [`SolverKind::CoreApprox`] — paying
/// `O(state_bound)`-scale work instead of `O(√m·(n+m))` per refresh.
///
/// Below `min_m` the engine's configured full solver runs as usual (small
/// graphs are cheaper to solve outright than to approximate).
#[derive(Clone, Copy, Debug)]
pub struct SketchTier {
    /// Live edge count at which re-solves switch to the sketch tier.
    pub min_m: usize,
    /// Configuration of the maintained sketch.
    pub config: SketchConfig,
}

impl SketchTier {
    /// A tier that engages at `min_m` with the default sketch
    /// configuration.
    #[must_use]
    pub fn at(min_m: usize) -> Self {
        SketchTier {
            min_m,
            config: SketchConfig::default(),
        }
    }
}

/// Engine configuration.
///
/// The certificate band is relative *and* absolute: a re-solve fires when
///
/// ```text
/// upper > gap₀ · max(lower · (1 + tolerance), lower + slack)
/// ```
///
/// with `gap₀` the bracket width right after the last solve (1 for
/// [`SolverKind::Exact`]). The relative term is what you configure for
/// dense regimes ("stay within 25% of the optimum"); the absolute `slack`
/// keeps quiet low-density regimes from burning re-solves on noise (at
/// `ρ ≈ 2`, a 25% band is half an edge of density — nothing real).
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Allowed relative certificate degradation before a re-solve fires.
    /// Must be non-negative.
    pub tolerance: f64,
    /// Allowed absolute certificate degradation (density units). Must be
    /// non-negative. Set to 0 to make the band purely relative.
    pub slack: f64,
    /// Solver used for re-solves.
    pub solver: SolverKind,
    /// Worker threads for exact re-solves (1 = the serial engine; more
    /// opt into [`dds_core::parallel::dc_exact_parallel_with`] on the
    /// engine's warm context). Must be positive.
    pub threads: usize,
    /// Optional sketch fallback (see [`SketchTier`]).
    pub sketch: Option<SketchTier>,
}

impl Default for StreamConfig {
    /// Exact re-solves with `tolerance = 0.25` and `slack = 2.0`: every
    /// reported density is certified within `max(1.25×, +2.0)` of the true
    /// optimum — far tighter than the static 2-approximation — while
    /// scattered churn is absorbed incrementally for hundreds of epochs at
    /// a time. Tighten when re-solve cost is cheap for your graph sizes;
    /// loosen when updates are hot.
    fn default() -> Self {
        StreamConfig {
            tolerance: 0.25,
            slack: 2.0,
            solver: SolverKind::Exact,
            threads: 1,
            sketch: None,
        }
    }
}

/// What one [`StreamEngine::apply`] call did and certified.
#[derive(Clone, Debug)]
pub struct EpochReport {
    /// 1-based epoch number (one per applied batch).
    pub epoch: u64,
    /// Events in the batch, including no-ops.
    pub events: usize,
    /// Insertions that changed the graph.
    pub inserts: usize,
    /// Deletions that changed the graph.
    pub deletes: usize,
    /// No-op events (duplicate inserts, absent deletes, self-loops).
    pub ignored: usize,
    /// Vertex count after the batch.
    pub n: usize,
    /// Edge count after the batch.
    pub m: usize,
    /// Whether this epoch ran a full solver (certificate was invalidated).
    pub resolved: bool,
    /// Instrumentation of the epoch's exact re-solve (`None` for
    /// incremental epochs and for `CoreApprox` re-solves, which run no
    /// ratio searches). Warm-context effects — fewer flow decisions, arena
    /// and core-memo reuse — are visible here, which is how `dds stream`
    /// and experiment E12/E13 logs expose re-solve cost regressions.
    pub solve_stats: Option<SolveStats>,
    /// Sketch-tier counters, present when this epoch's re-solve went
    /// through the sketch fallback (the lifetime [`SketchStats`] of the
    /// maintained sketch at that moment).
    pub sketch: Option<SketchStats>,
    /// The reported density: the witness pair's exact density.
    pub density: Density,
    /// Certified lower bound (`density` as `f64`).
    pub lower: f64,
    /// Certified upper bound on the current optimum.
    pub upper: f64,
    /// Proven approximation factor of `density` (`upper / lower`).
    pub certified_factor: f64,
    /// Wall-clock time spent in this `apply` call.
    pub elapsed: Duration,
}

/// Incremental DDS maintenance over an edge stream (see crate docs).
///
/// The engine owns a [`SolveContext`] that survives across epochs: every
/// lazy re-solve warm-starts from the previous solve's witness (revalidated
/// on the mutated graph), recycles the flow arenas, and keeps the memoised
/// `[x, y]`-cores for as long as the graph is unchanged (the context's
/// graph-identity check invalidates them the moment a re-solve runs on a
/// mutated edge set).
#[derive(Debug)]
pub struct StreamEngine {
    config: StreamConfig,
    state: DynamicGraph,
    tracker: BoundTracker,
    ctx: SolveContext,
    sketch: Option<SketchEngine>,
    metrics: StreamMetrics,
    tracer: Tracer,
    last_solve_stats: Option<SolveStats>,
    last_resolve_sketched: bool,
}

/// Why a re-solve fired (feeds the `dds_stream_resolve_cause_*` counters).
#[derive(Clone, Copy, Debug)]
enum ResolveCause {
    /// Edges exist but no certificate does (first solve, or the witness
    /// decayed to nothing).
    Cold,
    /// The certified band broke: `upper > gap₀ · band(lower)`.
    Band,
}

/// Obs-backed lifetime counters of a [`StreamEngine`] (the `dds_stream_*`
/// series): standalone atomics by default — epoch numbering and the
/// `resolves()`/`sketch_resolves()` accessors read them as views — re-homed
/// into a shared registry by [`StreamEngine::attach_obs`]. The gauge and
/// the latency histograms are no-ops until attached.
#[derive(Debug, Default)]
struct StreamMetrics {
    epochs: Counter,
    resolves: Counter,
    sketch_resolves: Counter,
    inserts: Counter,
    deletes: Counter,
    ignored: Counter,
    resolve_cold: Counter,
    resolve_band: Counter,
    edges: Option<Gauge>,
    apply_latency: Histogram,
    resolve_latency: Histogram,
}

impl StreamMetrics {
    fn attach(&mut self, registry: &Registry) {
        let transfer = |old: &mut Counter, name: &str| {
            let new = registry.counter(name);
            new.add(old.get());
            *old = new;
        };
        transfer(&mut self.epochs, "dds_stream_epochs_total");
        transfer(&mut self.resolves, "dds_stream_resolves_total");
        transfer(
            &mut self.sketch_resolves,
            "dds_stream_sketch_resolves_total",
        );
        transfer(&mut self.inserts, "dds_stream_inserts_total");
        transfer(&mut self.deletes, "dds_stream_deletes_total");
        transfer(&mut self.ignored, "dds_stream_ignored_total");
        transfer(
            &mut self.resolve_cold,
            "dds_stream_resolve_cause_cold_total",
        );
        transfer(
            &mut self.resolve_band,
            "dds_stream_resolve_cause_band_total",
        );
        self.edges = Some(registry.gauge("dds_stream_edges"));
        self.apply_latency = registry.histogram("dds_stream_apply_latency_us");
        self.resolve_latency = registry.histogram("dds_stream_resolve_latency_us");
    }
}

impl StreamEngine {
    /// A fresh engine over an empty graph.
    #[must_use]
    pub fn new(config: StreamConfig) -> Self {
        assert!(config.tolerance >= 0.0, "tolerance must be non-negative");
        assert!(config.slack >= 0.0, "slack must be non-negative");
        assert!(config.threads > 0, "threads must be positive");
        StreamEngine {
            state: DynamicGraph::new(),
            tracker: BoundTracker::new(),
            ctx: SolveContext::new(),
            sketch: config.sketch.map(|tier| SketchEngine::new(tier.config)),
            config,
            metrics: StreamMetrics::default(),
            tracer: Tracer::detached(),
            last_solve_stats: None,
            last_resolve_sketched: false,
        }
    }

    /// Re-homes this engine's lifetime counters in `registry` (the
    /// `dds_stream_*` series, plus the `dds_exact_*` series of its solver
    /// context and the `dds_sketch_*` series of its sketch tier when one
    /// is maintained), transferring the values accumulated so far and
    /// enabling the latency histograms and the edge gauge.
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.metrics.attach(registry);
        self.ctx.attach_obs(registry);
        if let Some(sk) = &mut self.sketch {
            sk.attach_obs(registry);
        }
    }

    /// Routes this engine's spans (`stream.apply` with a nested
    /// `stream.resolve`) to `tracer`. The default is the detached tracer:
    /// spans are inert and never read the clock.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Applies one batch: `O(batch)` bound maintenance, plus a full solve
    /// only if the certificate from the last solve no longer covers the
    /// configured tolerance.
    pub fn apply(&mut self, batch: &Batch) -> EpochReport {
        let start = Instant::now();
        let mut span = span!(self.tracer, "stream.apply");
        let (mut inserts, mut deletes, mut ignored) = (0usize, 0usize, 0usize);
        for ev in &batch.events {
            match ev.event {
                Event::Insert(u, v) => {
                    if self.state.insert(u, v) {
                        inserts += 1;
                        self.tracker.on_insert(u, v);
                        if let Some(sk) = &mut self.sketch {
                            sk.insert(u, v);
                        }
                    } else {
                        ignored += 1;
                    }
                }
                Event::Delete(u, v) => {
                    if self.state.delete(u, v) {
                        deletes += 1;
                        self.tracker.on_delete(u, v);
                        if let Some(sk) = &mut self.sketch {
                            sk.delete(u, v);
                        }
                    } else {
                        ignored += 1;
                    }
                }
            }
        }
        self.metrics.epochs.inc();
        let epoch = self.metrics.epochs.get();

        let cause = self.resolve_cause();
        let resolved = cause.is_some();
        if let Some(cause) = cause {
            match cause {
                ResolveCause::Cold => self.metrics.resolve_cold.inc(),
                ResolveCause::Band => self.metrics.resolve_band.inc(),
            }
            if std::env::var_os("DDS_STREAM_DEBUG").is_some() {
                let b = self.tracker.bounds(&self.state);
                eprintln!(
                    "resolve@{} v{}: lower={:.4} upper={:.4} {}",
                    epoch,
                    self.state.version(),
                    b.lower.to_f64(),
                    b.upper,
                    self.tracker.debug_bounds(&self.state),
                );
            }
            self.resolve();
        }
        self.metrics.inserts.add(inserts as u64);
        self.metrics.deletes.add(deletes as u64);
        self.metrics.ignored.add(ignored as u64);
        if let Some(g) = &self.metrics.edges {
            g.set(self.state.m() as u64);
        }
        span.record("epoch", epoch);
        span.record("events", batch.events.len() as u64);
        span.record("m", self.state.m() as u64);
        span.record_flag("resolved", resolved);

        let bounds = self.tracker.bounds(&self.state);
        let elapsed = start.elapsed();
        self.metrics.apply_latency.observe(elapsed);
        EpochReport {
            epoch,
            events: batch.events.len(),
            inserts,
            deletes,
            ignored,
            n: self.state.n(),
            m: self.state.m(),
            resolved,
            solve_stats: if resolved {
                self.last_solve_stats
            } else {
                None
            },
            sketch: if resolved && self.last_resolve_sketched {
                self.sketch.as_ref().map(SketchEngine::stats)
            } else {
                None
            },
            density: bounds.lower,
            lower: bounds.lower.to_f64(),
            upper: bounds.upper,
            certified_factor: bounds.certified_factor(),
            elapsed,
        }
    }

    fn resolve_cause(&self) -> Option<ResolveCause> {
        if self.state.m() == 0 {
            // Nothing to find; the empty certificate [0, 0] is exact.
            return None;
        }
        let bounds = self.tracker.bounds(&self.state);
        let lower = bounds.lower.to_f64();
        if lower <= 0.0 {
            // Edges exist but the witness is gone (or there has never been
            // a solve): no meaningful certificate.
            return Some(ResolveCause::Cold);
        }
        let band =
            crate::bounds::certification_band(lower, self.config.tolerance, self.config.slack);
        (bounds.upper > self.tracker.gap_at_solve() * band).then_some(ResolveCause::Band)
    }

    fn resolve(&mut self) {
        let timer = self.metrics.resolve_latency.timer();
        let mut span = span!(self.tracer, "stream.resolve");
        self.last_resolve_sketched = self
            .config
            .sketch
            .is_some_and(|tier| self.state.m() >= tier.min_m);
        let (pair, rho_upper) = if self.last_resolve_sketched {
            // Sketch tier: an exact solve of the retained subgraph only.
            // Its witness is a genuine pair of the full graph (vertex ids
            // transfer), so the tracker recounts its true edges below —
            // the lower bound is full-graph exact even though no full
            // solver ran. No solver certifies an upper bound here, so ρ₁
            // re-anchors to the structural bound and the band runs
            // gap-relative, like a `CoreApprox` solve.
            let sk = self.sketch.as_mut().expect("tier implies a sketch");
            let incumbent = self.tracker.witness().cloned();
            let (pair, stats) = sketch_tier_refresh(sk, &self.state, incumbent);
            self.last_solve_stats = stats;
            self.metrics.sketch_resolves.inc();
            (pair, structural_upper(&self.state))
        } else {
            let g = self.state.materialize();
            match self.config.solver {
                SolverKind::Exact => {
                    // Warm start: the context carries the previous epoch's
                    // witness, arenas, and (graph permitting) memoised cores.
                    let report = if self.config.threads > 1 {
                        parallel::dc_exact_parallel_with(
                            &mut self.ctx,
                            &g,
                            ExactOptions::default(),
                            self.config.threads,
                        )
                    } else {
                        DcExact::new().solve_with(&mut self.ctx, &g)
                    };
                    self.last_solve_stats = Some(report.stats());
                    let rho = report.solution.density.to_f64();
                    (Some(report.solution.pair), rho)
                }
                SolverKind::CoreApprox => {
                    let report = core_approx(&g);
                    self.last_solve_stats = None;
                    (Some(report.solution.pair), report.upper_bound)
                }
            }
        };
        let pair = pair.filter(|p| !p.is_empty());
        self.tracker.reset_after_solve(&self.state, pair, rho_upper);
        self.metrics.resolves.inc();
        span.record_flag("sketched", self.last_resolve_sketched);
        span.record("m", self.state.m() as u64);
        span.close();
        timer.stop();
    }

    /// Forces a full solve now, regardless of the certificate, and returns
    /// the refreshed bounds.
    pub fn force_resolve(&mut self) -> CertifiedBounds {
        self.resolve();
        self.tracker.bounds(&self.state)
    }

    /// The current certified bracket `lower ≤ ρ_opt ≤ upper`.
    #[must_use]
    pub fn bounds(&self) -> CertifiedBounds {
        self.tracker.bounds(&self.state)
    }

    /// The maintained witness pair (the last solve's answer), if any.
    #[must_use]
    pub fn witness(&self) -> Option<&Pair> {
        self.tracker.witness()
    }

    /// Number of batches applied so far.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.metrics.epochs.get()
    }

    /// Number of full solves run so far.
    #[must_use]
    pub fn resolves(&self) -> u64 {
        self.metrics.resolves.get()
    }

    /// How many of those re-solves went through the sketch tier.
    #[must_use]
    pub fn sketch_resolves(&self) -> u64 {
        self.metrics.sketch_resolves.get()
    }

    /// Lifetime counters of the maintained sketch, when the tier is
    /// configured.
    #[must_use]
    pub fn sketch_stats(&self) -> Option<SketchStats> {
        self.sketch.as_ref().map(SketchEngine::stats)
    }

    /// Instrumentation of the most recent exact re-solve, if any.
    #[must_use]
    pub fn last_solve_stats(&self) -> Option<SolveStats> {
        self.last_solve_stats
    }

    /// The engine's long-lived solver context (inspection: solve count,
    /// lifetime arena/core reuse totals).
    #[must_use]
    pub fn context(&self) -> &SolveContext {
        &self.ctx
    }

    /// Current vertex count.
    #[must_use]
    pub fn n(&self) -> usize {
        self.state.n()
    }

    /// Current edge count.
    #[must_use]
    pub fn m(&self) -> usize {
        self.state.m()
    }

    /// Freezes the current graph into the CSR form the static solvers use.
    #[must_use]
    pub fn materialize(&self) -> DiGraph {
        self.state.materialize()
    }

    /// Serializes the engine to the versioned snapshot format (see
    /// [`crate::snapshot`]): the live edge set, the certificate state
    /// (`ρ₁`, the gap, the witness pair, the delta and surviving-certified
    /// edge sets — everything the drift bounds need to keep certifying
    /// bit-identically after a restart), and the sketch tier's subsampling
    /// level when one is maintained. The lifetime metric counters ride
    /// along so a restored engine's `dds_stream_*_total` series continue
    /// instead of restarting at zero. `cursor` is the source-stream byte
    /// offset a follow loop should resume from (0 if unused).
    ///
    /// Round-trip identity holds: [`StreamEngine::restore`] of these bytes
    /// yields an engine whose own `snapshot` is byte-identical.
    #[must_use]
    pub fn snapshot(&self, cursor: u64) -> Vec<u8> {
        let mut w = SnapshotWriter::new(SnapshotKind::Stream, cursor);
        w.put_u64(self.state.n() as u64);
        w.put_u64(self.metrics.epochs.get());
        w.put_u64(self.metrics.resolves.get());
        w.put_u64(self.metrics.sketch_resolves.get());
        w.put_u64(self.metrics.inserts.get());
        w.put_u64(self.metrics.deletes.get());
        w.put_u64(self.metrics.ignored.get());
        w.put_u64(self.metrics.resolve_cold.get());
        w.put_u64(self.metrics.resolve_band.get());
        let mut edges: Vec<_> = self.state.edges().collect();
        w.put_edges(&mut edges);
        let (rho, gap, witness, mut drift, mut cert) = self.tracker.snapshot_state();
        w.put_f64(rho);
        w.put_f64(gap);
        w.put_pair(witness);
        w.put_edges(&mut drift);
        w.put_edges(&mut cert);
        match &self.sketch {
            Some(sk) => {
                w.put_u8(1);
                w.put_u32(sk.level());
            }
            None => w.put_u8(0),
        }
        w.finish()
    }

    /// Reconstructs an engine from snapshot bytes under `config` (the
    /// config is the caller's, like [`StreamEngine::new`] — snapshots
    /// carry state, not policy). Returns the engine and the stored stream
    /// cursor. The solver context starts cold (arena/memo warmth is a
    /// perf property, not state); the sketch tier, when configured, is
    /// rebuilt deterministically from the edge set at the stored level.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Format`] on malformed bytes, a kind/
    /// version mismatch, or an edge list violating the simple-graph
    /// invariants.
    pub fn restore(config: StreamConfig, bytes: &[u8]) -> Result<(Self, u64), SnapshotError> {
        let (mut r, cursor) = SnapshotReader::open(bytes, SnapshotKind::Stream)?;
        let n = r.take_u64()? as usize;
        let epoch = r.take_u64()?;
        let resolves = r.take_u64()?;
        let sketch_resolves = r.take_u64()?;
        let inserts = r.take_u64()?;
        let deletes = r.take_u64()?;
        let ignored = r.take_u64()?;
        let resolve_cold = r.take_u64()?;
        let resolve_band = r.take_u64()?;
        let edges = r.take_edges()?;
        let rho = r.take_f64()?;
        let gap = r.take_f64()?;
        let witness = r.take_pair()?;
        let drift = r.take_edges()?;
        let cert = r.take_edges()?;
        let sketch_level = match r.take_u8()? {
            0 => None,
            1 => Some(r.take_u32()?),
            other => {
                return Err(SnapshotError::Format(format!(
                    "bad sketch presence byte {other}"
                )))
            }
        };
        r.finish()?;

        let mut state = DynamicGraph::new();
        for &(u, v) in &edges {
            if !state.insert(u, v) {
                return Err(SnapshotError::Format(format!(
                    "snapshot edge list violates the simple-graph invariants at {u} -> {v}"
                )));
            }
        }
        state.ensure_vertices(n);
        // Untrusted ids must be range-checked before anything sizes a
        // bitmap to n — a flipped byte must be a Format error, not an
        // index panic.
        if let Some(pair) = &witness {
            if let Some(&id) = pair
                .s()
                .iter()
                .chain(pair.t())
                .find(|&&id| id as usize >= state.n())
            {
                return Err(SnapshotError::Format(format!(
                    "witness vertex {id} is beyond the stored vertex count {}",
                    state.n()
                )));
            }
        }
        let tracker = BoundTracker::restore(&state, rho, gap, witness, &drift, cert);
        let sketch = config.sketch.map(|tier| {
            SketchEngine::restore_at(
                tier.config,
                sketch_level.unwrap_or(0),
                edges.iter().copied(),
            )
        });
        let mut engine = StreamEngine::new(config);
        engine.state = state;
        engine.tracker = tracker;
        engine.sketch = sketch;
        engine.metrics.epochs.store(epoch);
        engine.metrics.resolves.store(resolves);
        engine.metrics.sketch_resolves.store(sketch_resolves);
        engine.metrics.inserts.store(inserts);
        engine.metrics.deletes.store(deletes);
        engine.metrics.ignored.store(ignored);
        engine.metrics.resolve_cold.store(resolve_cold);
        engine.metrics.resolve_band.store(resolve_band);
        Ok((engine, cursor))
    }

    /// Writes [`StreamEngine::snapshot`] to `path` atomically.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Io`] on write failure.
    pub fn save_snapshot(
        &self,
        path: impl AsRef<std::path::Path>,
        cursor: u64,
    ) -> Result<(), SnapshotError> {
        crate::snapshot::write_snapshot_file(&self.snapshot(cursor), path)
    }

    /// Reads a snapshot file and [`StreamEngine::restore`]s from it.
    ///
    /// # Errors
    /// Propagates read and format errors.
    pub fn restore_from(
        config: StreamConfig,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(Self, u64), SnapshotError> {
        let bytes = crate::snapshot::read_snapshot_file(path)?;
        StreamEngine::restore(config, &bytes)
    }
}

/// How [`replay`] groups a timestamped event stream into batches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchBy {
    /// Fixed-size batches of `n` events (the last may be smaller).
    Count(usize),
    /// One batch per half-open time window `[k·w, (k+1)·w)`; empty
    /// windows produce no batch.
    TimeWindow(u64),
}

/// The sketch tier's refresh-and-adopt sequence, shared verbatim by
/// [`StreamEngine`] re-solves and [`crate::WindowEngine`] refreshes so the
/// two engines cannot diverge on adoption policy:
///
/// 1. a graph that shrank far below its peak leaves the sample
///    over-thinned (the level never decrements on its own) — reseed it
///    from the authoritative edge set first;
/// 2. run the sketch refresh (core sweep of the sample, escalated per the
///    sketch's own config);
/// 3. keep the denser of the fresh sketched pair and the incumbent
///    witness, measured on the full graph — both are real pairs of it,
///    and a subsampled sweep can be wrong about which is best.
///
/// Returns the adopted pair and the escalation's instrumentation.
pub(crate) fn sketch_tier_refresh(
    sk: &mut SketchEngine,
    state: &DynamicGraph,
    incumbent: Option<Pair>,
) -> (Option<Pair>, Option<SolveStats>) {
    if sk.is_undersampled() {
        sk.rebuild(state.edges());
    }
    let stats = sk.force_refresh();
    let fresh = sk.witness_pair().cloned().filter(|p| !p.is_empty());
    let pair = match (fresh, incumbent) {
        (Some(a), Some(b)) => Some(denser_pair(state.n(), state.edges(), a, b)),
        (a, b) => a.or(b),
    };
    (pair, stats)
}

/// Slices `events` into the batches `batch_by` describes (shared by
/// [`replay`], [`crate::replay_window`], and any external replay loop —
/// the `dds sketch` command drives a [`dds_sketch::SketchEngine`] with it).
///
/// # Panics
/// Panics if the batch size or window is zero.
pub fn batch_slices(events: &[TimedEvent], batch_by: BatchBy) -> Vec<&[TimedEvent]> {
    match batch_by {
        BatchBy::Count(size) => {
            assert!(size > 0, "batch size must be positive");
            events.chunks(size).collect()
        }
        BatchBy::TimeWindow(window) => {
            assert!(window > 0, "time window must be positive");
            let mut slices = Vec::new();
            let mut start = 0;
            while start < events.len() {
                let bucket = events[start].time / window;
                let mut end = start + 1;
                while end < events.len() && events[end].time / window == bucket {
                    end += 1;
                }
                slices.push(&events[start..end]);
                start = end;
            }
            slices
        }
    }
}

/// Replays `events` through `engine` in batches, returning one report per
/// epoch.
///
/// # Panics
/// Panics if the batch size or window is zero.
pub fn replay(
    engine: &mut StreamEngine,
    events: &[TimedEvent],
    batch_by: BatchBy,
) -> Vec<EpochReport> {
    batch_slices(events, batch_by)
        .into_iter()
        .map(|chunk| engine.apply(&Batch::from_events(chunk.to_vec())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_core::validate::brute_force_dds;
    use dds_graph::gen;

    fn insert_all(engine: &mut StreamEngine, edges: &[(u32, u32)]) -> EpochReport {
        let mut batch = Batch::new();
        for &(u, v) in edges {
            batch.insert(u, v);
        }
        engine.apply(&batch)
    }

    #[test]
    fn first_batch_solves_and_matches_exact() {
        let mut engine = StreamEngine::new(StreamConfig::default());
        let report = insert_all(&mut engine, &[(0, 2), (0, 3), (1, 2), (1, 3)]);
        assert!(report.resolved);
        assert_eq!(report.density, Density::new(4, 2, 2));
        assert!(report.certified_factor <= 1.0 + 1e-6);
    }

    #[test]
    fn noop_events_are_counted_not_applied() {
        let mut engine = StreamEngine::new(StreamConfig::default());
        insert_all(&mut engine, &[(0, 1)]);
        let mut batch = Batch::new();
        batch.insert(0, 1); // duplicate
        batch.delete(5, 6); // absent
        batch.insert(2, 2); // self-loop
        let report = engine.apply(&batch);
        assert_eq!(report.ignored, 3);
        assert_eq!((report.inserts, report.deletes), (0, 0));
        assert_eq!(report.m, 1);
    }

    #[test]
    fn distant_noise_is_absorbed_incrementally() {
        let mut engine = StreamEngine::new(StreamConfig::default());
        // A strong clique: ρ = 20/√20 ≈ 4.47.
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in 4..9u32 {
                edges.push((u, v));
            }
        }
        assert!(insert_all(&mut engine, &edges).resolved);
        // Sparse, spread-out noise: every epoch must stay incremental.
        for i in 0..5u32 {
            let mut batch = Batch::new();
            batch.insert(20 + i, 40 + i);
            let report = engine.apply(&batch);
            assert!(!report.resolved, "epoch {i} should not re-solve");
            assert!(report.certified_factor <= 1.1 * (1.0 + 1e-6));
        }
    }

    #[test]
    fn deleting_the_witness_forces_a_resolve() {
        let mut engine = StreamEngine::new(StreamConfig::default());
        let mut edges = vec![(0, 2), (0, 3), (1, 2), (1, 3)];
        edges.extend([(10, 11), (11, 12)]);
        insert_all(&mut engine, &edges);
        // Tear the dense block down edge by edge; the witness density
        // collapses, the gap blows past tolerance, and a re-solve fires.
        let mut resolved_any = false;
        for &(u, v) in &[(0, 2), (0, 3), (1, 2), (1, 3)] {
            let mut batch = Batch::new();
            batch.delete(u, v);
            resolved_any |= engine.apply(&batch).resolved;
        }
        assert!(resolved_any);
        let bounds = engine.bounds();
        let exact = DcExact::new().solve(&engine.materialize()).solution.density;
        assert!(bounds.lower <= exact);
        assert!(exact.to_f64() <= bounds.upper * (1.0 + 1e-9));
    }

    #[test]
    fn bounds_bracket_the_exact_optimum_under_churn() {
        let g = gen::gnm(12, 40, 7);
        let mut engine = StreamEngine::new(StreamConfig {
            tolerance: 0.5,
            slack: 0.0,
            solver: SolverKind::Exact,
            ..Default::default()
        });
        let all: Vec<(u32, u32)> = g.edges().collect();
        insert_all(&mut engine, &all);
        // Alternate deleting and re-inserting slices of the edge set.
        for round in 0..6 {
            let mut batch = Batch::new();
            for &(u, v) in all.iter().skip(round % 3).step_by(3).take(4) {
                if round % 2 == 0 {
                    batch.delete(u, v);
                } else {
                    batch.insert(u, v);
                }
            }
            let report = engine.apply(&batch);
            let exact = brute_force_dds(&engine.materialize()).density;
            assert!(report.density <= exact, "lower bound must hold");
            assert!(
                exact.to_f64() <= report.upper * (1.0 + 1e-9),
                "upper bound must hold: exact {exact} vs upper {}",
                report.upper
            );
        }
    }

    #[test]
    fn core_approx_solver_certifies_within_its_gap() {
        let mut engine = StreamEngine::new(StreamConfig {
            tolerance: 0.25,
            slack: 0.0,
            solver: SolverKind::CoreApprox,
            ..Default::default()
        });
        let g = gen::planted(40, 60, 4, 5, 1.0, 3).graph;
        let all: Vec<(u32, u32)> = g.edges().collect();
        let report = insert_all(&mut engine, &all);
        assert!(report.resolved);
        let exact = DcExact::new().solve(&engine.materialize()).solution.density;
        assert!(report.density <= exact);
        assert!(exact.to_f64() <= report.upper * (1.0 + 1e-9));
        // The approximation's own guarantee: factor ≤ 2 (plus safety).
        assert!(report.certified_factor <= 2.0 * (1.0 + 1e-6));
    }

    #[test]
    fn emptying_the_graph_resets_to_zero() {
        let mut engine = StreamEngine::new(StreamConfig::default());
        insert_all(&mut engine, &[(0, 1), (1, 2)]);
        let mut batch = Batch::new();
        batch.delete(0, 1).delete(1, 2);
        let report = engine.apply(&batch);
        assert_eq!(report.m, 0);
        assert!(report.density.is_zero());
        assert_eq!(report.upper, 0.0);
        assert!(!report.resolved, "empty graph needs no solver");
    }

    #[test]
    fn resolves_reuse_the_engine_context_and_report_stats() {
        let mut engine = StreamEngine::new(StreamConfig {
            tolerance: 0.0,
            slack: 0.0,
            solver: SolverKind::Exact,
            ..Default::default()
        });
        // Zero tolerance: every growing batch re-solves.
        let g = gen::planted(30, 50, 4, 4, 1.0, 6).graph;
        let all: Vec<(u32, u32)> = g.edges().collect();
        let mut stats = Vec::new();
        for chunk in all.chunks(10) {
            let report = insert_all(&mut engine, chunk);
            assert!(report.resolved, "tolerance 0 must re-solve every epoch");
            let s = report.solve_stats.expect("exact re-solve reports stats");
            assert!(s.flow_decisions > 0);
            stats.push(s);
        }
        assert_eq!(engine.context().solves() as u64, engine.resolves());
        assert_eq!(engine.last_solve_stats(), stats.last().copied());
        // Warm-started re-solves recycle arenas across epochs: the second
        // solve onwards starts with already-allocated buffers.
        assert!(
            stats.iter().skip(1).all(|s| s.arena_reuse_hits > 0),
            "context reuse must show up in the stats: {stats:?}"
        );
        // And the maintained answer still matches a cold solve.
        let cold = DcExact::new().solve(&engine.materialize());
        assert_eq!(engine.bounds().lower, cold.solution.density);
    }

    #[test]
    fn parallel_resolves_match_the_serial_engine() {
        let g = gen::planted(30, 60, 4, 4, 1.0, 9).graph;
        let all: Vec<(u32, u32)> = g.edges().collect();
        let mut serial = StreamEngine::new(StreamConfig {
            tolerance: 0.0,
            slack: 0.0,
            ..Default::default()
        });
        let mut parallel = StreamEngine::new(StreamConfig {
            tolerance: 0.0,
            slack: 0.0,
            threads: 3,
            ..Default::default()
        });
        for chunk in all.chunks(15) {
            let a = insert_all(&mut serial, chunk);
            let b = insert_all(&mut parallel, chunk);
            assert!(a.resolved && b.resolved);
            assert_eq!(a.density, b.density, "thread count changed the answer");
        }
        assert_eq!(serial.resolves(), parallel.resolves());
    }

    #[test]
    fn sketch_tier_resolves_without_a_full_solver() {
        use dds_sketch::SketchConfig;
        let mut engine = StreamEngine::new(StreamConfig {
            tolerance: 0.25,
            slack: 2.0,
            sketch: Some(SketchTier {
                min_m: 0, // every re-solve goes through the sketch
                config: SketchConfig {
                    state_bound: 24,
                    ..SketchConfig::default()
                },
            }),
            ..Default::default()
        });
        let g = gen::planted(40, 120, 5, 5, 1.0, 4).graph;
        let all: Vec<(u32, u32)> = g.edges().collect();
        let mut sketched = 0u64;
        for chunk in all.chunks(20) {
            let report = insert_all(&mut engine, chunk);
            if report.resolved {
                let stats = report.sketch.expect("sketch tier must report stats");
                assert!(stats.retained <= 24, "state bound broken");
                sketched += 1;
            }
            // The bracket stays sound even though no full solver ever ran.
            let exact = DcExact::new().solve(&engine.materialize()).solution.density;
            assert!(report.density <= exact, "lower bound must hold");
            assert!(exact.to_f64() <= report.upper * (1.0 + 1e-9));
        }
        assert!(sketched >= 1, "at least the warm-up resolve sketches");
        assert_eq!(engine.sketch_resolves(), engine.resolves());
        let stats = engine.sketch_stats().expect("tier keeps a sketch");
        assert_eq!(stats.refreshes, engine.sketch_resolves());
        assert!(stats.solve.flow_decisions > 0, "exact-on-sketch ran flows");
    }

    #[test]
    fn sketch_tier_below_threshold_uses_the_full_solver() {
        let mut engine = StreamEngine::new(StreamConfig {
            sketch: Some(SketchTier::at(1_000_000)),
            ..Default::default()
        });
        let report = insert_all(&mut engine, &[(0, 2), (0, 3), (1, 2), (1, 3)]);
        assert!(report.resolved);
        assert!(report.sketch.is_none(), "below min_m the exact tier runs");
        assert_eq!(report.density, Density::new(4, 2, 2));
        assert_eq!(engine.sketch_resolves(), 0);
    }

    #[test]
    fn replay_by_count_and_window_agree_on_final_state() {
        let events: Vec<TimedEvent> = (0..30u32)
            .map(|i| TimedEvent {
                time: u64::from(i),
                event: Event::Insert(i % 6, (i + 1) % 6),
            })
            .collect();
        let mut by_count = StreamEngine::new(StreamConfig::default());
        let mut by_window = StreamEngine::new(StreamConfig::default());
        let a = replay(&mut by_count, &events, BatchBy::Count(7));
        let b = replay(&mut by_window, &events, BatchBy::TimeWindow(10));
        assert_eq!(a.last().unwrap().m, b.last().unwrap().m);
        assert_eq!(by_count.m(), by_window.m());
        assert_eq!(a.len(), 5); // ceil(30 / 7)
        assert_eq!(b.len(), 3); // three 10-tick windows
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let g = gen::planted(30, 60, 4, 4, 1.0, 11).graph;
        let all: Vec<(u32, u32)> = g.edges().collect();
        let config = StreamConfig::default();
        let mut engine = StreamEngine::new(config);
        insert_all(&mut engine, &all[..40]);
        // Leave some drift in flight so the snapshot carries a non-trivial
        // certificate state (delta edges, eroded certified set).
        let mut batch = Batch::new();
        for &(u, v) in &all[40..50] {
            batch.insert(u, v);
        }
        batch.delete(all[0].0, all[0].1);
        engine.apply(&batch);

        let bytes = engine.snapshot(777);
        let (restored, cursor) = StreamEngine::restore(config, &bytes).unwrap();
        assert_eq!(cursor, 777);
        assert_eq!(restored.snapshot(777), bytes, "round-trip identity");
        assert_eq!((restored.n(), restored.m()), (engine.n(), engine.m()));
        assert_eq!(restored.epoch(), engine.epoch());
        assert_eq!(restored.resolves(), engine.resolves());
        let (a, b) = (engine.bounds(), restored.bounds());
        assert_eq!(a.lower, b.lower);
        assert_eq!(a.upper.to_bits(), b.upper.to_bits(), "certificate state");
        assert_eq!(restored.witness(), engine.witness());
    }

    #[test]
    fn snapshot_preserves_the_sketch_tier_level() {
        let config = StreamConfig {
            sketch: Some(SketchTier {
                min_m: 0,
                config: dds_sketch::SketchConfig {
                    state_bound: 16,
                    ..dds_sketch::SketchConfig::default()
                },
            }),
            ..Default::default()
        };
        let mut engine = StreamEngine::new(config);
        let g = gen::gnm(40, 200, 5);
        insert_all(&mut engine, &g.edges().collect::<Vec<_>>());
        let level = engine.sketch_stats().unwrap().level;
        assert!(level > 0, "200 edges past bound 16 must subsample");
        let bytes = engine.snapshot(0);
        let (restored, _) = StreamEngine::restore(config, &bytes).unwrap();
        let stats = restored.sketch_stats().unwrap();
        assert_eq!(stats.level, level);
        assert_eq!(
            stats.retained,
            engine.sketch_stats().unwrap().retained,
            "deterministic admission must rebuild the same sample"
        );
        assert_eq!(restored.snapshot(0), bytes);
    }

    #[test]
    fn restore_rejects_corrupt_and_mismatched_snapshots() {
        let mut engine = StreamEngine::new(StreamConfig::default());
        insert_all(&mut engine, &[(0, 1), (1, 2)]);
        let bytes = engine.snapshot(0);
        assert!(StreamEngine::restore(StreamConfig::default(), &bytes[..10]).is_err());
        let mut corrupt = bytes.clone();
        corrupt[4] = 200; // version byte
        assert!(StreamEngine::restore(StreamConfig::default(), &corrupt).is_err());
        assert!(StreamEngine::restore(StreamConfig::default(), b"junk").is_err());
    }

    #[test]
    fn restore_rejects_out_of_range_witness_ids() {
        use crate::snapshot::{SnapshotKind, SnapshotWriter};
        // A hand-built snapshot whose witness mentions vertex 9 while the
        // graph holds ids < 2: must be a Format error, not an index panic.
        let mut w = SnapshotWriter::new(SnapshotKind::Stream, 0);
        w.put_u64(2); // n
        w.put_u64(1); // epoch
        w.put_u64(1); // resolves
        w.put_u64(0); // sketch_resolves
        w.put_u64(1); // inserts
        w.put_u64(0); // deletes
        w.put_u64(0); // ignored
        w.put_u64(1); // resolve_cause_cold
        w.put_u64(0); // resolve_cause_band
        w.put_edges(&mut [(0, 1)]);
        w.put_f64(1.0); // rho at solve
        w.put_f64(1.0); // gap
        w.put_pair(Some(&Pair::new(vec![0], vec![9])));
        w.put_edges(&mut []); // drift
        w.put_edges(&mut []); // cert
        w.put_u8(0); // no sketch
        let err = StreamEngine::restore(StreamConfig::default(), &w.finish())
            .expect_err("out-of-range witness must be rejected");
        assert!(err.to_string().contains("witness vertex 9"), "{err}");
    }

    #[test]
    fn force_resolve_tightens_bounds() {
        let mut engine = StreamEngine::new(StreamConfig {
            tolerance: 5.0,
            slack: 0.0,
            solver: SolverKind::Exact,
            ..Default::default()
        });
        insert_all(&mut engine, &[(0, 2), (0, 3), (1, 2), (1, 3)]);
        // Loose tolerance lets drift accumulate without re-solving.
        for i in 0..4u32 {
            let mut batch = Batch::new();
            batch.insert(30 + i, 60 + i);
            assert!(!engine.apply(&batch).resolved);
        }
        let before = engine.bounds();
        let after = engine.force_resolve();
        assert!(after.upper <= before.upper * (1.0 + 1e-9));
        assert!(after.certified_factor() <= before.certified_factor());
    }
}
