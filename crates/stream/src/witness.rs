//! Witness-adoption helpers shared by every engine that keeps a densest-
//! pair witness alive over a mutable edge set.
//!
//! The stream, window, and sharded engines all face the same moment after
//! a sketch-tier refresh: two candidate witnesses exist — the *fresh* pair
//! the refresh solved on the sample, and the *incumbent* pair carried from
//! the previous certification — and both are genuine pairs of the full
//! graph, so the sound choice is simply whichever is denser **measured on
//! the full graph** (a subsampled solve can be wrong about which is best;
//! the full-graph measurement cannot). That comparison used to live inside
//! `StreamEngine`'s re-solve; it is a free function here so the engines
//! cannot diverge on adoption policy.

use dds_graph::{Pair, VertexId};
use dds_num::Density;

/// Picks the denser of two candidate pairs, measured over `edges` (the
/// full live edge set, iterated once — `O(n + m)`, the same order as the
/// witness recount an adoption pays anyway). `n` must be at least one past
/// the largest vertex id either pair mentions. Ties keep `a` (by
/// convention the *fresh* pair, so a refresh that matches the incumbent
/// still rotates the witness forward).
pub fn denser_pair<I>(n: usize, edges: I, a: Pair, b: Pair) -> Pair
where
    I: IntoIterator<Item = (VertexId, VertexId)>,
{
    let mut membership = vec![0u8; n];
    const A_S: u8 = 1;
    const A_T: u8 = 2;
    const B_S: u8 = 4;
    const B_T: u8 = 8;
    for (pair, s_bit, t_bit) in [(&a, A_S, A_T), (&b, B_S, B_T)] {
        for &u in pair.s() {
            membership[u as usize] |= s_bit;
        }
        for &v in pair.t() {
            membership[v as usize] |= t_bit;
        }
    }
    let (mut ea, mut eb) = (0u64, 0u64);
    for (u, v) in edges {
        let (mu, mv) = (membership[u as usize], membership[v as usize]);
        ea += u64::from(mu & A_S != 0 && mv & A_T != 0);
        eb += u64::from(mu & B_S != 0 && mv & B_T != 0);
    }
    let density = |pair: &Pair, edges: u64| {
        if pair.is_empty() {
            Density::ZERO
        } else {
            Density::new(edges, pair.s().len() as u64, pair.t().len() as u64)
        }
    };
    if density(&a, ea) >= density(&b, eb) {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_the_denser_measured_on_the_full_graph() {
        // K_{2,2} on {0,1}×{2,3} plus a single stray edge 4→5.
        let edges = [(0, 2), (0, 3), (1, 2), (1, 3), (4, 5)];
        let dense = Pair::new(vec![0, 1], vec![2, 3]);
        let stray = Pair::new(vec![4], vec![5]);
        let won = denser_pair(6, edges, stray.clone(), dense.clone());
        assert_eq!(won, dense);
        // Order must not matter for a strict winner.
        let won = denser_pair(6, edges, dense.clone(), stray);
        assert_eq!(won, dense);
    }

    #[test]
    fn ties_keep_the_first_pair() {
        let edges = [(0, 1), (2, 3)];
        let a = Pair::new(vec![0], vec![1]);
        let b = Pair::new(vec![2], vec![3]);
        assert_eq!(denser_pair(4, edges, a.clone(), b), a);
    }

    #[test]
    fn empty_pairs_lose_to_anything_live() {
        let edges = [(0, 1)];
        let live = Pair::new(vec![0], vec![1]);
        let empty = Pair::new(vec![], vec![]);
        assert_eq!(denser_pair(2, edges, empty, live.clone()), live);
    }
}
