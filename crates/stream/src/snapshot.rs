//! Versioned binary engine snapshots.
//!
//! A snapshot freezes the *restart-relevant* state of a maintenance
//! engine: the authoritative edge set, the certificate anchors, the
//! incumbent witness, and — for sketch-bearing engines — the subsampling
//! level and admission seed. Everything else (degree trackers, retained
//! samples, witness edge counts) is a **pure function** of those, so a
//! restore recomputes it instead of trusting bytes: deterministic seeded
//! admission means the retained sample never needs to be serialized at
//! all, which is the property that keeps snapshots `O(m)` rather than
//! `O(m + state)` and makes the round-trip identity testable
//! (`snapshot(restore(s)) == s` byte for byte, because every serialized
//! list is written in canonical sorted order).
//!
//! # Format (version 2)
//!
//! Version 2 widens both payloads with the engines' lifetime metric
//! counters (ingest tallies and resolve-cause splits), so a restored
//! engine's `dds_*_total` series continue from where the snapshotted run
//! left off instead of restarting at zero.
//!
//! ```text
//! magic   4 bytes  "DDSS"
//! version u32      2
//! kind    u8       0 = StreamEngine, 1 = ShardedEngine
//! cursor  u64      byte offset into the source event file (0 if unused);
//!                  follow-mode checkpoints resume tailing from here
//! payload          kind-specific (see the engine's snapshot method)
//! ```
//!
//! All integers are little-endian; `f64`s are serialized as their IEEE-754
//! bit patterns (bit-exact round trips — a certificate anchor must come
//! back as *the same float*, not a re-parsed approximation); lists are a
//! `u64` count followed by the elements.

use std::fmt;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use dds_graph::{Pair, VertexId};

/// The four magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"DDSS";

/// The current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Which engine wrote the snapshot (byte 8 of the header).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotKind {
    /// A [`crate::StreamEngine`] snapshot.
    Stream = 0,
    /// A `dds-shard` `ShardedEngine` snapshot.
    Shard = 1,
    /// A `dds-cluster` worker-partition snapshot.
    ClusterWorker = 2,
}

impl SnapshotKind {
    pub(crate) fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(SnapshotKind::Stream),
            1 => Some(SnapshotKind::Shard),
            2 => Some(SnapshotKind::ClusterWorker),
            _ => None,
        }
    }
}

/// Errors from snapshot encode/decode.
#[derive(Debug)]
pub enum SnapshotError {
    /// An underlying IO failure.
    Io(std::io::Error),
    /// The bytes do not parse as the expected snapshot.
    Format(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Format(msg) => write!(f, "snapshot format error: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Builds a snapshot byte stream (header written on construction).
#[derive(Debug)]
pub struct SnapshotWriter {
    bytes: Vec<u8>,
}

impl SnapshotWriter {
    /// Starts a snapshot of `kind`, recording the source-stream `cursor`
    /// (byte offset a follow loop should resume from; 0 if unused).
    #[must_use]
    pub fn new(kind: SnapshotKind, cursor: u64) -> Self {
        let mut w = SnapshotWriter { bytes: Vec::new() };
        w.bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        w.put_u32(SNAPSHOT_VERSION);
        w.put_u8(kind as u8);
        w.put_u64(cursor);
        w
    }

    /// A headerless writer — the shared primitive encoders without the
    /// `DDSS` header, for sibling formats (the `DDSD` delta frames) that
    /// open with their own magic.
    pub(crate) fn raw() -> Self {
        SnapshotWriter { bytes: Vec::new() }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends an edge list in **canonical order** (sorts in place first,
    /// so identical edge sets always serialize to identical bytes
    /// regardless of hash-iteration order).
    pub fn put_edges(&mut self, edges: &mut [(VertexId, VertexId)]) {
        edges.sort_unstable();
        self.put_u64(edges.len() as u64);
        for &(u, v) in edges.iter() {
            self.put_u32(u);
            self.put_u32(v);
        }
    }

    /// Appends an optional pair (presence byte, then the sorted sides the
    /// [`Pair`] invariant already maintains).
    pub fn put_pair(&mut self, pair: Option<&Pair>) {
        match pair {
            None => self.put_u8(0),
            Some(pair) => {
                self.put_u8(1);
                self.put_u64(pair.s().len() as u64);
                for &u in pair.s() {
                    self.put_u32(u);
                }
                self.put_u64(pair.t().len() as u64);
                for &v in pair.t() {
                    self.put_u32(v);
                }
            }
        }
    }

    /// The finished byte stream.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }

    /// Writes the finished snapshot to `path` atomically
    /// ([`write_snapshot_file`]).
    ///
    /// # Errors
    /// Returns [`SnapshotError::Io`] on write/rename failure.
    pub fn write_to(self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        write_snapshot_file(&self.bytes, path)
    }
}

/// Writes snapshot bytes to `path` atomically: a temp file in the same
/// directory, then a rename — a crashed checkpoint never leaves a
/// half-written snapshot where a restore would find it.
///
/// # Errors
/// Returns [`SnapshotError::Io`] on write/rename failure.
pub fn write_snapshot_file(bytes: &[u8], path: impl AsRef<Path>) -> Result<(), SnapshotError> {
    let path = path.as_ref();
    let tmp = path.with_extension("tmp");
    File::create(&tmp)?.write_all(bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Parses a snapshot byte stream (header validated on open).
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Opens a snapshot, validating magic/version and that it was written
    /// by the expected engine `kind`. Returns the reader positioned at the
    /// payload plus the stored cursor.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Format`] on bad magic, unknown version, or
    /// a kind mismatch.
    pub fn open(bytes: &'a [u8], kind: SnapshotKind) -> Result<(Self, u64), SnapshotError> {
        let mut r = SnapshotReader { bytes, pos: 0 };
        let magic: [u8; 4] = [r.take_u8()?, r.take_u8()?, r.take_u8()?, r.take_u8()?];
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::Format(format!(
                "bad magic {magic:?} (not a dds snapshot)"
            )));
        }
        let version = r.take_u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Format(format!(
                "unsupported snapshot version {version} (this build reads {SNAPSHOT_VERSION})"
            )));
        }
        let raw_kind = r.take_u8()?;
        let found = SnapshotKind::from_u8(raw_kind)
            .ok_or_else(|| SnapshotError::Format(format!("unknown engine kind {raw_kind}")))?;
        if found != kind {
            return Err(SnapshotError::Format(format!(
                "snapshot was written by a {found:?} engine, expected {kind:?}"
            )));
        }
        let cursor = r.take_u64()?;
        Ok((r, cursor))
    }

    /// A headerless reader over `bytes` — the shared primitive decoders
    /// without the `DDSS` header check, for sibling formats (the `DDSD`
    /// delta frames) that validate their own magic.
    pub(crate) fn raw(bytes: &'a [u8]) -> Self {
        SnapshotReader { bytes, pos: 0 }
    }

    fn need(&self, len: usize) -> Result<(), SnapshotError> {
        // Checked: `len` can come straight from a corrupt length prefix
        // near usize::MAX, and overflow here must be a Format error, not
        // a panic (or a wrapped-past-the-guard capacity abort).
        let ok = self
            .pos
            .checked_add(len)
            .is_some_and(|end| end <= self.bytes.len());
        if !ok {
            return Err(SnapshotError::Format(format!(
                "truncated snapshot: wanted {len} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Format`] past end of input.
    pub fn take_u8(&mut self) -> Result<u8, SnapshotError> {
        self.need(1)?;
        let v = self.bytes[self.pos];
        self.pos += 1;
        Ok(v)
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Format`] past end of input.
    pub fn take_u32(&mut self) -> Result<u32, SnapshotError> {
        self.need(4)?;
        let v = u32::from_le_bytes(self.bytes[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        Ok(v)
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Format`] past end of input.
    pub fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        self.need(8)?;
        let v = u64::from_le_bytes(self.bytes[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        Ok(v)
    }

    /// Reads an `f64` from its exact bit pattern.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Format`] past end of input.
    pub fn take_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads `len` raw bytes (an embedded blob whose length prefix the
    /// caller already consumed).
    ///
    /// # Errors
    /// Returns [`SnapshotError::Format`] past end of input.
    pub fn take_bytes(&mut self, len: usize) -> Result<Vec<u8>, SnapshotError> {
        self.need(len)?;
        let v = self.bytes[self.pos..self.pos + len].to_vec();
        self.pos += len;
        Ok(v)
    }

    /// Reads an edge list.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Format`] on truncation or an implausible
    /// length prefix.
    pub fn take_edges(&mut self) -> Result<Vec<(VertexId, VertexId)>, SnapshotError> {
        let len = self.take_u64()? as usize;
        // 8 bytes per edge: reject length prefixes the buffer cannot hold
        // before allocating.
        self.need(len.saturating_mul(8))?;
        let mut edges = Vec::with_capacity(len);
        for _ in 0..len {
            let u = self.take_u32()?;
            let v = self.take_u32()?;
            edges.push((u, v));
        }
        Ok(edges)
    }

    /// Reads an optional pair.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Format`] on truncation or a bad presence
    /// byte.
    pub fn take_pair(&mut self) -> Result<Option<Pair>, SnapshotError> {
        match self.take_u8()? {
            0 => Ok(None),
            1 => {
                let s_len = self.take_u64()? as usize;
                self.need(s_len.saturating_mul(4))?;
                let s: Vec<VertexId> = (0..s_len)
                    .map(|_| self.take_u32())
                    .collect::<Result<_, _>>()?;
                let t_len = self.take_u64()? as usize;
                self.need(t_len.saturating_mul(4))?;
                let t: Vec<VertexId> = (0..t_len)
                    .map(|_| self.take_u32())
                    .collect::<Result<_, _>>()?;
                Ok(Some(Pair::new(s, t)))
            }
            other => Err(SnapshotError::Format(format!(
                "bad pair presence byte {other}"
            ))),
        }
    }

    /// Asserts the payload was consumed exactly (a length-drifted reader
    /// is a format bug, not a tolerable condition).
    ///
    /// # Errors
    /// Returns [`SnapshotError::Format`] if bytes remain.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.pos != self.bytes.len() {
            return Err(SnapshotError::Format(format!(
                "{} trailing bytes after the payload",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Reads a whole snapshot file into memory (snapshots are `O(m)` — a few
/// MB at the scales this stack targets).
///
/// # Errors
/// Returns [`SnapshotError::Io`] on read failure.
pub fn read_snapshot_file(path: impl AsRef<Path>) -> Result<Vec<u8>, SnapshotError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapshotWriter::new(SnapshotKind::Stream, 42);
        w.put_u8(7);
        w.put_u32(123_456);
        w.put_u64(u64::MAX - 3);
        w.put_f64(std::f64::consts::PI);
        let mut edges = vec![(5, 6), (1, 2), (3, 4)];
        w.put_edges(&mut edges);
        w.put_pair(None);
        w.put_pair(Some(&Pair::new(vec![2, 0], vec![9])));
        let bytes = w.finish();

        let (mut r, cursor) = SnapshotReader::open(&bytes, SnapshotKind::Stream).unwrap();
        assert_eq!(cursor, 42);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 123_456);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 3);
        assert_eq!(
            r.take_f64().unwrap().to_bits(),
            std::f64::consts::PI.to_bits()
        );
        assert_eq!(r.take_edges().unwrap(), vec![(1, 2), (3, 4), (5, 6)]);
        assert_eq!(r.take_pair().unwrap(), None);
        let pair = r.take_pair().unwrap().unwrap();
        assert_eq!((pair.s(), pair.t()), (&[0, 2][..], &[9][..]));
        r.finish().unwrap();
    }

    #[test]
    fn header_validation_rejects_garbage() {
        assert!(matches!(
            SnapshotReader::open(b"nope", SnapshotKind::Stream),
            Err(SnapshotError::Format(_))
        ));
        // Wrong kind.
        let bytes = SnapshotWriter::new(SnapshotKind::Shard, 0).finish();
        let err = SnapshotReader::open(&bytes, SnapshotKind::Stream).unwrap_err();
        assert!(err.to_string().contains("Shard"), "{err}");
        // Wrong version.
        let mut bytes = SnapshotWriter::new(SnapshotKind::Stream, 0).finish();
        bytes[4] = 99;
        let err = SnapshotReader::open(&bytes, SnapshotKind::Stream).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = SnapshotWriter::new(SnapshotKind::Stream, 0);
        w.put_u64(10); // announces 10 edges, provides none
        let bytes = w.finish();
        let (mut r, _) = SnapshotReader::open(&bytes, SnapshotKind::Stream).unwrap();
        assert!(matches!(r.take_edges(), Err(SnapshotError::Format(_))));
    }

    #[test]
    fn absurd_length_prefixes_error_instead_of_aborting() {
        // A corrupt count near u64::MAX must be a Format error — not an
        // addition overflow or a with_capacity abort.
        for count in [u64::MAX, u64::MAX / 8, 1u64 << 61] {
            let mut w = SnapshotWriter::new(SnapshotKind::Stream, 0);
            w.put_u64(count);
            let bytes = w.finish();
            let (mut r, _) = SnapshotReader::open(&bytes, SnapshotKind::Stream).unwrap();
            assert!(
                matches!(r.take_edges(), Err(SnapshotError::Format(_))),
                "count {count}"
            );
        }
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut w = SnapshotWriter::new(SnapshotKind::Stream, 0);
        w.put_u8(1);
        let bytes = w.finish();
        let (r, _) = SnapshotReader::open(&bytes, SnapshotKind::Stream).unwrap();
        assert!(matches!(r.finish(), Err(SnapshotError::Format(_))));
    }

    #[test]
    fn write_to_is_atomic_and_readable() {
        let path = std::env::temp_dir().join(format!(
            "dds_snapshot_test_{}_{:?}.snap",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut w = SnapshotWriter::new(SnapshotKind::Stream, 9);
        w.put_u32(77);
        w.write_to(&path).unwrap();
        let bytes = read_snapshot_file(&path).unwrap();
        let (mut r, cursor) = SnapshotReader::open(&bytes, SnapshotKind::Stream).unwrap();
        assert_eq!((cursor, r.take_u32().unwrap()), (9, 77));
        assert!(!path.with_extension("tmp").exists(), "temp must be renamed");
        std::fs::remove_file(&path).ok();
    }
}
