//! Exact O(1) maintenance of `max` over per-vertex counters under
//! increment/decrement — the count-of-counts trick from peeling
//! algorithms.
//!
//! Used twice by the engine: for the live degree maxima of the dynamic
//! graph, and for the degree maxima of the *delta graph* (edges inserted
//! since the last solve), which drive the tightest drift bound.

/// Per-id counters with exact running maximum.
///
/// `incr`/`decr` are `O(1)`: a frequency table `freq[c] = #ids with
/// counter c` lets the maximum fall by at most one per decrement.
#[derive(Clone, Debug, Default)]
pub(crate) struct MaxTracker {
    count: Vec<u32>,
    freq: Vec<usize>,
    max: u32,
}

impl MaxTracker {
    /// Current maximum counter value (0 when empty).
    pub(crate) fn max(&self) -> u64 {
        u64::from(self.max)
    }

    /// Current counter for `id` (0 if never touched).
    pub(crate) fn count(&self, id: usize) -> u32 {
        self.count.get(id).copied().unwrap_or(0)
    }

    fn freq_slot(&mut self, c: u32) -> &mut usize {
        let c = c as usize;
        if self.freq.len() <= c {
            self.freq.resize(c + 1, 0);
        }
        &mut self.freq[c]
    }

    pub(crate) fn incr(&mut self, id: usize) {
        if self.count.len() <= id {
            self.count.resize(id + 1, 0);
        }
        let c = self.count[id];
        if c > 0 {
            *self.freq_slot(c) -= 1;
        }
        self.count[id] = c + 1;
        *self.freq_slot(c + 1) += 1;
        self.max = self.max.max(c + 1);
    }

    /// # Panics
    /// Panics if `id`'s counter is already zero (an engine invariant
    /// violation, not a user-reachable state).
    pub(crate) fn decr(&mut self, id: usize) {
        let c = self.count[id];
        assert!(c > 0, "decrement of zero counter");
        *self.freq_slot(c) -= 1;
        self.count[id] = c - 1;
        if c > 1 {
            *self.freq_slot(c - 1) += 1;
        }
        while self.max > 0 && self.freq[self.max as usize] == 0 {
            self.max -= 1;
        }
    }

    /// Forgets everything (used when a solve resets the delta graph).
    pub(crate) fn clear(&mut self) {
        self.count.clear();
        self.freq.clear();
        self.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_tracks_incr_and_decr() {
        let mut t = MaxTracker::default();
        assert_eq!(t.max(), 0);
        t.incr(3);
        t.incr(3);
        t.incr(7);
        assert_eq!(t.max(), 2);
        assert_eq!(t.count(3), 2);
        t.decr(3);
        assert_eq!(t.max(), 1);
        t.decr(3);
        t.decr(7);
        assert_eq!(t.max(), 0);
    }

    #[test]
    fn max_falls_through_gaps() {
        let mut t = MaxTracker::default();
        for _ in 0..5 {
            t.incr(0);
        }
        t.incr(1);
        assert_eq!(t.max(), 5);
        for _ in 0..5 {
            t.decr(0);
        }
        assert_eq!(t.max(), 1, "max must fall past the emptied levels");
    }

    #[test]
    fn clear_resets() {
        let mut t = MaxTracker::default();
        t.incr(9);
        t.clear();
        assert_eq!(t.max(), 0);
        assert_eq!(t.count(9), 0);
    }

    #[test]
    fn matches_naive_on_random_walk() {
        let mut t = MaxTracker::default();
        let mut naive = [0u32; 8];
        let mut x = 12345u64;
        for _ in 0..4_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let id = (x >> 33) as usize % 8;
            if x & 1 == 0 || naive[id] == 0 {
                t.incr(id);
                naive[id] += 1;
            } else {
                t.decr(id);
                naive[id] -= 1;
            }
            assert_eq!(t.max(), u64::from(*naive.iter().max().unwrap()));
        }
    }
}
