//! Incremental certified bounds on the current optimum density.
//!
//! See the crate docs for the upper bounds and their proofs; this module
//! owns the state that keeps them current in `O(1)` per event:
//!
//! * the **witness** — the `(S, T)` pair returned by the last solve, with
//!   its live edge count `E(S, T)` maintained per event (exact lower
//!   bound);
//! * the **delta graph** — the set of edges inserted since the last solve
//!   and still present, with its own exact degree maxima `aΔ`/`bΔ`
//!   (deleting an edge that was inserted after the solve refunds its
//!   budget). For every pair, the delta contributes at most
//!   `sqrt(aΔ·bΔ)` density — `E_Δ(S,T) ≤ min(|S|·aΔ, |T|·bΔ)
//!   ≤ sqrt(|S||T|·aΔ·bΔ)` by AM–GM — so scattered churn consumes almost
//!   no certificate budget even when thousands of edges have moved.

use std::collections::HashSet;

use dds_graph::{Pair, VertexId};
use dds_num::Density;

use crate::maxtrack::MaxTracker;
use crate::state::DynamicGraph;

/// Relative inflation applied to every floating-point upper bound so
/// rounding can never flip a certificate.
const SAFETY: f64 = 1e-9;

/// A certified bracket around the current optimum density `ρ_opt`:
/// `lower ≤ ρ_opt ≤ upper`.
#[derive(Clone, Copy, Debug)]
pub struct CertifiedBounds {
    /// Exact density of the maintained witness pair (a real pair of the
    /// current graph, so never above the optimum).
    pub lower: Density,
    /// Certified upper bound on the optimum (carries a `1e-9` relative
    /// float-safety margin).
    pub upper: f64,
}

impl CertifiedBounds {
    /// `upper / lower` — the proven approximation factor of the reported
    /// density. `f64::INFINITY` when the witness is empty but edges exist.
    #[must_use]
    pub fn certified_factor(&self) -> f64 {
        let lo = self.lower.to_f64();
        if lo > 0.0 {
            self.upper / lo
        } else if self.upper > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }
}

/// The incrementally-maintained bound state (crate-internal; the engine
/// exposes it through [`CertifiedBounds`]).
#[derive(Clone, Debug, Default)]
pub(crate) struct BoundTracker {
    /// Certified upper bound on the optimum at the last solve (`ρ₁`).
    rho_at_solve: f64,
    /// `upper / lower` measured right after the last solve (1 for exact).
    gap_at_solve: f64,
    /// Edges inserted since the last solve and still present (the "delta
    /// graph"), plus its exact per-side degree maxima.
    inserted_since_solve: HashSet<(VertexId, VertexId)>,
    delta_out: MaxTracker,
    delta_in: MaxTracker,
    /// Witness pair from the last solve.
    witness: Option<Pair>,
    in_s: Vec<bool>,
    in_t: Vec<bool>,
    /// Live `E(S, T)` of the witness.
    witness_edges: u64,
}

impl BoundTracker {
    pub(crate) fn new() -> Self {
        BoundTracker {
            gap_at_solve: 1.0,
            ..BoundTracker::default()
        }
    }

    /// Records an applied insertion (the edge was genuinely added).
    pub(crate) fn on_insert(&mut self, u: VertexId, v: VertexId) {
        if self.inserted_since_solve.insert((u, v)) {
            self.delta_out.incr(u as usize);
            self.delta_in.incr(v as usize);
        }
        if self.witness_contains(u, v) {
            self.witness_edges += 1;
        }
    }

    /// Records an applied deletion (the edge was genuinely removed).
    pub(crate) fn on_delete(&mut self, u: VertexId, v: VertexId) {
        // Refund the drift budget when the deleted edge postdates the last
        // solve: the bound argument only counts inserted-and-still-present
        // edges.
        if self.inserted_since_solve.remove(&(u, v)) {
            self.delta_out.decr(u as usize);
            self.delta_in.decr(v as usize);
        }
        if self.witness_contains(u, v) {
            self.witness_edges -= 1;
        }
    }

    fn witness_contains(&self, u: VertexId, v: VertexId) -> bool {
        self.in_s.get(u as usize).copied().unwrap_or(false)
            && self.in_t.get(v as usize).copied().unwrap_or(false)
    }

    /// Resets the tracker after a full solve: `witness` is the solver's
    /// pair on `g` (materialised), `rho_upper` a certified upper bound on
    /// `ρ_opt(g)` (the exact optimum for exact solves).
    pub(crate) fn reset_after_solve(
        &mut self,
        g: &DynamicGraph,
        witness: Option<Pair>,
        rho_upper: f64,
    ) {
        self.inserted_since_solve.clear();
        self.delta_out.clear();
        self.delta_in.clear();
        self.rho_at_solve = rho_upper * (1.0 + SAFETY);
        self.in_s = vec![false; g.n()];
        self.in_t = vec![false; g.n()];
        self.witness_edges = 0;
        if let Some(pair) = &witness {
            for &u in pair.s() {
                self.in_s[u as usize] = true;
            }
            for &v in pair.t() {
                self.in_t[v as usize] = true;
            }
            self.witness_edges = g
                .edges()
                .filter(|&(u, v)| self.witness_contains(u, v))
                .count() as u64;
        }
        self.witness = witness;
        let bounds = self.bounds(g);
        self.gap_at_solve = bounds.certified_factor().max(1.0);
    }

    /// The witness pair, if a solve has happened.
    pub(crate) fn witness(&self) -> Option<&Pair> {
        self.witness.as_ref()
    }

    /// The certified gap measured right after the last solve (1 for an
    /// exact solve; up to 2 for the core approximation).
    pub(crate) fn gap_at_solve(&self) -> f64 {
        self.gap_at_solve
    }

    /// Exact density of the witness on the current graph.
    pub(crate) fn lower(&self) -> Density {
        match &self.witness {
            Some(pair) if !pair.is_empty() => Density::new(
                self.witness_edges,
                pair.s().len() as u64,
                pair.t().len() as u64,
            ),
            _ => Density::ZERO,
        }
    }

    /// Certified upper bound on the current optimum, the minimum of four
    /// independently valid bounds (crate docs prove each):
    ///
    /// 1. crossing drift — `(ρ₁ + sqrt(ρ₁² + 4k)) / 2` with `k` the delta
    ///    edge count (tight when few, possibly concentrated, inserts);
    /// 2. delta-degree drift — `ρ₁ + sqrt(aΔ·bΔ)` with `aΔ`/`bΔ` the delta
    ///    graph's degree maxima (tight under scattered churn);
    /// 3. `sqrt(m)` on the current graph;
    /// 4. `sqrt(d⁺_max · d⁻_max)` on the current graph (exact maxima).
    pub(crate) fn upper(&self, g: &DynamicGraph) -> f64 {
        let m = g.m();
        if m == 0 {
            return 0.0;
        }
        let k = self.inserted_since_solve.len() as f64;
        let rho = self.rho_at_solve;
        let crossing = 0.5 * (rho + (rho * rho + 4.0 * k).sqrt());
        let delta_deg = rho + ((self.delta_out.max() as f64) * (self.delta_in.max() as f64)).sqrt();
        let sqrt_m = (m as f64).sqrt();
        let degree = ((g.max_out_degree() as f64) * (g.max_in_degree() as f64)).sqrt();
        crossing.min(delta_deg).min(sqrt_m).min(degree) * (1.0 + SAFETY)
    }

    /// Both bounds as one bracket.
    pub(crate) fn bounds(&self, g: &DynamicGraph) -> CertifiedBounds {
        CertifiedBounds {
            lower: self.lower(),
            upper: self.upper(g),
        }
    }

    /// Diagnostic string showing each bound ingredient (debug logging).
    pub(crate) fn debug_bounds(&self, g: &DynamicGraph) -> String {
        let k = self.inserted_since_solve.len() as f64;
        let rho = self.rho_at_solve;
        let crossing = 0.5 * (rho + (rho * rho + 4.0 * k).sqrt());
        let a = self.delta_out.max();
        let b = self.delta_in.max();
        let delta_deg = rho + ((a as f64) * (b as f64)).sqrt();
        let sqrt_m = (g.m() as f64).sqrt();
        let degree = ((g.max_out_degree() as f64) * (g.max_in_degree() as f64)).sqrt();
        format!(
            "rho1={rho:.4} k={k} cross={crossing:.4} aD={a} bD={b} ddeg={delta_deg:.4} sqrtm={sqrt_m:.4} deg={degree:.4} wE={}",
            self.witness_edges
        )
    }
}
