//! Incremental certified bounds on the current optimum density.
//!
//! See the crate docs for the upper bounds and their proofs. Two reusable
//! pieces live here alongside [`BoundTracker`] (the grow-mostly engine's
//! state), because the window engine certifies with the same ingredients:
//!
//! * [`WitnessState`] — an `(S, T)` pair with its live edge count
//!   maintained per event, giving an exact lower bound in `O(1)`;
//! * [`DeltaDrift`] — the **delta graph** (edges inserted since the last
//!   certification and still present) with exact degree maxima `aΔ`/`bΔ`
//!   (deleting an edge that postdates the certification refunds its
//!   budget). For every pair, the delta contributes at most
//!   `sqrt(aΔ·bΔ)` density — `E_Δ(S,T) ≤ min(|S|·aΔ, |T|·bΔ)
//!   ≤ sqrt(|S||T|·aΔ·bΔ)` by AM–GM — so scattered churn consumes almost
//!   no certificate budget even when thousands of edges have moved;
//! * [`CertEdges`] — the certified graph's **surviving** edges (present at
//!   the last certification and not yet deleted/expired) with exact degree
//!   maxima `aC`/`bC`. Every current edge is a surviving certified edge or
//!   a delta edge, so `ρ_now ≤ min(ρ₁, sqrt(aC·bC)) + sqrt(aΔ·bΔ)`: as
//!   pre-certification edges leave (a sliding window expiring its whole
//!   ring, say), `aC·bC` falls and the upper bound falls with it — the
//!   *refund* that keeps the band alive on long windows, where the frozen
//!   `ρ₁` anchor alone would pin the upper bound at its stale height while
//!   the lower bound decays.

use std::collections::HashSet;

use dds_graph::{Pair, VertexId};
use dds_num::Density;
use dds_sketch::MaxTracker;

use crate::state::DynamicGraph;

/// Relative inflation applied to every floating-point upper bound so
/// rounding can never flip a certificate.
pub(crate) const SAFETY: f64 = 1e-9;

/// A certified bracket around the current optimum density `ρ_opt`:
/// `lower ≤ ρ_opt ≤ upper`.
#[derive(Clone, Copy, Debug)]
pub struct CertifiedBounds {
    /// Exact density of the maintained witness pair (a real pair of the
    /// current graph, so never above the optimum).
    pub lower: Density,
    /// Certified upper bound on the optimum (carries a `1e-9` relative
    /// float-safety margin).
    pub upper: f64,
}

impl CertifiedBounds {
    /// `upper / lower` — the proven approximation factor of the reported
    /// density. `f64::INFINITY` when the witness is empty but edges exist.
    #[must_use]
    pub fn certified_factor(&self) -> f64 {
        let lo = self.lower.to_f64();
        if lo > 0.0 {
            self.upper / lo
        } else if self.upper > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }
}

/// A fixed `(S, T)` pair with its live `E(S, T)` maintained per event: an
/// exact, `O(1)`-per-update lower bound on the current optimum.
#[derive(Clone, Debug, Default)]
pub(crate) struct WitnessState {
    pair: Option<Pair>,
    in_s: Vec<bool>,
    in_t: Vec<bool>,
    edges: u64,
}

impl WitnessState {
    fn contains(&self, u: VertexId, v: VertexId) -> bool {
        self.in_s.get(u as usize).copied().unwrap_or(false)
            && self.in_t.get(v as usize).copied().unwrap_or(false)
    }

    /// Records an applied insertion.
    pub(crate) fn on_insert(&mut self, u: VertexId, v: VertexId) {
        if self.contains(u, v) {
            self.edges += 1;
        }
    }

    /// Records an applied deletion.
    pub(crate) fn on_delete(&mut self, u: VertexId, v: VertexId) {
        if self.contains(u, v) {
            self.edges -= 1;
        }
    }

    /// Adopts `pair` (or clears on `None`), recounting its live edges on
    /// the current graph.
    pub(crate) fn reset(&mut self, g: &DynamicGraph, pair: Option<Pair>) {
        self.in_s = vec![false; g.n()];
        self.in_t = vec![false; g.n()];
        self.edges = 0;
        if let Some(pair) = &pair {
            for &u in pair.s() {
                self.in_s[u as usize] = true;
            }
            for &v in pair.t() {
                self.in_t[v as usize] = true;
            }
            self.edges = g.edges().filter(|&(u, v)| self.contains(u, v)).count() as u64;
        }
        self.pair = pair;
    }

    /// The maintained pair, if any.
    pub(crate) fn pair(&self) -> Option<&Pair> {
        self.pair.as_ref()
    }

    /// Exact density of the maintained pair on the current graph
    /// ([`Density::ZERO`] when no pair is held or a side is empty).
    pub(crate) fn density(&self) -> Density {
        match &self.pair {
            Some(pair) if !pair.is_empty() => {
                Density::new(self.edges, pair.s().len() as u64, pair.t().len() as u64)
            }
            _ => Density::ZERO,
        }
    }
}

/// The delta graph: edges inserted since the last certification and still
/// present, with exact per-side degree maxima (see module docs).
#[derive(Clone, Debug, Default)]
pub(crate) struct DeltaDrift {
    inserted: HashSet<(VertexId, VertexId)>,
    out: MaxTracker,
    r#in: MaxTracker,
}

impl DeltaDrift {
    /// Records an applied insertion (the edge was genuinely added).
    pub(crate) fn on_insert(&mut self, u: VertexId, v: VertexId) {
        if self.inserted.insert((u, v)) {
            self.out.incr(u as usize);
            self.r#in.incr(v as usize);
        }
    }

    /// Records an applied deletion, refunding the drift budget when the
    /// deleted edge postdates the last certification (the bound argument
    /// only counts inserted-and-still-present edges).
    pub(crate) fn on_delete(&mut self, u: VertexId, v: VertexId) {
        if self.inserted.remove(&(u, v)) {
            self.out.decr(u as usize);
            self.r#in.decr(v as usize);
        }
    }

    /// Forgets the delta (a fresh certification just happened).
    pub(crate) fn clear(&mut self) {
        self.inserted.clear();
        self.out.clear();
        self.r#in.clear();
    }

    /// Number of delta edges (`k` in the crossing bound).
    pub(crate) fn len(&self) -> usize {
        self.inserted.len()
    }

    /// The delta graph's degree maxima `(aΔ, bΔ)`.
    pub(crate) fn degree_maxima(&self) -> (u64, u64) {
        (self.out.max(), self.r#in.max())
    }

    /// The delta edges in canonical (sorted) order — the snapshot form.
    pub(crate) fn edges_sorted(&self) -> Vec<(VertexId, VertexId)> {
        let mut edges: Vec<_> = self.inserted.iter().copied().collect();
        edges.sort_unstable();
        edges
    }
}

/// The surviving certified edges: the edge set frozen at the last
/// certification, shrunk as those edges are deleted or expire (see module
/// docs). Degree maxima are exact (count-of-counts), so the refund bound
/// `sqrt(aC·bC)` decays monotonically as the certified graph erodes.
#[derive(Clone, Debug, Default)]
pub(crate) struct CertEdges {
    present: HashSet<(VertexId, VertexId)>,
    out: MaxTracker,
    r#in: MaxTracker,
}

impl CertEdges {
    /// Freezes the current graph as the certified edge set (`O(m)`, run
    /// once per certification — the same order as the solve it follows).
    pub(crate) fn reset(&mut self, g: &DynamicGraph) {
        self.present.clear();
        self.out.clear();
        self.r#in.clear();
        for (u, v) in g.edges() {
            self.present.insert((u, v));
            self.out.incr(u as usize);
            self.r#in.incr(v as usize);
        }
    }

    /// Records an applied deletion/expiry, refunding the certified-degree
    /// budget when the edge predates the certification. (Re-inserting it
    /// later does *not* restore it here — it re-enters as a delta edge in
    /// [`DeltaDrift`], preserving the C/Δ partition the bound needs.)
    pub(crate) fn on_delete(&mut self, u: VertexId, v: VertexId) {
        if self.present.remove(&(u, v)) {
            self.out.decr(u as usize);
            self.r#in.decr(v as usize);
        }
    }

    /// The surviving certified edges' degree maxima `(aC, bC)`.
    pub(crate) fn degree_maxima(&self) -> (u64, u64) {
        (self.out.max(), self.r#in.max())
    }

    /// The surviving certified edges in canonical (sorted) order — the
    /// snapshot form.
    pub(crate) fn edges_sorted(&self) -> Vec<(VertexId, VertexId)> {
        let mut edges: Vec<_> = self.present.iter().copied().collect();
        edges.sort_unstable();
        edges
    }

    /// Rebuilds the certified edge set from a snapshot's edge list (the
    /// restore path — [`CertEdges::reset`] freezes a live graph instead).
    pub(crate) fn restore<I: IntoIterator<Item = (VertexId, VertexId)>>(edges: I) -> Self {
        let mut cert = CertEdges::default();
        for (u, v) in edges {
            cert.present.insert((u, v));
            cert.out.incr(u as usize);
            cert.r#in.incr(v as usize);
        }
        cert
    }
}

/// The structural upper bound that needs no certification history:
/// `min(sqrt(m), sqrt(d⁺_max · d⁻_max))` on the current graph, safety-
/// inflated. This is also what the sketch tier anchors `ρ₁` to after an
/// exact-on-sketch resolve (which certifies a lower bound, never an upper).
pub(crate) fn structural_upper(g: &DynamicGraph) -> f64 {
    let m = g.m();
    if m == 0 {
        return 0.0;
    }
    let sqrt_m = (m as f64).sqrt();
    let degree = ((g.max_out_degree() as f64) * (g.max_in_degree() as f64)).sqrt();
    sqrt_m.min(degree) * (1.0 + SAFETY)
}

/// Certified upper bound on the current optimum given `rho_cert` (a
/// certified upper bound at the last certification) and the drift since:
/// the minimum of four independently valid bounds (crate docs prove each):
///
/// 1. crossing drift — `(ρ₁ + sqrt(ρ₁² + 4k)) / 2` with `k` the delta
///    edge count (tight when few, possibly concentrated, inserts);
/// 2. delta-degree drift — `min(ρ₁, sqrt(aC·bC)) + sqrt(aΔ·bΔ)`, where
///    `aC`/`bC` are the **surviving** certified edges' degree maxima: any
///    pair's current edges split into surviving certified edges
///    (`E_C ≤ min(ρ₁·q, q·sqrt(aC·bC))`, the second term by the same
///    AM–GM as the delta) and post-certification inserts
///    (`E_Δ ≤ q·sqrt(aΔ·bΔ)`). The `aC·bC` arm refunds pre-certification
///    deletions/expiries, which the frozen `ρ₁` cannot;
/// 3. `sqrt(m)` on the current graph;
/// 4. `sqrt(d⁺_max · d⁻_max)` on the current graph (exact maxima).
pub(crate) fn certified_upper(
    g: &DynamicGraph,
    rho_cert: f64,
    drift: &DeltaDrift,
    cert: &CertEdges,
) -> f64 {
    if g.m() == 0 {
        return 0.0;
    }
    let k = drift.len() as f64;
    let crossing = 0.5 * (rho_cert + (rho_cert * rho_cert + 4.0 * k).sqrt());
    let (a, b) = drift.degree_maxima();
    let delta = ((a as f64) * (b as f64)).sqrt();
    let (ac, bc) = cert.degree_maxima();
    let surviving = ((ac as f64) * (bc as f64)).sqrt();
    let delta_deg = rho_cert.min(surviving) + delta;
    let sqrt_m = (g.m() as f64).sqrt();
    let degree = ((g.max_out_degree() as f64) * (g.max_in_degree() as f64)).sqrt();
    crossing.min(delta_deg).min(sqrt_m).min(degree) * (1.0 + SAFETY)
}

/// The certification band both engines share, before their gap factor:
/// `max(lower·(1+tolerance), lower+slack)`. The relative arm is what you
/// configure for dense regimes; the absolute `slack` keeps quiet
/// low-density regimes from burning re-solves on noise.
pub(crate) fn certification_band(lower: f64, tolerance: f64, slack: f64) -> f64 {
    (lower * (1.0 + tolerance)).max(lower + slack)
}

/// The incrementally-maintained bound state of [`crate::StreamEngine`]
/// (crate-internal; the engine exposes it through [`CertifiedBounds`]).
#[derive(Clone, Debug, Default)]
pub(crate) struct BoundTracker {
    /// Certified upper bound on the optimum at the last solve (`ρ₁`),
    /// already carrying the float-safety inflation.
    rho_at_solve: f64,
    /// `upper / lower` measured right after the last solve (1 for exact).
    gap_at_solve: f64,
    drift: DeltaDrift,
    cert: CertEdges,
    witness: WitnessState,
}

impl BoundTracker {
    pub(crate) fn new() -> Self {
        BoundTracker {
            gap_at_solve: 1.0,
            ..BoundTracker::default()
        }
    }

    /// Records an applied insertion (the edge was genuinely added).
    pub(crate) fn on_insert(&mut self, u: VertexId, v: VertexId) {
        self.drift.on_insert(u, v);
        self.witness.on_insert(u, v);
    }

    /// Records an applied deletion (the edge was genuinely removed).
    pub(crate) fn on_delete(&mut self, u: VertexId, v: VertexId) {
        self.drift.on_delete(u, v);
        self.cert.on_delete(u, v);
        self.witness.on_delete(u, v);
    }

    /// Resets the tracker after a full solve: `witness` is the solver's
    /// pair on `g` (materialised), `rho_upper` a certified upper bound on
    /// `ρ_opt(g)` (the exact optimum for exact solves).
    pub(crate) fn reset_after_solve(
        &mut self,
        g: &DynamicGraph,
        witness: Option<Pair>,
        rho_upper: f64,
    ) {
        self.drift.clear();
        self.cert.reset(g);
        self.rho_at_solve = rho_upper * (1.0 + SAFETY);
        self.witness.reset(g, witness);
        let bounds = self.bounds(g);
        self.gap_at_solve = bounds.certified_factor().max(1.0);
    }

    /// The witness pair, if a solve has happened.
    pub(crate) fn witness(&self) -> Option<&Pair> {
        self.witness.pair()
    }

    /// The certified gap measured right after the last solve (1 for an
    /// exact solve; up to 2 for the core approximation).
    pub(crate) fn gap_at_solve(&self) -> f64 {
        self.gap_at_solve
    }

    /// The snapshot form of the certificate state: `ρ₁`, the gap, the
    /// witness pair, and the delta/certified edge sets in canonical order.
    #[allow(clippy::type_complexity)]
    pub(crate) fn snapshot_state(
        &self,
    ) -> (
        f64,
        f64,
        Option<&Pair>,
        Vec<(VertexId, VertexId)>,
        Vec<(VertexId, VertexId)>,
    ) {
        (
            self.rho_at_solve,
            self.gap_at_solve,
            self.witness.pair(),
            self.drift.edges_sorted(),
            self.cert.edges_sorted(),
        )
    }

    /// Rebuilds a tracker from snapshot state: `rho_at_solve` is stored
    /// already-inflated (bit-exact round trip, no double inflation), the
    /// witness is recounted against the restored graph, and the drift /
    /// certified-edge trackers are replayed from their edge lists.
    pub(crate) fn restore(
        g: &DynamicGraph,
        rho_at_solve: f64,
        gap_at_solve: f64,
        witness: Option<Pair>,
        drift_edges: &[(VertexId, VertexId)],
        cert_edges: Vec<(VertexId, VertexId)>,
    ) -> Self {
        let mut drift = DeltaDrift::default();
        for &(u, v) in drift_edges {
            drift.on_insert(u, v);
        }
        let mut tracker = BoundTracker {
            rho_at_solve,
            gap_at_solve,
            drift,
            cert: CertEdges::restore(cert_edges),
            witness: WitnessState::default(),
        };
        tracker.witness.reset(g, witness);
        tracker
    }

    /// Exact density of the witness on the current graph.
    pub(crate) fn lower(&self) -> Density {
        self.witness.density()
    }

    /// Certified upper bound on the current optimum ([`certified_upper`]).
    pub(crate) fn upper(&self, g: &DynamicGraph) -> f64 {
        certified_upper(g, self.rho_at_solve, &self.drift, &self.cert)
    }

    /// Both bounds as one bracket.
    pub(crate) fn bounds(&self, g: &DynamicGraph) -> CertifiedBounds {
        CertifiedBounds {
            lower: self.lower(),
            upper: self.upper(g),
        }
    }

    /// Diagnostic string showing each bound ingredient (debug logging).
    pub(crate) fn debug_bounds(&self, g: &DynamicGraph) -> String {
        let k = self.drift.len() as f64;
        let rho = self.rho_at_solve;
        let crossing = 0.5 * (rho + (rho * rho + 4.0 * k).sqrt());
        let (a, b) = self.drift.degree_maxima();
        let (ac, bc) = self.cert.degree_maxima();
        let surviving = ((ac as f64) * (bc as f64)).sqrt();
        let delta_deg = rho.min(surviving) + ((a as f64) * (b as f64)).sqrt();
        let sqrt_m = (g.m() as f64).sqrt();
        let degree = ((g.max_out_degree() as f64) * (g.max_in_degree() as f64)).sqrt();
        format!(
            "rho1={rho:.4} k={k} cross={crossing:.4} aD={a} bD={b} aC={ac} bC={bc} ddeg={delta_deg:.4} sqrtm={sqrt_m:.4} deg={degree:.4} wE={}",
            self.witness.edges
        )
    }
}
