//! The mutable graph state behind the stream engine.
//!
//! [`dds_graph::DiGraph`] is an immutable CSR — ideal for the solvers,
//! wrong for per-event mutation. [`DynamicGraph`] is the complementary
//! representation: a hash edge set plus degree arrays, `O(1)` per update,
//! materialised into a `DiGraph` only when a solver actually runs.

use std::collections::HashSet;

use dds_graph::{DiGraph, GraphBuilder, VertexId};
use dds_sketch::MaxTracker;

/// A simple directed graph under edge insertions/deletions.
///
/// Enforces the same invariants as [`GraphBuilder`]: no self-loops, no
/// parallel edges. Vertex ids grow on demand; `n()` is one past the
/// largest id ever seen (matching how the solvers index vertices). The
/// maximum out-/in-degree is maintained exactly in `O(1)` per update
/// (count-of-counts), because the engine's structural upper bound
/// `ρ ≤ sqrt(d⁺_max · d⁻_max)` reads it every batch.
#[derive(Clone, Debug, Default)]
pub struct DynamicGraph {
    edges: HashSet<(VertexId, VertexId)>,
    out_deg: MaxTracker,
    in_deg: MaxTracker,
    n: usize,
    version: u64,
}

impl DynamicGraph {
    /// An empty graph with no vertices.
    #[must_use]
    pub fn new() -> Self {
        DynamicGraph::default()
    }

    /// Number of vertices (one past the largest id seen).
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges currently present.
    #[must_use]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Mutation counter: bumps on every *applied* insert/delete (no-ops do
    /// not count). Lets callers — e.g. the stream engine deciding whether a
    /// re-solve can keep its warm `SolveContext` caches — detect "graph
    /// unchanged since" without comparing edge sets.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether `u → v` is currently present.
    #[must_use]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edges.contains(&(u, v))
    }

    /// Current out-degree of `u` (0 for unseen vertices).
    #[must_use]
    pub fn out_degree(&self, u: VertexId) -> u32 {
        self.out_deg.count(u as usize)
    }

    /// Current in-degree of `v` (0 for unseen vertices).
    #[must_use]
    pub fn in_degree(&self, v: VertexId) -> u32 {
        self.in_deg.count(v as usize)
    }

    /// Exact current maximum out-degree.
    #[must_use]
    pub fn max_out_degree(&self) -> u64 {
        self.out_deg.max()
    }

    /// Exact current maximum in-degree.
    #[must_use]
    pub fn max_in_degree(&self) -> u64 {
        self.in_deg.max()
    }

    /// Inserts `u → v`. Returns `false` (state unchanged) for self-loops
    /// and already-present edges; vertex ids are still registered so the
    /// vertex count reflects every id the stream mentioned.
    pub fn insert(&mut self, u: VertexId, v: VertexId) -> bool {
        self.n = self.n.max(u as usize + 1).max(v as usize + 1);
        if u == v || !self.edges.insert((u, v)) {
            return false;
        }
        self.out_deg.incr(u as usize);
        self.in_deg.incr(v as usize);
        self.version += 1;
        true
    }

    /// Registers vertex ids up to `n` without touching the edge set —
    /// the snapshot-restore path, where the stored vertex count can
    /// exceed the largest id any surviving edge mentions (ids the stream
    /// once named still count, exactly as [`DynamicGraph::insert`]
    /// registers no-op endpoints). Never shrinks.
    pub fn ensure_vertices(&mut self, n: usize) {
        self.n = self.n.max(n);
    }

    /// Deletes `u → v`. Returns `false` (state unchanged) if absent.
    pub fn delete(&mut self, u: VertexId, v: VertexId) -> bool {
        if !self.edges.remove(&(u, v)) {
            return false;
        }
        self.out_deg.decr(u as usize);
        self.in_deg.decr(v as usize);
        self.version += 1;
        true
    }

    /// Iterates over the current edges (arbitrary order).
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.edges.iter().copied()
    }

    /// Freezes the current state into the immutable CSR the solvers use.
    #[must_use]
    pub fn materialize(&self) -> DiGraph {
        let mut b = GraphBuilder::with_min_vertices(self.n());
        for &(u, v) in &self.edges {
            b.add_edge(u, v);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_delete_roundtrip() {
        let mut g = DynamicGraph::new();
        assert!(g.insert(0, 2));
        assert!(!g.insert(0, 2), "duplicate ignored");
        assert!(!g.insert(3, 3), "self-loop ignored");
        assert_eq!((g.n(), g.m()), (4, 1));
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.in_degree(2), 1);
        assert!(g.delete(0, 2));
        assert!(!g.delete(0, 2), "absent delete ignored");
        assert_eq!(g.m(), 0);
        assert_eq!(g.out_degree(0), 0);
    }

    #[test]
    fn materialize_matches_state() {
        let mut g = DynamicGraph::new();
        for (u, v) in [(0, 1), (1, 2), (2, 0), (0, 2)] {
            g.insert(u, v);
        }
        g.delete(1, 2);
        let frozen = g.materialize();
        assert_eq!(frozen.n(), 3);
        assert_eq!(frozen.m(), 3);
        assert!(frozen.has_edge(0, 1) && frozen.has_edge(2, 0) && frozen.has_edge(0, 2));
        assert!(!frozen.has_edge(1, 2));
    }

    #[test]
    fn version_counts_only_applied_mutations() {
        let mut g = DynamicGraph::new();
        assert_eq!(g.version(), 0);
        g.insert(0, 1);
        g.insert(0, 1); // duplicate: no bump
        g.insert(2, 2); // self-loop: no bump
        g.delete(5, 6); // absent: no bump
        assert_eq!(g.version(), 1);
        g.delete(0, 1);
        assert_eq!(g.version(), 2);
    }

    #[test]
    fn degrees_track_churn() {
        let mut g = DynamicGraph::new();
        for v in 1..=5 {
            g.insert(0, v);
        }
        assert_eq!(g.out_degree(0), 5);
        assert_eq!(g.max_out_degree(), 5);
        g.delete(0, 3);
        g.delete(0, 4);
        assert_eq!(g.out_degree(0), 3);
        assert_eq!(g.in_degree(3), 0);
        assert_eq!(g.max_out_degree(), 3, "max must fall with deletions");
        assert_eq!(g.max_in_degree(), 1);
    }
}
