//! Incremental DDS maintenance over edge streams, with a **certified lazy
//! re-solve** policy.
//!
//! The static solvers in [`dds_core`] answer "what is the densest `(S, T)`
//! pair of this graph?" once. Production graphs are not static: edges
//! arrive and expire continuously (fraud rings forming, social edges
//! churning). Re-running even the fastest static solver on every update is
//! wasteful — and usually pointless, because most updates barely move the
//! optimum.
//!
//! This crate keeps a DDS answer *continuously certified* over a stream of
//! batched insertions/deletions:
//!
//! * [`StreamEngine::apply`] ingests one [`Batch`] in `O(batch)` time,
//!   maintaining a **lower bound** (the exact density of the last solve's
//!   witness pair, updated per event) and a **certified upper bound** on
//!   the current optimum (see [`CertifiedBounds`]);
//! * a full solver ([`dds_core::DcExact`] or [`dds_core::core_approx`])
//!   runs **only** when the certificate degrades past the configured
//!   tolerance — so most batches cost microseconds while every reported
//!   density stays inside a proven approximation bracket.
//!
//! # The certificate
//!
//! Let `ρ₁` be a certified upper bound on the optimum at the last solve
//! (the exact optimum for [`SolverKind::Exact`]) and let `Δ` be the
//! **delta graph**: the `k` edges inserted since then and still present,
//! with degree maxima `aΔ` (out) and `bΔ` (in). Every edge of the current
//! graph is an edge of the solved graph or of `Δ`, so for any pair
//! `(S, T)` with `q = sqrt(|S||T|)`:
//!
//! ```text
//! E_now(S,T) ≤ E_then(S,T) + E_Δ(S,T)
//! E_then(S,T) ≤ ρ₁·q                             (deletions only remove edges)
//! E_Δ(S,T)   ≤ min(k, |S|·aΔ, |T|·bΔ)
//!
//! ⇒ ρ_now(S,T) ≤ min((ρ₁ + sqrt(ρ₁² + 4k)) / 2,   via E_Δ ≤ k and ρ ≤ q
//!                    ρ₁ + sqrt(aΔ·bΔ))            via AM–GM on |S|·aΔ, |T|·bΔ
//! ```
//!
//! The second form is the workhorse: under scattered churn `aΔ·bΔ` stays
//! tiny no matter how many edges have moved, so the certificate survives
//! thousands of updates. Two structural bounds hold unconditionally on
//! the current graph — `ρ ≤ sqrt(m)` and `ρ ≤ sqrt(d⁺_max · d⁻_max)`,
//! with the degree maxima maintained exactly in `O(1)` per update — and
//! the reported upper bound is the minimum of all four, inflated by a
//! relative `1e-9` so floating-point rounding can never flip a
//! certificate (pruning-style conservatism, same discipline as
//! `dds-core`'s γ bounds).
//!
//! The lower bound is exact: the witness pair is a real pair of the
//! current graph, and its edge count is maintained per event, so its
//! [`dds_num::Density`] never rounds.
//!
//! # Sliding windows
//!
//! [`StreamEngine`]'s certificate leans on a *persistent* witness, which a
//! sliding window (every edge expires `W` ticks after arrival) destroys by
//! construction. [`WindowEngine`] is the window-native counterpart: it
//! owns the expiry ring, keeps the last certification's max-product
//! `[x, y]`-core alive **decrementally** ([`dds_xycore::DecrementalCore`]
//! repairs it locally as edges expire, so `ρ_opt ≥ ρ(core) ≥ sqrt(x·y)`
//! keeps holding), re-certifies with a cheap core sweep when the band
//! breaks, and escalates to one exact solve only when the sweep bracket
//! cannot satisfy the configured tolerance. See [`WindowEngine`].
//!
//! # The sketch tier
//!
//! Both engines assume one full pass over the edge set (an exact solve or
//! a core sweep) is affordable when the band breaks. Past some `m` it is
//! not. The [`SketchTier`] knob gives either engine a third gear: a
//! sublinear [`dds_sketch::SketchEngine`] maintained alongside the full
//! edge set, whose **exact-on-sketch** refresh (a full solve of the
//! retained subgraph, bounded by the sketch's state bound) replaces the
//! full-graph solver whenever `m ≥ min_m`. The sketched witness is a
//! genuine pair of the full graph, so the engines keep their exact,
//! per-event lower bound; the upper bound re-anchors to the structural
//! `min(√m, √(d⁺·d⁻))` and certification proceeds gap-relative, as with
//! [`SolverKind::CoreApprox`]. Experiment E15 measures the trade.
//!
//! # Example
//!
//! ```
//! use dds_stream::{Batch, StreamConfig, StreamEngine};
//!
//! let mut engine = StreamEngine::new(StreamConfig::default());
//!
//! // K_{2,2} arrives in one batch: the optimum is ρ = 4/√4 = 2.
//! let mut batch = Batch::new();
//! for (u, v) in [(0, 2), (0, 3), (1, 2), (1, 3)] {
//!     batch.insert(u, v);
//! }
//! let report = engine.apply(&batch);
//! assert!(report.resolved); // first batch always pays for a solve
//! assert_eq!(report.density.to_f64(), 2.0);
//!
//! // A stray edge elsewhere: absorbed incrementally, bounds stay tight.
//! let mut batch = Batch::new();
//! batch.insert(7, 8);
//! let report = engine.apply(&batch);
//! assert!(!report.resolved);
//! assert!(report.lower <= report.upper);
//! ```

//! # Persistence and serving
//!
//! [`StreamEngine::snapshot`]/[`StreamEngine::restore`] freeze and revive
//! the whole maintenance state — edge set, certificate anchors, witness,
//! sketch level — in the versioned binary format of [`snapshot`], and
//! [`follow_events`] tails a growing event file with checkpoint-friendly
//! byte cursors, turning a replay into a restartable serving loop (`dds
//! stream --follow`). The `dds-shard` crate builds its edge-partitioned
//! parallel engine on the same primitives.

#![warn(missing_docs)]

mod bounds;
pub mod delta;
mod engine;
mod events;
mod follow;
pub mod snapshot;
mod state;
mod window;
mod witness;

pub use bounds::CertifiedBounds;
pub use engine::{
    batch_slices, replay, BatchBy, EpochReport, SketchTier, SolverKind, StreamConfig, StreamEngine,
};
pub use events::{
    load_events, read_events, save_events, write_events, Batch, Event, StreamError, TimedEvent,
};
pub use follow::{follow_events, FollowConfig, FollowOutcome};
pub use snapshot::SnapshotError;
pub use state::DynamicGraph;
pub use window::{replay_window, WindowConfig, WindowEngine, WindowMode, WindowReport};
pub use witness::denser_pair;
