//! The window-native engine: sliding-window DDS maintenance on top of
//! decremental `[x, y]`-cores.
//!
//! # Why [`crate::StreamEngine`] is the wrong tool for windows
//!
//! The lazy-re-solve engine assumes the optimum mostly *persists*: its
//! witness pair keeps certifying epochs as long as churn leaves it alone.
//! A sliding window breaks that assumption by construction — every edge
//! expires `window` ticks after it arrives, so any fixed witness decays to
//! nothing and the exact re-solve fires over and over on a graph that will
//! have rotated away before the answer is stale-proof.
//!
//! # The window-native certificate
//!
//! [`WindowEngine`] maintains three things per event, each `O(1)` or
//! `O(affected)`:
//!
//! * an **expiry ring** — arrivals carry their timestamp; edges older than
//!   `window` are deleted automatically (re-arrival of a live edge renews
//!   its expiry, the classic last-occurrence window semantics);
//! * a **decremental max-product core** ([`dds_xycore::DecrementalCore`]) —
//!   the `[x, y]`-core the 2-approximation certified at the last refresh,
//!   repaired locally as its edges expire. While non-empty it proves
//!   `ρ_opt ≥ ρ(core) ≥ sqrt(x·y)` *on the current graph*, which is what
//!   keeps the lower bound alive between refreshes as the window slides;
//! * the **drift upper bound** ([`crate::bounds`]): deletions only lower
//!   the optimum, insertions are covered by the delta-degree/crossing
//!   bounds, so `ρ_opt ≤ min(2·sqrt(P) + drift, sqrt(m), …)` holds at
//!   every tick.
//!
//! When the band `upper ≤ gap · max(lower·(1+tolerance), lower+slack)`
//! breaks, the engine **refreshes**: one `O(sqrt(m)·(n+m))` max-product
//! core sweep re-certifies the bracket within a factor ~2. If that bracket
//! still cannot satisfy the configured band and
//! [`WindowConfig::exact_escalation`] is on, it escalates to one exact
//! solve through the long-lived [`SolveContext`] — rare by design, so the
//! steady state is core-sweep cheap and never exact-solver expensive.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use dds_core::{core_approx, parallel, DcExact, ExactOptions, SolveContext, SolveStats};
use dds_graph::{DiGraph, Pair, VertexId};
use dds_num::Density;
use dds_obs::{span, Counter, Gauge, Histogram, Registry, Tracer};
use dds_sketch::{SketchEngine, SketchStats};
use dds_xycore::DecrementalCore;

use crate::bounds::{
    certification_band, certified_upper, structural_upper, CertEdges, CertifiedBounds, DeltaDrift,
    WitnessState, SAFETY,
};
use crate::engine::{batch_slices, sketch_tier_refresh, BatchBy, SketchTier};
use crate::events::{Batch, Event, TimedEvent};
use crate::state::DynamicGraph;

/// Configuration of a [`WindowEngine`].
#[derive(Clone, Copy, Debug)]
pub struct WindowConfig {
    /// Window length in stream ticks: an edge arriving at time `t` expires
    /// at `t + window` unless re-inserted first (which renews it).
    pub window: u64,
    /// Allowed relative certificate degradation before a refresh fires.
    /// Must be non-negative.
    pub tolerance: f64,
    /// Allowed absolute certificate degradation (density units). Must be
    /// non-negative; keeps quiet low-density windows from burning
    /// refreshes on noise.
    pub slack: f64,
    /// When a fresh core sweep still cannot certify the configured band,
    /// run one exact solve (warm [`SolveContext`]) instead of settling for
    /// the ~2× core bracket. Off: the engine never pays for flows and the
    /// certified factor may reach ~`2·(1+tolerance)`.
    ///
    /// Escalation is **rate-limited to one exact solve per window length**
    /// of stream time: the window rotates its entire edge set every
    /// `window` ticks, so solving exactly more often means solving
    /// essentially different graphs back to back — the degenerate regime
    /// window-native maintenance exists to avoid. Between escalations the
    /// gap-relative core bracket certifies (the same `gap₀` semantics as
    /// [`crate::StreamEngine`] with [`crate::SolverKind::CoreApprox`]).
    pub exact_escalation: bool,
    /// Worker threads for exact escalations (1 = serial). Must be
    /// positive.
    pub threads: usize,
    /// Optional sketch fallback (see [`SketchTier`]): when the live window
    /// holds at least `min_m` edges, a band break refreshes through
    /// **sketch-refresh + exact-on-sketch** instead of the full
    /// `O(√m·(n+m))` core sweep. The maintained decremental core is
    /// dropped for the duration (the sketch's witness plays its role as
    /// the decaying lower bound) and exact escalation on the *full* graph
    /// is suppressed — while engaged, the tier never pays a full-graph
    /// sweep or solve (the linear `O(m)` witness/certificate bookkeeping
    /// a refresh performs anyway is all that touches the full edge set).
    pub sketch: Option<SketchTier>,
}

impl WindowConfig {
    /// Defaults tuned like [`crate::StreamConfig`]: `tolerance = 0.25`,
    /// `slack = 2.0`, escalation on, serial, no sketch tier.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "window must be positive");
        WindowConfig {
            window,
            tolerance: 0.25,
            slack: 2.0,
            exact_escalation: true,
            threads: 1,
            sketch: None,
        }
    }
}

/// How an epoch was certified.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowMode {
    /// The maintained bounds still covered the band: no solver ran.
    Incremental,
    /// A max-product core sweep re-certified the bracket (factor ~2).
    CoreRefresh,
    /// The sweep bracket exceeded the band and one exact solve ran.
    ExactResolve,
    /// The sketch tier re-certified: exact-on-sketch witness as the lower
    /// bound, structural upper — no full-graph pass of any kind.
    SketchRefresh,
}

/// What one [`WindowEngine::apply`] call did and certified.
#[derive(Clone, Debug)]
pub struct WindowReport {
    /// 1-based epoch number (one per applied batch).
    pub epoch: u64,
    /// Events in the batch, including no-ops.
    pub events: usize,
    /// Insertions of genuinely new edges.
    pub arrivals: usize,
    /// Re-insertions of live edges (expiry renewed, graph unchanged).
    pub renewals: usize,
    /// Edges expired by the sliding window during this batch.
    pub expired: usize,
    /// Explicit deletions that changed the graph.
    pub deletes: usize,
    /// No-op events (self-loops, absent deletes).
    pub ignored: usize,
    /// Stream time after the batch (largest timestamp seen).
    pub now: u64,
    /// Vertex count after the batch.
    pub n: usize,
    /// Edge count after the batch.
    pub m: usize,
    /// How the epoch was certified.
    pub mode: WindowMode,
    /// Thresholds `(x, y)` of the maintained core, if one is alive.
    pub core: Option<(u64, u64)>,
    /// Vertices peeled by decremental core repair during this batch.
    pub repairs: usize,
    /// Instrumentation of the epoch's exact escalation or exact-on-sketch
    /// solve (`None` otherwise).
    pub solve_stats: Option<SolveStats>,
    /// Sketch-tier counters, present when this epoch refreshed through the
    /// sketch fallback.
    pub sketch: Option<SketchStats>,
    /// The reported density: the best maintained pair's exact density.
    pub density: Density,
    /// Certified lower bound (`density` as `f64`).
    pub lower: f64,
    /// Certified upper bound on the current optimum.
    pub upper: f64,
    /// Proven approximation factor of `density` (`upper / lower`).
    pub certified_factor: f64,
    /// Whether the epoch ends inside its configured certification band
    /// (always true after a refresh; checked by E14 and the CI smoke).
    pub within_band: bool,
    /// Wall-clock time spent in this `apply` call.
    pub elapsed: Duration,
}

/// Sliding-window DDS maintenance (see module docs).
#[derive(Debug)]
pub struct WindowEngine {
    config: WindowConfig,
    state: DynamicGraph,
    /// Expiry ring: `(arrival, edge)` in arrival order. Entries are lazily
    /// invalidated by `live_since` (renewals and explicit deletions leave
    /// stale entries behind rather than searching the ring).
    ring: VecDeque<(u64, (VertexId, VertexId))>,
    /// Latest arrival time of each live edge — the authority on whether a
    /// popped ring entry still speaks for its edge.
    live_since: HashMap<(VertexId, VertexId), u64>,
    now: u64,
    core: Option<DecrementalCore>,
    witness: WitnessState,
    drift: DeltaDrift,
    /// The certified graph's surviving edges: refunds pre-certification
    /// expiries in the upper bound (see [`crate::bounds::CertEdges`]).
    cert: CertEdges,
    /// Certified upper bound on `ρ_opt` at the last certification (safety
    /// inflation included). Starts at 0: the empty graph is certified.
    rho_at_cert: f64,
    /// `upper / lower` measured right after the last certification.
    gap_at_cert: f64,
    ctx: SolveContext,
    sketch: Option<SketchEngine>,
    /// Stream time of the last exact escalation (rate-limit anchor).
    last_escalation: Option<u64>,
    metrics: WindowMetrics,
    tracer: Tracer,
    last_solve_stats: Option<SolveStats>,
}

/// Obs-backed lifetime counters of a [`WindowEngine`] (the `dds_window_*`
/// series): standalone atomics by default — the public accessors read them
/// as views — re-homed into a shared registry by
/// [`WindowEngine::attach_obs`]. The gauge and the latency histograms are
/// no-ops until attached.
#[derive(Debug, Default)]
struct WindowMetrics {
    epochs: Counter,
    refreshes: Counter,
    exact_solves: Counter,
    sketch_refreshes: Counter,
    expired: Counter,
    repairs: Counter,
    refresh_cold: Counter,
    refresh_band: Counter,
    edges: Option<Gauge>,
    apply_latency: Histogram,
    refresh_latency: Histogram,
}

impl WindowMetrics {
    fn attach(&mut self, registry: &Registry) {
        let transfer = |old: &mut Counter, name: &str| {
            let new = registry.counter(name);
            new.add(old.get());
            *old = new;
        };
        transfer(&mut self.epochs, "dds_window_epochs_total");
        transfer(&mut self.refreshes, "dds_window_refreshes_total");
        transfer(&mut self.exact_solves, "dds_window_exact_solves_total");
        transfer(
            &mut self.sketch_refreshes,
            "dds_window_sketch_refreshes_total",
        );
        transfer(&mut self.expired, "dds_window_expired_total");
        transfer(&mut self.repairs, "dds_window_repairs_total");
        transfer(
            &mut self.refresh_cold,
            "dds_window_refresh_cause_cold_total",
        );
        transfer(
            &mut self.refresh_band,
            "dds_window_refresh_cause_band_total",
        );
        self.edges = Some(registry.gauge("dds_window_edges"));
        self.apply_latency = registry.histogram("dds_window_apply_latency_us");
        self.refresh_latency = registry.histogram("dds_window_refresh_latency_us");
    }
}

/// Why a window refresh fired (feeds the `dds_window_refresh_cause_*`
/// counters).
#[derive(Clone, Copy, Debug)]
enum RefreshCause {
    /// Edges exist but every maintained pair decayed away.
    Cold,
    /// The certified band broke.
    Band,
}

impl WindowEngine {
    /// A fresh engine over an empty graph at stream time 0.
    ///
    /// # Panics
    /// Panics if the window is zero or tolerance/slack are negative.
    #[must_use]
    pub fn new(config: WindowConfig) -> Self {
        assert!(config.window > 0, "window must be positive");
        assert!(config.tolerance >= 0.0, "tolerance must be non-negative");
        assert!(config.slack >= 0.0, "slack must be non-negative");
        assert!(config.threads > 0, "threads must be positive");
        WindowEngine {
            state: DynamicGraph::new(),
            ring: VecDeque::new(),
            live_since: HashMap::new(),
            now: 0,
            core: None,
            witness: WitnessState::default(),
            drift: DeltaDrift::default(),
            cert: CertEdges::default(),
            rho_at_cert: 0.0,
            gap_at_cert: 1.0,
            ctx: SolveContext::new(),
            sketch: config.sketch.map(|tier| SketchEngine::new(tier.config)),
            config,
            last_escalation: None,
            metrics: WindowMetrics::default(),
            tracer: Tracer::detached(),
            last_solve_stats: None,
        }
    }

    /// Re-homes this engine's lifetime counters in `registry` (the
    /// `dds_window_*` series, plus the `dds_exact_*` series of its solver
    /// context and the `dds_sketch_*` series of its sketch tier when one
    /// is maintained), transferring the values accumulated so far and
    /// enabling the latency histograms and the edge gauge.
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.metrics.attach(registry);
        self.ctx.attach_obs(registry);
        if let Some(sk) = &mut self.sketch {
            sk.attach_obs(registry);
        }
    }

    /// Routes this engine's spans (`window.apply` with a nested
    /// `window.refresh`) to `tracer`. The default is the detached tracer:
    /// spans are inert and never read the clock.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Applies one batch: expiry + event ingestion in `O(batch + repairs)`,
    /// then a certification check that refreshes only when the band broke.
    ///
    /// Timestamps are expected to be non-decreasing across events (the
    /// same contract as [`crate::events`] time-window batching); an
    /// out-of-order timestamp never advances time backwards, it only
    /// delays that edge's expiry to the ring's pace.
    pub fn apply(&mut self, batch: &Batch) -> WindowReport {
        let start = Instant::now();
        let mut span = span!(self.tracer, "window.apply");
        let expired_before = self.metrics.expired.get();
        let repairs_before = self.metrics.repairs.get();
        let (mut arrivals, mut renewals, mut deletes, mut ignored) =
            (0usize, 0usize, 0usize, 0usize);
        for ev in &batch.events {
            self.expire_until(ev.time);
            match ev.event {
                Event::Insert(u, v) => {
                    if self.state.insert(u, v) {
                        arrivals += 1;
                        self.live_since.insert((u, v), ev.time);
                        self.ring.push_back((ev.time, (u, v)));
                        self.drift.on_insert(u, v);
                        self.witness.on_insert(u, v);
                        if let Some(core) = &mut self.core {
                            core.insert_edge(u, v);
                        }
                        if let Some(sk) = &mut self.sketch {
                            sk.insert(u, v);
                        }
                    } else if u != v && self.state.has_edge(u, v) {
                        // Live edge re-arrives: renew its expiry.
                        renewals += 1;
                        self.live_since.insert((u, v), ev.time);
                        self.ring.push_back((ev.time, (u, v)));
                    } else {
                        ignored += 1;
                    }
                }
                Event::Delete(u, v) => {
                    if self.state.delete(u, v) {
                        deletes += 1;
                        self.live_since.remove(&(u, v));
                        self.on_removed(u, v);
                    } else {
                        ignored += 1;
                    }
                }
            }
        }
        self.metrics.epochs.inc();
        let epoch = self.metrics.epochs.get();

        let cause = self.refresh_cause();
        let mode = if let Some(cause) = cause {
            match cause {
                RefreshCause::Cold => self.metrics.refresh_cold.inc(),
                RefreshCause::Band => self.metrics.refresh_band.inc(),
            }
            self.refresh()
        } else {
            WindowMode::Incremental
        };
        if let Some(g) = &self.metrics.edges {
            g.set(self.state.m() as u64);
        }
        span.record("epoch", epoch);
        span.record("events", batch.events.len() as u64);
        span.record("m", self.state.m() as u64);
        span.record_flag("refreshed", mode != WindowMode::Incremental);

        let bounds = self.bounds();
        let lower = bounds.lower.to_f64();
        let elapsed = start.elapsed();
        self.metrics.apply_latency.observe(elapsed);
        WindowReport {
            epoch,
            events: batch.events.len(),
            arrivals,
            renewals,
            expired: (self.metrics.expired.get() - expired_before) as usize,
            deletes,
            ignored,
            now: self.now,
            n: self.state.n(),
            m: self.state.m(),
            mode,
            core: self.core_thresholds(),
            repairs: (self.metrics.repairs.get() - repairs_before) as usize,
            solve_stats: if matches!(mode, WindowMode::ExactResolve | WindowMode::SketchRefresh) {
                self.last_solve_stats
            } else {
                None
            },
            sketch: if mode == WindowMode::SketchRefresh {
                self.sketch.as_ref().map(SketchEngine::stats)
            } else {
                None
            },
            density: bounds.lower,
            lower,
            upper: bounds.upper,
            certified_factor: bounds.certified_factor(),
            within_band: self.state.m() == 0
                || (lower > 0.0
                    && bounds.upper <= self.gap_at_cert * self.band(lower) * (1.0 + SAFETY)),
            elapsed,
        }
    }

    /// Advances stream time to `t` (monotone), expiring everything older
    /// than the window — useful when time passes without events.
    pub fn advance_to(&mut self, t: u64) {
        self.expire_until(t);
    }

    fn expire_until(&mut self, t: u64) {
        self.now = self.now.max(t);
        while let Some(&(t0, e)) = self.ring.front() {
            if t0.saturating_add(self.config.window) > self.now {
                break;
            }
            self.ring.pop_front();
            if self.live_since.get(&e) != Some(&t0) {
                continue; // renewed or explicitly deleted: stale entry
            }
            self.live_since.remove(&e);
            let deleted = self.state.delete(e.0, e.1);
            debug_assert!(deleted, "ring edge missing from the graph");
            self.metrics.expired.inc();
            self.on_removed(e.0, e.1);
        }
    }

    /// Shared bookkeeping for any edge leaving the graph (expiry or
    /// explicit delete).
    fn on_removed(&mut self, u: VertexId, v: VertexId) {
        self.drift.on_delete(u, v);
        self.cert.on_delete(u, v);
        self.witness.on_delete(u, v);
        if let Some(core) = &mut self.core {
            self.metrics.repairs.add(core.delete_edge(u, v) as u64);
        }
        if let Some(sk) = &mut self.sketch {
            sk.delete(u, v);
        }
    }

    /// The band limit before the gap factor ([`certification_band`]).
    fn band(&self, lower: f64) -> f64 {
        certification_band(lower, self.config.tolerance, self.config.slack)
    }

    fn refresh_cause(&self) -> Option<RefreshCause> {
        if self.state.m() == 0 {
            return None; // the empty certificate [0, 0] is exact
        }
        let bounds = self.bounds();
        let lower = bounds.lower.to_f64();
        if lower <= 0.0 {
            return Some(RefreshCause::Cold); // every maintained pair is gone
        }
        (bounds.upper > self.gap_at_cert * self.band(lower)).then_some(RefreshCause::Band)
    }

    /// Re-certifies. Sketch tier engaged: exact-on-sketch only (see
    /// [`WindowConfig::sketch`]). Otherwise: one max-product core sweep,
    /// escalated to an exact solve when the sweep bracket still exceeds
    /// the band (and escalation is enabled). Resets the drift budget and
    /// measures the fresh gap.
    fn refresh(&mut self) -> WindowMode {
        let timer = self.metrics.refresh_latency.timer();
        let mut span = span!(self.tracer, "window.refresh");
        if self
            .config
            .sketch
            .is_some_and(|tier| self.state.m() >= tier.min_m)
        {
            let mode = self.sketch_refresh();
            span.record_str("mode", "sketch");
            span.close();
            timer.stop();
            return mode;
        }
        let g = self.state.materialize();
        let approx = core_approx(&g);
        self.metrics.refreshes.inc();
        self.core = (!approx.solution.pair.is_empty()).then(|| {
            DecrementalCore::from_mask(&g, approx.x, approx.y, approx.solution.pair.to_mask(g.n()))
        });
        self.rho_at_cert = approx.upper_bound * (1.0 + SAFETY);
        self.witness.reset(&self.state, None);
        self.drift.clear();
        self.cert.reset(&self.state);
        self.last_solve_stats = None;
        let mut mode = WindowMode::CoreRefresh;

        let cooled_down = self
            .last_escalation
            .is_none_or(|t| self.now >= t.saturating_add(self.config.window));
        if self.config.exact_escalation && cooled_down {
            let lower = self.lower_density().to_f64();
            let upper = certified_upper(&self.state, self.rho_at_cert, &self.drift, &self.cert);
            if lower <= 0.0 || upper > self.band(lower) {
                let report = if self.config.threads > 1 {
                    parallel::dc_exact_parallel_with(
                        &mut self.ctx,
                        &g,
                        ExactOptions::default(),
                        self.config.threads,
                    )
                } else {
                    DcExact::new().solve_with(&mut self.ctx, &g)
                };
                self.last_solve_stats = Some(report.stats());
                self.rho_at_cert = report.solution.density.to_f64() * (1.0 + SAFETY);
                let pair = (!report.solution.pair.is_empty()).then_some(report.solution.pair);
                self.witness.reset(&self.state, pair);
                self.metrics.exact_solves.inc();
                self.last_escalation = Some(self.now);
                mode = WindowMode::ExactResolve;
            }
        }

        let bounds = self.bounds();
        self.gap_at_cert = bounds.certified_factor().max(1.0);
        span.record_str(
            "mode",
            match mode {
                WindowMode::ExactResolve => "exact",
                _ => "core",
            },
        );
        span.close();
        timer.stop();
        mode
    }

    /// The sketch tier's re-certification: exact-on-sketch witness as the
    /// full-graph lower bound (its true live edge count is recounted and
    /// then maintained per event by [`WitnessState`]), structural upper,
    /// no decremental core, no full-graph pass.
    fn sketch_refresh(&mut self) -> WindowMode {
        let sk = self.sketch.as_mut().expect("tier implies a sketch");
        let incumbent = self.witness.pair().cloned();
        let (pair, stats) = sketch_tier_refresh(sk, &self.state, incumbent);
        self.last_solve_stats = stats;
        self.metrics.refreshes.inc();
        self.metrics.sketch_refreshes.inc();
        self.core = None;
        self.rho_at_cert = structural_upper(&self.state);
        self.witness.reset(&self.state, pair);
        self.drift.clear();
        self.cert.reset(&self.state);
        let bounds = self.bounds();
        self.gap_at_cert = bounds.certified_factor().max(1.0);
        WindowMode::SketchRefresh
    }

    /// Forces a refresh now, regardless of the certificate, and returns
    /// the refreshed bounds.
    pub fn force_refresh(&mut self) -> CertifiedBounds {
        self.refresh();
        self.bounds()
    }

    /// The best maintained lower bound: the decremental core's live
    /// density or the exact witness's, whichever is denser right now.
    fn lower_density(&self) -> Density {
        let core = self
            .core
            .as_ref()
            .map_or(Density::ZERO, DecrementalCore::density);
        let witness = self.witness.density();
        if witness > core {
            witness
        } else {
            core
        }
    }

    /// The current certified bracket `lower ≤ ρ_opt ≤ upper`.
    #[must_use]
    pub fn bounds(&self) -> CertifiedBounds {
        CertifiedBounds {
            lower: self.lower_density(),
            upper: certified_upper(&self.state, self.rho_at_cert, &self.drift, &self.cert),
        }
    }

    /// Thresholds `(x, y)` of the maintained decremental core, while it is
    /// alive.
    #[must_use]
    pub fn core_thresholds(&self) -> Option<(u64, u64)> {
        self.core
            .as_ref()
            .filter(|c| !c.is_empty())
            .map(|c| (c.x(), c.y()))
    }

    /// The maintained exact witness pair (present only after an exact
    /// escalation, until the next refresh).
    #[must_use]
    pub fn witness(&self) -> Option<&Pair> {
        self.witness.pair()
    }

    /// Number of batches applied so far.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.metrics.epochs.get()
    }

    /// Number of certification refreshes (core sweeps) run so far,
    /// including the ones that escalated.
    #[must_use]
    pub fn refreshes(&self) -> u64 {
        self.metrics.refreshes.get()
    }

    /// Number of exact escalations run so far.
    #[must_use]
    pub fn exact_solves(&self) -> u64 {
        self.metrics.exact_solves.get()
    }

    /// How many refreshes went through the sketch tier.
    #[must_use]
    pub fn sketch_refreshes(&self) -> u64 {
        self.metrics.sketch_refreshes.get()
    }

    /// Lifetime counters of the maintained sketch, when the tier is
    /// configured.
    #[must_use]
    pub fn sketch_stats(&self) -> Option<SketchStats> {
        self.sketch.as_ref().map(SketchEngine::stats)
    }

    /// Edges expired by the window so far.
    #[must_use]
    pub fn expired(&self) -> u64 {
        self.metrics.expired.get()
    }

    /// Vertices peeled by decremental core repair so far.
    #[must_use]
    pub fn repairs(&self) -> u64 {
        self.metrics.repairs.get()
    }

    /// Instrumentation of the most recent exact escalation, if any since
    /// the last refresh.
    #[must_use]
    pub fn last_solve_stats(&self) -> Option<SolveStats> {
        self.last_solve_stats
    }

    /// The engine's long-lived solver context (escalations warm-start from
    /// it).
    #[must_use]
    pub fn context(&self) -> &SolveContext {
        &self.ctx
    }

    /// Current stream time (largest timestamp seen).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The configured window length.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.config.window
    }

    /// Current vertex count.
    #[must_use]
    pub fn n(&self) -> usize {
        self.state.n()
    }

    /// Current (live) edge count.
    #[must_use]
    pub fn m(&self) -> usize {
        self.state.m()
    }

    /// Freezes the current live window into the CSR form the static
    /// solvers use.
    #[must_use]
    pub fn materialize(&self) -> DiGraph {
        self.state.materialize()
    }
}

/// Replays `events` through a [`WindowEngine`] in batches, returning one
/// report per epoch (the window-native analog of [`crate::replay`]).
///
/// # Panics
/// Panics if the batch size or time window is zero.
pub fn replay_window(
    engine: &mut WindowEngine,
    events: &[TimedEvent],
    batch_by: BatchBy,
) -> Vec<WindowReport> {
    batch_slices(events, batch_by)
        .into_iter()
        .map(|chunk| engine.apply(&Batch::from_events(chunk.to_vec())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k22_batch(t: u64) -> Batch {
        let mut batch = Batch::new();
        for (u, v) in [(0, 2), (0, 3), (1, 2), (1, 3)] {
            batch.insert_at(t, u, v);
        }
        batch
    }

    #[test]
    fn first_batch_certifies_and_expiry_empties_the_window() {
        let mut engine = WindowEngine::new(WindowConfig::new(10));
        let report = engine.apply(&k22_batch(0));
        assert_ne!(report.mode, WindowMode::Incremental);
        assert_eq!(report.m, 4);
        assert!(report.within_band);
        assert!(report.lower > 0.0);
        // Advance past the window: everything expires.
        let mut empty = Batch::new();
        empty.insert_at(20, 7, 8);
        let report = engine.apply(&empty);
        assert_eq!(report.expired, 4);
        assert_eq!(report.m, 1);
        assert_eq!(engine.expired(), 4);
    }

    #[test]
    fn renewals_extend_expiry_without_mutating_the_graph() {
        let mut engine = WindowEngine::new(WindowConfig::new(10));
        engine.apply(&k22_batch(0));
        // Renew the whole block at t = 8: nothing expires at t = 12.
        let report = engine.apply(&k22_batch(8));
        assert_eq!(report.renewals, 4);
        assert_eq!(report.arrivals, 0);
        let mut tick = Batch::new();
        tick.insert_at(12, 9, 10);
        let report = engine.apply(&tick);
        assert_eq!(report.expired, 0, "renewed edges must survive t=12");
        assert_eq!(report.m, 5);
        // …but they do expire at t = 18.
        engine.advance_to(18);
        assert_eq!(engine.m(), 1);
    }

    #[test]
    fn explicit_deletes_work_and_stale_ring_entries_are_ignored() {
        let mut engine = WindowEngine::new(WindowConfig::new(100));
        engine.apply(&k22_batch(0));
        let mut batch = Batch::new();
        batch.delete_at(1, 0, 2);
        batch.delete_at(1, 0, 2); // absent now: ignored
        let report = engine.apply(&batch);
        assert_eq!((report.deletes, report.ignored), (1, 1));
        assert_eq!(report.m, 3);
        // Re-insert: a fresh ring entry; the stale original must not
        // expire it early, the new one expires it at 50 + 100.
        let mut batch = Batch::new();
        batch.insert_at(50, 0, 2);
        assert_eq!(engine.apply(&batch).arrivals, 1);
        engine.advance_to(120);
        assert!(engine.materialize().has_edge(0, 2), "fresh entry governs");
        engine.advance_to(150);
        assert_eq!(engine.m(), 0);
    }

    #[test]
    fn incremental_epochs_keep_the_band() {
        let mut engine = WindowEngine::new(WindowConfig::new(10_000));
        engine.apply(&k22_batch(0));
        // Scattered noise: absorbed without refresh, band intact.
        for i in 0..5u32 {
            let mut batch = Batch::new();
            batch.insert_at(u64::from(i) + 1, 20 + i, 40 + i);
            let report = engine.apply(&batch);
            assert_eq!(report.mode, WindowMode::Incremental, "epoch {i}");
            assert!(report.within_band, "epoch {i}");
            assert!(report.lower <= report.upper);
        }
    }

    #[test]
    fn core_decay_triggers_a_refresh_not_a_panic() {
        let mut engine = WindowEngine::new(WindowConfig {
            tolerance: 0.25,
            slack: 0.5,
            exact_escalation: true,
            ..WindowConfig::new(4)
        });
        // A dense block that fully expires while background edges rotate:
        // the maintained core dies with it and a refresh must re-certify.
        engine.apply(&k22_batch(0));
        for t in 1..12u64 {
            let mut batch = Batch::new();
            batch.insert_at(t, 50 + (t as u32 % 6), 70 + (t as u32 / 2 % 5));
            let report = engine.apply(&batch);
            assert!(report.within_band, "t={t}");
            assert!(report.lower <= report.upper * (1.0 + 1e-9), "t={t}");
        }
        assert!(engine.refreshes() >= 2, "the expiring block must refresh");
    }

    #[test]
    fn escalation_reports_exact_density() {
        let mut engine = WindowEngine::new(WindowConfig {
            tolerance: 0.0,
            slack: 0.0,
            exact_escalation: true,
            ..WindowConfig::new(1_000)
        });
        let report = engine.apply(&k22_batch(0));
        assert_eq!(report.mode, WindowMode::ExactResolve);
        assert_eq!(report.density, Density::new(4, 2, 2));
        assert!(report.solve_stats.is_some());
        assert_eq!(engine.exact_solves(), 1);
        assert!(engine.witness().is_some());
    }

    #[test]
    fn without_escalation_the_core_bracket_stands() {
        let mut engine = WindowEngine::new(WindowConfig {
            tolerance: 0.0,
            slack: 0.0,
            exact_escalation: false,
            ..WindowConfig::new(1_000)
        });
        let report = engine.apply(&k22_batch(0));
        assert_eq!(report.mode, WindowMode::CoreRefresh);
        assert!(report.solve_stats.is_none());
        assert_eq!(engine.exact_solves(), 0);
        // The 2-approx bracket holds even though the band is unreachable.
        assert!(report.lower > 0.0);
        assert!(report.certified_factor <= 2.0 * (1.0 + 1e-6));
    }

    #[test]
    fn empty_windows_report_zero() {
        let mut engine = WindowEngine::new(WindowConfig::new(5));
        let report = engine.apply(&Batch::new());
        assert_eq!(report.m, 0);
        assert!(report.density.is_zero());
        assert_eq!(report.upper, 0.0);
        assert!(report.within_band);
        assert_eq!(report.mode, WindowMode::Incremental);
    }

    #[test]
    fn sketch_mode_refreshes_without_core_sweeps() {
        use crate::engine::SketchTier;
        use dds_sketch::SketchConfig;
        let mut engine = WindowEngine::new(WindowConfig {
            sketch: Some(SketchTier {
                min_m: 0,
                config: SketchConfig {
                    state_bound: 16,
                    ..SketchConfig::default()
                },
            }),
            ..WindowConfig::new(6)
        });
        // A rotating stream: blocks arrive and fully expire.
        for t in 0..30u64 {
            let mut batch = Batch::new();
            batch.insert_at(t, (t % 5) as u32, 10 + (t % 7) as u32);
            let report = engine.apply(&batch);
            assert_ne!(report.mode, WindowMode::ExactResolve);
            assert_ne!(report.mode, WindowMode::CoreRefresh);
            assert!(report.within_band, "t={t}");
            assert!(report.lower <= report.upper * (1.0 + 1e-9), "t={t}");
            if report.mode == WindowMode::SketchRefresh {
                let stats = report.sketch.expect("sketch refresh reports stats");
                assert!(stats.retained <= 16);
            }
        }
        assert_eq!(engine.exact_solves(), 0, "sketch mode never solves full");
        assert_eq!(engine.sketch_refreshes(), engine.refreshes());
        assert!(engine.sketch_refreshes() >= 1);
        assert!(engine.core_thresholds().is_none(), "no core in sketch mode");
    }

    #[test]
    fn replay_window_batches_by_count_and_time() {
        let events: Vec<TimedEvent> = (0..30u64)
            .map(|t| TimedEvent {
                time: t,
                event: Event::Insert((t % 6) as u32, ((t + 1) % 6) as u32),
            })
            .collect();
        let mut by_count = WindowEngine::new(WindowConfig::new(10));
        let a = replay_window(&mut by_count, &events, BatchBy::Count(7));
        let mut by_time = WindowEngine::new(WindowConfig::new(10));
        let b = replay_window(&mut by_time, &events, BatchBy::TimeWindow(10));
        assert_eq!(a.len(), 5);
        assert_eq!(b.len(), 3);
        assert_eq!(a.last().unwrap().m, b.last().unwrap().m);
        assert_eq!(by_count.now(), 29);
    }
}
