//! Incremental snapshot deltas (`DDSD` v1).
//!
//! A full `DDSS` snapshot is `O(m)` — almost all of it the canonical
//! edge list. Checkpointing every epoch therefore rewrites megabytes to
//! say "three edges changed". The delta format fixes that asymmetry: a
//! checkpoint **chain** is one full base snapshot plus one small `DDSD`
//! frame per subsequent checkpoint, each frame carrying only the edge
//! *diff* since the previous checkpoint plus a complete copy of the
//! engine's (small) non-edge state — counters, levels, witness, cursor —
//! encoded as a `DDSS` payload with an empty edge list. Restoring a
//! chain replays the diffs over the base edge set and adopts the last
//! frame's meta wholesale, so `restore(base + deltas)` is **byte-
//! identical** to restoring a full snapshot taken at the same epoch
//! (the property `tests/tests/cluster_oracle.rs` pins with proptests).
//!
//! Every `compact_every` deltas the chain compacts: the base is
//! rewritten in full (atomic tmp + rename) and the stale frames are
//! deleted. A crash between those two steps can leave old frames beside
//! a fresh base; the epoch linkage makes them harmless — a frame whose
//! `parent_epoch` does not continue the chain but whose `epoch` is not
//! ahead of it is a recognized leftover and ends the walk, while a frame
//! claiming *future* epochs is corruption and fails the restore.
//!
//! # Frame format (version 1)
//!
//! ```text
//! magic        4 bytes  "DDSD"
//! version      u32      1
//! kind         u8       the SnapshotKind of the chain's engine
//! cursor       u64      source-stream byte offset at this checkpoint
//! parent_epoch u64      engine epoch of the previous link (base or delta)
//! epoch        u64      engine epoch of this checkpoint
//! removed      edges    canonical sorted list of edges deleted since parent
//! added        edges    canonical sorted list of edges inserted since parent
//! meta         u64 len + bytes   full DDSS snapshot with an empty edge list
//! ```

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use dds_graph::VertexId;

use crate::snapshot::{
    read_snapshot_file, write_snapshot_file, SnapshotError, SnapshotKind, SnapshotReader,
    SnapshotWriter,
};

/// The four magic bytes opening every delta frame.
pub const DELTA_MAGIC: [u8; 4] = *b"DDSD";

/// The current delta format version.
pub const DELTA_VERSION: u32 = 1;

/// One decoded checkpoint delta: the edge diff since the previous chain
/// link plus the complete non-edge engine state at this checkpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaFrame {
    /// Which engine kind the chain belongs to.
    pub kind: SnapshotKind,
    /// Source-stream byte offset to resume tailing from.
    pub cursor: u64,
    /// Engine epoch of the previous link — the chain's integrity key.
    pub parent_epoch: u64,
    /// Engine epoch at this checkpoint.
    pub epoch: u64,
    /// Edges live at the parent but gone now.
    pub removed: Vec<(VertexId, VertexId)>,
    /// Edges absent at the parent but live now.
    pub added: Vec<(VertexId, VertexId)>,
    /// A full `DDSS` snapshot of this checkpoint with an **empty** edge
    /// list — everything the engine restores besides the edge set.
    pub meta: Vec<u8>,
}

impl DeltaFrame {
    /// Encodes the frame (edge lists are sorted in place into canonical
    /// order, so identical diffs always produce identical bytes).
    #[must_use]
    pub fn encode(mut self) -> Vec<u8> {
        let mut w = SnapshotWriter::raw();
        let mut bytes = Vec::from(DELTA_MAGIC);
        w.put_u32(DELTA_VERSION);
        w.put_u8(self.kind as u8);
        w.put_u64(self.cursor);
        w.put_u64(self.parent_epoch);
        w.put_u64(self.epoch);
        w.put_edges(&mut self.removed);
        w.put_edges(&mut self.added);
        w.put_u64(self.meta.len() as u64);
        bytes.extend_from_slice(&w.finish());
        bytes.extend_from_slice(&self.meta);
        bytes
    }

    /// Decodes a frame, validating magic, version, and `kind`.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Format`] on malformed bytes or a kind
    /// mismatch.
    pub fn decode(bytes: &[u8], kind: SnapshotKind) -> Result<Self, SnapshotError> {
        if bytes.len() < 4 || bytes[..4] != DELTA_MAGIC {
            return Err(SnapshotError::Format(
                "bad magic (not a dds delta frame)".to_string(),
            ));
        }
        let mut r = SnapshotReader::raw(&bytes[4..]);
        let version = r.take_u32()?;
        if version != DELTA_VERSION {
            return Err(SnapshotError::Format(format!(
                "unsupported delta version {version} (this build reads {DELTA_VERSION})"
            )));
        }
        let raw_kind = r.take_u8()?;
        let found = SnapshotKind::from_u8(raw_kind)
            .ok_or_else(|| SnapshotError::Format(format!("unknown engine kind {raw_kind}")))?;
        if found != kind {
            return Err(SnapshotError::Format(format!(
                "delta frame was written by a {found:?} engine, expected {kind:?}"
            )));
        }
        let cursor = r.take_u64()?;
        let parent_epoch = r.take_u64()?;
        let epoch = r.take_u64()?;
        let removed = r.take_edges()?;
        let added = r.take_edges()?;
        let meta_len = r.take_u64()? as usize;
        let meta = r.take_bytes(meta_len)?;
        r.finish()?;
        Ok(DeltaFrame {
            kind,
            cursor,
            parent_epoch,
            epoch,
            removed,
            added,
            meta,
        })
    }
}

/// The on-disk layout of a checkpoint chain rooted at one base path `P`:
/// the full base snapshot at `P`, frames at `P.d000001`, `P.d000002`, …
/// (frame numbering restarts at 1 after every compaction).
#[derive(Clone, Debug)]
pub struct DeltaChain {
    base: PathBuf,
}

impl DeltaChain {
    /// A chain rooted at `base` (nothing is touched until a save).
    #[must_use]
    pub fn new(base: impl Into<PathBuf>) -> Self {
        DeltaChain { base: base.into() }
    }

    /// The base snapshot path.
    #[must_use]
    pub fn base_path(&self) -> &Path {
        &self.base
    }

    /// The path of the `index`-th delta frame (1-based).
    #[must_use]
    pub fn delta_path(&self, index: u32) -> PathBuf {
        let mut name = self.base.as_os_str().to_owned();
        name.push(format!(".d{index:06}"));
        PathBuf::from(name)
    }

    /// Whether a base snapshot exists on disk.
    #[must_use]
    pub fn base_exists(&self) -> bool {
        self.base.exists()
    }

    /// How many consecutive delta frames follow the base on disk.
    #[must_use]
    pub fn delta_count(&self) -> u32 {
        let mut i = 0u32;
        while self.delta_path(i + 1).exists() {
            i += 1;
        }
        i
    }

    /// Writes a full base snapshot atomically, then deletes every delta
    /// frame it supersedes. A crash between the two steps leaves stale
    /// frames that the epoch linkage recognizes and skips on load.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Io`] on write failure.
    pub fn save_full(&self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let stale = self.delta_count();
        write_snapshot_file(bytes, &self.base)?;
        for i in 1..=stale {
            std::fs::remove_file(self.delta_path(i)).ok();
        }
        Ok(())
    }

    /// Appends the `index`-th delta frame (1-based) atomically.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Io`] on write failure.
    pub fn append(&self, index: u32, frame: DeltaFrame) -> Result<(), SnapshotError> {
        write_snapshot_file(&frame.encode(), self.delta_path(index))
    }

    /// Loads the chain: the base snapshot bytes plus every consecutive
    /// delta frame, decoded and kind-checked. Epoch-linkage validation is
    /// the engine's job (`restore_chain` — it knows the base's epoch).
    ///
    /// # Errors
    /// Returns [`SnapshotError::Io`] if the base is unreadable, or
    /// [`SnapshotError::Format`] if a frame is malformed.
    pub fn load(&self, kind: SnapshotKind) -> Result<(Vec<u8>, Vec<DeltaFrame>), SnapshotError> {
        let base = read_snapshot_file(&self.base)?;
        let mut frames = Vec::new();
        for i in 1..=self.delta_count() {
            let bytes = read_snapshot_file(self.delta_path(i))?;
            frames.push(DeltaFrame::decode(&bytes, kind)?);
        }
        Ok((base, frames))
    }
}

/// What one [`DeltaTracker::save`] wrote.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaSave {
    /// A full base snapshot (first save, or a compaction).
    Full,
    /// One delta frame of this many removed/added edges.
    Delta(usize, usize),
}

/// The checkpoint-side driver of a [`DeltaChain`]: remembers the edge
/// set at the last checkpoint so each save can emit a diff, and rewrites
/// the base (compaction) every `compact_every` deltas. Engine-agnostic —
/// the engine supplies its full-snapshot and meta encoders as closures.
#[derive(Debug)]
pub struct DeltaTracker {
    chain: DeltaChain,
    kind: SnapshotKind,
    compact_every: u32,
    deltas: u32,
    last: Option<(u64, HashSet<(VertexId, VertexId)>)>,
}

impl DeltaTracker {
    /// A tracker over the chain at `base`. `compact_every` is the number
    /// of delta frames allowed between base rewrites; `0` disables deltas
    /// entirely (every save is a full snapshot).
    #[must_use]
    pub fn new(base: impl Into<PathBuf>, kind: SnapshotKind, compact_every: u32) -> Self {
        DeltaTracker {
            chain: DeltaChain::new(base),
            kind,
            compact_every,
            deltas: 0,
            last: None,
        }
    }

    /// The underlying chain (paths, load).
    #[must_use]
    pub fn chain(&self) -> &DeltaChain {
        &self.chain
    }

    /// Primes the tracker to continue an existing on-disk chain after a
    /// restore: the restored engine's epoch and edge set become the diff
    /// baseline and `deltas_on_disk` continues the frame numbering.
    pub fn prime(
        &mut self,
        epoch: u64,
        edges: impl IntoIterator<Item = (VertexId, VertexId)>,
        deltas_on_disk: u32,
    ) {
        self.last = Some((epoch, edges.into_iter().collect()));
        self.deltas = deltas_on_disk;
    }

    /// Checkpoints the engine state passed in: a full base snapshot when
    /// the chain is cold or due for compaction, otherwise one delta frame
    /// diffing `edges` against the previous save.
    ///
    /// `full` must encode the complete snapshot (edges included); `meta`
    /// must encode the same snapshot with an **empty** edge list. Both
    /// are only invoked when their branch is taken.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Io`] on write failure.
    pub fn save(
        &mut self,
        epoch: u64,
        cursor: u64,
        edges: impl IntoIterator<Item = (VertexId, VertexId)>,
        full: impl FnOnce() -> Vec<u8>,
        meta: impl FnOnce() -> Vec<u8>,
    ) -> Result<DeltaSave, SnapshotError> {
        let now: HashSet<(VertexId, VertexId)> = edges.into_iter().collect();
        let compact = self.last.is_none() || self.deltas >= self.compact_every;
        let save = if compact {
            self.chain.save_full(&full())?;
            self.deltas = 0;
            DeltaSave::Full
        } else {
            let (parent_epoch, last) = self.last.as_ref().expect("checked above");
            let removed: Vec<_> = last.difference(&now).copied().collect();
            let added: Vec<_> = now.difference(last).copied().collect();
            let frame = DeltaFrame {
                kind: self.kind,
                cursor,
                parent_epoch: *parent_epoch,
                epoch,
                removed,
                added,
                meta: meta(),
            };
            let (r, a) = (frame.removed.len(), frame.added.len());
            self.chain.append(self.deltas + 1, frame)?;
            self.deltas += 1;
            DeltaSave::Delta(r, a)
        };
        self.last = Some((epoch, now));
        Ok(save)
    }
}

/// The outcome of [`replay_chain_edges`]: the final canonical edge set,
/// how many frames were adopted (0 = base only), and the final
/// `(epoch, cursor)` position of the chain.
pub type ChainReplay = (Vec<(VertexId, VertexId)>, usize, (u64, u64));

/// Replays a chain's edge diffs over the base edge set, validating the
/// epoch linkage, and returns the final edge set, the last adopted
/// frame's index (0 = base only), and the final `(epoch, cursor)`.
/// Stale leftover frames from an interrupted compaction (parent epoch
/// broken, epoch not ahead of the chain) end the walk; a frame claiming
/// future epochs past a broken link is corruption.
///
/// # Errors
/// Returns [`SnapshotError::Format`] on a broken diff (removing an edge
/// the chain does not hold, adding one it already does) or linkage.
pub fn replay_chain_edges(
    base_epoch: u64,
    base_cursor: u64,
    base_edges: Vec<(VertexId, VertexId)>,
    frames: &[DeltaFrame],
) -> Result<ChainReplay, SnapshotError> {
    let mut edges: HashSet<(VertexId, VertexId)> = base_edges.into_iter().collect();
    let mut epoch = base_epoch;
    let mut cursor = base_cursor;
    let mut adopted = 0usize;
    for (i, frame) in frames.iter().enumerate() {
        if frame.parent_epoch != epoch {
            if frame.epoch <= epoch {
                break; // stale leftover from an interrupted compaction
            }
            return Err(SnapshotError::Format(format!(
                "delta frame {} expects parent epoch {} but the chain is at {}",
                i + 1,
                frame.parent_epoch,
                epoch
            )));
        }
        for &(u, v) in &frame.removed {
            if !edges.remove(&(u, v)) {
                return Err(SnapshotError::Format(format!(
                    "delta frame {} removes edge {u} -> {v} the chain does not hold",
                    i + 1
                )));
            }
        }
        for &(u, v) in &frame.added {
            if !edges.insert((u, v)) {
                return Err(SnapshotError::Format(format!(
                    "delta frame {} adds edge {u} -> {v} the chain already holds",
                    i + 1
                )));
            }
        }
        epoch = frame.epoch;
        cursor = frame.cursor;
        adopted = i + 1;
    }
    let mut out: Vec<_> = edges.into_iter().collect();
    out.sort_unstable();
    Ok((out, adopted, (epoch, cursor)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_base(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "dds_delta_{tag}_{}_{:?}.snap",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn cleanup(chain: &DeltaChain) {
        for i in 1..=chain.delta_count() {
            std::fs::remove_file(chain.delta_path(i)).ok();
        }
        std::fs::remove_file(chain.base_path()).ok();
    }

    #[test]
    fn frame_round_trips_canonically() {
        let frame = DeltaFrame {
            kind: SnapshotKind::Shard,
            cursor: 999,
            parent_epoch: 4,
            epoch: 5,
            removed: vec![(3, 4), (1, 2)],
            added: vec![(9, 8), (5, 6)],
            meta: vec![0xAB, 0xCD],
        };
        let bytes = frame.clone().encode();
        let decoded = DeltaFrame::decode(&bytes, SnapshotKind::Shard).unwrap();
        // Lists come back sorted — the canonical form.
        assert_eq!(decoded.removed, vec![(1, 2), (3, 4)]);
        assert_eq!(decoded.added, vec![(5, 6), (9, 8)]);
        assert_eq!(
            (decoded.cursor, decoded.parent_epoch, decoded.epoch),
            (999, 4, 5)
        );
        assert_eq!(decoded.meta, vec![0xAB, 0xCD]);
        // Kind mismatch is an error, not a silent cross-engine restore.
        assert!(DeltaFrame::decode(&bytes, SnapshotKind::Stream).is_err());
        // Same diff in any input order → same bytes.
        let mut shuffled = frame;
        shuffled.removed.reverse();
        shuffled.added.reverse();
        assert_eq!(shuffled.encode(), bytes);
    }

    #[test]
    fn tracker_alternates_full_and_deltas_with_compaction() {
        let base = temp_base("tracker");
        let mut tracker = DeltaTracker::new(&base, SnapshotKind::Shard, 2);
        let full = || vec![1u8, 2, 3];
        let meta = || vec![9u8];

        // Cold chain: full.
        let s = tracker.save(1, 10, [(0, 1), (2, 3)], full, meta).unwrap();
        assert_eq!(s, DeltaSave::Full);
        // Two deltas ride on the base…
        let s = tracker.save(2, 20, [(0, 1), (4, 5)], full, meta).unwrap();
        assert_eq!(s, DeltaSave::Delta(1, 1));
        let s = tracker.save(3, 30, [(0, 1)], full, meta).unwrap();
        assert_eq!(s, DeltaSave::Delta(1, 0));
        assert_eq!(tracker.chain().delta_count(), 2);
        // …then the third save compacts: base rewritten, frames gone.
        let s = tracker.save(4, 40, [(0, 1), (6, 7)], full, meta).unwrap();
        assert_eq!(s, DeltaSave::Full);
        assert_eq!(tracker.chain().delta_count(), 0);
        cleanup(tracker.chain());
    }

    #[test]
    fn chain_replay_validates_diffs_and_linkage() {
        let frames = vec![
            DeltaFrame {
                kind: SnapshotKind::Shard,
                cursor: 20,
                parent_epoch: 1,
                epoch: 2,
                removed: vec![(2, 3)],
                added: vec![(4, 5)],
                meta: vec![],
            },
            DeltaFrame {
                kind: SnapshotKind::Shard,
                cursor: 30,
                parent_epoch: 2,
                epoch: 3,
                removed: vec![],
                added: vec![(6, 7)],
                meta: vec![],
            },
        ];
        let (edges, adopted, (epoch, cursor)) =
            replay_chain_edges(1, 10, vec![(0, 1), (2, 3)], &frames).unwrap();
        assert_eq!(edges, vec![(0, 1), (4, 5), (6, 7)]);
        assert_eq!((adopted, epoch, cursor), (2, 3, 30));

        // A stale leftover (epoch behind the chain) ends the walk quietly.
        let mut stale = frames.clone();
        stale.push(DeltaFrame {
            kind: SnapshotKind::Shard,
            cursor: 5,
            parent_epoch: 0,
            epoch: 1,
            removed: vec![],
            added: vec![],
            meta: vec![],
        });
        let (_, adopted, _) = replay_chain_edges(1, 10, vec![(0, 1), (2, 3)], &stale).unwrap();
        assert_eq!(adopted, 2, "stale frame must not be adopted");

        // A future frame past a broken link is corruption.
        let mut gap = frames;
        gap[1].parent_epoch = 9;
        gap[1].epoch = 10;
        assert!(replay_chain_edges(1, 10, vec![(0, 1), (2, 3)], &gap).is_err());

        // Broken diffs are errors.
        let bad = vec![DeltaFrame {
            kind: SnapshotKind::Shard,
            cursor: 20,
            parent_epoch: 1,
            epoch: 2,
            removed: vec![(9, 9)],
            added: vec![],
            meta: vec![],
        }];
        assert!(replay_chain_edges(1, 10, vec![(0, 1)], &bad).is_err());
    }

    #[test]
    fn chain_load_round_trips_from_disk() {
        let base = temp_base("load");
        let chain = DeltaChain::new(&base);
        chain.save_full(b"base-bytes").unwrap();
        chain
            .append(
                1,
                DeltaFrame {
                    kind: SnapshotKind::ClusterWorker,
                    cursor: 7,
                    parent_epoch: 1,
                    epoch: 2,
                    removed: vec![],
                    added: vec![(1, 2)],
                    meta: vec![3, 4],
                },
            )
            .unwrap();
        let (b, frames) = chain.load(SnapshotKind::ClusterWorker).unwrap();
        assert_eq!(b, b"base-bytes");
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].added, vec![(1, 2)]);
        // save_full purges the frames it supersedes.
        chain.save_full(b"base2").unwrap();
        assert_eq!(chain.delta_count(), 0);
        cleanup(&chain);
    }
}
