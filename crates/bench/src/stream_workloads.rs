//! Seeded edge-stream workload generators for the `dds-stream` subsystem.
//!
//! Three scenarios cover the regimes that matter for incremental DDS
//! maintenance, mirroring how [`crate::workloads`] covers the static
//! solvers:
//!
//! * [`churn`] — a persistent planted dense block (the "fraud ring") under
//!   heavy background edge churn: the optimum barely moves, so a lazy
//!   engine should absorb almost every batch incrementally;
//! * [`sliding_window`] — every edge expires `window` ticks after it
//!   arrives (the classic streaming model): steady insert/delete pressure
//!   with no stable optimum;
//! * [`planted_emerge`] — a dense block materialises edge-by-edge in the
//!   middle of an otherwise quiet background stream: the optimum shifts
//!   mid-stream and the engine must chase it.
//!
//! All generators take an explicit seed and produce identical streams for
//! identical arguments, like every other workload in this crate.

use std::collections::{HashMap, HashSet};

use dds_graph::VertexId;
use dds_stream::{Event, TimedEvent};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A named, reproducible event stream.
pub struct StreamScenario {
    /// Scenario name, e.g. `churn-2k`.
    pub name: String,
    /// The timestamped events, one tick per event.
    pub events: Vec<TimedEvent>,
}

/// A pool of currently-present edges supporting O(1) random removal.
#[derive(Default)]
struct EdgePool {
    list: Vec<(VertexId, VertexId)>,
    index: HashMap<(VertexId, VertexId), usize>,
}

impl EdgePool {
    fn contains(&self, e: (VertexId, VertexId)) -> bool {
        self.index.contains_key(&e)
    }

    fn len(&self) -> usize {
        self.list.len()
    }

    fn insert(&mut self, e: (VertexId, VertexId)) -> bool {
        if e.0 == e.1 || self.contains(e) {
            return false;
        }
        self.index.insert(e, self.list.len());
        self.list.push(e);
        true
    }

    fn remove_random(&mut self, rng: &mut SmallRng) -> Option<(VertexId, VertexId)> {
        if self.list.is_empty() {
            return None;
        }
        let i = rng.gen_range(0..self.list.len());
        let e = self.list.swap_remove(i);
        self.index.remove(&e);
        if let Some(moved) = self.list.get(i) {
            self.index.insert(*moved, i);
        }
        Some(e)
    }
}

/// Rejection sampling needs head-room: cap the background at half the
/// vertex pairs outside the `s × t` block (same discipline as
/// `gen::gnm`, which switches strategy past 50% fill).
fn assert_background_fits(n: usize, s: usize, t: usize, background_m: usize) {
    let capacity = n.saturating_mul(n.saturating_sub(1)).saturating_sub(s * t);
    assert!(
        background_m.saturating_mul(2) <= capacity,
        "background_m = {background_m} exceeds half the {capacity} non-block vertex pairs; \
         raise n or shrink the background"
    );
}

fn random_background_edge(
    n: usize,
    block_s: usize,
    block_t: usize,
    rng: &mut SmallRng,
) -> (VertexId, VertexId) {
    // Rejection-samples an edge that is NOT inside the planted S×T block
    // (vertices 0..block_s and block_s..block_s+block_t), so background
    // churn never edits the planted optimum.
    loop {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u == v {
            continue;
        }
        let in_block =
            (u as usize) < block_s && (v as usize) >= block_s && (v as usize) < block_s + block_t;
        if !in_block {
            return (u, v);
        }
    }
}

/// Churn scenario: plant a complete `s × t` block on vertices
/// `0..s` → `s..s+t`, warm up a `G(n, background_m)`-style background,
/// then emit `events` further ticks of balanced background insert/delete
/// churn. The planted block is never touched, so the densest subgraph is
/// stable while everything around it moves — the best case for lazy
/// re-solving, and the acceptance workload for `dds stream`.
///
/// # Panics
/// Panics if the block does not fit in `n` vertices, or if `background_m`
/// exceeds half the vertex pairs outside the block (rejection sampling
/// would stall, as in [`dds_graph::gen::gnm`]'s bound).
#[must_use]
pub fn churn(
    n: usize,
    background_m: usize,
    block: (usize, usize),
    events: usize,
    seed: u64,
) -> Vec<TimedEvent> {
    let (s, t) = block;
    assert!(s >= 1 && t >= 1 && s + t <= n, "planted block must fit");
    assert_background_fits(n, s, t, background_m);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC4u64.rotate_left(17));
    let mut out = Vec::with_capacity(events + background_m + s * t);
    let mut time = 0u64;
    let emit = |out: &mut Vec<TimedEvent>, time: &mut u64, event: Event| {
        out.push(TimedEvent { time: *time, event });
        *time += 1;
    };

    // Warm-up: the dense block first, then the background.
    for u in 0..s {
        for v in 0..t {
            emit(
                &mut out,
                &mut time,
                Event::Insert(u as VertexId, (s + v) as VertexId),
            );
        }
    }
    let mut pool = EdgePool::default();
    while pool.len() < background_m {
        let e = random_background_edge(n, s, t, &mut rng);
        if pool.insert(e) {
            emit(&mut out, &mut time, Event::Insert(e.0, e.1));
        }
    }

    // Churn: balanced random background inserts/deletes.
    for _ in 0..events {
        let do_insert = pool.len() < background_m / 2 || rng.gen_bool(0.5);
        if do_insert {
            let e = random_background_edge(n, s, t, &mut rng);
            if pool.insert(e) {
                emit(&mut out, &mut time, Event::Insert(e.0, e.1));
            }
        } else if let Some(e) = pool.remove_random(&mut rng) {
            emit(&mut out, &mut time, Event::Delete(e.0, e.1));
        }
    }
    out
}

/// Sliding-window scenario: random edges arrive continuously and each one
/// is deleted exactly `window` insertions later, so roughly `window` edges
/// are live at any moment and the stream is a steady 1:1 insert/delete
/// mix with no persistent structure.
///
/// # Panics
/// Panics if `window` exceeds half the vertex pairs (sampling a fresh
/// live edge would stall).
#[must_use]
pub fn sliding_window(n: usize, window: usize, events: usize, seed: u64) -> Vec<TimedEvent> {
    assert!(n >= 2, "need at least 2 vertices");
    assert!(window >= 1, "window must be positive");
    assert!(
        window.saturating_mul(2) <= n.saturating_mul(n - 1),
        "window = {window} exceeds half the {} vertex pairs; raise n or shrink the window",
        n * (n - 1)
    );
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x51u64.rotate_left(29));
    let mut live: HashSet<(VertexId, VertexId)> = HashSet::new();
    let mut arrivals: std::collections::VecDeque<(VertexId, VertexId)> =
        std::collections::VecDeque::new();
    let mut out = Vec::with_capacity(events);
    let mut time = 0u64;
    while out.len() < events {
        if arrivals.len() >= window {
            let e = arrivals.pop_front().expect("non-empty window");
            live.remove(&e);
            out.push(TimedEvent {
                time,
                event: Event::Delete(e.0, e.1),
            });
            time += 1;
            continue;
        }
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u == v || !live.insert((u, v)) {
            continue;
        }
        arrivals.push_back((u, v));
        out.push(TimedEvent {
            time,
            event: Event::Insert(u, v),
        });
        time += 1;
    }
    out
}

/// Planted-emerge scenario: a quiet churning background for the first
/// third of the stream, then a complete `s × t` block drips in edge by
/// edge (shuffled order) across the middle third, then background churn
/// again. The densest subgraph changes identity mid-stream; the epoch
/// trajectory should show the density ramp.
///
/// # Panics
/// Panics if the block does not fit in `n` vertices, if the background
/// exceeds half the non-block vertex pairs, or if the middle third is too
/// short to deliver every block edge (`events < 3·s·t`) — silently
/// dropping part of the block would falsify the scenario's contract.
#[must_use]
pub fn planted_emerge(
    n: usize,
    background_m: usize,
    block: (usize, usize),
    events: usize,
    seed: u64,
) -> Vec<TimedEvent> {
    let (s, t) = block;
    assert!(s >= 1 && t >= 1 && s + t <= n, "planted block must fit");
    assert_background_fits(n, s, t, background_m);
    assert!(
        events / 3 >= s * t,
        "events = {events} gives a middle third of {} ticks, too short for the {} block edges; \
         raise events or shrink the block",
        events / 3,
        s * t
    );
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xE3u64.rotate_left(41));
    let mut out = Vec::with_capacity(events + background_m);
    let mut time = 0u64;

    // Quiet background warm-up.
    let mut pool = EdgePool::default();
    while pool.len() < background_m {
        let e = random_background_edge(n, s, t, &mut rng);
        if pool.insert(e) {
            out.push(TimedEvent {
                time,
                event: Event::Insert(e.0, e.1),
            });
            time += 1;
        }
    }

    // Shuffled block edges, dripped across the middle third.
    let mut block_edges: Vec<(VertexId, VertexId)> = (0..s)
        .flat_map(|u| (0..t).map(move |v| (u as VertexId, (s + v) as VertexId)))
        .collect();
    for i in (1..block_edges.len()).rev() {
        let j = rng.gen_range(0..=i);
        block_edges.swap(i, j);
    }
    let mut block_iter = block_edges.into_iter();

    for step in 0..events {
        let in_middle_third = step >= events / 3 && step < 2 * events / 3;
        if in_middle_third {
            if let Some(e) = block_iter.next() {
                out.push(TimedEvent {
                    time,
                    event: Event::Insert(e.0, e.1),
                });
                time += 1;
                continue;
            }
        }
        // Background churn tick.
        if pool.len() < background_m / 2 || rng.gen_bool(0.5) {
            let e = random_background_edge(n, s, t, &mut rng);
            if pool.insert(e) {
                out.push(TimedEvent {
                    time,
                    event: Event::Insert(e.0, e.1),
                });
                time += 1;
            }
        } else if let Some(e) = pool.remove_random(&mut rng) {
            out.push(TimedEvent {
                time,
                event: Event::Delete(e.0, e.1),
            });
            time += 1;
        }
    }
    out
}

/// Pure arrival stream for window-native engines: one uniformly random
/// edge per tick, no explicit deletions — expiry is the *engine's* job
/// (`dds-stream`'s `WindowEngine` owns the expiry ring), which is the
/// natural event-file shape for `dds stream --window W`. Occasional
/// re-arrivals of a live edge are intentional: they exercise the
/// last-occurrence renewal semantics.
#[must_use]
pub fn arrivals(n: usize, events: usize, seed: u64) -> Vec<TimedEvent> {
    assert!(n >= 2, "need at least 2 vertices");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xA11u64.rotate_left(23));
    let mut out = Vec::with_capacity(events);
    for time in 0..events as u64 {
        let (u, v) = loop {
            let u = rng.gen_range(0..n) as VertexId;
            let v = rng.gen_range(0..n) as VertexId;
            if u != v {
                break (u, v);
            }
        };
        out.push(TimedEvent {
            time,
            event: Event::Insert(u, v),
        });
    }
    out
}

/// Arrival stream with a *recurring* dense block: every `period` ticks the
/// complete `s × t` block (vertices `0..s` → `s..s+t`) re-arrives edge by
/// edge, the remaining ticks are uniform background arrivals outside the
/// block. With an engine window longer than `period`, the re-arrivals
/// renew the block's expiry so the densest subgraph *persists* even though
/// every individual background edge slides out — the workload a
/// window-native engine should absorb with core repairs instead of exact
/// re-solves.
///
/// # Panics
/// Panics if the block does not fit in `n` vertices or `period < s·t`
/// (the block could not be delivered inside one period).
#[must_use]
pub fn recurring_block(
    n: usize,
    block: (usize, usize),
    period: usize,
    events: usize,
    seed: u64,
) -> Vec<TimedEvent> {
    let (s, t) = block;
    assert!(s >= 1 && t >= 1 && s + t <= n, "planted block must fit");
    assert!(
        period >= s * t,
        "period = {period} shorter than the {} block edges",
        s * t
    );
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xB10Cu64.rotate_left(31));
    let mut out = Vec::with_capacity(events);
    for time in 0..events as u64 {
        let phase = time as usize % period;
        let event = if phase < s * t {
            Event::Insert((phase / t) as VertexId, (s + phase % t) as VertexId)
        } else {
            let (u, v) = random_background_edge(n, s, t, &mut rng);
            Event::Insert(u, v)
        };
        out.push(TimedEvent { time, event });
    }
    out
}

/// The stream scenarios the harness exercises, sized down in quick mode.
#[must_use]
pub fn stream_registry(quick: bool) -> Vec<StreamScenario> {
    let (n, m, block, events) = if quick {
        (80, 200, (10, 10), 600)
    } else {
        (500, 2_500, (32, 32), 100_000)
    };
    vec![
        StreamScenario {
            name: format!("churn-{n}"),
            events: churn(n, m, block, events, 0xDD5),
        },
        StreamScenario {
            name: format!("window-{n}"),
            events: sliding_window(n, m, events, 0xDD5),
        },
        StreamScenario {
            name: format!("emerge-{n}"),
            events: planted_emerge(n, m / 2, block, events, 0xDD5),
        },
    ]
}

/// A window scenario: a named arrival stream plus the engine window that
/// makes it interesting.
pub struct WindowScenario {
    /// Scenario name, e.g. `warrivals-500`.
    pub name: String,
    /// The timestamped arrivals, one tick per event.
    pub events: Vec<TimedEvent>,
    /// Window length (ticks) the harness replays with.
    pub window: u64,
}

/// The sliding-window scenarios experiment E14 and the CI window smoke
/// replay, sized down in quick mode: a structureless uniform arrival
/// stream (the optimum is weak and rotates with the window) and a
/// recurring dense block (the optimum persists through renewals while the
/// background slides).
#[must_use]
pub fn window_registry(quick: bool) -> Vec<WindowScenario> {
    let (n, events, window, block, period) = if quick {
        (80, 1_500, 400u64, (8, 8), 300)
    } else {
        (500, 60_000, 5_000u64, (16, 16), 2_000)
    };
    vec![
        WindowScenario {
            name: format!("warrivals-{n}"),
            events: arrivals(n, events, 0xDD5),
            window,
        },
        WindowScenario {
            name: format!("wrecurring-{n}"),
            events: recurring_block(n, block, period, events, 0xDD5),
            window,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold(events: &[TimedEvent]) -> HashSet<(VertexId, VertexId)> {
        let mut live = HashSet::new();
        for ev in events {
            match ev.event {
                Event::Insert(u, v) => {
                    assert_ne!(u, v, "no self-loops");
                    assert!(live.insert((u, v)), "double insert of {u}->{v}");
                }
                Event::Delete(u, v) => {
                    assert!(live.remove(&(u, v)), "delete of absent {u}->{v}");
                }
            }
        }
        live
    }

    #[test]
    fn churn_is_deterministic_and_consistent() {
        let a = churn(100, 300, (8, 9), 1_000, 7);
        let b = churn(100, 300, (8, 9), 1_000, 7);
        assert_eq!(a, b);
        let live = fold(&a);
        // The block survives untouched.
        for u in 0..8u32 {
            for v in 8..17u32 {
                assert!(live.contains(&(u, v)), "block edge {u}->{v} missing");
            }
        }
        // Timestamps strictly increase.
        assert!(a.windows(2).all(|w| w[0].time < w[1].time));
    }

    #[test]
    fn sliding_window_bounds_live_edges() {
        let events = sliding_window(50, 120, 2_000, 3);
        let mut live = 0usize;
        let mut max_live = 0usize;
        for ev in &events {
            match ev.event {
                Event::Insert(..) => live += 1,
                Event::Delete(..) => live -= 1,
            }
            max_live = max_live.max(live);
        }
        assert!(max_live <= 120, "window overflow: {max_live}");
        fold(&events); // consistency: no double inserts / phantom deletes
        assert_eq!(events, sliding_window(50, 120, 2_000, 3));
    }

    #[test]
    fn emerge_delivers_the_full_block() {
        let events = planted_emerge(80, 150, (6, 7), 1_500, 11);
        let live = fold(&events);
        for u in 0..6u32 {
            for v in 6..13u32 {
                assert!(live.contains(&(u, v)), "block edge {u}->{v} missing");
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-block vertex pairs")]
    fn churn_rejects_infeasible_background() {
        let _ = churn(70, 100_000, (32, 32), 10, 0);
    }

    #[test]
    #[should_panic(expected = "vertex pairs")]
    fn window_rejects_infeasible_window() {
        let _ = sliding_window(10, 2_500, 10, 0);
    }

    #[test]
    #[should_panic(expected = "too short for the")]
    fn emerge_rejects_short_middle_third() {
        let _ = planted_emerge(500, 100, (32, 32), 1_000, 0);
    }

    #[test]
    fn registry_quick_sizes() {
        let scenarios = stream_registry(true);
        assert_eq!(scenarios.len(), 3);
        for s in &scenarios {
            assert!(!s.events.is_empty(), "{} empty", s.name);
        }
    }

    #[test]
    fn arrivals_are_deterministic_inserts_with_unit_ticks() {
        let a = arrivals(40, 500, 9);
        assert_eq!(a, arrivals(40, 500, 9));
        assert_eq!(a.len(), 500);
        for (i, ev) in a.iter().enumerate() {
            assert_eq!(ev.time, i as u64, "one tick per event");
            match ev.event {
                Event::Insert(u, v) => assert_ne!(u, v),
                Event::Delete(..) => panic!("arrival streams carry no deletes"),
            }
        }
    }

    #[test]
    fn recurring_block_redelivers_every_period() {
        let (s, t, period) = (3usize, 4usize, 50usize);
        let events = recurring_block(30, (s, t), period, 160, 2);
        assert_eq!(events.len(), 160);
        // Each full period starts with the complete block, in order.
        for start in [0usize, 50, 100] {
            for k in 0..s * t {
                let Event::Insert(u, v) = events[start + k].event else {
                    panic!("block tick must be an insert");
                };
                assert_eq!((u as usize, v as usize), (k / t, s + k % t));
            }
        }
        // Background ticks never touch the block.
        for ev in &events {
            let Event::Insert(u, v) = ev.event else {
                continue;
            };
            if ev.time as usize % period >= s * t {
                let in_block = (u as usize) < s && (v as usize) >= s && (v as usize) < s + t;
                assert!(!in_block, "background tick {} hit the block", ev.time);
            }
        }
    }

    #[test]
    #[should_panic(expected = "shorter than the")]
    fn recurring_block_rejects_short_periods() {
        let _ = recurring_block(30, (5, 5), 10, 100, 0);
    }

    #[test]
    fn window_registry_quick_sizes() {
        let scenarios = window_registry(true);
        assert_eq!(scenarios.len(), 2);
        for s in &scenarios {
            assert!(!s.events.is_empty(), "{} empty", s.name);
            assert!(s.window > 0);
        }
    }
}
