//! The dataset registry: seeded synthetic analogs of the paper's corpus.
//!
//! The SIGMOD 2020 evaluation uses ~a dozen real directed graphs spanning
//! 10³–10⁹ edges. Those corpora are not redistributable here, so each tier
//! below pairs a size class with the three structural families that drive
//! the algorithms' behaviour (`DESIGN.md §5`): uniform (`UN-*`, flat
//! degrees — pruning's worst case), power-law (`PL-*`, heavy tails — the
//! regime of real web/social graphs), and planted (`PD-*`, a known dense
//! block — recovery ground truth). All generators are seeded; every run of
//! the harness sees identical graphs.

use dds_graph::{gen, DiGraph};

/// Size class of a workload tier (roughly ×10 edges per step).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scale {
    /// ~2k edges: every algorithm, including the Θ(n²) baselines.
    Xs,
    /// ~20k edges: exact solver + all approximations.
    S,
    /// ~200k edges: approximations (exact optional).
    M,
    /// ~1M edges: scalable approximations only.
    L,
}

impl Scale {
    /// `(n, m)` for this tier, optionally shrunk for smoke tests.
    #[must_use]
    pub fn dims(self, quick: bool) -> (usize, usize) {
        match (self, quick) {
            (Scale::Xs, false) => (300, 2_000),
            (Scale::S, false) => (3_000, 20_000),
            (Scale::M, false) => (30_000, 200_000),
            (Scale::L, false) => (150_000, 1_000_000),
            (Scale::Xs, true) => (60, 320),
            (Scale::S, true) => (300, 1_600),
            (Scale::M, true) => (1_000, 6_000),
            (Scale::L, true) => (4_000, 24_000),
        }
    }

    /// Tier label used in dataset names.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scale::Xs => "xs",
            Scale::S => "s",
            Scale::M => "m",
            Scale::L => "l",
        }
    }
}

/// A named, reproducible benchmark graph.
pub struct Workload {
    /// Registry name, e.g. `PL-s`.
    pub name: String,
    /// Size tier.
    pub scale: Scale,
    /// The graph itself.
    pub graph: DiGraph,
}

const SEED: u64 = 0xDD5;

fn uniform(scale: Scale, quick: bool) -> Workload {
    let (n, m) = scale.dims(quick);
    Workload {
        name: format!("UN-{}", scale.label()),
        scale,
        graph: gen::gnm(n, m, SEED),
    }
}

fn power_law(scale: Scale, quick: bool) -> Workload {
    let (n, m) = scale.dims(quick);
    Workload {
        name: format!("PL-{}", scale.label()),
        scale,
        graph: gen::power_law(n, m, 2.2, SEED),
    }
}

fn planted(scale: Scale, quick: bool) -> Workload {
    let (n, m) = scale.dims(quick);
    // Block grows slowly with the tier so its density always dominates the
    // background (background densest ≈ O(m/n); block ≈ 0.9·sqrt(s·t)).
    let side = 6 + (m as f64).log10() as usize * 2;
    Workload {
        name: format!("PD-{}", scale.label()),
        scale,
        graph: gen::planted(n, m, side, side + 2, 0.9, SEED).graph,
    }
}

/// All workloads with `scale ≤ max_scale`, three families per tier.
#[must_use]
pub fn registry(max_scale: Scale, quick: bool) -> Vec<Workload> {
    let mut out = Vec::new();
    for scale in [Scale::Xs, Scale::S, Scale::M, Scale::L] {
        if scale > max_scale {
            break;
        }
        out.push(uniform(scale, quick));
        out.push(power_law(scale, quick));
        out.push(planted(scale, quick));
    }
    out
}

/// The canonical planted-block instance at vertex count `n` (edge budget
/// `5n`, block side growing with the edge count — the same recipe as the
/// `PD-*` registry tiers). Shared by experiment E13 and the CI exact smoke
/// test, so the decision-count budget asserted in CI is measured on
/// exactly the experiment's workload.
#[must_use]
pub fn planted_block(n: usize) -> gen::Planted {
    let m = n * 5;
    let side = 6 + (m as f64).log10() as usize * 2;
    gen::planted(n, m, side, side + 2, 0.9, SEED)
}

/// The vertex-count ladder used by the exact-efficiency experiment (E2):
/// power-law graphs of growing size; the quadratic baseline is only run on
/// the first few rungs (mirroring the paper, where the flow baseline
/// times out beyond small datasets).
#[must_use]
pub fn exact_ladder(quick: bool) -> Vec<(usize, DiGraph)> {
    let sizes: &[usize] = if quick {
        &[40, 60]
    } else {
        &[80, 120, 160, 240, 500, 1_000, 2_000]
    };
    sizes
        .iter()
        .map(|&n| (n, gen::power_law(n, n * 6, 2.2, SEED ^ n as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_deterministic_and_tiered() {
        let a = registry(Scale::S, true);
        let b = registry(Scale::S, true);
        assert_eq!(a.len(), 6);
        for (wa, wb) in a.iter().zip(&b) {
            assert_eq!(wa.name, wb.name);
            assert_eq!(wa.graph, wb.graph);
        }
        assert!(a.iter().all(|w| w.graph.m() > 0));
    }

    #[test]
    fn names_encode_family_and_tier() {
        let names: Vec<String> = registry(Scale::Xs, true)
            .into_iter()
            .map(|w| w.name)
            .collect();
        assert_eq!(names, vec!["UN-xs", "PL-xs", "PD-xs"]);
    }

    #[test]
    fn ladder_grows() {
        let ladder = exact_ladder(true);
        assert!(ladder.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(ladder.iter().all(|(n, g)| g.n() == *n));
    }
}
