//! Table/CSV reporting and timing helpers for the experiment harness.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Runs `f` once and returns its result with the wall-clock time.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed())
}

/// Human-readable duration (`µs`/`ms`/`s` with sensible precision).
#[must_use]
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// An aligned text table that doubles as a CSV writer.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column names.
    #[must_use]
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the aligned table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n## {}", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Writes the table as CSV under `bench_results/<file>.csv` (best
    /// effort; IO failures only warn because results were already printed).
    pub fn write_csv(&self, file: &str) {
        let dir = PathBuf::from("bench_results");
        if fs::create_dir_all(&dir).is_err() {
            eprintln!("warn: cannot create bench_results/");
            return;
        }
        let mut csv = String::new();
        let _ = writeln!(csv, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(csv, "{}", row.join(","));
        }
        let path = dir.join(format!("{file}.csv"));
        if fs::write(&path, csv).is_err() {
            eprintln!("warn: cannot write {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_format_by_magnitude() {
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(12)).ends_with('s'));
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "23".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().filter(|l| !l.is_empty()).collect();
        assert_eq!(lines.len(), 5, "{s}");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn timing_returns_value() {
        let (v, d) = time(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}
