//! The experiment suite (E1–E20): one function per table/figure of the
//! reconstructed evaluation (`DESIGN.md §4`; E12–E16 cover the streaming
//! subsystems, E17 the persistent worker pool, E18 the query-serving
//! tier, E19 the admin plane, E20 the cross-process cluster tier). Each
//! prints an aligned
//! table to stdout, writes the same
//! data to `bench_results/<id>.csv`, and states the *expected shape* so
//! `EXPERIMENTS.md` can record measured-vs-expected.

use dds_core::{
    core_approx, parallel, DcExact, ExactOptions, ExhaustivePeel, FlowExact, GridPeel, SolveContext,
};
use dds_graph::GraphStats;
use dds_xycore::{max_product_core, skyline};

use crate::report::{fmt_duration, time, Table};
use crate::workloads::{exact_ladder, planted_block, registry, Scale};

/// Runs one experiment by id (`e1`…`e20`); `quick` shrinks workloads for
/// smoke tests.
///
/// # Panics
/// Panics on an unknown id.
pub fn run(id: &str, quick: bool) {
    match id {
        "e1" => e1_datasets(quick),
        "e2" => e2_exact_efficiency(quick),
        "e3" => e3_network_sizes(quick),
        "e4" => e4_ablation(quick),
        "e5" => e5_approx_efficiency(quick),
        "e6" => e6_quality(quick),
        "e7" => e7_scalability(quick),
        "e8" => e8_epsilon(quick),
        "e9" => e9_case_study(quick),
        "e10" => e10_cores(quick),
        "e11" => e11_parallel(quick),
        "e12" => e12_streaming(quick),
        "e13" => e13_solve_context(quick),
        "e14" => e14_window(quick),
        "e15" => e15_sketch_tier(quick),
        "e16" => e16_shard_scaling(quick),
        "e17" => e17_pool_parallel(quick),
        "e18" => e18_serve(quick),
        "e19" => e19_admin(quick),
        "e20" => e20_cluster(quick),
        other => panic!("unknown experiment {other:?} (expected e1..e20)"),
    }
}

/// All experiment ids in order.
pub const ALL: [&str; 20] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20",
];

/// E1 — dataset statistics table (the paper's "Table: datasets").
pub fn e1_datasets(quick: bool) {
    println!(
        "\n=== E1: dataset statistics (expected: heavy tails on PL-*, planted density on PD-*)"
    );
    let mut t = Table::new(
        "datasets",
        &[
            "name",
            "n",
            "m",
            "d+max",
            "d-max",
            "maxcore[x,y]",
            "x*y",
            "core_rho",
            "core_ms",
        ],
    );
    for w in registry(Scale::L, quick) {
        let s = GraphStats::compute(&w.graph);
        let (core, dur) = time(|| max_product_core(&w.graph));
        let (label, product, rho) = match core {
            Some(c) => {
                let d = c.mask.density(&w.graph);
                (
                    format!("[{},{}]", c.x, c.y),
                    c.product().to_string(),
                    format!("{:.3}", d.to_f64()),
                )
            }
            None => ("-".into(), "0".into(), "0".into()),
        };
        t.row(vec![
            w.name.clone(),
            s.n.to_string(),
            s.m.to_string(),
            s.max_out_degree.to_string(),
            s.max_in_degree.to_string(),
            label,
            product,
            rho,
            format!("{:.1}", dur.as_secs_f64() * 1e3),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("e1_datasets");
}

/// E2 — exact-algorithm efficiency (the paper's headline figure: the
/// divide-and-conquer exact solver vs the Θ(n²)-ratio flow baseline).
pub fn e2_exact_efficiency(quick: bool) {
    println!("\n=== E2: exact efficiency (expected: DcExact orders of magnitude faster; gap grows with n)");
    let baseline_cap = if quick { 60 } else { 120 };
    let mut t = Table::new(
        "exact runtimes on the power-law ladder",
        &[
            "n",
            "m",
            "dc_ms",
            "dc_ratios",
            "base_ms",
            "base_ratios",
            "speedup",
        ],
    );
    for (n, g) in exact_ladder(quick) {
        let (dc, dc_t) = time(|| DcExact::new().solve(&g));
        let (base_cell, base_ratio_cell, speed_cell) = if n <= baseline_cap {
            let (base, base_t) = time(|| FlowExact.solve(&g));
            assert_eq!(
                dc.solution.density, base.solution.density,
                "solvers disagree at n={n}"
            );
            (
                format!("{:.1}", base_t.as_secs_f64() * 1e3),
                base.ratios_solved.to_string(),
                format!(
                    "{:.0}x",
                    base_t.as_secs_f64() / dc_t.as_secs_f64().max(1e-9)
                ),
            )
        } else {
            ("skipped".into(), "-".into(), "-".into())
        };
        t.row(vec![
            n.to_string(),
            g.m().to_string(),
            format!("{:.1}", dc_t.as_secs_f64() * 1e3),
            dc.ratios_solved.to_string(),
            base_cell,
            base_ratio_cell,
            speed_cell,
        ]);
    }
    println!("{}", t.render());
    println!("(baseline skipped beyond n = {baseline_cap}: its Θ(n²) ratio count makes runs impractical, as in the paper)");
    t.write_csv("e2_exact");
}

/// E3 — flow-network size across decisions (the paper's "network shrinks
/// as the search converges" figure), with and without core pruning.
pub fn e3_network_sizes(quick: bool) {
    println!("\n=== E3: flow-network sizes (expected: core pruning shrinks networks by orders of magnitude)");
    let w = registry(Scale::S, quick)
        .into_iter()
        .find(|w| w.name.starts_with("PD"))
        .unwrap();
    let g = &w.graph;
    let mut t = Table::new(
        format!("network nodes per decision on {} (n={})", w.name, g.n()),
        &["variant", "decisions", "max_nodes", "mean_nodes", "first_8"],
    );
    for (label, core) in [("with core pruning", true), ("without", false)] {
        let opts = ExactOptions {
            core_pruning: core,
            ..ExactOptions::default()
        };
        let r = DcExact::with_options(opts).solve(g);
        let nodes = &r.network_nodes;
        let mean = if nodes.is_empty() {
            0.0
        } else {
            nodes.iter().sum::<usize>() as f64 / nodes.len() as f64
        };
        t.row(vec![
            label.into(),
            nodes.len().to_string(),
            nodes.iter().max().copied().unwrap_or(0).to_string(),
            format!("{mean:.1}"),
            format!("{:?}", &nodes[..nodes.len().min(8)]),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("e3_netsize");
}

/// E4 — pruning-device ablation (the paper's "effect of each technique").
pub fn e4_ablation(quick: bool) {
    println!("\n=== E4: ablation (expected: γ-pruning largest, then core pruning; -dc collapses to the baseline)");
    let variants: [(&str, ExactOptions); 6] = [
        ("full", ExactOptions::default()),
        (
            "-tie",
            ExactOptions {
                tie_pruning: false,
                ..Default::default()
            },
        ),
        (
            "-gamma",
            ExactOptions {
                gamma_pruning: false,
                ..Default::default()
            },
        ),
        (
            "-core",
            ExactOptions {
                core_pruning: false,
                ..Default::default()
            },
        ),
        (
            "-warm",
            ExactOptions {
                warm_start: false,
                ..Default::default()
            },
        ),
        (
            "-dc",
            ExactOptions {
                divide_and_conquer: false,
                ..Default::default()
            },
        ),
    ];
    let mut t = Table::new(
        "DcExact variants",
        &["dataset", "variant", "ms", "ratios", "flows", "max_nodes"],
    );
    // The -dc and -gamma variants lose the device that keeps the ratio
    // count tractable, so beyond this size they are skipped on the tier
    // datasets (like the paper's timed-out baseline bars) and measured on
    // the ladder rung below instead; E2 quantifies the same gap directly.
    let slow_variant_cap = 150;
    for w in registry(Scale::Xs, quick) {
        let mut reference = None;
        for (label, opts) in variants {
            if matches!(label, "-dc" | "-gamma") && w.graph.n() > slow_variant_cap {
                t.row(vec![
                    w.name.clone(),
                    label.into(),
                    "skipped".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
            let (r, dur) = time(|| DcExact::with_options(opts).solve(&w.graph));
            match &reference {
                None => reference = Some(r.solution.density),
                Some(d) => assert_eq!(*d, r.solution.density, "{label} changed the optimum"),
            }
            t.row(vec![
                w.name.clone(),
                label.into(),
                format!("{:.1}", dur.as_secs_f64() * 1e3),
                r.ratios_solved.to_string(),
                r.flow_decisions.to_string(),
                r.network_nodes
                    .iter()
                    .max()
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
            ]);
        }
    }
    // One rung where every variant (including -dc) is measurable.
    let (n120, ladder_g) = exact_ladder(quick)
        .into_iter()
        .next()
        .expect("ladder non-empty");
    let mut reference = None;
    for (label, opts) in variants {
        let (r, dur) = time(|| DcExact::with_options(opts).solve(&ladder_g));
        match &reference {
            None => reference = Some(r.solution.density),
            Some(d) => assert_eq!(*d, r.solution.density, "{label} changed the optimum"),
        }
        t.row(vec![
            format!("PL-ladder-{n120}"),
            label.into(),
            format!("{:.1}", dur.as_secs_f64() * 1e3),
            r.ratios_solved.to_string(),
            r.flow_decisions.to_string(),
            r.network_nodes
                .iter()
                .max()
                .copied()
                .unwrap_or(0)
                .to_string(),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("e4_ablation");
}

/// E5 — approximation efficiency across tiers (the paper's "CoreApprox up
/// to orders of magnitude faster than peeling" figure).
pub fn e5_approx_efficiency(quick: bool) {
    println!("\n=== E5: approximation efficiency (expected: core ≪ grid ≪ exhaustive; exhaustive infeasible beyond XS)");
    let mut t = Table::new(
        "approximation runtimes",
        &["dataset", "n", "m", "core_ms", "grid_ms", "exhaustive_ms"],
    );
    for w in registry(Scale::L, quick) {
        let g = &w.graph;
        let (core, core_t) = time(|| core_approx(g));
        let (grid, grid_t) = time(|| GridPeel::new(0.1).solve(g));
        let exhaustive_cell = if w.scale == Scale::Xs {
            let (ex, ex_t) = time(|| ExhaustivePeel.solve(g));
            assert!(ex.solution.density >= grid.solution.density);
            format!("{:.1}", ex_t.as_secs_f64() * 1e3)
        } else {
            "skipped".into()
        };
        let _ = core;
        t.row(vec![
            w.name.clone(),
            g.n().to_string(),
            g.m().to_string(),
            format!("{:.1}", core_t.as_secs_f64() * 1e3),
            format!("{:.1}", grid_t.as_secs_f64() * 1e3),
            exhaustive_cell,
        ]);
    }
    println!("{}", t.render());
    t.write_csv("e5_approx");
}

/// E6 — approximation quality against the exact optimum (the paper's
/// "observed ratios are near 1, far above the ½ guarantee").
pub fn e6_quality(quick: bool) {
    println!("\n=== E6: approximation quality (expected: all ≥ 0.5, typically ≥ 0.8)");
    let mut t = Table::new(
        "density relative to the exact optimum",
        &["dataset", "rho_opt", "core", "grid(0.1)", "exhaustive"],
    );
    let max_scale = if quick { Scale::Xs } else { Scale::S };
    for w in registry(max_scale, quick) {
        let g = &w.graph;
        let opt = DcExact::new().solve(g).solution.density;
        let rel = |d: dds_num::Density| -> String {
            if opt.is_zero() {
                "1.000".into()
            } else {
                format!("{:.3}", d.to_f64() / opt.to_f64())
            }
        };
        let core = core_approx(g).solution.density;
        let grid = GridPeel::new(0.1).solve(g).solution.density;
        let exhaustive = if w.scale == Scale::Xs {
            rel(ExhaustivePeel.solve(g).solution.density)
        } else {
            "skipped".into()
        };
        assert!(
            2.0 * core.to_f64() + 1e-9 >= opt.to_f64(),
            "{}: guarantee broken",
            w.name
        );
        t.row(vec![
            w.name.clone(),
            format!("{:.3}", opt.to_f64()),
            rel(core),
            rel(grid),
            exhaustive,
        ]);
    }
    println!("{}", t.render());
    t.write_csv("e6_quality");
}

/// E7 — scalability: runtime versus sampled edge fraction (the paper's
/// near-linear scalability figure).
pub fn e7_scalability(quick: bool) {
    println!(
        "\n=== E7: scalability vs edge fraction (expected: near-linear for both approximations)"
    );
    let w = registry(Scale::L, quick)
        .into_iter()
        .find(|w| w.name.starts_with("PL-l"))
        .unwrap();
    let mut t = Table::new(
        format!("runtime on edge-sampled {}", w.name),
        &["fraction", "m", "core_ms", "grid_ms"],
    );
    for percent in [20usize, 40, 60, 80, 100] {
        let mut k = 0usize;
        let sub = w.graph.filter_edges(|_, _| {
            k += 1;
            k % 100 < percent
        });
        let (_, core_t) = time(|| core_approx(&sub));
        let (_, grid_t) = time(|| GridPeel::new(0.2).solve(&sub));
        t.row(vec![
            format!("{percent}%"),
            sub.m().to_string(),
            format!("{:.1}", core_t.as_secs_f64() * 1e3),
            format!("{:.1}", grid_t.as_secs_f64() * 1e3),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("e7_scalability");
}

/// E8 — `GridPeel` ε sensitivity (time/quality trade-off).
pub fn e8_epsilon(quick: bool) {
    println!(
        "\n=== E8: GridPeel epsilon sweep (expected: time ~ 1/ε, quality non-increasing in ε)"
    );
    let w = registry(Scale::M, quick)
        .into_iter()
        .find(|w| w.name.starts_with("PL-m"))
        .unwrap();
    let g = &w.graph;
    let mut t = Table::new(
        format!("epsilon sweep on {}", w.name),
        &["epsilon", "ratios", "ms", "density"],
    );
    for eps in [0.05, 0.1, 0.2, 0.5, 1.0] {
        let (r, dur) = time(|| GridPeel::new(eps).solve(g));
        t.row(vec![
            format!("{eps}"),
            r.ratios_tried.to_string(),
            format!("{:.1}", dur.as_secs_f64() * 1e3),
            format!("{:.4}", r.solution.density.to_f64()),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("e8_epsilon");
}

/// E9 — case studies: planted-ring recovery and hub/authority separation
/// (the paper's qualitative section).
pub fn e9_case_study(quick: bool) {
    println!("\n=== E9: case studies (expected: exact recovery of the planted block; hubs/authorities split)");
    let (n, m) = if quick { (200, 1_000) } else { (2_000, 8_000) };
    let planted = dds_graph::gen::planted(n, m, 8, 10, 1.0, 7);
    let (r, dur) = time(|| DcExact::new().solve(&planted.graph));
    let hit_s = r
        .solution
        .pair
        .s()
        .iter()
        .filter(|v| planted.pair.s().contains(v))
        .count();
    let hit_t = r
        .solution
        .pair
        .t()
        .iter()
        .filter(|v| planted.pair.t().contains(v))
        .count();
    let mut t = Table::new("planted-ring recovery", &["metric", "value"]);
    t.row(vec![
        "planted density".into(),
        format!("{:.4}", planted.pair.density(&planted.graph).to_f64()),
    ]);
    t.row(vec![
        "recovered density".into(),
        format!("{:.4}", r.solution.density.to_f64()),
    ]);
    t.row(vec![
        "S recall".into(),
        format!("{hit_s}/{}", planted.pair.s().len()),
    ]);
    t.row(vec![
        "T recall".into(),
        format!("{hit_t}/{}", planted.pair.t().len()),
    ]);
    t.row(vec!["solve time".into(), fmt_duration(dur)]);
    println!("{}", t.render());
    t.write_csv("e9_case_study");

    let w = registry(Scale::S, quick)
        .into_iter()
        .find(|w| w.name.starts_with("PL"))
        .unwrap();
    let g = &w.graph;
    let sol = core_approx(g).solution;
    let avg = |side: &[u32], f: &dyn Fn(u32) -> usize| {
        side.iter().map(|&v| f(v) as f64).sum::<f64>() / side.len().max(1) as f64
    };
    let mut t = Table::new(
        "hub/authority separation on the power-law tier",
        &["side", "size", "avg_out", "avg_in"],
    );
    t.row(vec![
        "S (hubs)".into(),
        sol.pair.s().len().to_string(),
        format!("{:.1}", avg(sol.pair.s(), &|v| g.out_degree(v))),
        format!("{:.1}", avg(sol.pair.s(), &|v| g.in_degree(v))),
    ]);
    t.row(vec![
        "T (authorities)".into(),
        sol.pair.t().len().to_string(),
        format!("{:.1}", avg(sol.pair.t(), &|v| g.out_degree(v))),
        format!("{:.1}", avg(sol.pair.t(), &|v| g.in_degree(v))),
    ]);
    println!("{}", t.render());
    t.write_csv("e9_hub_authority");
}

/// E10 — core-decomposition statistics (skyline extent, sweep costs).
pub fn e10_cores(quick: bool) {
    println!("\n=== E10: [x,y]-core decomposition (expected: skyline sweep ≫ double sweep; both grow ~linearly)");
    let max_scale = if quick { Scale::S } else { Scale::M };
    let mut t = Table::new(
        "core decomposition",
        &[
            "dataset",
            "skyline_pts",
            "skyline_ms",
            "maxprod",
            "sweep_evals",
            "sweep_ms",
        ],
    );
    for w in registry(max_scale, quick) {
        let g = &w.graph;
        let (sky_cell, sky_ms) = if w.scale <= Scale::S {
            let (sky, d) = time(|| skyline(g));
            (
                sky.len().to_string(),
                format!("{:.1}", d.as_secs_f64() * 1e3),
            )
        } else {
            ("skipped".into(), "-".into())
        };
        let (best, d) = time(|| max_product_core(g));
        let (prod, evals) = best.map_or((0, 0), |b| (b.product(), b.sweep_evals));
        t.row(vec![
            w.name.clone(),
            sky_cell,
            sky_ms,
            prod.to_string(),
            evals.to_string(),
            format!("{:.1}", d.as_secs_f64() * 1e3),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("e10_cores");
}

/// E11 — parallel speedup of the embarrassingly parallel solvers.
pub fn e11_parallel(quick: bool) {
    println!("\n=== E11: parallel speedup (expected: near-linear for grid peel up to core count)");
    let w = registry(Scale::M, quick)
        .into_iter()
        .find(|w| w.name.starts_with("PL-m"))
        .unwrap();
    let g = &w.graph;
    let mut t = Table::new(
        format!("threads vs wall time on {}", w.name),
        &["threads", "grid_ms", "grid_speedup", "core_ms"],
    );
    let mut grid_base = None;
    for threads in [1usize, 2, 4, 8] {
        let (_, grid_t) = time(|| parallel::grid_peel_parallel(g, 0.1, threads));
        let base = *grid_base.get_or_insert(grid_t.as_secs_f64());
        let (_, core_t) = time(|| parallel::core_approx_parallel(g, threads));
        t.row(vec![
            threads.to_string(),
            format!("{:.1}", grid_t.as_secs_f64() * 1e3),
            format!("{:.2}x", base / grid_t.as_secs_f64().max(1e-9)),
            format!("{:.1}", core_t.as_secs_f64() * 1e3),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("e11_parallel");
}

/// E12 — streaming maintenance: fraction of batches absorbed by the
/// incremental certificate alone, per stream scenario.
pub fn e12_streaming(quick: bool) {
    println!(
        "\n=== E12: streaming lazy re-solve (expected: churn ≥90% incremental, emerge re-solves while the block forms)"
    );
    let batch = if quick { 10 } else { 25 };
    let mut t = Table::new(
        format!("stream scenarios, batch = {batch} events, tolerance = 0.25"),
        &[
            "scenario",
            "solver",
            "events",
            "epochs",
            "resolves",
            "incremental",
            "density",
            "max_factor",
            "resolve_ms",
            "resolve_flows",
            "time",
        ],
    );
    for scenario in crate::stream_workloads::stream_registry(quick) {
        // The sliding window has no persistent optimum, so exact lazy
        // re-solves degenerate there: that regime now belongs to the
        // window-native engine, measured by E14.
        if scenario.name.starts_with("window") {
            println!(
                "({}: skipped — sliding windows are E14's window-native engine territory)",
                scenario.name
            );
            continue;
        }
        // Quick mode uses the approximate engine to keep the smoke fast.
        let solver = if quick {
            dds_stream::SolverKind::CoreApprox
        } else {
            dds_stream::SolverKind::Exact
        };
        let mut engine = dds_stream::StreamEngine::new(dds_stream::StreamConfig {
            tolerance: 0.25,
            slack: 2.0,
            solver,
            ..Default::default()
        });
        let (reports, d) = time(|| {
            dds_stream::replay(
                &mut engine,
                &scenario.events,
                dds_stream::BatchBy::Count(batch),
            )
        });
        let epochs = reports.len();
        let resolves = reports.iter().filter(|r| r.resolved).count();
        let incremental = 100.0 * (epochs - resolves) as f64 / epochs.max(1) as f64;
        let max_factor = reports
            .iter()
            .map(|r| r.certified_factor)
            .fold(1.0f64, f64::max);
        let resolve_ms: f64 = reports
            .iter()
            .filter(|r| r.resolved)
            .map(|r| r.elapsed.as_secs_f64() * 1e3)
            .sum();
        let resolve_flows: usize = reports
            .iter()
            .filter_map(|r| r.solve_stats)
            .map(|s| s.flow_decisions)
            .sum();
        let last = reports.last().expect("non-empty scenario");
        t.row(vec![
            scenario.name.clone(),
            format!("{solver:?}"),
            scenario.events.len().to_string(),
            epochs.to_string(),
            resolves.to_string(),
            format!("{incremental:.1}%"),
            format!("{:.3}", last.density.to_f64()),
            format!("{max_factor:.3}"),
            format!("{resolve_ms:.0}"),
            resolve_flows.to_string(),
            fmt_duration(d),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("e12_streaming");
}

/// E13 — the `SolveContext` pipeline: exact tie pruning versus the legacy
/// strict-margin engine on planted blocks, and warm-context re-solves
/// versus cold solves over a churned graph sequence (the streaming
/// re-solve pattern).
pub fn e13_solve_context(quick: bool) {
    println!(
        "\n=== E13: SolveContext (expected: tie pruning cuts flow decisions ≥2x on planted blocks; warm contexts re-solve with fewer flows and recycled buffers)"
    );
    let sizes: &[usize] = if quick { &[120, 200] } else { &[500, 2_000] };
    let mut t = Table::new(
        "exact tie pruning on planted blocks",
        &[
            "n",
            "m",
            "variant",
            "ratios",
            "flows",
            "tie_prunes",
            "arena_hits",
            "ms",
        ],
    );
    for &n in sizes {
        let p = planted_block(n);
        let g = &p.graph;
        let (with, d_with) = time(|| DcExact::new().solve(g));
        let (without, d_without) = time(|| {
            DcExact::with_options(ExactOptions {
                tie_pruning: false,
                ..ExactOptions::default()
            })
            .solve(g)
        });
        assert_eq!(
            with.solution.density, without.solution.density,
            "tie pruning changed the optimum at n={n}"
        );
        assert!(
            2 * with.flow_decisions <= without.flow_decisions,
            "tie pruning must at least halve the flow decisions at n={n} ({} vs {})",
            with.flow_decisions,
            without.flow_decisions
        );
        for (label, r, d) in [
            ("tie-pruned", &with, d_with),
            ("legacy", &without, d_without),
        ] {
            t.row(vec![
                n.to_string(),
                g.m().to_string(),
                label.into(),
                r.ratios_solved.to_string(),
                r.flow_decisions.to_string(),
                r.ratios_pruned_tie.to_string(),
                r.arena_reuse_hits.to_string(),
                format!("{:.1}", d.as_secs_f64() * 1e3),
            ]);
        }
    }
    println!("{}", t.render());
    t.write_csv("e13_tie_pruning");

    // Warm-context re-solves: churn ~1% of the edges per epoch (the lazy
    // re-solve pattern of the stream engine) and compare a cold solver
    // against one long-lived context.
    let n = if quick { 200 } else { 1_000 };
    let base = planted_block(n);
    let mut t = Table::new(
        format!("warm vs cold re-solves under churn (planted n={n})"),
        &[
            "epoch",
            "cold_flows",
            "warm_flows",
            "cold_ms",
            "warm_ms",
            "arena_hits",
            "core_hits",
            "seed_rho",
        ],
    );
    let mut ctx = SolveContext::new();
    for epoch in 0..5usize {
        let mut k = 0usize;
        let g = base.graph.filter_edges(|_, _| {
            k += 1;
            !(k + epoch).is_multiple_of(97) // drop a rotating ~1% slice
        });
        let (cold, d_cold) = time(|| DcExact::new().solve(&g));
        let (warm, d_warm) = time(|| DcExact::new().solve_with(&mut ctx, &g));
        assert_eq!(
            cold.solution.density, warm.solution.density,
            "warm context changed the optimum at epoch {epoch}"
        );
        t.row(vec![
            epoch.to_string(),
            cold.flow_decisions.to_string(),
            warm.flow_decisions.to_string(),
            format!("{:.1}", d_cold.as_secs_f64() * 1e3),
            format!("{:.1}", d_warm.as_secs_f64() * 1e3),
            warm.arena_reuse_hits.to_string(),
            warm.core_cache_hits.to_string(),
            warm.context_seed_density
                .map_or("-".into(), |d| format!("{d:.3}")),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("e13_warm_context");
}

/// E14 — sliding-window maintenance with the window-native engine
/// (replaces E12's `CoreApprox` placeholder row): fraction of epochs
/// absorbed without any solver, core-refresh vs exact-escalation split,
/// and the certified band across the whole replay.
pub fn e14_window(quick: bool) {
    println!(
        "\n=== E14: window-native engine (expected: ≥90% of epochs without an exact re-solve, every epoch within its band)"
    );
    let batch = if quick { 10 } else { 25 };
    let mut t = Table::new(
        format!("sliding-window scenarios, batch = {batch} events, tolerance = 0.25"),
        &[
            "scenario",
            "window",
            "events",
            "epochs",
            "refreshes",
            "exact",
            "no_exact",
            "expired",
            "repairs",
            "density",
            "max_factor",
            "time",
        ],
    );
    for scenario in crate::stream_workloads::window_registry(quick) {
        let mut engine = dds_stream::WindowEngine::new(dds_stream::WindowConfig {
            tolerance: 0.25,
            slack: 2.0,
            exact_escalation: true,
            ..dds_stream::WindowConfig::new(scenario.window)
        });
        let (reports, d) = time(|| {
            dds_stream::replay_window(
                &mut engine,
                &scenario.events,
                dds_stream::BatchBy::Count(batch),
            )
        });
        let epochs = reports.len();
        let refreshes = reports
            .iter()
            .filter(|r| r.mode != dds_stream::WindowMode::Incremental)
            .count();
        let exact = reports
            .iter()
            .filter(|r| r.mode == dds_stream::WindowMode::ExactResolve)
            .count();
        let no_exact = 100.0 * (epochs - exact) as f64 / epochs.max(1) as f64;
        let max_factor = reports
            .iter()
            .map(|r| r.certified_factor)
            .fold(1.0f64, f64::max);
        // The headline guarantees of the window engine — regressions here
        // fail the harness, not just skew a table.
        assert!(
            no_exact >= 90.0,
            "{}: only {no_exact:.1}% of epochs avoided an exact re-solve",
            scenario.name
        );
        for r in &reports {
            assert!(
                r.within_band,
                "{}: epoch {} left its certified band ([{:.3}, {:.3}])",
                scenario.name, r.epoch, r.lower, r.upper
            );
        }
        let last = reports.last().expect("non-empty scenario");
        t.row(vec![
            scenario.name.clone(),
            scenario.window.to_string(),
            scenario.events.len().to_string(),
            epochs.to_string(),
            refreshes.to_string(),
            exact.to_string(),
            format!("{no_exact:.1}%"),
            engine.expired().to_string(),
            engine.repairs().to_string(),
            format!("{:.3}", last.density.to_f64()),
            format!("{max_factor:.3}"),
            fmt_duration(d),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("e14_window");
}

/// E15 — the sketch tier vs the core-sweep tier on a large churn replay
/// (the approximation-first regime: graphs whose full `O(√m·(n+m))` sweep
/// is the thing being avoided). Both tiers run the *same* `StreamEngine`
/// band policy; only the re-certification differs. The harness asserts the
/// sketch tier's headline guarantees: retained state ≤ 10% of the live
/// edge set at peak, every sampled epoch's certified bracket containing a
/// fresh exact solve of the full graph, and (full mode) sketch refreshes
/// beating the sweep's total re-solve wall time.
pub fn e15_sketch_tier(quick: bool) {
    use dds_sketch::SketchConfig;
    use dds_stream::{
        batch_slices, Batch, BatchBy, SketchTier, SolverKind, StreamConfig, StreamEngine,
    };

    println!(
        "\n=== E15: sketch tier vs core-sweep tier (expected: bounded retained state, sound brackets, cheaper refreshes)"
    );
    // Full mode sits squarely in the tier's target regime: a live edge set
    // (~225k) whose `O(√m·(n+m))` sweep costs real milliseconds, and a
    // *dense* optimum (ρ = 256). The density matters: uniform sampling at
    // rate `p` keeps a pair's signal only while `p·ρ ≳ 1`, so the state
    // bound the tier can afford (`bound ≈ p·m`) preserves the optimum
    // exactly when `ρ ≫ m / bound` — the Mitrović–Pan regime. A sparse
    // optimum (ρ ~ 30 on this m) would still be *bracketed* soundly, but
    // the witness would be noise and the whole exercise pointless.
    let (n, bg, block, events, batch, bound) = if quick {
        (300, 1_500, (48, 48), 20_000usize, 50, 300)
    } else {
        (4_000, 160_000, (256, 256), 1_000_000usize, 500, 4_000)
    };
    let stream = crate::stream_workloads::churn(n, bg, block, events, 0xDD5);
    let slices = batch_slices(&stream, BatchBy::Count(batch));
    let epochs = slices.len();
    let sample_every = (epochs / 5).max(1);

    let mut t = Table::new(
        format!(
            "1M-style churn replay: n = {n}, background m = {bg}, block {}x{}, batch = {batch}",
            block.0, block.1
        ),
        &[
            "tier",
            "events",
            "epochs",
            "resolves",
            "escal",
            "resolve_ms",
            "mean_ms",
            "peak_m",
            "retained_pk",
            "state_frac",
            "max_factor",
            "worst_realized",
            "wall",
        ],
    );

    // Three operating points: the full core sweep; the sketch tier in its
    // sweep-first configuration (escalate only when the sweep-on-sketch
    // certifies nothing — the headline, wall-time-asserted row); and the
    // sketch tier forced always-exact (every refresh is an exact-on-sketch
    // solve), which prices the escalation hatch that replaces an
    // exact-on-full solve no one could afford at this m.
    let sketch_at = |escalate_factor: f64| {
        Some(SketchTier {
            min_m: 0,
            config: SketchConfig {
                state_bound: bound,
                escalate_factor,
                ..SketchConfig::default()
            },
        })
    };
    let tiers = [
        ("core-sweep", None),
        ("sketch", sketch_at(2.0)),
        ("sketch-exact", sketch_at(1.0)),
    ];
    let mut resolve_totals = [0.0f64; 3];
    for (idx, (tier, sketch)) in tiers.into_iter().enumerate() {
        let config = StreamConfig {
            solver: SolverKind::CoreApprox,
            sketch,
            ..Default::default()
        };
        let mut engine = StreamEngine::new(config);
        let (mut resolves, mut resolve_ms, mut peak_m, mut wall) = (0usize, 0.0f64, 0usize, 0.0);
        let (mut max_factor, mut worst_realized) = (1.0f64, 1.0f64);
        for (i, chunk) in slices.iter().enumerate() {
            let r = engine.apply(&Batch::from_events(chunk.to_vec()));
            wall += r.elapsed.as_secs_f64();
            peak_m = peak_m.max(r.m);
            max_factor = max_factor.max(r.certified_factor);
            if r.resolved {
                resolves += 1;
                resolve_ms += r.elapsed.as_secs_f64() * 1e3;
            }
            // Spot checks: a fresh exact solve of the FULL graph must sit
            // inside the certified bracket at every sampled epoch.
            if (i + 1) % sample_every == 0 || i + 1 == epochs {
                let exact = DcExact::new().solve(&engine.materialize()).solution.density;
                assert!(
                    r.density <= exact,
                    "{tier}: epoch {} lower {} above exact {exact}",
                    i + 1,
                    r.density
                );
                assert!(
                    exact.to_f64() <= r.upper * (1.0 + 1e-9),
                    "{tier}: epoch {} upper {} below exact {exact}",
                    i + 1,
                    r.upper
                );
                if r.lower > 0.0 {
                    worst_realized = worst_realized.max(exact.to_f64() / r.lower);
                }
            }
        }
        resolve_totals[idx] = resolve_ms;
        let escal_cell = engine
            .sketch_stats()
            .map_or("-".into(), |stats| stats.escalations.to_string());
        let (retained_cell, frac_cell) = match engine.sketch_stats() {
            Some(stats) => {
                let frac = stats.peak_retained as f64 / peak_m.max(1) as f64;
                assert!(
                    frac <= 0.10,
                    "retained peak {} exceeds 10% of peak live m {peak_m}",
                    stats.peak_retained
                );
                (
                    stats.peak_retained.to_string(),
                    format!("{:.1}%", 100.0 * frac),
                )
            }
            None => ("-".into(), "-".into()),
        };
        t.row(vec![
            (*tier).into(),
            stream.len().to_string(),
            epochs.to_string(),
            resolves.to_string(),
            escal_cell,
            format!("{resolve_ms:.0}"),
            format!("{:.1}", resolve_ms / resolves.max(1) as f64),
            peak_m.to_string(),
            retained_cell,
            frac_cell,
            format!("{max_factor:.3}"),
            format!("{worst_realized:.3}"),
            format!("{wall:.2}s"),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("e15_sketch_tier");
    if !quick {
        assert!(
            resolve_totals[1] < resolve_totals[0],
            "sketch refreshes ({:.0} ms) must beat the core sweeps ({:.0} ms)",
            resolve_totals[1],
            resolve_totals[0]
        );
    }
}

/// E16 — shard scaling: the E15 churn workload replayed through the
/// edge-partitioned `ShardedEngine` at K ∈ {1, 2, 4, 8}. K = 1 is the
/// serial baseline *through the same code path* (no spawns at one
/// worker), so the apply-wall column isolates what parallel sharding
/// buys; certification cost is K-independent by construction (summed
/// counters, one merged solve). The harness asserts bracket validity
/// against fresh full-graph exact solves at sampled epochs for every K,
/// and runs the kill/restore drill: snapshot mid-replay, restore, and
/// resume — the restored engine must match the uninterrupted one **bit
/// for bit**, report by report, through the rest of the stream. The
/// K=4-beats-K=1 wall-clock assertion fires only when the machine
/// actually has ≥ 2 cores (on a single-core host the experiment still
/// reports the honest numbers — sharding overhead, no speedup to claim).
pub fn e16_shard_scaling(quick: bool) {
    use dds_shard::{replay_sharded, ShardConfig, ShardedEngine};
    use dds_sketch::SketchConfig;

    println!(
        "\n=== E16: shard scaling on the E15 churn workload (expected: sound merged brackets at every K, apply speedup with real cores, bit-identical kill/restore)"
    );
    let (n, bg, block, events, batch, bound) = if quick {
        (300, 1_500, (48, 48), 20_000usize, 200, 300)
    } else {
        (4_000, 160_000, (256, 256), 1_000_000usize, 2_500, 4_000)
    };
    let stream = crate::stream_workloads::churn(n, bg, block, events, 0xDD5);
    let ks: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "{} events, n = {n}, background m = {bg}, block {}x{}, batch = {batch}, bound = {bound}/shard, {cores} core(s)",
        stream.len(),
        block.0,
        block.1,
    );

    let mut t = Table::new(
        "shard-parallel batch apply: K shards, min(K, cores) workers".to_string(),
        &[
            "K",
            "workers",
            "epochs",
            "refreshes",
            "escal",
            "apply_ms",
            "speedup",
            "certify_ms",
            "wall",
            "retained_pk",
            "max_factor",
            "worst_realized",
        ],
    );

    let config_for = |k: usize| ShardConfig {
        shards: k,
        threads: k.min(cores).max(1),
        sketch: SketchConfig {
            state_bound: bound,
            ..SketchConfig::default()
        },
        ..ShardConfig::default()
    };
    let epochs = stream.len().div_ceil(batch);
    let sample_every = (epochs / 5).max(1);
    let mut apply_by_k: Vec<(usize, f64)> = Vec::new();
    for &k in ks {
        let config = config_for(k);
        let mut engine = ShardedEngine::new(config);
        let (mut apply_ms, mut certify_ms, mut wall) = (0.0f64, 0.0f64, 0.0f64);
        let (mut max_factor, mut worst_realized) = (1.0f64, 1.0f64);
        let mut retained_peak = 0usize;
        for (i, chunk) in stream.chunks(batch).enumerate() {
            let r = engine.apply(&dds_stream::Batch::from_events(chunk.to_vec()));
            apply_ms += r.apply.as_secs_f64() * 1e3;
            certify_ms += r.certify.as_secs_f64() * 1e3;
            wall += r.elapsed.as_secs_f64();
            max_factor = max_factor.max(r.certified_factor);
            retained_peak = retained_peak.max(r.retained);
            // Spot checks: a fresh exact solve of the FULL graph must sit
            // inside the merged certified bracket at every sampled epoch.
            if (i + 1) % sample_every == 0 || i + 1 == epochs {
                let exact = DcExact::new().solve(&engine.materialize()).solution.density;
                assert!(
                    r.density <= exact,
                    "K={k}: epoch {} lower {} above exact {exact}",
                    i + 1,
                    r.density
                );
                assert!(
                    exact.to_f64() <= r.upper * (1.0 + 1e-9),
                    "K={k}: epoch {} upper {} below exact {exact}",
                    i + 1,
                    r.upper
                );
                if r.lower > 0.0 {
                    worst_realized = worst_realized.max(exact.to_f64() / r.lower);
                }
            }
        }
        let stats = engine.stats();
        let speedup = apply_by_k
            .first()
            .map_or("1.00x".to_string(), |&(_, base)| {
                format!("{:.2}x", base / apply_ms.max(1e-9))
            });
        apply_by_k.push((k, apply_ms));
        t.row(vec![
            k.to_string(),
            config.threads.to_string(),
            epochs.to_string(),
            stats.refreshes.to_string(),
            stats.escalations.to_string(),
            format!("{apply_ms:.0}"),
            speedup,
            format!("{certify_ms:.0}"),
            format!("{wall:.2}s"),
            retained_peak.to_string(),
            format!("{max_factor:.3}"),
            format!("{worst_realized:.3}"),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("e16_shard_scaling");

    // The kill/restore drill: half the stream, a snapshot, a restore, and
    // the rest of the stream on both engines in lockstep.
    let k = if quick { 2 } else { 4 };
    let config = config_for(k);
    let mut original = ShardedEngine::new(config);
    let half = (stream.len() / (2 * batch)) * batch; // cut on a batch boundary
    replay_sharded(&mut original, &stream[..half], batch);
    let snap = original.snapshot(0);
    let (mut restored, _) = ShardedEngine::restore(config, &snap).expect("restore must succeed");
    assert_eq!(restored.snapshot(0), snap, "round-trip identity");
    let a = replay_sharded(&mut original, &stream[half..], batch);
    let b = replay_sharded(&mut restored, &stream[half..], batch);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.m, y.m, "epoch {}", x.epoch);
        assert_eq!(x.refreshed, y.refreshed, "epoch {}", x.epoch);
        assert_eq!(x.lower.to_bits(), y.lower.to_bits(), "epoch {}", x.epoch);
        assert_eq!(x.upper.to_bits(), y.upper.to_bits(), "epoch {}", x.epoch);
    }
    assert_eq!(
        original.snapshot(0),
        restored.snapshot(0),
        "kill/restore must end bit-identical"
    );
    println!(
        "kill/restore at K = {k}: snapshot of {} bytes after epoch {}, resumed bit-identically through {} epochs to m = {}",
        snap.len(),
        half / batch,
        a.len(),
        original.m(),
    );

    if !quick {
        let base = apply_by_k[0].1;
        let four = apply_by_k
            .iter()
            .find(|&&(k, _)| k == 4)
            .map(|&(_, ms)| ms)
            .expect("K=4 row");
        if cores >= 2 {
            assert!(
                four < base,
                "K=4 apply ({four:.0} ms) must beat K=1 ({base:.0} ms) with {cores} cores"
            );
        } else {
            println!(
                "speedup assertion skipped: single-core host (K=4 apply {four:.0} ms vs K=1 {base:.0} ms measures sharding overhead, not parallelism)"
            );
        }
    }
}

/// E17 — the persistent worker pool. Two sweeps:
///
/// 1. **Per-ratio parallelism on a single-dominant-ratio instance.** The
///    planted block concentrates nearly all solve time in the ratios
///    around the planted `|S|/|T|`, which is exactly where the interval
///    queue alone cannot help: one interval, one worker, everyone else
///    idle. Config A is the serial engine (threads = 1), config B is the
///    pool-backed interval queue with the per-ratio levers *off*, and
///    config C turns on parallel Dinic phases plus speculative guess
///    racing. All three must land on the **bit-identical** density (the
///    levers change scheduling, never answers); with ≥ 4 real cores and
///    full workloads, C must beat B by ≥ 2x — on fewer cores the table
///    still records the honest numbers and the assertion is skipped.
/// 2. **Shard apply scaling at batch 2500** (batch 250 in quick mode)
///    through the same pool: K ∈ {1, 4} shard replays of the churn
///    workload, asserting K = 4 beats K = 1 by ≥ 2x on ≥ 4 cores.
///
/// The pool's own counters (tasks, steals, parks) are printed as deltas
/// around the sweep, pinning that the work actually routed through it.
pub fn e17_pool_parallel(quick: bool) {
    use dds_core::{SolveContext, WorkerPool};

    println!(
        "\n=== E17: worker pool + per-ratio parallelism (expected: bit-identical densities at every config, C >= 2x B and K4 >= 2x K1 with >= 4 cores)"
    );
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let n = if quick { 250 } else { 2_500 };
    let p = planted_block(n);
    let planted_rho = p.pair.density(&p.graph);
    let pool_before = WorkerPool::global().stats();
    println!(
        "planted block: n = {n}, m = {}, planted rho = {} ({cores} core(s), pool width {})",
        p.graph.m(),
        planted_rho,
        WorkerPool::global().width(),
    );

    let mut t = Table::new(
        "exact solve: serial vs interval queue vs per-ratio levers",
        &[
            "config",
            "threads",
            "wall_ms",
            "ratios",
            "flows",
            "spec",
            "spec_wins",
            "density",
        ],
    );
    let levers_off = ExactOptions {
        per_ratio_parallel: false,
        speculation: false,
        ..ExactOptions::default()
    };
    let (serial, wall_a) = time(|| DcExact::new().solve(&p.graph));
    let (queue_only, wall_b) = time(|| {
        let mut ctx = SolveContext::new();
        parallel::dc_exact_parallel_with(&mut ctx, &p.graph, levers_off, cores)
    });
    let (levers_on, wall_c) = time(|| {
        let mut ctx = SolveContext::new();
        parallel::dc_exact_parallel_with(&mut ctx, &p.graph, ExactOptions::default(), cores)
    });
    for (label, threads, report, wall) in [
        ("A serial", 1, &serial, wall_a),
        ("B queue-only", cores, &queue_only, wall_b),
        ("C levers-on", cores, &levers_on, wall_c),
    ] {
        t.row(vec![
            label.to_string(),
            threads.to_string(),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            report.ratios_solved.to_string(),
            report.flow_decisions.to_string(),
            report.speculative_solves.to_string(),
            report.speculative_wins.to_string(),
            format!("{:.6}", report.solution.density.to_f64()),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("e17_pool_parallel");
    assert_eq!(
        queue_only.solution.density, serial.solution.density,
        "pool-backed interval queue diverged from serial"
    );
    assert_eq!(
        levers_on.solution.density, serial.solution.density,
        "per-ratio levers diverged from serial"
    );
    assert_eq!(
        levers_on.solution.pair.density(&p.graph),
        serial.solution.density,
        "the parallel witness must certify the serial density"
    );
    assert!(
        serial.solution.density >= planted_rho,
        "solver missed the planted block"
    );
    if !quick && cores >= 4 {
        let ratio = wall_b.as_secs_f64() / wall_c.as_secs_f64().max(1e-9);
        assert!(
            ratio >= 2.0,
            "per-ratio levers must beat the interval queue alone by >= 2x on {cores} cores \
             (B {:.0} ms / C {:.0} ms = {ratio:.2}x)",
            wall_b.as_secs_f64() * 1e3,
            wall_c.as_secs_f64() * 1e3,
        );
    } else {
        println!(
            "lever speedup assertion skipped ({}): B/C = {:.2}x",
            if quick {
                "quick mode"
            } else {
                "fewer than 4 cores"
            },
            wall_b.as_secs_f64() / wall_c.as_secs_f64().max(1e-9),
        );
    }

    // Sweep 2: shard apply scaling at the PR's batch size through the
    // same global pool (`for_each_mut` routes the per-shard applies).
    use dds_shard::{ShardConfig, ShardedEngine};
    use dds_sketch::SketchConfig;
    let (sn, sbg, sblock, sevents, sbatch, sbound) = if quick {
        (300, 1_500, (48, 48), 10_000usize, 250, 300)
    } else {
        (4_000, 160_000, (256, 256), 1_000_000usize, 2_500, 4_000)
    };
    let stream = crate::stream_workloads::churn(sn, sbg, sblock, sevents, 0xDD5);
    let mut t = Table::new(
        format!("shard apply scaling at batch {sbatch}: K shards, min(K, cores) workers"),
        &["K", "workers", "epochs", "apply_ms", "speedup", "wall"],
    );
    let mut apply_by_k: Vec<(usize, f64)> = Vec::new();
    for k in [1usize, 4] {
        let config = ShardConfig {
            shards: k,
            threads: k.min(cores).max(1),
            sketch: SketchConfig {
                state_bound: sbound,
                ..SketchConfig::default()
            },
            ..ShardConfig::default()
        };
        let mut engine = ShardedEngine::new(config);
        let (mut apply_ms, mut wall) = (0.0f64, 0.0f64);
        let mut epochs = 0usize;
        for chunk in stream.chunks(sbatch) {
            let r = engine.apply(&dds_stream::Batch::from_events(chunk.to_vec()));
            assert!(
                r.lower <= r.upper * (1.0 + 1e-9),
                "K={k}: epoch {epochs} inverted bracket [{}, {}]",
                r.lower,
                r.upper
            );
            apply_ms += r.apply.as_secs_f64() * 1e3;
            wall += r.elapsed.as_secs_f64();
            epochs += 1;
        }
        let speedup = apply_by_k
            .first()
            .map_or("1.00x".to_string(), |&(_, base)| {
                format!("{:.2}x", base / apply_ms.max(1e-9))
            });
        apply_by_k.push((k, apply_ms));
        t.row(vec![
            k.to_string(),
            k.min(cores).max(1).to_string(),
            epochs.to_string(),
            format!("{apply_ms:.0}"),
            speedup,
            format!("{wall:.2}s"),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("e17_shard_apply");
    let base = apply_by_k[0].1;
    let four = apply_by_k[1].1;
    if !quick && cores >= 4 {
        assert!(
            base / four.max(1e-9) >= 2.0,
            "K=4 apply ({four:.0} ms) must beat K=1 ({base:.0} ms) by >= 2x on {cores} cores"
        );
    } else {
        println!(
            "apply speedup assertion skipped ({}): K1/K4 = {:.2}x",
            if quick {
                "quick mode"
            } else {
                "fewer than 4 cores"
            },
            base / four.max(1e-9),
        );
    }

    let pool_after = WorkerPool::global().stats();
    println!(
        "pool deltas: {} tasks, {} steals, {} parks",
        pool_after.tasks - pool_before.tasks,
        pool_after.steals - pool_before.steals,
        pool_after.parks - pool_before.parks,
    );
}

/// E18 — the query-serving tier under churn: client threads hammer a
/// live `dds-serve` front end with mixed `DENSITY`/`MEMBER`/`CORE`/`TOPK`
/// queries **while** the main thread replays the churn workload and
/// publishes one immutable snapshot per sealed epoch through the
/// arc-swap cell. Two operating points — 1 client / 1 reader and
/// 4 clients / 4 readers — share the stream; after every publish the
/// driver's own oracle connection re-queries `DENSITY` and asserts the
/// byte-exact answer for that epoch (per-epoch oracle confirmation).
/// The harness asserts zero stale-epoch violations (a connection never
/// sees an epoch id go backwards), zero bracket violations, and zero
/// `ERR` responses once an epoch is published; with ≥ 4 real cores and
/// full workloads the 4-client aggregate throughput must beat the
/// 1-client run by ≥ 1.5x (readers scale on snapshots, never on engine
/// locks) — on fewer cores the table still records the honest numbers
/// and the assertion is skipped, as in E16/E17.
pub fn e18_serve(quick: bool) {
    use crate::serve_load::{percentile, run_clients, ClientPlan, ClientReport};
    use dds_serve::{EpochFacts, PublishOptions, Publisher, ServeMetrics, Server, SnapshotCell};
    use dds_stream::{Batch, SolverKind, StreamConfig, StreamEngine};
    use std::io::{BufRead, Write};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    println!(
        "\n=== E18: query serving under churn (expected: zero stale/bracket/ERR violations, 4-client qps >= 1.5x 1-client with >= 4 cores)"
    );
    const CORE_X: u64 = 1;
    const CORE_Y: u64 = 1;
    let (n, bg, block, events, batch) = if quick {
        (300, 1_500, (48, 48), 20_000usize, 100)
    } else {
        (400, 4_000, (32, 32), 100_000usize, 100)
    };
    let stream = crate::stream_workloads::churn(n, bg, block, events, 0xDD5);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "{} events, n = {n}, background m = {bg}, block {}x{}, batch = {batch}, core [{CORE_X},{CORE_Y}], top-2 ({cores} core(s))",
        stream.len(),
        block.0,
        block.1,
    );

    let mut t = Table::new(
        "concurrent readers vs churn ingestion",
        &[
            "clients",
            "readers",
            "epochs",
            "publishes",
            "queries",
            "err>0",
            "stale",
            "brk_bad",
            "p50_us",
            "p99_us",
            "qps",
            "wall",
        ],
    );
    let mut qps_by_clients: Vec<(usize, f64)> = Vec::new();
    // A connection occupies its reader for the connection's lifetime, so
    // the pool must cover every concurrent connection: the N load clients
    // plus the driver's own oracle connection.
    for (clients, readers) in [(1usize, 2usize), (4, 5)] {
        let mut engine = StreamEngine::new(StreamConfig {
            tolerance: 0.25,
            slack: 2.0,
            solver: SolverKind::CoreApprox,
            ..Default::default()
        });
        let cell = Arc::new(SnapshotCell::new());
        let metrics = Arc::new(ServeMetrics::new());
        let mut publisher = Publisher::new(
            Arc::clone(&cell),
            PublishOptions {
                core: Some((CORE_X, CORE_Y)),
                top_k: 2,
            },
            Arc::clone(&metrics),
        );
        let server = Server::start(
            "127.0.0.1:0",
            Arc::clone(&cell),
            readers,
            Arc::clone(&metrics),
        )
        .expect("bind ephemeral port");
        let stop = Arc::new(AtomicBool::new(false));
        let plan = ClientPlan {
            addr: server.addr(),
            queries: None,
            stop: Arc::clone(&stop),
            core: Some((CORE_X, CORE_Y)),
            top_k: 2,
        };
        let load = {
            let plan = plan.clone();
            std::thread::spawn(move || run_clients(clients, &plan))
        };

        // The driver's oracle connection: one DENSITY per publish, checked
        // byte for byte against the engine's own report for that epoch.
        let oracle = std::net::TcpStream::connect(server.addr()).expect("oracle connect");
        let mut oracle_reader =
            std::io::BufReader::new(oracle.try_clone().expect("clone oracle stream"));
        let mut oracle = oracle;

        let t0 = std::time::Instant::now();
        let mut epochs = 0u64;
        for chunk in stream.chunks(batch) {
            let r = engine.apply(&Batch::from_events(chunk.to_vec()));
            publisher.publish(
                EpochFacts {
                    epoch: r.epoch,
                    n: r.n,
                    m: r.m as u64,
                    density: r.density.to_f64(),
                    lower: r.lower,
                    upper: r.upper,
                    witness: engine.witness(),
                    resolved: r.resolved,
                },
                || engine.materialize(),
            );
            epochs += 1;
            oracle.write_all(b"DENSITY\n").expect("oracle query");
            let mut line = String::new();
            oracle_reader.read_line(&mut line).expect("oracle response");
            assert_eq!(
                line.trim_end(),
                format!(
                    "OK DENSITY epoch={} n={} m={} density={:.6} lower={:.6} upper={:.6}",
                    r.epoch,
                    r.n,
                    r.m,
                    r.density.to_f64(),
                    r.lower,
                    r.upper
                ),
                "oracle mismatch at epoch {}",
                r.epoch
            );
        }
        let wall = t0.elapsed();
        stop.store(true, Ordering::Relaxed);
        let reports = load.join().expect("load clients");
        drop(server); // shuts down on drop

        let mut total = ClientReport::default();
        for r in &reports {
            total.merge(r);
        }
        assert_eq!(total.stale_violations, 0, "epoch ids went backwards");
        assert_eq!(total.bracket_violations, 0, "a served bracket inverted");
        assert_eq!(
            total.errors_after_epoch0, 0,
            "valid queries errored after publication started"
        );
        assert!(
            total.max_epoch > 0,
            "clients never saw a published epoch — serving did not overlap ingestion"
        );
        assert_eq!(metrics.publishes.get(), epochs, "one publish per epoch");
        let qps = total.queries as f64 / wall.as_secs_f64().max(1e-9);
        qps_by_clients.push((clients, qps));
        t.row(vec![
            clients.to_string(),
            readers.to_string(),
            epochs.to_string(),
            metrics.publishes.get().to_string(),
            total.queries.to_string(),
            total.errors_after_epoch0.to_string(),
            total.stale_violations.to_string(),
            total.bracket_violations.to_string(),
            percentile(&total.latencies_us, 50.0).to_string(),
            percentile(&total.latencies_us, 99.0).to_string(),
            format!("{qps:.0}"),
            fmt_duration(wall),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("e18_serve");

    let one = qps_by_clients[0].1;
    let four = qps_by_clients[1].1;
    if !quick && cores >= 4 {
        assert!(
            four >= 1.5 * one,
            "4 clients ({four:.0} qps) must beat 1 client ({one:.0} qps) by >= 1.5x on {cores} cores"
        );
    } else {
        println!(
            "throughput assertion skipped ({}): 4-client/1-client qps = {:.2}x",
            if quick {
                "quick mode"
            } else {
                "fewer than 4 cores"
            },
            four / one.max(1e-9),
        );
    }
}

/// E19 — the live introspection plane under churn: scraper threads
/// hammer the admin endpoint (`/metrics`, `/status`, `/readyz`) while a
/// seeded replay ingests and seals the status board per epoch. The table
/// reports ingest wall against scraper pressure plus scrape latency
/// percentiles. Hard gates: every scrape succeeds and parses, readiness
/// flips exactly once per run, and the final scrape reconciles with the
/// driver's epoch count — scrapes must observe ingest, never steer it.
pub fn e19_admin(quick: bool) {
    use crate::serve_load::percentile;
    use dds_obs::{http_get, parse_exposition, AdminServer, Registry, SlowRing, StatusBoard};
    use dds_stream::{Batch, StreamConfig, StreamEngine};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    println!(
        "\n=== E19: admin introspection plane under churn (expected: zero failed scrapes, one readiness flip, ingest wall flat under scraper pressure)"
    );
    let (n, bg, block, events, batch) = if quick {
        (300, 1_500, (48, 48), 20_000usize, 100)
    } else {
        (400, 4_000, (32, 32), 100_000usize, 100)
    };
    let stream = crate::stream_workloads::churn(n, bg, block, events, 0xDD5);
    println!(
        "{} events, n = {n}, background m = {bg}, block {}x{}, batch = {batch}",
        stream.len(),
        block.0,
        block.1,
    );

    let mut t = Table::new(
        "scraper pressure vs churn ingestion",
        &[
            "scrapers", "epochs", "scrapes", "failed", "flips", "p50_us", "p99_us", "wall",
            "vs_bare",
        ],
    );
    let mut bare_wall = None;
    for scrapers in [0usize, 1, 4] {
        let registry = Registry::new();
        let board = Arc::new(StatusBoard::new("stream"));
        let ring = Arc::new(SlowRing::new(16, 1_000));
        let admin = AdminServer::start(
            "127.0.0.1:0",
            registry.clone(),
            Arc::clone(&board),
            Arc::clone(&ring),
        )
        .expect("bind ephemeral admin port");
        let addr = admin.addr();
        let mut engine = StreamEngine::new(StreamConfig::default());
        engine.attach_obs(&registry);

        let stop = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..scrapers)
            .map(|_| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut scrapes = 0u64;
                    let mut ready_seen = false;
                    let mut latencies_us = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        let t0 = std::time::Instant::now();
                        let (code, body) = http_get(addr, "/metrics").expect("scrape /metrics");
                        latencies_us.push(t0.elapsed().as_micros() as u64);
                        assert_eq!(code, 200, "failed /metrics scrape");
                        parse_exposition(&body).expect("every scrape must parse");
                        let (code, _) = http_get(addr, "/status").expect("scrape /status");
                        assert_eq!(code, 200, "failed /status scrape");
                        let (code, _) = http_get(addr, "/readyz").expect("scrape /readyz");
                        match code {
                            200 => ready_seen = true,
                            503 => assert!(!ready_seen, "/readyz went back to not-ready"),
                            other => panic!("failed /readyz scrape: {other}"),
                        }
                        scrapes += 1;
                    }
                    (scrapes, latencies_us)
                })
            })
            .collect();

        let mut epochs = 0u64;
        let mut events_total = 0u64;
        let (_, wall) = time(|| {
            for chunk in stream.chunks(batch) {
                events_total += chunk.len() as u64;
                let r = engine.apply(&Batch::from_events(chunk.to_vec()));
                epochs = r.epoch;
                board.seal_epoch(
                    r.epoch,
                    events_total,
                    events_total,
                    r.density.to_f64(),
                    r.lower,
                    r.upper,
                );
                board.set_ready();
            }
        });
        stop.store(true, Ordering::Relaxed);
        let mut scrapes = 0u64;
        let mut latencies_us = Vec::new();
        for h in handles {
            let (s, mut l) = h.join().expect("scraper thread");
            scrapes += s;
            latencies_us.append(&mut l);
        }
        latencies_us.sort_unstable();
        assert_eq!(board.ready_flips(), 1, "readiness flips exactly once");
        if scrapers > 0 {
            assert!(scrapes > 0, "the scrapers must have gotten through");
        }
        let (code, body) = http_get(addr, "/metrics").expect("final scrape");
        assert_eq!(code, 200);
        let parsed = parse_exposition(&body).expect("final exposition parses");
        assert!(
            parsed
                .get("dds_stream_epochs_total")
                .is_some_and(|v| v.as_u64() == Some(epochs)),
            "final scrape must reconcile with {epochs} sealed epochs"
        );
        drop(admin);

        let vs_bare = bare_wall.map_or_else(
            || {
                bare_wall = Some(wall);
                "1.00x".to_string()
            },
            |bare: std::time::Duration| {
                format!("{:.2}x", wall.as_secs_f64() / bare.as_secs_f64().max(1e-9))
            },
        );
        t.row(vec![
            scrapers.to_string(),
            epochs.to_string(),
            scrapes.to_string(),
            "0".to_string(),
            board.ready_flips().to_string(),
            percentile(&latencies_us, 50.0).to_string(),
            percentile(&latencies_us, 99.0).to_string(),
            fmt_duration(wall),
            vs_bare,
        ]);
    }
    println!("{}", t.render());
    t.write_csv("e19_admin");
}

/// E20 — the cross-process cluster tier: digest traffic vs raw stream
/// bytes as the shard count grows. K worker state machines (the exact
/// state `dds cluster-shard` processes run) digest the churn workload
/// and the coordinator core merges and certifies every epoch; the table
/// reports what the wire would carry. Expected shape: digest bytes grow
/// mildly with K (fixed per-digest counter overhead per shard per
/// epoch) but stay well under the 5% budget against raw event bytes,
/// with the certified factor flat across K — partitioning is free
/// soundness-wise, it only spends wire bytes.
pub fn e20_cluster(quick: bool) {
    use dds_cluster::{ClusterConfig, ClusterCore, Frame, WorkerConfig, WorkerState};
    use dds_sketch::SketchConfig;
    use dds_stream::{Batch, Event};

    println!(
        "\n=== E20: cluster digest traffic vs shard count (expected: ratio well under the 5% budget, flat certified factor)"
    );
    let (events_len, batch) = if quick {
        (20_000, 1_000)
    } else {
        (100_000, 1_000)
    };
    let stream = crate::stream_workloads::churn(400, 4_000, (32, 32), events_len, 0xDD5);
    let raw_bytes: u64 = stream
        .iter()
        .map(|ev| {
            let (sign, u, v) = match ev.event {
                Event::Insert(u, v) => ('+', u, v),
                Event::Delete(u, v) => ('-', u, v),
            };
            format!("{} {sign} {u} {v}\n", ev.time).len() as u64
        })
        .sum();
    println!(
        "{} events ({raw_bytes} raw B), batch = {batch}, state bound = 250/shard",
        stream.len(),
    );

    let mut t = Table::new(
        "digest traffic vs shard count",
        &[
            "K",
            "epochs",
            "digest_B",
            "ratio",
            "refreshes",
            "escalated",
            "max_cert",
            "wall",
        ],
    );
    for shards in [1usize, 2, 4, 8] {
        let config = ClusterConfig {
            shards,
            batch,
            refresh_drift: 0.25,
            sketch: SketchConfig {
                state_bound: 250,
                ..SketchConfig::default()
            },
        };
        let mut core = ClusterCore::new(config);
        let mut workers: Vec<WorkerState> = (0..shards)
            .map(|shard| {
                let mut w = WorkerState::new(WorkerConfig {
                    shard,
                    shards,
                    batch,
                    sketch: config.sketch,
                });
                w.sync_baseline();
                w
            })
            .collect();
        let mut max_factor = 1.0f64;
        let mut epochs = 0u64;
        let ((), wall) = time(|| {
            for chunk in stream.chunks(batch) {
                let b = Batch::from_events(chunk.to_vec());
                for worker in &mut workers {
                    let tallies = worker.apply_batch(&b);
                    let digest = worker.digest(tallies, 0, 0, false);
                    let payload = Frame::Digest(digest.clone()).encode().len() as u64;
                    core.offer(digest, payload).expect("offer digest");
                }
                let epoch = core
                    .seal_next(false)
                    .expect("seal")
                    .expect("complete frontier");
                max_factor = max_factor.max(epoch.certified_factor());
                epochs += 1;
            }
        });
        assert_eq!(core.degraded_seals(), 0, "strict merge must never degrade");
        t.row(vec![
            shards.to_string(),
            epochs.to_string(),
            core.digest_bytes().to_string(),
            format!(
                "{:.3}%",
                core.digest_bytes() as f64 * 100.0 / raw_bytes as f64
            ),
            core.refreshes().to_string(),
            core.escalations().to_string(),
            format!("{max_factor:.3}"),
            fmt_duration(wall),
        ]);
    }
    println!("{}", t.render());
    t.write_csv("e20_cluster");
}

#[cfg(test)]
mod tests {
    /// Smoke: every experiment runs end-to-end in quick mode.
    /// (Split across two tests to parallelise the suite.)
    #[test]
    fn quick_mode_first_half() {
        for id in &super::ALL[..5] {
            super::run(id, true);
        }
    }

    #[test]
    fn quick_mode_second_half() {
        for id in &super::ALL[5..] {
            super::run(id, true);
        }
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        super::run("e99", true);
    }
}
