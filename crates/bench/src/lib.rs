//! Experiment harness and benchmark support for the DDS workspace.
//!
//! The binary (`cargo run -p dds-bench --release -- <experiment|all>`)
//! regenerates the paper-style tables and figure series (experiments
//! E1–E13 in `DESIGN.md §4`; E13 covers the `SolveContext` pipeline); the
//! criterion benches under `benches/` cover the per-kernel
//! microbenchmarks, and `dds-bench smoke` runs the CI decision-count
//! budget check. Results print as aligned tables and are also written as
//! CSV under `bench_results/`.

#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod stream_workloads;
pub mod workloads;

pub use report::{fmt_duration, time, Table};
pub use stream_workloads::{
    churn, planted_emerge, sliding_window, stream_registry, StreamScenario,
};
pub use workloads::{exact_ladder, planted_block, registry, Scale, Workload};
