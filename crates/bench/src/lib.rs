//! Experiment harness and benchmark support for the DDS workspace.
//!
//! The binary (`cargo run -p dds-bench --release -- <experiment|all>`)
//! regenerates the paper-style tables and figure series (experiments
//! E1–E18 in `DESIGN.md §4`; E13 covers the `SolveContext` pipeline, E14
//! the window-native engine, E17 the worker pool, E18 the query-serving
//! tier); the criterion benches under `benches/` cover the per-kernel
//! microbenchmarks, and the `*-smoke` subcommands (`smoke`,
//! `window-smoke`, …, `serve-smoke`) run the CI budget checks. Results
//! print as aligned tables and are also written as CSV under
//! `bench_results/`.

#![warn(missing_docs)]

pub mod experiments;
pub mod perf;
pub mod report;
pub mod serve_load;
pub mod stream_workloads;
pub mod workloads;

pub use report::{fmt_duration, time, Table};
pub use stream_workloads::{
    arrivals, churn, planted_emerge, recurring_block, sliding_window, stream_registry,
    window_registry, StreamScenario, WindowScenario,
};
pub use workloads::{exact_ladder, planted_block, registry, Scale, Workload};
