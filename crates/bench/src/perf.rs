//! Machine-readable perf trajectory for the streaming experiments.
//!
//! `dds-bench full [--quick] [--dir D]` measures the perf-tracked
//! experiments (the streaming suite E12–E16, the worker-pool exact
//! kernel E17, the query-serving tier E18, the admin introspection
//! plane E19, and the cross-process cluster tier E20) and writes one
//! `BENCH_<EXP>.json` per
//! experiment; `dds-bench compare [--dir D]` re-measures each experiment
//! in the mode its committed baseline records and diffs the counters,
//! failing on regressions past tolerance. The JSON is deliberately flat
//! — one `"key": value` pair per line — so [`parse_record`] needs no
//! JSON library and doubles as the schema validator CI runs.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use dds_core::{parallel, DcExact, ExactOptions, SolveContext, SolveStats};
use dds_shard::{ShardConfig, ShardedEngine};
use dds_sketch::{SketchConfig, SketchEngine};
use dds_stream::{
    replay, replay_window, Batch, BatchBy, DynamicGraph, Event, StreamConfig, StreamEngine,
    WindowConfig, WindowEngine, WindowMode,
};

use crate::report::time;
use crate::{stream_workloads, workloads};

/// The experiments `full`/`compare` cover, in order.
pub const EXPERIMENTS: [&str; 9] = [
    "e12", "e13", "e14", "e15", "e16", "e17", "e18", "e19", "e20",
];

/// Relative tolerance on deterministic counters when comparing runs.
/// The streams are seeded and the engines deterministic, so counters
/// should match exactly; the slack absorbs deliberate small tunings
/// without letting a policy regression (2x refresh storm) through.
pub const COUNTER_TOLERANCE: f64 = 0.10;
/// Absolute slack on tiny counters (|new - old| ≤ this always passes).
pub const COUNTER_SLACK: u64 = 2;
/// Relative tolerance on realized factors (bracket quality).
pub const FACTOR_TOLERANCE: f64 = 0.10;
/// Wall-clock tolerance: `new ≤ old * WALL_FACTOR + WALL_SLACK_MS`.
/// Generous on purpose — baselines travel between machines; the wall
/// check only catches order-of-magnitude cost regressions.
pub const WALL_FACTOR: f64 = 5.0;
/// Absolute wall slack in milliseconds.
pub const WALL_SLACK_MS: u64 = 1_000;

/// One experiment's measured perf record.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Experiment id (`e12`…`e20`).
    pub exp: String,
    /// Workload mode: `quick` or `full`.
    pub mode: String,
    /// Wall-clock of the measured replay, in milliseconds.
    pub wall_ms: u64,
    /// Deterministic work counters (epochs, re-solves, flow decisions…).
    pub counters: BTreeMap<String, u64>,
    /// Realized quality factors (certified bracket ratios and the like).
    pub factors: BTreeMap<String, f64>,
}

impl BenchRecord {
    /// Renders the flat JSON document [`parse_record`] accepts.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut entries = vec![
            format!("  \"exp\": \"{}\"", self.exp),
            format!("  \"mode\": \"{}\"", self.mode),
            format!("  \"wall_ms\": {}", self.wall_ms),
        ];
        for (k, v) in &self.counters {
            entries.push(format!("  \"counter.{k}\": {v}"));
        }
        for (k, v) in &self.factors {
            entries.push(format!("  \"factor.{k}\": {v:.6}"));
        }
        let mut s = String::from("{\n");
        let _ = write!(s, "{}", entries.join(",\n"));
        s.push_str("\n}\n");
        s
    }

    /// The file name a record lands under: `BENCH_E12.json` etc.
    #[must_use]
    pub fn file_name(exp: &str) -> String {
        format!("BENCH_{}.json", exp.to_uppercase())
    }
}

/// Parses (and thereby schema-validates) a [`BenchRecord`] JSON document:
/// a flat object, one pair per line, with required `exp`/`mode`/`wall_ms`
/// keys and only `counter.*` (non-negative integer) / `factor.*` (finite
/// number) keys besides.
///
/// # Errors
/// Returns a description of the first schema violation.
pub fn parse_record(text: &str) -> Result<BenchRecord, String> {
    let mut exp = None;
    let mut mode = None;
    let mut wall_ms = None;
    let mut counters = BTreeMap::new();
    let mut factors = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim().trim_end_matches(',');
        if trimmed.is_empty() || trimmed == "{" || trimmed == "}" {
            continue;
        }
        let (key, value) = trimmed
            .split_once(':')
            .ok_or_else(|| format!("line {}: expected \"key\": value", i + 1))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("line {}: key must be double-quoted", i + 1))?;
        let value = value.trim();
        match key {
            "exp" => exp = Some(parse_json_string(value, i + 1)?),
            "mode" => mode = Some(parse_json_string(value, i + 1)?),
            "wall_ms" => {
                wall_ms = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("line {}: wall_ms must be an integer", i + 1))?,
                );
            }
            _ => {
                if let Some(name) = key.strip_prefix("counter.") {
                    let v = value.parse::<u64>().map_err(|_| {
                        format!("line {}: counter {name:?} must be an integer", i + 1)
                    })?;
                    counters.insert(name.to_string(), v);
                } else if let Some(name) = key.strip_prefix("factor.") {
                    let v = value
                        .parse::<f64>()
                        .map_err(|_| format!("line {}: factor {name:?} must be a number", i + 1))?;
                    if !v.is_finite() {
                        return Err(format!("line {}: factor {name:?} must be finite", i + 1));
                    }
                    factors.insert(name.to_string(), v);
                } else {
                    return Err(format!("line {}: unknown key {key:?}", i + 1));
                }
            }
        }
    }
    let exp = exp.ok_or("missing \"exp\"")?;
    if !EXPERIMENTS.contains(&exp.as_str()) {
        return Err(format!("unknown experiment {exp:?}"));
    }
    let mode = mode.ok_or("missing \"mode\"")?;
    if mode != "quick" && mode != "full" {
        return Err(format!("mode must be \"quick\" or \"full\", got {mode:?}"));
    }
    Ok(BenchRecord {
        exp,
        mode,
        wall_ms: wall_ms.ok_or("missing \"wall_ms\"")?,
        counters,
        factors,
    })
}

fn parse_json_string(value: &str, line: usize) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("line {line}: expected a double-quoted string"))
}

/// Measures one experiment's perf record. Streams are seeded and the
/// engines deterministic, so everything but `wall_ms` is reproducible.
///
/// # Panics
/// Panics on an unknown experiment id.
#[must_use]
pub fn measure(exp: &str, quick: bool) -> BenchRecord {
    let mode = if quick { "quick" } else { "full" };
    let (wall, counters, factors) = match exp {
        "e12" => measure_e12(quick),
        "e13" => measure_e13(quick),
        "e14" => measure_e14(quick),
        "e15" => measure_e15(quick),
        "e16" => measure_e16(quick),
        "e17" => measure_e17(quick),
        "e18" => measure_e18(quick),
        "e19" => measure_e19(quick),
        "e20" => measure_e20(quick),
        other => panic!("unknown experiment {other:?} (expected e12..e20)"),
    };
    BenchRecord {
        exp: exp.to_string(),
        mode: mode.to_string(),
        wall_ms: wall,
        counters,
        factors,
    }
}

type Measurement = (u64, BTreeMap<String, u64>, BTreeMap<String, f64>);

fn counter_map<const N: usize>(pairs: [(&str, u64); N]) -> BTreeMap<String, u64> {
    pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

fn factor_map<const N: usize>(pairs: [(&str, f64); N]) -> BTreeMap<String, f64> {
    pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

fn fold_solve_stats(stats: impl Iterator<Item = Option<SolveStats>>) -> SolveStats {
    stats.flatten().fold(SolveStats::default(), |mut acc, s| {
        acc.merge(s);
        acc
    })
}

/// E12 — streaming lazy re-solve on the churn workload.
fn measure_e12(quick: bool) -> Measurement {
    let events = stream_workloads::churn(
        400,
        2_500,
        (32, 32),
        if quick { 20_000 } else { 100_000 },
        0xDD5,
    );
    let mut engine = StreamEngine::new(StreamConfig::default());
    let (reports, wall) = time(|| replay(&mut engine, &events, BatchBy::Count(100)));
    let solve = fold_solve_stats(reports.iter().map(|r| r.solve_stats));
    let max_factor = reports
        .iter()
        .map(|r| r.certified_factor)
        .fold(1.0f64, f64::max);
    (
        wall.as_millis() as u64,
        counter_map([
            ("epochs", reports.len() as u64),
            ("resolves", engine.resolves()),
            ("ratios_solved", solve.ratios_solved as u64),
            ("flow_decisions", solve.flow_decisions as u64),
        ]),
        factor_map([("max_certified", max_factor)]),
    )
}

/// E13 — the `SolveContext` exact pipeline on the planted block.
fn measure_e13(quick: bool) -> Measurement {
    let p = workloads::planted_block(if quick { 200 } else { 500 });
    let (report, wall) = time(|| DcExact::new().solve(&p.graph));
    let s = report.stats();
    let planted = p.pair.density(&p.graph).to_f64();
    (
        wall.as_millis() as u64,
        counter_map([
            ("ratios_solved", s.ratios_solved as u64),
            ("flow_decisions", s.flow_decisions as u64),
            ("arena_reuse_hits", s.arena_reuse_hits as u64),
            ("core_cache_hits", s.core_cache_hits as u64),
        ]),
        factor_map([(
            "density_vs_planted",
            report.solution.density.to_f64() / planted.max(f64::MIN_POSITIVE),
        )]),
    )
}

/// E14 — sliding-window maintenance through the window-native engine.
fn measure_e14(quick: bool) -> Measurement {
    let events = stream_workloads::arrivals(400, if quick { 10_000 } else { 20_000 }, 0xDD5);
    let mut engine = WindowEngine::new(WindowConfig {
        tolerance: 0.25,
        slack: 2.0,
        exact_escalation: true,
        ..WindowConfig::new(4_000)
    });
    let (reports, wall) = time(|| replay_window(&mut engine, &events, BatchBy::Count(25)));
    let exact = reports
        .iter()
        .filter(|r| r.mode == WindowMode::ExactResolve)
        .count() as u64;
    let max_factor = reports
        .iter()
        .map(|r| r.certified_factor)
        .fold(1.0f64, f64::max);
    (
        wall.as_millis() as u64,
        counter_map([
            ("epochs", reports.len() as u64),
            ("refreshes", engine.refreshes()),
            ("exact_solves", exact),
            ("expired", engine.expired()),
            ("repairs", engine.repairs()),
        ]),
        factor_map([("max_certified", max_factor)]),
    )
}

/// E15 — the sublinear sketch tier behind a canonicalising mirror.
fn measure_e15(quick: bool) -> Measurement {
    let events = stream_workloads::churn(
        400,
        4_000,
        (32, 32),
        if quick { 20_000 } else { 100_000 },
        0xDD5,
    );
    let mut mirror = DynamicGraph::new();
    let mut sketch = SketchEngine::new(SketchConfig {
        state_bound: 500,
        ..SketchConfig::default()
    });
    let mut epochs = 0u64;
    let mut max_ratio = 1.0f64;
    let ((), wall) = time(|| {
        for chunk in events.chunks(100) {
            for ev in chunk {
                match ev.event {
                    Event::Insert(u, v) => {
                        if mirror.insert(u, v) {
                            sketch.insert(u, v);
                        }
                    }
                    Event::Delete(u, v) => {
                        if mirror.delete(u, v) {
                            sketch.delete(u, v);
                        }
                    }
                }
            }
            if sketch.is_undersampled() {
                sketch.rebuild(mirror.edges());
            }
            let r = sketch.seal_epoch();
            epochs += 1;
            if r.lower > 0.0 {
                max_ratio = max_ratio.max(r.upper / r.lower);
            }
        }
    });
    let stats = sketch.stats();
    (
        wall.as_millis() as u64,
        counter_map([
            ("epochs", epochs),
            ("refreshes", stats.refreshes),
            ("escalations", stats.escalations),
            ("subsamples", stats.subsamples),
            ("peak_retained", stats.peak_retained as u64),
        ]),
        factor_map([("max_bracket_ratio", max_ratio)]),
    )
}

/// E16 — shard scaling: the E15 churn workload through K = 4 shards.
fn measure_e16(quick: bool) -> Measurement {
    let events = stream_workloads::churn(
        400,
        4_000,
        (32, 32),
        if quick { 20_000 } else { 100_000 },
        0xDD5,
    );
    let mut engine = ShardedEngine::new(ShardConfig {
        shards: 4,
        threads: 4,
        sketch: SketchConfig {
            state_bound: 500,
            ..SketchConfig::default()
        },
        ..ShardConfig::default()
    });
    let mut max_factor = 1.0f64;
    let (epochs, wall) = time(|| {
        let mut epochs = 0u64;
        for chunk in events.chunks(100) {
            let r = engine.apply(&Batch::from_events(chunk.to_vec()));
            max_factor = max_factor.max(r.certified_factor);
            epochs += 1;
        }
        epochs
    });
    let stats = engine.stats();
    (
        wall.as_millis() as u64,
        counter_map([
            ("epochs", epochs),
            ("refreshes", stats.refreshes),
            ("escalations", stats.escalations),
            ("retained", stats.retained as u64),
        ]),
        factor_map([("max_certified", max_factor)]),
    )
}

/// E17 — the worker pool's exact kernel: the serial engine's
/// deterministic counters plus the pool-backed (all levers on, one
/// worker per core) wall clock on the planted single-dominant-ratio
/// instance. The density ratio factor pins answer identity: anything
/// other than exactly 1.0 means the parallel engine diverged.
fn measure_e17(quick: bool) -> Measurement {
    let p = workloads::planted_block(if quick { 250 } else { 2_500 });
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let serial = DcExact::new().solve(&p.graph);
    let s = serial.stats();
    let mut ctx = SolveContext::new();
    let (par, wall) = time(|| {
        parallel::dc_exact_parallel_with(&mut ctx, &p.graph, ExactOptions::default(), cores)
    });
    assert_eq!(
        par.solution.density, serial.solution.density,
        "pool-backed solve diverged from serial"
    );
    (
        wall.as_millis() as u64,
        counter_map([
            ("ratios_solved", s.ratios_solved as u64),
            ("flow_decisions", s.flow_decisions as u64),
        ]),
        factor_map([(
            "parallel_vs_serial_density",
            par.solution.density.to_f64() / serial.solution.density.to_f64().max(f64::MIN_POSITIVE),
        )]),
    )
}

/// E18 — the query-serving tier: a churn replay publishing one snapshot
/// per epoch while fixed-count client threads hammer the TCP front end.
/// Every counter is deterministic: the stream is seeded (epochs,
/// publishes, engine re-solves) and each client issues *exactly* its
/// budgeted query count before exiting, so the total served query count
/// is a constant regardless of how ingestion and serving interleave.
/// Wall-clock-sensitive numbers (latency percentiles, qps) belong to the
/// E18 table, not this record.
fn measure_e18(quick: bool) -> Measurement {
    use crate::serve_load::{run_clients, ClientPlan};
    use dds_serve::{EpochFacts, PublishOptions, Publisher, ServeMetrics, Server, SnapshotCell};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    let events = stream_workloads::churn(
        400,
        4_000,
        (32, 32),
        if quick { 20_000 } else { 100_000 },
        0xDD5,
    );
    let clients = 2usize;
    let per_client = if quick { 200u64 } else { 1_000u64 };
    let mut engine = StreamEngine::new(StreamConfig {
        solver: dds_stream::SolverKind::CoreApprox,
        ..StreamConfig::default()
    });
    let cell = Arc::new(SnapshotCell::new());
    let metrics = Arc::new(ServeMetrics::new());
    let mut publisher = Publisher::new(
        Arc::clone(&cell),
        PublishOptions {
            core: Some((1, 1)),
            top_k: 2,
        },
        Arc::clone(&metrics),
    );
    let server = Server::start("127.0.0.1:0", Arc::clone(&cell), 2, Arc::clone(&metrics))
        .expect("bind ephemeral port");
    let plan = ClientPlan {
        addr: server.addr(),
        queries: Some(per_client),
        stop: Arc::new(AtomicBool::new(false)),
        core: Some((1, 1)),
        top_k: 2,
    };
    let mut max_factor = 1.0f64;
    let (reports, wall) = time(|| {
        let load = {
            let plan = plan.clone();
            std::thread::spawn(move || run_clients(clients, &plan))
        };
        let mut epoch_reports = Vec::new();
        for chunk in events.chunks(100) {
            let r = engine.apply(&Batch::from_events(chunk.to_vec()));
            publisher.publish(
                EpochFacts {
                    epoch: r.epoch,
                    n: r.n,
                    m: r.m as u64,
                    density: r.density.to_f64(),
                    lower: r.lower,
                    upper: r.upper,
                    witness: engine.witness(),
                    resolved: r.resolved,
                },
                || engine.materialize(),
            );
            epoch_reports.push(r);
        }
        let client_reports = load.join().expect("load clients");
        (epoch_reports, client_reports)
    });
    let (epoch_reports, client_reports) = reports;
    drop(server);
    for r in &epoch_reports {
        max_factor = max_factor.max(r.certified_factor);
    }
    let stale: u64 = client_reports.iter().map(|r| r.stale_violations).sum();
    assert_eq!(stale, 0, "epoch ids went backwards under load");
    (
        wall.as_millis() as u64,
        counter_map([
            ("epochs", epoch_reports.len() as u64),
            ("publishes", metrics.publishes.get()),
            ("resolves", engine.resolves()),
            ("client_queries", clients as u64 * per_client),
        ]),
        factor_map([("max_certified", max_factor)]),
    )
}

/// E19 — the admin introspection plane: a churn replay seals the status
/// board per epoch and feeds the slow-op ring while scraper threads hit
/// `/metrics`, `/status`, and `/readyz`. Every counter is deterministic:
/// the stream is seeded (epochs, engine re-solves), each scraper issues
/// *exactly* its budgeted scrape count before exiting, every scrape must
/// succeed and parse (failures panic, so the record pins them at zero),
/// and readiness flips exactly once. The slow-op ring is fed one seal
/// per epoch to exercise the plane, but ring acceptance keeps the N
/// slowest by real duration, so — like scrape latencies — it belongs to
/// the E19 table, not this record.
fn measure_e19(quick: bool) -> Measurement {
    use dds_obs::{http_get, parse_exposition, AdminServer, Registry, SlowRing, StatusBoard};
    use std::sync::Arc;

    let events = stream_workloads::churn(
        400,
        4_000,
        (32, 32),
        if quick { 20_000 } else { 100_000 },
        0xDD5,
    );
    let scrapers = 2u64;
    let per_scraper = if quick { 100u64 } else { 500u64 };
    let registry = Registry::new();
    let board = Arc::new(StatusBoard::new("stream"));
    let ring = Arc::new(SlowRing::new(16, 0));
    let admin = AdminServer::start(
        "127.0.0.1:0",
        registry.clone(),
        Arc::clone(&board),
        Arc::clone(&ring),
    )
    .expect("bind ephemeral admin port");
    let addr = admin.addr();
    let mut engine = StreamEngine::new(StreamConfig::default());
    engine.attach_obs(&registry);

    let mut epochs = 0u64;
    let mut events_total = 0u64;
    let mut max_factor = 1.0f64;
    let (_, wall) = time(|| {
        let load: Vec<_> = (0..scrapers)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut ready_seen = false;
                    for _ in 0..per_scraper {
                        let (code, body) = http_get(addr, "/metrics").expect("scrape /metrics");
                        assert_eq!(code, 200, "failed /metrics scrape");
                        parse_exposition(&body).expect("every scrape must parse");
                        let (code, _) = http_get(addr, "/status").expect("scrape /status");
                        assert_eq!(code, 200, "failed /status scrape");
                        let (code, _) = http_get(addr, "/readyz").expect("scrape /readyz");
                        match code {
                            200 => ready_seen = true,
                            503 => assert!(!ready_seen, "/readyz went back to not-ready"),
                            other => panic!("failed /readyz scrape: {other}"),
                        }
                    }
                })
            })
            .collect();
        for chunk in events.chunks(100) {
            events_total += chunk.len() as u64;
            let t0 = std::time::Instant::now();
            let r = engine.apply(&Batch::from_events(chunk.to_vec()));
            epochs = r.epoch;
            max_factor = max_factor.max(r.certified_factor);
            ring.record(
                "epoch.seal",
                t0.elapsed().as_micros() as u64,
                &format!("epoch={}", r.epoch),
            );
            board.seal_epoch(
                r.epoch,
                events_total,
                events_total,
                r.density.to_f64(),
                r.lower,
                r.upper,
            );
            board.set_ready();
        }
        for t in load {
            t.join().expect("scraper thread");
        }
    });
    assert_eq!(board.ready_flips(), 1, "readiness flips exactly once");
    let (code, body) = http_get(addr, "/metrics").expect("final scrape");
    assert_eq!(code, 200, "final scrape failed");
    let parsed = parse_exposition(&body).expect("final exposition parses");
    assert!(
        parsed
            .get("dds_stream_epochs_total")
            .is_some_and(|v| v.as_u64() == Some(epochs)),
        "final scrape must reconcile with {epochs} sealed epochs"
    );
    drop(admin);
    (
        wall.as_millis() as u64,
        counter_map([
            ("epochs", epochs),
            ("scrapes", scrapers * per_scraper),
            ("scrape_failures", 0),
            ("ready_flips", board.ready_flips()),
            ("resolves", engine.resolves()),
        ]),
        factor_map([("max_certified", max_factor)]),
    )
}

/// E20 — the cross-process cluster tier, measured through its
/// deterministic merge core: K = 4 worker state machines digest the E16
/// churn workload batch by batch and the coordinator core folds, seals,
/// and certifies every epoch exactly as the TCP runtime does (the
/// `cluster_oracle` integration test pins the two byte-identical). Every
/// counter is deterministic — seeded stream, canonical digest encoding —
/// including `digest_bytes`, the cluster's wire-cost claim:
/// `factor.digest_ratio` is per-epoch digest payload over raw
/// event-file bytes, the number the ISSUE budgets at 5%.
fn measure_e20(quick: bool) -> Measurement {
    use dds_cluster::{ClusterConfig, ClusterCore, Frame, WorkerConfig, WorkerState};

    const SHARDS: usize = 4;
    // The cluster's operating point: 1 000-event epochs amortise the
    // fixed per-digest counter block under the 5% wire budget.
    const BATCH: usize = 1_000;
    let events = stream_workloads::churn(
        400,
        4_000,
        (32, 32),
        if quick { 20_000 } else { 100_000 },
        0xDD5,
    );
    // The raw-byte denominator: what each event costs in the on-disk
    // format workers tail (`{time} + {u} {v}\n`).
    let line_bytes = |ev: &dds_stream::TimedEvent| -> u64 {
        let (sign, u, v) = match ev.event {
            Event::Insert(u, v) => ('+', u, v),
            Event::Delete(u, v) => ('-', u, v),
        };
        format!("{} {sign} {u} {v}\n", ev.time).len() as u64
    };
    let config = ClusterConfig {
        shards: SHARDS,
        batch: BATCH,
        refresh_drift: 0.25,
        sketch: SketchConfig {
            state_bound: 250,
            ..SketchConfig::default()
        },
    };
    let mut core = ClusterCore::new(config);
    let mut workers: Vec<WorkerState> = (0..SHARDS)
        .map(|shard| {
            let mut w = WorkerState::new(WorkerConfig {
                shard,
                shards: SHARDS,
                batch: BATCH,
                sketch: config.sketch,
            });
            w.sync_baseline(); // mirror the fresh handshake: digests are deltas
            w
        })
        .collect();
    let mut max_factor = 1.0f64;
    let mut cursor = 0u64;
    let (epochs, wall) = time(|| {
        let mut epochs = 0u64;
        for chunk in events.chunks(BATCH) {
            let batch = Batch::from_events(chunk.to_vec());
            cursor += chunk.iter().map(line_bytes).sum::<u64>();
            for worker in &mut workers {
                let tallies = worker.apply_batch(&batch);
                let digest = worker.digest(tallies, cursor, 0, false);
                let payload = Frame::Digest(digest.clone()).encode().len() as u64;
                core.offer(digest, payload).expect("offer digest");
            }
            let epoch = core
                .seal_next(false)
                .expect("seal")
                .expect("the frontier is complete, the epoch must seal");
            max_factor = max_factor.max(epoch.certified_factor());
            epochs += 1;
        }
        epochs
    });
    assert_eq!(core.degraded_seals(), 0, "strict in-process merge degraded");
    (
        wall.as_millis() as u64,
        counter_map([
            ("epochs", epochs),
            ("refreshes", core.refreshes()),
            ("escalations", core.escalations()),
            ("digest_bytes", core.digest_bytes()),
        ]),
        factor_map([
            ("max_certified", max_factor),
            (
                "digest_ratio",
                core.digest_bytes() as f64 / core.max_cursor() as f64,
            ),
        ]),
    )
}

/// Runs every experiment and writes the `BENCH_*.json` files into `dir`,
/// re-reading each file through [`parse_record`] so an emission that
/// fails the schema check (or drops a counter) dies here, not in CI's
/// later `compare`.
///
/// # Errors
/// Returns the first IO failure; an emitted file that fails its own
/// schema check surfaces as [`std::io::ErrorKind::InvalidData`].
pub fn run_full(dir: &Path, quick: bool) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for exp in EXPERIMENTS {
        let record = measure(exp, quick);
        let path = dir.join(BenchRecord::file_name(exp));
        std::fs::write(&path, record.to_json())?;
        let reread = parse_record(&std::fs::read_to_string(&path)?)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        // Factors round-trip through a fixed-precision rendering, so only
        // the exact fields take part in the identity check.
        if (&reread.exp, &reread.mode, reread.wall_ms, &reread.counters)
            != (&record.exp, &record.mode, record.wall_ms, &record.counters)
        {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: emitted record did not round-trip", path.display()),
            ));
        }
        println!(
            "{exp}: {} ms, {} counters, {} factors -> {}",
            record.wall_ms,
            record.counters.len(),
            record.factors.len(),
            path.display(),
        );
    }
    Ok(())
}

/// One counter/factor/wall deviation found by [`compare`].
#[derive(Clone, Debug)]
pub struct Regression {
    /// Experiment id.
    pub exp: String,
    /// What regressed (counter/factor name or `wall_ms`).
    pub what: String,
    /// Baseline value (formatted).
    pub old: String,
    /// Fresh value (formatted).
    pub new: String,
}

/// Re-measures each committed baseline in its recorded mode and diffs.
/// Returns the list of regressions (empty = pass).
///
/// # Errors
/// Returns a description if a baseline is missing or fails the schema.
pub fn compare(dir: &Path) -> Result<Vec<Regression>, String> {
    let mut regressions = Vec::new();
    for exp in EXPERIMENTS {
        let path = dir.join(BenchRecord::file_name(exp));
        let text = std::fs::read_to_string(&path).map_err(|e| {
            format!(
                "reading {}: {e} (run `dds-bench full` first)",
                path.display()
            )
        })?;
        let old = parse_record(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        if old.exp != exp {
            return Err(format!(
                "{}: records {:?}, expected {exp:?}",
                path.display(),
                old.exp
            ));
        }
        let new = measure(exp, old.mode == "quick");
        for (name, &old_v) in &old.counters {
            let new_v = new.counters.get(name).copied().unwrap_or(0);
            if counter_regressed(old_v, new_v) {
                regressions.push(Regression {
                    exp: exp.to_string(),
                    what: format!("counter.{name}"),
                    old: old_v.to_string(),
                    new: new_v.to_string(),
                });
            }
        }
        for (name, &old_v) in &old.factors {
            let new_v = new.factors.get(name).copied().unwrap_or(f64::INFINITY);
            if (new_v - old_v).abs() > old_v.abs() * FACTOR_TOLERANCE {
                regressions.push(Regression {
                    exp: exp.to_string(),
                    what: format!("factor.{name}"),
                    old: format!("{old_v:.4}"),
                    new: format!("{new_v:.4}"),
                });
            }
        }
        let wall_cap = (old.wall_ms as f64 * WALL_FACTOR) as u64 + WALL_SLACK_MS;
        if new.wall_ms > wall_cap {
            regressions.push(Regression {
                exp: exp.to_string(),
                what: "wall_ms".to_string(),
                old: format!("{} (cap {wall_cap})", old.wall_ms),
                new: new.wall_ms.to_string(),
            });
        }
        println!(
            "{exp} ({}): wall {} -> {} ms, {} counters checked",
            old.mode,
            old.wall_ms,
            new.wall_ms,
            old.counters.len(),
        );
    }
    Ok(regressions)
}

/// Counter comparison: both directions matter (fewer refreshes than the
/// baseline can mean a broken certificate just as more can mean a storm).
fn counter_regressed(old: u64, new: u64) -> bool {
    let diff = old.abs_diff(new);
    diff > COUNTER_SLACK && diff as f64 > old as f64 * COUNTER_TOLERANCE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_through_json() {
        let record = BenchRecord {
            exp: "e12".into(),
            mode: "quick".into(),
            wall_ms: 42,
            counters: counter_map([("epochs", 7), ("resolves", 2)]),
            factors: factor_map([("max_certified", 1.25)]),
        };
        let parsed = parse_record(&record.to_json()).unwrap();
        assert_eq!(parsed, record);
    }

    #[test]
    fn schema_violations_are_rejected() {
        for (text, why) in [
            ("{\n}\n", "missing exp"),
            ("{\n  \"exp\": \"e12\",\n  \"mode\": \"quick\"\n}\n", "missing wall_ms"),
            (
                "{\n  \"exp\": \"e99\",\n  \"mode\": \"quick\",\n  \"wall_ms\": 1\n}\n",
                "unknown experiment",
            ),
            (
                "{\n  \"exp\": \"e12\",\n  \"mode\": \"slow\",\n  \"wall_ms\": 1\n}\n",
                "bad mode",
            ),
            (
                "{\n  \"exp\": \"e12\",\n  \"mode\": \"quick\",\n  \"wall_ms\": 1,\n  \"bogus\": 3\n}\n",
                "unknown key",
            ),
            (
                "{\n  \"exp\": \"e12\",\n  \"mode\": \"quick\",\n  \"wall_ms\": 1,\n  \"counter.x\": 1.5\n}\n",
                "non-integer counter",
            ),
        ] {
            assert!(parse_record(text).is_err(), "{why} must fail schema");
        }
    }

    #[test]
    fn counter_tolerance_passes_small_and_catches_big_drift() {
        assert!(!counter_regressed(100, 100));
        assert!(!counter_regressed(100, 109));
        assert!(counter_regressed(100, 120));
        assert!(counter_regressed(100, 80));
        // Tiny counters ride the absolute slack.
        assert!(!counter_regressed(1, 3));
        assert!(counter_regressed(1, 4));
    }

    #[test]
    fn measure_is_deterministic_on_counters() {
        let a = measure("e12", true);
        let b = measure("e12", true);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.factors, b.factors);
    }
}
