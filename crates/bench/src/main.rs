//! Experiment harness entry point.
//!
//! ```sh
//! cargo run -p dds-bench --release -- all          # every experiment
//! cargo run -p dds-bench --release -- e2 e5        # a subset
//! cargo run -p dds-bench --release -- all --quick  # smoke-test sizes
//! ```

use dds_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    if ids.is_empty() {
        eprintln!("usage: dds-bench (all | e1..e11)... [--quick]");
        std::process::exit(2);
    }
    let t0 = std::time::Instant::now();
    for id in ids {
        if id == "all" {
            for e in experiments::ALL {
                experiments::run(e, quick);
            }
        } else {
            experiments::run(id, quick);
        }
    }
    println!("\ntotal harness time: {:?}", t0.elapsed());
}
