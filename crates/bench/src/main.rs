//! Experiment harness entry point.
//!
//! ```sh
//! cargo run -p dds-bench --release -- all          # every experiment
//! cargo run -p dds-bench --release -- e2 e5        # a subset
//! cargo run -p dds-bench --release -- all --quick  # smoke-test sizes
//!
//! # Write a stream-workload event file for `dds stream`:
//! cargo run -p dds-bench --release -- stream-gen churn --events 100000 --out churn.events
//! ```

use dds_bench::{experiments, perf, stream_workloads};

const USAGE: &str = "usage:
  dds-bench (all | e1..e20)... [--quick]
  dds-bench full [--quick] [--dir D]     write BENCH_E12..E20.json perf records
  dds-bench compare [--dir D]            diff a fresh run against the committed records
  dds-bench smoke
  dds-bench window-smoke
  dds-bench sketch-smoke
  dds-bench shard-smoke
  dds-bench snapshot-smoke
  dds-bench obs-smoke
  dds-bench pool-smoke
  dds-bench serve-smoke
  dds-bench admin-smoke
  dds-bench cluster-smoke
  dds-bench stream-gen (churn|window|emerge|arrivals|recurring) --out <file>
            [--events N] [--n N] [--m M] [--block S,T] [--period P] [--seed S]";

/// Set in the environment of re-exec'd `cluster-smoke` worker processes
/// (value `k/K`); dispatched before argument parsing so the bench binary
/// can double as its own worker fleet.
const SMOKE_ROLE: &str = "DDS_CLUSTER_SMOKE_ROLE";

fn main() {
    if std::env::var(SMOKE_ROLE).is_ok() {
        cluster_smoke_worker();
        return;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("stream-gen") {
        if let Err(msg) = stream_gen(&args[1..]) {
            eprintln!("dds-bench: {msg}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
        return;
    }
    if args.first().map(String::as_str) == Some("smoke") {
        smoke_exact();
        return;
    }
    if args.first().map(String::as_str) == Some("window-smoke") {
        smoke_window();
        return;
    }
    if args.first().map(String::as_str) == Some("sketch-smoke") {
        smoke_sketch();
        return;
    }
    if args.first().map(String::as_str) == Some("shard-smoke") {
        smoke_shard();
        return;
    }
    if args.first().map(String::as_str) == Some("snapshot-smoke") {
        smoke_snapshot();
        return;
    }
    if args.first().map(String::as_str) == Some("obs-smoke") {
        smoke_obs();
        return;
    }
    if args.first().map(String::as_str) == Some("pool-smoke") {
        smoke_pool();
        return;
    }
    if args.first().map(String::as_str) == Some("serve-smoke") {
        smoke_serve();
        return;
    }
    if args.first().map(String::as_str) == Some("admin-smoke") {
        smoke_admin();
        return;
    }
    if args.first().map(String::as_str) == Some("cluster-smoke") {
        smoke_cluster();
        return;
    }
    if args.first().map(String::as_str) == Some("full") {
        let quick = args.iter().any(|a| a == "--quick");
        let dir = flag_value(&args, "--dir").unwrap_or_else(|| ".".into());
        if let Err(e) = perf::run_full(std::path::Path::new(&dir), quick) {
            eprintln!("dds-bench full: {e}");
            std::process::exit(1);
        }
        return;
    }
    if args.first().map(String::as_str) == Some("compare") {
        let dir = flag_value(&args, "--dir").unwrap_or_else(|| ".".into());
        match perf::compare(std::path::Path::new(&dir)) {
            Ok(regressions) if regressions.is_empty() => println!("compare: OK"),
            Ok(regressions) => {
                for r in &regressions {
                    eprintln!(
                        "REGRESSION {} {}: baseline {} vs fresh {}",
                        r.exp, r.what, r.old, r.new
                    );
                }
                eprintln!("compare: {} regression(s)", regressions.len());
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("dds-bench compare: {e}");
                std::process::exit(2);
            }
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if ids.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let t0 = std::time::Instant::now();
    for id in ids {
        if id == "all" {
            for e in experiments::ALL {
                experiments::run(e, quick);
            }
        } else {
            experiments::run(id, quick);
        }
    }
    println!("\ntotal harness time: {:?}", t0.elapsed());
}

/// `stream-gen <scenario> --out <file> [--events N] [--n N] [--m M]
/// [--block S,T] [--seed S]` — writes a seeded event stream in the format
/// `dds stream` replays.
fn stream_gen(args: &[String]) -> Result<(), String> {
    let mut it = args.iter().map(String::as_str);
    let scenario = it
        .next()
        .ok_or("stream-gen needs a scenario: churn|window|emerge")?;
    let mut events = 100_000usize;
    let mut n = 500usize;
    let mut m = 2_500usize;
    let mut block = (32usize, 32usize);
    let mut period = 2_000usize;
    let mut seed = 0xDD5u64;
    let mut out: Option<String> = None;
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match flag {
            "--events" => events = parse(value("--events")?, "--events")?,
            "--n" => n = parse(value("--n")?, "--n")?,
            "--m" => m = parse(value("--m")?, "--m")?,
            "--seed" => seed = parse(value("--seed")?, "--seed")?,
            "--block" => {
                let v = value("--block")?;
                let (s, t) = v.split_once(',').ok_or("--block expects S,T")?;
                block = (parse(s, "--block S")?, parse(t, "--block T")?);
            }
            "--period" => period = parse(value("--period")?, "--period")?,
            "--out" => out = Some(value("--out")?.to_string()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let out = out.ok_or("stream-gen needs --out <file>")?;
    let stream = match scenario {
        "churn" => stream_workloads::churn(n, m, block, events, seed),
        "window" => stream_workloads::sliding_window(n, m, events, seed),
        "emerge" => stream_workloads::planted_emerge(n, m, block, events, seed),
        "arrivals" => stream_workloads::arrivals(n, events, seed),
        "recurring" => stream_workloads::recurring_block(n, block, period, events, seed),
        other => {
            return Err(format!(
                "unknown scenario {other:?} (expected churn|window|emerge|arrivals|recurring)"
            ))
        }
    };
    dds_stream::save_events(&stream, &out).map_err(|e| format!("writing {out:?}: {e}"))?;
    println!("wrote {} events ({scenario}) to {out}", stream.len());
    Ok(())
}

fn parse<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("invalid value {raw:?} for {flag}"))
}

/// The value following `flag` in `args`, if any.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// CI window smoke: a seeded 20k-event sliding-window replay through the
/// window-native engine, with wall-clock-free budget assertions — every
/// epoch must end inside its certified band and exact escalations must
/// stay under a fixed count, so decremental-core or drift regressions
/// fail the build instead of silently degrading to re-solve storms.
///
/// Budget calibration: this replay measures 289 core refreshes and 5
/// exact escalations over 800 epochs (release, 2026-07). The budgets
/// below carry ~1.4x/2.4x headroom, while a broken decremental repair or
/// drift certificate (which collapses the lower bound every epoch and
/// refreshes all 800) blows through them immediately.
fn smoke_window() {
    use dds_stream::{replay_window, BatchBy, WindowConfig, WindowEngine, WindowMode};

    const EXACT_BUDGET: usize = 12;
    const REFRESH_BUDGET: usize = 400;
    let events = dds_bench::stream_workloads::arrivals(400, 20_000, 0xDD5);
    let mut engine = WindowEngine::new(WindowConfig {
        tolerance: 0.25,
        slack: 2.0,
        exact_escalation: true,
        ..WindowConfig::new(4_000)
    });
    let t0 = std::time::Instant::now();
    let reports = replay_window(&mut engine, &events, BatchBy::Count(25));
    let elapsed = t0.elapsed();
    let epochs = reports.len();
    let refreshes = reports
        .iter()
        .filter(|r| r.mode != WindowMode::Incremental)
        .count();
    let exact = reports
        .iter()
        .filter(|r| r.mode == WindowMode::ExactResolve)
        .count();
    let uncertified = reports.iter().filter(|r| !r.within_band).count();
    println!(
        "window-smoke: 20k arrivals, window 4000, {epochs} epochs in {elapsed:?}: \
         {refreshes} refreshes ({exact} exact), {} expired, {} repairs, final m = {}",
        engine.expired(),
        engine.repairs(),
        engine.m(),
    );
    assert_eq!(
        uncertified, 0,
        "{uncertified} epochs ended outside their certified band"
    );
    assert!(
        exact <= EXACT_BUDGET,
        "exact-escalation budget exceeded: {exact} > {EXACT_BUDGET} — the incremental \
         certificate or decremental core regressed"
    );
    assert!(
        refreshes <= REFRESH_BUDGET,
        "refresh budget exceeded: {refreshes} > {REFRESH_BUDGET}"
    );
    println!("window-smoke: OK (budgets: {EXACT_BUDGET} exact, {REFRESH_BUDGET} refreshes)");
}

/// CI sketch smoke: a seeded 100k-event churn replay through a standalone
/// [`dds_sketch::SketchEngine`] behind a canonicalising full-graph mirror,
/// asserting the tier's three contracts on every epoch or at sampled
/// epochs: (1) the retained set never exceeds the configured state bound,
/// (2) the certified bracket contains a fresh exact solve of the full
/// graph, (3) the whole replay fits a generous wall-time budget (the only
/// wall-clock assert in CI — the sketch exists to be cheap, so a 10x cost
/// regression should fail the build even if it stays "correct").
///
/// Budget calibration: this replay measures 107 refreshes (deterministic:
/// seeded stream, deterministic engine) and ~2 s wall (release, 2026-07).
/// The budgets below carry ~1.5x and ~15x headroom respectively; a broken
/// subsampler (level stuck at 0) trips the per-epoch state-bound assert
/// immediately. The planted
/// block is deliberately denser than the background average (rho = 32 vs
/// m/n ~ 13) so the sampled spot-check solves stay sharp and fast.
fn smoke_sketch() {
    use dds_core::DcExact;
    use dds_sketch::{SketchConfig, SketchEngine};
    use dds_stream::{DynamicGraph, Event};

    const BOUND: usize = 500;
    const REFRESH_BUDGET: u64 = 160;
    const WALL_BUDGET_S: f64 = 30.0;
    let events = dds_bench::stream_workloads::churn(400, 4_000, (32, 32), 100_000, 0xDD5);
    let mut mirror = DynamicGraph::new();
    let mut sketch = SketchEngine::new(SketchConfig {
        state_bound: BOUND,
        ..SketchConfig::default()
    });
    let t0 = std::time::Instant::now();
    let mut epochs = 0u64;
    let mut checks = 0u32;
    for chunk in events.chunks(100) {
        for ev in chunk {
            match ev.event {
                Event::Insert(u, v) => {
                    if mirror.insert(u, v) {
                        sketch.insert(u, v);
                    }
                }
                Event::Delete(u, v) => {
                    if mirror.delete(u, v) {
                        sketch.delete(u, v);
                    }
                }
            }
        }
        if sketch.is_undersampled() {
            sketch.rebuild(mirror.edges()); // the mirror owns the live set
        }
        let r = sketch.seal_epoch();
        epochs += 1;
        assert!(
            r.retained <= BOUND,
            "epoch {epochs}: retained {} broke the state bound {BOUND}",
            r.retained
        );
        if epochs.is_multiple_of(250) {
            let exact = DcExact::new().solve(&mirror.materialize()).solution.density;
            assert!(
                r.density <= exact && exact.to_f64() <= r.upper * (1.0 + 1e-9),
                "epoch {epochs}: bracket [{}, {}] misses exact {exact}",
                r.lower,
                r.upper
            );
            checks += 1;
        }
    }
    let elapsed = t0.elapsed();
    let stats = sketch.stats();
    println!(
        "sketch-smoke: {} events, {epochs} epochs in {elapsed:?}: retained {} (peak {}) of {} live, \
         level {}, {} subsamples, {} refreshes, {checks} bracket spot-checks",
        events.len(),
        stats.retained,
        stats.peak_retained,
        mirror.m(),
        stats.level,
        stats.subsamples,
        stats.refreshes,
    );
    assert!(stats.level >= 1, "the subsampler never engaged");
    assert!(
        stats.refreshes <= REFRESH_BUDGET,
        "refresh budget exceeded: {} > {REFRESH_BUDGET} — the drift policy regressed",
        stats.refreshes
    );
    assert!(
        elapsed.as_secs_f64() < WALL_BUDGET_S,
        "wall budget exceeded: {elapsed:?} > {WALL_BUDGET_S}s"
    );
    println!("sketch-smoke: OK (budgets: {REFRESH_BUDGET} refreshes, {WALL_BUDGET_S}s wall)");
}

/// CI shard smoke: the 100k-event churn replay through a K = 4
/// [`dds_shard::ShardedEngine`] with per-epoch merged-bracket validation —
/// every epoch must report an internally consistent bracket over an edge
/// set identical to a `DynamicGraph` mirror's, with every shard inside
/// its state bound; at sampled epochs the bracket must contain a fresh
/// full-graph exact solve. A generous wall budget guards against cost
/// regressions in the merge path (the engine exists to make batches
/// cheap; a 10x apply/certify regression should fail the build even if
/// it stays correct).
///
/// Budget calibration: this replay measures 107 merged refreshes
/// (deterministic: seeded stream, deterministic engine) and ~2.5 s wall
/// (release, single-core runner, 2026-07). The budgets below carry ~1.5x
/// and ~12x headroom.
fn smoke_shard() {
    use dds_core::DcExact;
    use dds_shard::{ShardConfig, ShardedEngine};
    use dds_sketch::SketchConfig;
    use dds_stream::{Batch, DynamicGraph};

    const BOUND: usize = 500;
    const REFRESH_BUDGET: u64 = 160;
    const WALL_BUDGET_S: f64 = 30.0;
    let events = dds_bench::stream_workloads::churn(400, 4_000, (32, 32), 100_000, 0xDD5);
    let mut engine = ShardedEngine::new(ShardConfig {
        shards: 4,
        threads: 4,
        sketch: SketchConfig {
            state_bound: BOUND,
            ..SketchConfig::default()
        },
        ..ShardConfig::default()
    });
    let mut mirror = DynamicGraph::new();
    let t0 = std::time::Instant::now();
    let mut epochs = 0u64;
    let mut checks = 0u32;
    for chunk in events.chunks(100) {
        for ev in chunk {
            match ev.event {
                dds_stream::Event::Insert(u, v) => {
                    mirror.insert(u, v);
                }
                dds_stream::Event::Delete(u, v) => {
                    mirror.delete(u, v);
                }
            }
        }
        let r = engine.apply(&Batch::from_events(chunk.to_vec()));
        epochs += 1;
        assert_eq!(
            r.m as usize,
            mirror.m(),
            "epoch {epochs}: sharded edge set diverged from the mirror"
        );
        assert!(
            r.lower <= r.upper * (1.0 + 1e-9),
            "epoch {epochs}: inverted bracket [{}, {}]",
            r.lower,
            r.upper
        );
        assert!(
            engine.stats().retained <= 4 * BOUND,
            "epoch {epochs}: pooled retained {} broke the 4x{BOUND} bound",
            engine.stats().retained
        );
        if epochs.is_multiple_of(250) {
            let exact = DcExact::new().solve(&mirror.materialize()).solution.density;
            assert!(
                r.density <= exact && exact.to_f64() <= r.upper * (1.0 + 1e-9),
                "epoch {epochs}: bracket [{}, {}] misses exact {exact}",
                r.lower,
                r.upper
            );
            checks += 1;
        }
    }
    let elapsed = t0.elapsed();
    let stats = engine.stats();
    println!(
        "shard-smoke: {} events, {epochs} epochs in {elapsed:?}: K=4 levels {:?}, retained {} of {} live, \
         {} merged refreshes ({} escalated), apply {:?}, certify {:?}, {checks} bracket spot-checks",
        events.len(),
        stats.levels,
        stats.retained,
        engine.m(),
        stats.refreshes,
        stats.escalations,
        stats.apply,
        stats.certify,
    );
    assert!(
        stats.refreshes <= REFRESH_BUDGET,
        "refresh budget exceeded: {} > {REFRESH_BUDGET} — the pooled drift policy regressed",
        stats.refreshes
    );
    assert!(
        elapsed.as_secs_f64() < WALL_BUDGET_S,
        "wall budget exceeded: {elapsed:?} > {WALL_BUDGET_S}s"
    );
    println!("shard-smoke: OK (budgets: {REFRESH_BUDGET} refreshes, {WALL_BUDGET_S}s wall)");
}

/// CI snapshot smoke: both snapshot-bearing engines run half a churn
/// replay, checkpoint, restore, and finish the stream twice — once on the
/// original engine, once on the restored one. The restored `ShardedEngine`
/// must match bit for bit (its refreshes are history-independent by
/// design); the restored `StreamEngine` must keep an identical edge set
/// and a sound bracket (its warm solver context is perf state, not
/// certificate state). Both must satisfy `snapshot(restore(s)) == s`.
fn smoke_snapshot() {
    use dds_shard::{replay_sharded, ShardConfig, ShardedEngine};
    use dds_sketch::SketchConfig;
    use dds_stream::{replay, BatchBy, StreamConfig, StreamEngine};

    let events = dds_bench::stream_workloads::churn(300, 2_000, (24, 24), 20_000, 0xDD5);
    let half = 10_000;

    // ShardedEngine: strict bit-identity, report by report.
    let config = ShardConfig {
        shards: 3,
        threads: 3,
        sketch: SketchConfig {
            state_bound: 400,
            ..SketchConfig::default()
        },
        ..ShardConfig::default()
    };
    let mut original = ShardedEngine::new(config);
    replay_sharded(&mut original, &events[..half], 100);
    let snap = original.snapshot(7);
    let (mut restored, cursor) = ShardedEngine::restore(config, &snap).expect("shard restore");
    assert_eq!(cursor, 7);
    assert_eq!(restored.snapshot(7), snap, "shard round-trip identity");
    let a = replay_sharded(&mut original, &events[half..], 100);
    let b = replay_sharded(&mut restored, &events[half..], 100);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            (x.m, x.refreshed, x.lower.to_bits(), x.upper.to_bits()),
            (y.m, y.refreshed, y.lower.to_bits(), y.upper.to_bits()),
            "shard epoch {} diverged after restore",
            x.epoch
        );
    }
    assert_eq!(original.snapshot(0), restored.snapshot(0));
    println!(
        "snapshot-smoke: shard K=3 snapshot {} bytes, {} epochs resumed bit-identically",
        snap.len(),
        a.len()
    );

    // StreamEngine: round-trip identity + equal edge sets and sound
    // brackets through the rest of the replay.
    let config = StreamConfig::default();
    let mut original = StreamEngine::new(config);
    replay(&mut original, &events[..half], BatchBy::Count(100));
    let snap = original.snapshot(9);
    let (mut restored, cursor) = StreamEngine::restore(config, &snap).expect("stream restore");
    assert_eq!(cursor, 9);
    assert_eq!(restored.snapshot(9), snap, "stream round-trip identity");
    let a = replay(&mut original, &events[half..], BatchBy::Count(100));
    let b = replay(&mut restored, &events[half..], BatchBy::Count(100));
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.m, y.m, "stream epoch {} edge sets diverged", x.epoch);
        assert!(
            x.lower <= x.upper * (1.0 + 1e-9) && y.lower <= y.upper * (1.0 + 1e-9),
            "stream epoch {}: a bracket inverted after restore",
            x.epoch
        );
    }
    let mut ea: Vec<_> = original.materialize().edges().collect();
    let mut eb: Vec<_> = restored.materialize().edges().collect();
    ea.sort_unstable();
    eb.sort_unstable();
    assert_eq!(ea, eb, "stream final edge sets must match");
    println!(
        "snapshot-smoke: stream snapshot {} bytes, {} epochs resumed with identical edge sets",
        snap.len(),
        a.len()
    );
    println!("snapshot-smoke: OK");
}

/// CI obs smoke: a 100k-event follow replay through the real tail loop
/// with a metrics registry attached, asserting (1) the exposition text
/// parses and its counters reconcile exactly with the driver's own epoch
/// and event counts, and (2) attaching metrics costs at most 2% of the
/// apply time over the detached default. The timing gate is the minimum
/// over 5 adjacent disabled/enabled pairs of the pairwise ratio: pairing
/// cancels slow-machine drift between rounds, and a real overhead
/// regression lifts every round's ratio while scheduler noise cannot
/// push all five above the budget. Only the `engine.apply` calls are
/// timed — that is the instrumented path; the tail loop's polling and
/// file IO would just add variance.
/// Counters are always-live cells behind the engine's stats accessors,
/// histograms and gauges only activate on attach — this is the check
/// that the fast path stays fast.
fn smoke_obs() {
    use dds_obs::{parse_exposition, Registry};
    use dds_stream::{follow_events, FollowConfig, StreamConfig, StreamEngine};
    use std::time::Duration;

    const EVENTS: usize = 100_000;
    const ROUNDS: usize = 5;
    const OVERHEAD_FACTOR: f64 = 1.02;
    let events = dds_bench::stream_workloads::churn(400, 4_000, (32, 32), EVENTS, 0xDD5);
    let path = std::env::temp_dir().join(format!("dds_obs_smoke_{}.events", std::process::id()));
    dds_stream::save_events(&events, &path).expect("write event file");

    let run = |registry: Option<&Registry>| {
        let mut engine = StreamEngine::new(StreamConfig::default());
        if let Some(reg) = registry {
            engine.attach_obs(reg);
        }
        let mut epochs = 0u64;
        let mut apply_wall = Duration::ZERO;
        let outcome = follow_events(
            &path,
            FollowConfig {
                batch: 100,
                poll: Duration::from_millis(1),
                idle_exit: Some(Duration::ZERO),
                cursor: 0,
            },
            |batch, _| {
                let t0 = std::time::Instant::now();
                engine.apply(&batch);
                apply_wall += t0.elapsed();
                epochs += 1;
                std::ops::ControlFlow::Continue(())
            },
        )
        .expect("follow");
        (outcome, epochs, apply_wall)
    };

    let mut disabled_wall = f64::INFINITY;
    let mut enabled_wall = f64::INFINITY;
    let mut best_ratio = f64::INFINITY;
    let mut reconciled = None;
    for round in 0..ROUNDS {
        let (_, _, wall) = run(None);
        let disabled = wall.as_secs_f64();
        disabled_wall = disabled_wall.min(disabled);
        let registry = Registry::new();
        let (outcome, epochs, wall) = run(Some(&registry));
        let enabled = wall.as_secs_f64();
        enabled_wall = enabled_wall.min(enabled);
        best_ratio = best_ratio.min(enabled / disabled);
        if round == ROUNDS - 1 {
            reconciled = Some((registry, outcome, epochs));
        }
    }
    let (registry, outcome, epochs) = reconciled.expect("the rounds ran");

    // Exposition parses, and its counters reconcile with the driver.
    let parsed = parse_exposition(&registry.exposition()).expect("exposition must parse");
    assert!(
        parsed
            .get("dds_stream_epochs_total")
            .is_some_and(|v| *v == epochs),
        "epoch counter must match the driver's count"
    );
    assert_eq!(outcome.epochs, epochs, "tail outcome disagrees with driver");
    // The workload is EVENTS churn events plus the generator's warm-up
    // prefix — reconcile against what was actually written.
    let total = events.len() as u64;
    assert_eq!(outcome.events, total, "the tail must replay every event");
    let applied = ["inserts", "deletes", "ignored"]
        .iter()
        .map(|k| {
            registry
                .counter_value(&format!("dds_stream_{k}_total"))
                .unwrap_or(0)
        })
        .sum::<u64>();
    assert_eq!(
        applied, total,
        "inserts + deletes + ignored must cover every event"
    );
    let resolves = registry
        .counter_value("dds_stream_resolves_total")
        .unwrap_or(0);
    assert!(
        resolves >= 1,
        "a 100k churn replay must re-solve at least once"
    );
    println!(
        "obs-smoke: {total} events, {epochs} epochs, {resolves} re-solves; \
         exposition {} series, wall enabled {enabled_wall:.3}s vs disabled {disabled_wall:.3}s",
        parsed.len(),
    );

    // The atomic exposition writer round-trips through a file too.
    let prom = std::env::temp_dir().join(format!("dds_obs_smoke_{}.prom", std::process::id()));
    registry
        .write_exposition_file(&prom)
        .expect("atomic exposition write");
    let reread = parse_exposition(&std::fs::read_to_string(&prom).expect("read exposition"))
        .expect("written exposition must parse");
    assert_eq!(reread, parsed, "file round-trip must preserve every series");

    assert!(
        best_ratio <= OVERHEAD_FACTOR,
        "metrics overhead budget exceeded: every one of {ROUNDS} paired rounds ran the \
         attached replay more than {OVERHEAD_FACTOR}x its adjacent detached replay \
         (best ratio {best_ratio:.3})"
    );
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&prom).ok();
    println!(
        "obs-smoke: OK (best paired overhead ratio {best_ratio:.3}, budget {OVERHEAD_FACTOR}x)"
    );
}

/// CI admin smoke: the live introspection plane must be free under load.
/// A follow replay runs with the admin endpoint attached while a scraper
/// hits `/metrics`, `/status`, and `/readyz` every 50 ms. Gates:
/// zero failed scrapes (every response 200/503-with-body and parseable),
/// `/readyz` flips to ready exactly once and never flips back, and the
/// same paired 2% overhead budget as obs-smoke — minimum over rounds of
/// (replay with admin plane + scraper) / (replay with bare metrics).
fn smoke_admin() {
    use dds_obs::{http_get, parse_exposition, AdminServer, Registry, SlowRing, StatusBoard};
    use dds_stream::{follow_events, FollowConfig, StreamConfig, StreamEngine};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    const EVENTS: usize = 100_000;
    const ROUNDS: usize = 5;
    const OVERHEAD_FACTOR: f64 = 1.02;
    const SCRAPE_EVERY: Duration = Duration::from_millis(50);
    let events = dds_bench::stream_workloads::churn(400, 4_000, (32, 32), EVENTS, 0xDD5);
    let path = std::env::temp_dir().join(format!("dds_admin_smoke_{}.events", std::process::id()));
    dds_stream::save_events(&events, &path).expect("write event file");

    // One follow replay with metrics attached; when `board` is given the
    // admin plane is live and the loop seals it per epoch (the wiring
    // `dds stream --admin` uses).
    let run = |registry: &Registry, board: Option<&StatusBoard>| {
        let mut engine = StreamEngine::new(StreamConfig::default());
        engine.attach_obs(registry);
        let mut epochs = 0u64;
        let mut events_total = 0u64;
        let mut apply_wall = Duration::ZERO;
        follow_events(
            &path,
            FollowConfig {
                batch: 100,
                poll: Duration::from_millis(1),
                idle_exit: Some(Duration::ZERO),
                cursor: 0,
            },
            |batch, cur| {
                events_total += batch.events.len() as u64;
                let t0 = std::time::Instant::now();
                let r = engine.apply(&batch);
                apply_wall += t0.elapsed();
                epochs = r.epoch;
                if let Some(board) = board {
                    board.seal_epoch(
                        r.epoch,
                        events_total,
                        cur,
                        r.density.to_f64(),
                        r.lower,
                        r.upper,
                    );
                    board.set_ready();
                }
                std::ops::ControlFlow::Continue(())
            },
        )
        .expect("follow");
        (epochs, apply_wall)
    };

    let mut best_ratio = f64::INFINITY;
    let mut scrapes_total = 0u64;
    let mut last = None;
    for _ in 0..ROUNDS {
        // Baseline: metrics attached, no admin plane.
        let (_, bare_wall) = run(&Registry::new(), None);

        // Attached: admin endpoint live, scraper hammering on a 50 ms
        // cadence for the whole replay.
        let registry = Registry::new();
        let board = Arc::new(StatusBoard::new("stream"));
        let ring = Arc::new(SlowRing::new(16, 1_000));
        let admin = AdminServer::start(
            "127.0.0.1:0",
            registry.clone(),
            Arc::clone(&board),
            Arc::clone(&ring),
        )
        .expect("bind admin endpoint");
        let addr = admin.addr();
        let stop = Arc::new(AtomicBool::new(false));
        let scraper = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut scrapes = 0u64;
                let mut ready_seen = false;
                loop {
                    let (code, body) = http_get(addr, "/metrics").expect("scrape /metrics");
                    assert_eq!(code, 200, "failed /metrics scrape");
                    parse_exposition(&body).expect("every scrape must parse");
                    let (code, _) = http_get(addr, "/status").expect("scrape /status");
                    assert_eq!(code, 200, "failed /status scrape");
                    let (code, _) = http_get(addr, "/readyz").expect("scrape /readyz");
                    match code {
                        200 => ready_seen = true,
                        503 => assert!(!ready_seen, "/readyz went back to not-ready"),
                        other => panic!("failed /readyz scrape: {other}"),
                    }
                    scrapes += 1;
                    if stop.load(Ordering::Relaxed) {
                        return scrapes;
                    }
                    std::thread::sleep(SCRAPE_EVERY);
                }
            })
        };
        let (epochs, admin_wall) = run(&registry, Some(&board));
        stop.store(true, Ordering::Relaxed);
        scrapes_total += scraper.join().expect("scraper thread");
        assert_eq!(board.ready_flips(), 1, "/readyz must flip exactly once");
        best_ratio = best_ratio.min(admin_wall.as_secs_f64() / bare_wall.as_secs_f64());
        last = Some((registry, board, epochs));
        drop(admin);
    }
    let (registry, board, epochs) = last.expect("the rounds ran");
    assert_eq!(board.epoch(), epochs, "board must carry the sealed epoch");
    assert!(
        registry.counter_value("dds_stream_epochs_total") == Some(epochs),
        "live registry must reconcile with the driver"
    );
    assert!(
        best_ratio <= OVERHEAD_FACTOR,
        "admin-plane overhead budget exceeded: every one of {ROUNDS} paired rounds ran \
         the admin-attached replay more than {OVERHEAD_FACTOR}x its bare-metrics \
         adjacent replay (best ratio {best_ratio:.3})"
    );
    std::fs::remove_file(&path).ok();
    println!(
        "admin-smoke: OK ({scrapes_total} scrapes over {ROUNDS} rounds, zero failed; \
         best paired overhead ratio {best_ratio:.3}, budget {OVERHEAD_FACTOR}x)"
    );
}

/// The worker half of the `cluster-smoke` re-exec harness: one real OS
/// process running the same loop `dds cluster-shard` runs, configured
/// entirely through `DDS_CLUSTER_SMOKE_*` environment variables.
fn cluster_smoke_worker() {
    use dds_cluster::{run_worker, WorkerConfig, WorkerOptions};
    use dds_sketch::SketchConfig;
    use std::time::Duration;

    let env = |name: &str| {
        std::env::var(name).unwrap_or_else(|_| panic!("{name} must be set in the worker role"))
    };
    let role = env(SMOKE_ROLE);
    let (shard, shards) = role.split_once('/').expect("role is k/K");
    let config = WorkerConfig {
        shard: shard.parse().expect("shard index"),
        shards: shards.parse().expect("shard count"),
        batch: env("DDS_CLUSTER_SMOKE_BATCH").parse().expect("batch"),
        sketch: SketchConfig {
            state_bound: env("DDS_CLUSTER_SMOKE_BOUND").parse().expect("bound"),
            seed: env("DDS_CLUSTER_SMOKE_SEED").parse().expect("seed"),
            ..SketchConfig::default()
        },
    };
    let events = env("DDS_CLUSTER_SMOKE_EVENTS");
    let connect = env("DDS_CLUSTER_SMOKE_CONNECT");
    let opts = WorkerOptions {
        poll: Duration::from_millis(5),
        idle_exit: Some(Duration::from_millis(1_500)),
        checkpoint: Some(env("DDS_CLUSTER_SMOKE_CHECKPOINT").into()),
        compact_every: 8,
        resume: std::env::var("DDS_CLUSTER_SMOKE_RESUME").is_ok(),
    };
    let summary =
        run_worker(config, std::path::Path::new(&events), &connect, &opts).expect("worker run");
    println!("cluster-smoke worker: {summary}");
}

/// CI cluster smoke — the kill/restore failure drill the ISSUE specifies.
/// A churn stream is fed *incrementally* into a real event file while
/// K = 4 worker **processes** (re-exec'd copies of this binary) tail it
/// and ship digests to a TCP coordinator running with a straggler
/// timeout. Mid-replay one worker is SIGKILLed; after more than one
/// straggler window it restarts with `--resume` semantics from its DDSD
/// delta-checkpoint chain and re-admits through the digest-cursor
/// handshake. Gates:
///
/// * **zero uncertified epochs** — every sealed epoch (degraded ones
///   included) carries a finite, non-inverted bracket, and the drill
///   really exercised degradation (≥ 1 degraded seal) and recovery
///   (≥ 1 fully-fresh seal after the restart);
/// * **re-admission within one straggler window** — the first
///   non-degraded seal after the restart lands within the straggler
///   window plus a fixed allowance for process spawn + silent replay;
/// * **digest budget** — total digest payload ≤ 5% of the raw event
///   bytes the workers tailed;
/// * **bit-identical restore** — the coordinator's final merged state
///   equals an uninterrupted in-process twin run byte for byte
///   ([`ClusterCore::state_digest`] — the drill's whole point), with
///   bracket-contains-exact spot checks along the twin.
fn smoke_cluster() {
    use dds_cluster::{
        run_coordinator, ClusterConfig, ClusterCore, CoordinatorOptions, WorkerConfig, WorkerState,
    };
    use dds_core::DcExact;
    use dds_sketch::SketchConfig;
    use dds_stream::{Batch, DynamicGraph, Event};
    use std::io::Write as _;
    use std::time::{Duration, Instant};

    const SHARDS: usize = 4;
    const BATCH: usize = 1_000;
    // Per-shard sample bound: 250 × 4 shards keeps the fleet's retained
    // state comparable to the single-process tiers while holding the
    // per-epoch sample deltas inside the 5% digest budget.
    const BOUND: usize = 250;
    const SEED: u64 = 0xDD5;
    const EVENTS: usize = 100_000;
    const STRAGGLER: Duration = Duration::from_millis(400);
    /// Process spawn + chain restore + silent replay headroom on top of
    /// the straggler window for the re-admission gate (~0.3 s measured
    /// on a loaded release runner; 2 s keeps CI honest without flakes).
    const READMIT_ALLOWANCE: Duration = Duration::from_millis(2_000);
    const DIGEST_BUDGET_PCT: f64 = 5.0;
    const WALL_BUDGET_S: f64 = 120.0;

    let t0 = Instant::now();
    let events = dds_bench::stream_workloads::churn(400, 4_000, (32, 32), EVENTS, 0xDD5);
    let dir = std::env::temp_dir().join(format!("dds_cluster_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let events_path = dir.join("stream.events");

    // Feed plan: a 40%-of-stream head so every worker has real replay
    // state to checkpoint, then live 1 000-event appends on a cadence
    // well inside the straggler window, so the stream outlasts the
    // outage and fresh seals exist on both sides of the drill.
    let head = (events.len() * 2 / 5) / BATCH * BATCH;
    dds_stream::save_events(&events[..head], &events_path).expect("write event head");

    let config = ClusterConfig {
        shards: SHARDS,
        batch: BATCH,
        refresh_drift: 0.25,
        sketch: SketchConfig {
            state_bound: BOUND,
            seed: SEED,
            ..SketchConfig::default()
        },
    };
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    // The seal stream is shared with the drill driver: the outage is
    // held open until a degraded seal actually lands, so the drill
    // engages by construction instead of by timing luck.
    let sealed = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let coordinator = {
        let sealed = std::sync::Arc::clone(&sealed);
        std::thread::spawn(move || {
            let opts = CoordinatorOptions {
                straggler: Some(STRAGGLER),
                ..CoordinatorOptions::default()
            };
            run_coordinator(config, listener, &opts, |epoch| {
                sealed
                    .lock()
                    .expect("seal log")
                    .push((Instant::now(), epoch.clone()));
            })
            .expect("coordinator run")
        })
    };

    let exe = std::env::current_exe().expect("own binary path");
    let spawn_worker = |shard: usize, resume: bool| {
        let mut cmd = std::process::Command::new(&exe);
        cmd.env(SMOKE_ROLE, format!("{shard}/{SHARDS}"))
            .env("DDS_CLUSTER_SMOKE_EVENTS", &events_path)
            .env("DDS_CLUSTER_SMOKE_CONNECT", addr.to_string())
            .env("DDS_CLUSTER_SMOKE_BATCH", BATCH.to_string())
            .env("DDS_CLUSTER_SMOKE_BOUND", BOUND.to_string())
            .env("DDS_CLUSTER_SMOKE_SEED", SEED.to_string())
            .env(
                "DDS_CLUSTER_SMOKE_CHECKPOINT",
                dir.join(format!("shard{shard}.snap")),
            );
        if resume {
            cmd.env("DDS_CLUSTER_SMOKE_RESUME", "1");
        }
        cmd.spawn().expect("spawn worker process")
    };
    let mut children: Vec<_> = (0..SHARDS).map(|k| spawn_worker(k, false)).collect();

    let feeder = {
        let events_path = events_path.clone();
        let tail: Vec<_> = events[head..].to_vec();
        std::thread::spawn(move || {
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&events_path)
                .expect("open event file for append");
            for slice in tail.chunks(BATCH) {
                dds_stream::write_events(slice, &mut file).expect("append events");
                file.flush().expect("flush events");
                std::thread::sleep(Duration::from_millis(40));
            }
        })
    };

    // Kill shard 1 once it has digested and checkpointed real state.
    const VICTIM: usize = 1;
    let victim_base = dir.join(format!("shard{VICTIM}.snap"));
    let deadline = Instant::now() + Duration::from_secs(10);
    while !victim_base.exists() {
        assert!(
            Instant::now() < deadline,
            "the victim never wrote its checkpoint base"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(150));
    children[VICTIM].kill().expect("kill victim");
    children[VICTIM].wait().expect("reap victim");
    println!(
        "cluster-smoke: killed shard {VICTIM} at {:?}, outage > 1 straggler window ({STRAGGLER:?})",
        t0.elapsed()
    );

    // Hold the outage until the straggler policy really engages: the
    // victim ships digests ahead of the (refresh-paced) seal pipeline,
    // so a fixed sleep can be absorbed entirely by its pre-shipped
    // buffer. Waiting for a degraded seal naming the victim makes the
    // drill deterministic — only then does the restore begin.
    let outage_deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let engaged = sealed.lock().expect("seal log").iter().any(
            |(_, e): &(Instant, dds_cluster::ClusterEpoch)| {
                e.degraded && e.stale.contains(&(VICTIM as u32))
            },
        );
        if engaged {
            break;
        }
        assert!(
            Instant::now() < outage_deadline,
            "the straggler policy never degraded a seal during the outage"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let t_restart = Instant::now();
    children[VICTIM] = spawn_worker(VICTIM, true);
    println!(
        "cluster-smoke: degradation engaged, restoring shard {VICTIM} from its delta chain at {:?}",
        t0.elapsed()
    );

    feeder.join().expect("feeder thread");
    for (k, child) in children.iter_mut().enumerate() {
        let status = child.wait().expect("wait for worker");
        assert!(status.success(), "worker {k} failed: {status}");
    }
    let report = coordinator.join().expect("coordinator thread");
    let sealed = std::mem::take(&mut *sealed.lock().expect("seal log"));
    let wall = t0.elapsed();

    // Gate 1: zero uncertified epochs, real degradation, real recovery.
    for (_, e) in &sealed {
        assert!(
            e.upper.is_finite() && e.lower <= e.upper * (1.0 + 1e-9),
            "epoch {}: uncertified bracket [{}, {}]",
            e.epoch,
            e.lower,
            e.upper
        );
    }
    assert!(
        report.degraded >= 1,
        "the outage never forced a degraded seal — the drill did not engage"
    );
    let readmit = sealed
        .iter()
        .find(|(at, e)| *at >= t_restart && !e.degraded)
        .map(|(at, e)| (at.duration_since(t_restart), e.epoch))
        .expect("no fresh seal after the restart — the shard was never re-admitted");
    assert!(
        sealed
            .iter()
            .any(|(at, e)| *at >= t_restart && !e.degraded && e.fresh == SHARDS as u32),
        "no fully-fresh seal after the restart"
    );

    // Gate 2: re-admission within one straggler window (+ replay
    // allowance).
    assert!(
        readmit.0 <= STRAGGLER + READMIT_ALLOWANCE,
        "re-admission took {:?} (epoch {}), budget {:?} + {:?}",
        readmit.0,
        readmit.1,
        STRAGGLER,
        READMIT_ALLOWANCE
    );

    // Gate 3: the digest budget.
    let ratio_pct = report.digest_bytes as f64 * 100.0 / report.raw_bytes as f64;
    assert!(
        ratio_pct <= DIGEST_BUDGET_PCT,
        "digest traffic {} B is {ratio_pct:.2}% of {} raw B (budget {DIGEST_BUDGET_PCT}%)",
        report.digest_bytes,
        report.raw_bytes
    );

    // Gate 4: the restored run's merged state is bit-identical to an
    // uninterrupted in-process twin, with exact spot checks riding along.
    let mut core = ClusterCore::new(config);
    let mut workers: Vec<WorkerState> = (0..SHARDS)
        .map(|shard| {
            let mut w = WorkerState::new(WorkerConfig {
                shard,
                shards: SHARDS,
                batch: BATCH,
                sketch: config.sketch,
            });
            w.sync_baseline();
            w
        })
        .collect();
    let mut mirror = DynamicGraph::new();
    let mut twin_epochs = 0u64;
    let mut checks = 0u32;
    for chunk in events.chunks(BATCH) {
        let batch = Batch::from_events(chunk.to_vec());
        for worker in &mut workers {
            let tallies = worker.apply_batch(&batch);
            core.offer(worker.digest(tallies, 0, 0, false), 0)
                .expect("offer digest");
        }
        let epoch = core
            .seal_next(false)
            .expect("seal")
            .expect("complete frontier");
        twin_epochs += 1;
        for ev in chunk {
            match ev.event {
                Event::Insert(u, v) => {
                    mirror.insert(u, v);
                }
                Event::Delete(u, v) => {
                    mirror.delete(u, v);
                }
            }
        }
        if twin_epochs.is_multiple_of(32) {
            let exact = DcExact::new().solve(&mirror.materialize()).solution.density;
            assert!(
                epoch.density <= exact && exact.to_f64() <= epoch.upper * (1.0 + 1e-9),
                "epoch {twin_epochs}: bracket [{}, {}] misses exact {exact}",
                epoch.lower,
                epoch.upper
            );
            checks += 1;
        }
    }
    assert_eq!(
        report.epochs, twin_epochs,
        "the drill and the twin sealed different epoch counts"
    );
    assert_eq!(
        report.state_digest,
        core.state_digest(),
        "post-restore merged state diverged from the uninterrupted twin"
    );

    std::fs::remove_dir_all(&dir).ok();
    println!(
        "cluster-smoke: {} events, {} epochs in {wall:?}: {} degraded, {} merged refreshes \
         ({} escalated), digest {} B / raw {} B = {ratio_pct:.2}%, re-admitted in {:?} \
         (epoch {}), {checks} exact spot-checks, state digest {} B bit-identical",
        events.len(),
        report.epochs,
        report.degraded,
        report.refreshes,
        report.escalations,
        report.digest_bytes,
        report.raw_bytes,
        readmit.0,
        readmit.1,
        report.state_digest.len(),
    );
    assert!(
        wall.as_secs_f64() < WALL_BUDGET_S,
        "wall budget exceeded: {wall:?} > {WALL_BUDGET_S}s"
    );
    println!(
        "cluster-smoke: OK (budgets: {DIGEST_BUDGET_PCT}% digest, {:?} re-admission, \
         {WALL_BUDGET_S}s wall)",
        STRAGGLER + READMIT_ALLOWANCE
    );
}

/// CI pool smoke: E17 in quick mode (the pool-backed exact engine must
/// land on the bit-identical serial density at every lever combination —
/// asserted inside the experiment), plus two deterministic gates of its
/// own: (1) parallel Dinic through a real 4-wide pool must match the
/// serial solver's flow value and canonical cut sides bit for bit on a
/// network past [`dds_flow::PARALLEL_EDGE_THRESHOLD`]; (2) with ≥ 2 real
/// cores, the K = 4 shard apply must beat K = 1 through the same pool
/// (as in E16 — on a single-core host the honest numbers are printed and
/// the assertion is skipped).
fn smoke_pool() {
    use dds_core::WorkerPool;
    use dds_flow::{FlowNetwork, PARALLEL_EDGE_THRESHOLD};

    dds_bench::experiments::run("e17", true);

    // Parallel Dinic bit-identity on a layered network wide enough to
    // cross the parallel threshold, driven by a real multi-worker pool.
    let k = 66;
    let build = || {
        let mut net = FlowNetwork::new(2 * k + 2);
        let (s, t) = (0, 1);
        for i in 0..k {
            net.add_edge(s, 2 + i, 40 + (i as u128 % 9));
            net.add_edge(2 + k + i, t, 40 + (i as u128 % 7));
        }
        for i in 0..k {
            for j in 0..k {
                net.add_edge(2 + i, 2 + k + j, 1 + ((i * 31 + j * 17) as u128 % 23));
            }
        }
        (net, s, t)
    };
    let (mut serial, s, t) = build();
    let (mut par, _, _) = build();
    assert!(par.num_edges() >= PARALLEL_EDGE_THRESHOLD);
    let pool = WorkerPool::with_workers(3);
    let want = serial.max_flow(s, t);
    let got = par.max_flow_with(s, t, &pool);
    assert_eq!(got, want, "parallel Dinic flow value diverged");
    assert_eq!(
        par.min_cut_source_side(s),
        serial.min_cut_source_side(s),
        "parallel Dinic minimal cut diverged"
    );
    assert_eq!(
        par.max_cut_source_side(t),
        serial.max_cut_source_side(t),
        "parallel Dinic maximal cut diverged"
    );
    println!(
        "pool-smoke: parallel Dinic bit-identical on {} edges (flow {want})",
        par.num_edges()
    );

    // Shard apply scaling through the global pool, gated like E16: the
    // speedup assertion only fires with real cores behind it.
    use dds_shard::{ShardConfig, ShardedEngine};
    use dds_sketch::SketchConfig;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let events = dds_bench::stream_workloads::churn(400, 4_000, (32, 32), 20_000, 0xDD5);
    let apply_ms_at = |k: usize| {
        let mut engine = ShardedEngine::new(ShardConfig {
            shards: k,
            threads: k.min(cores).max(1),
            sketch: SketchConfig {
                state_bound: 500,
                ..SketchConfig::default()
            },
            ..ShardConfig::default()
        });
        let mut apply_ms = 0.0f64;
        for chunk in events.chunks(500) {
            let r = engine.apply(&dds_stream::Batch::from_events(chunk.to_vec()));
            apply_ms += r.apply.as_secs_f64() * 1e3;
        }
        apply_ms
    };
    let base = apply_ms_at(1);
    let four = apply_ms_at(4);
    if cores >= 2 {
        assert!(
            four < base,
            "K=4 apply ({four:.0} ms) must beat K=1 ({base:.0} ms) with {cores} cores"
        );
        println!("pool-smoke: K=4 apply {four:.0} ms vs K=1 {base:.0} ms ({cores} cores)");
    } else {
        println!(
            "pool-smoke: speedup assertion skipped on a single-core host \
             (K=4 apply {four:.0} ms vs K=1 {base:.0} ms measures overhead, not parallelism)"
        );
    }
    let stats = WorkerPool::global().stats();
    println!(
        "pool-smoke: OK (global pool width {}, lifetime {} tasks, {} steals, {} parks)",
        WorkerPool::global().width(),
        stats.tasks,
        stats.steals,
        stats.parks,
    );
}

/// CI serve smoke: a seeded 100k-event churn stream is written to a real
/// event file and replayed through the `dds-stream` follow loop — the
/// same tail path `dds serve` runs — publishing one immutable snapshot
/// per sealed epoch through the arc-swap cell, while two load-generator
/// clients hammer the TCP front end with the mixed
/// `DENSITY`/`MEMBER`/`CORE`/`TOPK` rotation. The gate asserts the
/// serving contracts: every event replayed, one publish per epoch, zero
/// stale-epoch violations (epoch ids never go backwards on a
/// connection), zero bracket violations on served `DENSITY` answers,
/// zero `ERR` responses once publication started, and the whole drill
/// inside a generous wall budget (the snapshot path exists to be cheap;
/// a 10x publish regression should fail the build even if it stays
/// correct).
fn smoke_serve() {
    use dds_bench::serve_load::{percentile, run_clients, ClientPlan, ClientReport};
    use dds_serve::{EpochFacts, PublishOptions, Publisher, ServeMetrics, Server, SnapshotCell};
    use dds_stream::{follow_events, FollowConfig, SolverKind, StreamConfig, StreamEngine};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    const WALL_BUDGET_S: f64 = 60.0;
    let events = dds_bench::stream_workloads::churn(400, 4_000, (32, 32), 100_000, 0xDD5);
    let path = std::env::temp_dir().join(format!("dds_serve_smoke_{}.events", std::process::id()));
    dds_stream::save_events(&events, &path).expect("write event file");

    let mut engine = StreamEngine::new(StreamConfig {
        solver: SolverKind::CoreApprox,
        ..StreamConfig::default()
    });
    let cell = Arc::new(SnapshotCell::new());
    let metrics = Arc::new(ServeMetrics::new());
    let mut publisher = Publisher::new(
        Arc::clone(&cell),
        PublishOptions {
            core: Some((1, 1)),
            top_k: 2,
        },
        Arc::clone(&metrics),
    );
    let server = Server::start("127.0.0.1:0", Arc::clone(&cell), 2, Arc::clone(&metrics))
        .expect("bind ephemeral port");
    let stop = Arc::new(AtomicBool::new(false));
    let plan = ClientPlan {
        addr: server.addr(),
        queries: None,
        stop: Arc::clone(&stop),
        core: Some((1, 1)),
        top_k: 2,
    };
    let load = {
        let plan = plan.clone();
        std::thread::spawn(move || run_clients(2, &plan))
    };

    let t0 = std::time::Instant::now();
    let mut epochs = 0u64;
    let outcome = follow_events(
        &path,
        FollowConfig {
            batch: 100,
            poll: Duration::from_millis(1),
            idle_exit: Some(Duration::ZERO),
            cursor: 0,
        },
        |batch, _| {
            let r = engine.apply(&batch);
            publisher.publish(
                EpochFacts {
                    epoch: r.epoch,
                    n: r.n,
                    m: r.m as u64,
                    density: r.density.to_f64(),
                    lower: r.lower,
                    upper: r.upper,
                    witness: engine.witness(),
                    resolved: r.resolved,
                },
                || engine.materialize(),
            );
            epochs += 1;
            std::ops::ControlFlow::Continue(())
        },
    )
    .expect("follow");
    let elapsed = t0.elapsed();
    stop.store(true, Ordering::Relaxed);
    let reports = load.join().expect("load clients");
    drop(server);
    std::fs::remove_file(&path).ok();

    let mut total = ClientReport::default();
    for r in &reports {
        total.merge(r);
    }
    println!(
        "serve-smoke: {} events, {epochs} epochs in {elapsed:?}: {} publishes, \
         {} queries answered (p50 {} us, p99 {} us), max epoch seen {}",
        outcome.events,
        metrics.publishes.get(),
        total.queries,
        percentile(&total.latencies_us, 50.0),
        percentile(&total.latencies_us, 99.0),
        total.max_epoch,
    );
    assert_eq!(
        outcome.events,
        events.len() as u64,
        "the tail must replay every event"
    );
    assert_eq!(
        metrics.publishes.get(),
        epochs,
        "one publish per sealed epoch"
    );
    assert_eq!(
        total.stale_violations, 0,
        "epoch ids went backwards on a connection"
    );
    assert_eq!(total.bracket_violations, 0, "a served bracket inverted");
    assert_eq!(
        total.errors_after_epoch0, 0,
        "valid queries errored after publication started"
    );
    assert!(
        total.max_epoch > 0 && total.queries > 0,
        "the load generator never overlapped a published epoch"
    );
    assert!(
        elapsed.as_secs_f64() < WALL_BUDGET_S,
        "wall budget exceeded: {elapsed:?} > {WALL_BUDGET_S}s"
    );
    println!("serve-smoke: OK (budget {WALL_BUDGET_S}s wall)");
}

/// CI smoke: the n = 500 planted-block exact solve, with a hard budget on
/// flow decisions so pruning regressions fail the build instead of
/// silently eating wall clock.
///
/// Budget calibration: the tie-pruned engine measures ~1 560 decisions on
/// this instance (release, 2026-07); the legacy strict-margin engine needs
/// ~4 300. The 2 500 budget therefore passes with ~60% headroom while any
/// reversion of incumbent/tie pruning blows straight through it.
fn smoke_exact() {
    use dds_bench::workloads::planted_block;
    use dds_core::DcExact;

    const FLOW_DECISION_BUDGET: usize = 2_500;
    let p = planted_block(500);
    let t0 = std::time::Instant::now();
    let report = DcExact::new().solve(&p.graph);
    let elapsed = t0.elapsed();
    let planted_rho = p.pair.density(&p.graph);
    println!(
        "smoke: n=500 planted block solved in {elapsed:?}: density {} (planted {}), {} ratios, {} flow decisions ({} arena hits, {} core hits)",
        report.solution.density,
        planted_rho,
        report.ratios_solved,
        report.flow_decisions,
        report.arena_reuse_hits,
        report.core_cache_hits,
    );
    assert!(
        report.solution.density >= planted_rho,
        "solver missed the planted block"
    );
    assert!(
        report.flow_decisions <= FLOW_DECISION_BUDGET,
        "flow-decision budget exceeded: {} > {FLOW_DECISION_BUDGET} — a pruning regression",
        report.flow_decisions
    );
    println!("smoke: OK (budget {FLOW_DECISION_BUDGET})");
}
