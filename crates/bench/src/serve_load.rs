//! Shared load generator for the query-serving experiments (E18) and the
//! CI `serve-smoke` gate: client threads hammer a `dds-serve` front end
//! with a mixed `DENSITY`/`MEMBER`/`CORE`/`TOPK` rotation and validate
//! every response as it streams back — epoch ids must never go backwards
//! on a connection (the arc-swap publication contract), `DENSITY`
//! brackets must stay internally consistent, and `ERR` responses are
//! only tolerated while the served epoch is still 0 (nothing published
//! yet: `CORE` legitimately answers "no core maintained" then).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One client's marching orders.
#[derive(Clone, Debug)]
pub struct ClientPlan {
    /// The serve front end to hammer.
    pub addr: SocketAddr,
    /// Stop after exactly this many queries (`None`: run until [`ClientPlan::stop`]).
    pub queries: Option<u64>,
    /// Cooperative stop flag, checked between queries.
    pub stop: Arc<AtomicBool>,
    /// The `[x,y]` core the server maintains; enables `CORE` queries.
    pub core: Option<(u64, u64)>,
    /// K for `TOPK` queries (0 disables them).
    pub top_k: usize,
}

/// What one client observed. Every violation counter should be zero on a
/// healthy server; they are counters rather than panics so a concurrent
/// failure reports *how often* it happened, not just that it did.
#[derive(Clone, Debug, Default)]
pub struct ClientReport {
    /// Responses received.
    pub queries: u64,
    /// `ERR` responses served at an epoch > 0 (always a bug: the load mix
    /// only issues queries the published snapshot can answer).
    pub errors_after_epoch0: u64,
    /// Responses whose epoch id went backwards on this connection.
    pub stale_violations: u64,
    /// `DENSITY` responses violating `lower ≤ density ≤ upper`.
    pub bracket_violations: u64,
    /// Highest epoch id observed.
    pub max_epoch: u64,
    /// Per-query round-trip latencies in microseconds (unsorted).
    pub latencies_us: Vec<u64>,
}

impl ClientReport {
    /// Folds another client's observations into this one.
    pub fn merge(&mut self, other: &ClientReport) {
        self.queries += other.queries;
        self.errors_after_epoch0 += other.errors_after_epoch0;
        self.stale_violations += other.stale_violations;
        self.bracket_violations += other.bracket_violations;
        self.max_epoch = self.max_epoch.max(other.max_epoch);
        self.latencies_us.extend_from_slice(&other.latencies_us);
    }
}

/// Runs one client to completion against `plan.addr`.
///
/// # Panics
/// Panics if the connection cannot be established or a response line is
/// malformed (no epoch id) — those are setup/protocol failures, not the
/// server-health violations the report counts.
#[must_use]
pub fn run_client(plan: &ClientPlan) -> ClientReport {
    let stream = TcpStream::connect(plan.addr).expect("connect to serve front end");
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut stream = stream;
    let mut report = ClientReport::default();
    let mut last_epoch = 0u64;
    let mut i = 0u64;
    loop {
        if plan.queries.is_some_and(|q| report.queries >= q)
            || (plan.queries.is_none() && plan.stop.load(Ordering::Relaxed))
        {
            break;
        }
        let query = match i % 4 {
            0 => "DENSITY".to_string(),
            1 => format!("MEMBER {}", (i * 7) % 512),
            2 => match plan.core {
                Some((x, y)) => format!("CORE {x} {y} {}", (i * 11) % 512),
                None => "DENSITY".to_string(),
            },
            _ => {
                if plan.top_k > 0 {
                    format!("TOPK {}", plan.top_k)
                } else {
                    "DENSITY".to_string()
                }
            }
        };
        i += 1;
        let t0 = Instant::now();
        stream
            .write_all(format!("{query}\n").as_bytes())
            .expect("send query");
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read response") == 0 {
            break; // server shut down mid-run
        }
        report
            .latencies_us
            .push(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        report.queries += 1;
        let response = line.trim_end();
        let epoch = field(response, "epoch=")
            .unwrap_or_else(|| panic!("response carries no epoch: {response}"));
        if epoch < last_epoch {
            report.stale_violations += 1;
        }
        last_epoch = last_epoch.max(epoch);
        report.max_epoch = report.max_epoch.max(epoch);
        if response.starts_with("ERR") && epoch > 0 {
            report.errors_after_epoch0 += 1;
        }
        if response.starts_with("OK DENSITY") {
            let density: f64 = field(response, "density=").expect("density field");
            let lower: f64 = field(response, "lower=").expect("lower field");
            let upper: f64 = field(response, "upper=").expect("upper field");
            // Fields render at 6 decimals, so allow rounding slack.
            if density < lower - 1e-4 || density > upper + 1e-4 {
                report.bracket_violations += 1;
            }
        }
    }
    stream.write_all(b"QUIT\n").ok();
    report
}

/// Spawns `clients` threads running [`run_client`] with the same plan and
/// joins them all.
///
/// # Panics
/// Panics if a client thread panics (propagating its failure).
#[must_use]
pub fn run_clients(clients: usize, plan: &ClientPlan) -> Vec<ClientReport> {
    let handles: Vec<_> = (0..clients)
        .map(|i| {
            let plan = plan.clone();
            std::thread::Builder::new()
                .name(format!("dds-load-client-{i}"))
                .spawn(move || run_client(&plan))
                .expect("spawn load client")
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("load client panicked"))
        .collect()
}

/// The `p`-th percentile (0–100) of `values`, 0 when empty. Sorts a copy;
/// fine at load-generator scales.
#[must_use]
pub fn percentile(values: &[u64], p: f64) -> u64 {
    if values.is_empty() {
        return 0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Extracts `key<value>` from a space-separated response line.
fn field<T: std::str::FromStr>(response: &str, key: &str) -> Option<T> {
    response
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(key))
        .and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_sorted_ranks() {
        let v = [50, 10, 40, 20, 30];
        assert_eq!(percentile(&v, 0.0), 10);
        assert_eq!(percentile(&v, 50.0), 30);
        assert_eq!(percentile(&v, 100.0), 50);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn fixed_count_client_validates_a_live_server() {
        use dds_serve::{EpochSnapshot, ServeMetrics, Server, SnapshotCell};

        let cell = Arc::new(SnapshotCell::new());
        let mut snap = EpochSnapshot::empty();
        snap.epoch = 3;
        snap.n = 2;
        snap.m = 1;
        snap.density = 1.0;
        snap.lower = 1.0;
        snap.upper = 1.0;
        cell.publish(snap);
        let server = Server::start(
            "127.0.0.1:0",
            Arc::clone(&cell),
            1,
            Arc::new(ServeMetrics::new()),
        )
        .expect("bind");
        let plan = ClientPlan {
            addr: server.addr(),
            queries: Some(8),
            stop: Arc::new(AtomicBool::new(false)),
            core: None,
            top_k: 1,
        };
        let reports = run_clients(2, &plan);
        let mut total = ClientReport::default();
        for r in &reports {
            total.merge(r);
        }
        assert_eq!(total.queries, 16);
        assert_eq!(total.errors_after_epoch0, 0);
        assert_eq!(total.stale_violations, 0);
        assert_eq!(total.bracket_violations, 0);
        assert_eq!(total.max_epoch, 3);
        assert_eq!(total.latencies_us.len(), 16);
    }
}
