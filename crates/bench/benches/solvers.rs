//! End-to-end solver benchmarks: one per algorithm family of the paper's
//! evaluation (exact, core approximation, peeling approximations).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use dds_core::{core_approx, parallel, DcExact, ExhaustivePeel, GridPeel};
use dds_graph::gen;

fn bench_exact(c: &mut Criterion) {
    let xs = gen::power_law(300, 2_000, 2.2, 1);
    c.bench_function("exact/dc-pl-xs", |b| {
        b.iter(|| DcExact::new().solve(black_box(&xs)))
    });
    let planted = gen::planted(500, 1_500, 8, 10, 0.9, 1).graph;
    c.bench_function("exact/dc-planted-500", |b| {
        b.iter(|| DcExact::new().solve(black_box(&planted)))
    });
}

fn bench_approx(c: &mut Criterion) {
    let s = gen::power_law(3_000, 20_000, 2.2, 1);
    c.bench_function("approx/core-pl-s", |b| {
        b.iter(|| core_approx(black_box(&s)))
    });
    c.bench_function("approx/grid01-pl-s", |b| {
        b.iter(|| GridPeel::new(0.1).solve(black_box(&s)))
    });
    c.bench_function("approx/grid01-pl-s-4threads", |b| {
        b.iter(|| parallel::grid_peel_parallel(black_box(&s), 0.1, 4))
    });
    let xs = gen::power_law(300, 2_000, 2.2, 1);
    c.bench_function("approx/exhaustive-pl-xs", |b| {
        b.iter(|| ExhaustivePeel.solve(black_box(&xs)))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
}

criterion_group! {
    name = solvers;
    config = config();
    targets = bench_exact, bench_approx
}
criterion_main!(solvers);
