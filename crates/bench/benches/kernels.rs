//! Microbenchmarks of the performance-critical kernels: the flow decision,
//! fixed-ratio peeling, and the `[x, y]`-core primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use dds_core::peel_at_rational_ratio;
use dds_flow::{decide, decide_in, FlowArena};
use dds_graph::{gen, StMask};
use dds_num::Frac;
use dds_xycore::{max_product_core, xy_core, y_max_core};

fn bench_flow_decision(c: &mut Criterion) {
    let g = gen::power_law(2_000, 12_000, 2.2, 1);
    let alive = StMask::full(g.n());
    c.bench_function("flow_decision/pl-2k-full-graph", |b| {
        b.iter(|| decide(black_box(&g), &alive, 1, 1, Frac::new(5, 2)))
    });
    // Arena ablation against the entry above: `pl-2k-on-core` allocates a
    // fresh network per decision; this recycles one arena's buffers (the
    // SolveContext steady state).
    let core = xy_core(&g, 3, 3);
    c.bench_function("flow_decision/pl-2k-on-core", |b| {
        b.iter(|| decide(black_box(&g), &core, 1, 1, Frac::new(5, 2)))
    });
    let mut arena = FlowArena::new();
    c.bench_function("flow_decision/pl-2k-arena-reuse", |b| {
        b.iter(|| decide_in(&mut arena, black_box(&g), &core, 1, 1, Frac::new(5, 2)))
    });
}

fn bench_peel(c: &mut Criterion) {
    let g = gen::power_law(3_000, 20_000, 2.2, 1);
    c.bench_function("peel/pl-s-ratio-1-1", |b| {
        b.iter(|| peel_at_rational_ratio(black_box(&g), 1, 1))
    });
    c.bench_function("peel/pl-s-ratio-1-10", |b| {
        b.iter(|| peel_at_rational_ratio(black_box(&g), 1, 10))
    });
}

fn bench_cores(c: &mut Criterion) {
    let g = gen::power_law(3_000, 20_000, 2.2, 1);
    c.bench_function("xycore/peel-1-1", |b| {
        b.iter(|| xy_core(black_box(&g), 1, 1))
    });
    c.bench_function("xycore/peel-4-4", |b| {
        b.iter(|| xy_core(black_box(&g), 4, 4))
    });
    let full = StMask::full(g.n());
    c.bench_function("xycore/y-max-sweep-x2", |b| {
        b.iter(|| y_max_core(black_box(&g), &full, 2))
    });
    c.bench_function("xycore/max-product", |b| {
        b.iter(|| max_product_core(black_box(&g)))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1_500))
}

criterion_group! {
    name = kernels;
    config = config();
    targets = bench_flow_decision, bench_peel, bench_cores
}
criterion_main!(kernels);
