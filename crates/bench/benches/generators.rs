//! Workload-generator benchmarks (they run inside every experiment's
//! setup, so regressions here distort the harness).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use dds_graph::gen;

fn bench_generators(c: &mut Criterion) {
    c.bench_function("gen/gnm-30k-edges", |b| {
        b.iter(|| gen::gnm(black_box(5_000), 30_000, 7))
    });
    c.bench_function("gen/power-law-30k-edges", |b| {
        b.iter(|| gen::power_law(black_box(5_000), 30_000, 2.2, 7))
    });
    c.bench_function("gen/planted-30k-edges", |b| {
        b.iter(|| gen::planted(black_box(5_000), 30_000, 10, 12, 0.9, 7))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = generators;
    config = config();
    targets = bench_generators
}
criterion_main!(generators);
