//! Sublinear-state sketching for directed densest-subgraph maintenance —
//! the **approximation-first tier** between the exact pipeline
//! (`dds-core`) and the stream engines (`dds-stream`).
//!
//! # Why a third tier
//!
//! The lazy re-solve engine certifies with exact solves; the window-native
//! engine certifies with `O(√m·(n+m))` max-product core sweeps. Both
//! assume one full pass over the edge set is affordable whenever the band
//! breaks. Past some `m` it is not — and that is the regime this crate
//! targets, in the style of Mitrović–Pan (*Faster Streaming and Scalable
//! Algorithms for Finding Directed Dense Subgraphs in Large Graphs*): keep
//! a **uniformly subsampled** summary of the edge set whose size never
//! exceeds a configured bound, and answer density queries from the summary
//! alone.
//!
//! # The sketch
//!
//! [`SketchEngine`] retains the edges admitted by a deterministic seeded
//! hash at the current **subsampling level** `ℓ` (admission probability
//! `2⁻ℓ`). When the retained set outgrows [`SketchConfig::state_bound`],
//! the level increments — doubling the sampling rate's inverse, the
//! McGregor-style L0-sampling discipline — and the retained set is
//! re-filtered in place (admission sets are nested across levels, so a
//! level bump only ever *drops* edges). Alongside the sample the engine
//! keeps `O(n)` exact counters: the live edge count and the exact degree
//! maxima (count-of-counts [`MaxTracker`]s), which cost `O(1)` per event
//! and power the unconditional upper bound.
//!
//! Total state: `O(n + state_bound)` — sublinear in `m` whenever it
//! matters.
//!
//! # The certified bracket, and what is only estimated
//!
//! Let `H ⊆ G` be the retained subgraph. Two bounds hold **always**,
//! deterministically:
//!
//! * **lower** — the sketched witness: a refresh runs the max-product core
//!   sweep **of `H`** (`O(√m_H·(n+m_H))`, bounded by the state bound — the
//!   cheap tier this crate exists for) and escalates to a full
//!   [`dds_core`] **exact-on-sketch** solve when the sweep's own bracket
//!   on `ρ_opt(H)` is wider than [`SketchConfig::escalate_factor`]. Either
//!   way the winning pair's `H`-density is maintained per event
//!   afterwards, and every retained edge is a real edge of `G`, so
//!   `ρ_H(S,T) ≤ ρ_G(S,T) ≤ ρ_opt(G)`.
//! * **upper** — `min(√m, √(d⁺_max · d⁻_max))` over the *exact* counters.
//!
//! Between them sits the **estimate** `ρ̂ = ρ_H(S,T) · 2^ℓ`, which carries
//! a Chernoff-style loss factor `(1 + ε)` with
//! `ε = √(3·ln(2/δ) / k)` (`k` = the witness's retained edge count): each
//! of the pair's `G`-edges was retained independently with probability
//! `2⁻ℓ`, so the scaled count concentrates within `1 ± ε` of
//! `E_G(S,T)` with probability `≥ 1 − δ`. The estimate is what you report
//! on dashboards; the bracket is what you certify.
//!
//! # Ingestion contract
//!
//! [`SketchEngine::insert`]/[`SketchEngine::delete`] expect **applied**
//! mutations (strict turnstile): no duplicate insert of a live edge, no
//! delete of an absent one. A sublinear sketch cannot dedupe — edge
//! identity is the upstream engine's job (`dds-stream`'s `DynamicGraph`
//! forwards exactly the applied mutations; the `dds sketch` CLI mirrors
//! the stream for the same reason). Violations that drive a counter below
//! zero panic in the degree trackers; others (a duplicate insert, a
//! delete of the wrong live edge) skew the exact counters — and thereby
//! the certified upper bound — undetectably, which is why the contract is
//! on the caller and not on runtime checks a sublinear sketch cannot
//! afford.
//!
//! # Example
//!
//! ```
//! use dds_sketch::{SketchConfig, SketchEngine};
//!
//! let mut sketch = SketchEngine::new(SketchConfig::default());
//! for (u, v) in [(0, 2), (0, 3), (1, 2), (1, 3)] {
//!     sketch.insert(u, v);
//! }
//! let report = sketch.seal_epoch();
//! // Nothing has been subsampled yet, so the sketch is exact: the
//! // certified bracket collapses onto K_{2,2}'s optimum ρ = 2.
//! assert_eq!(report.level, 0);
//! assert_eq!(report.lower, 2.0);
//! assert!(report.upper >= 2.0);
//! assert_eq!(report.estimate, 2.0);
//! ```

#![warn(missing_docs)]

mod engine;
mod maxtrack;
mod sample;

pub use engine::{SketchConfig, SketchEngine, SketchReport, SketchStats};
pub use maxtrack::MaxTracker;
