//! Exact O(1) maintenance of `max` over per-id counters under
//! increment/decrement — the count-of-counts trick from peeling
//! algorithms.
//!
//! This is shared streaming-counter infrastructure: the sketch engine uses
//! it for the exact degree maxima behind its unconditional upper bound,
//! and `dds-stream` reuses it for the dynamic graph's live degrees and for
//! the delta-graph maxima that drive the drift bounds. Every caller
//! decrements as hard as it increments — expiries, deletions, and drift
//! refunds all land here — so `decr` is as load-bearing as `incr` (pinned
//! against a naive max scan below).

/// Per-id counters with exact running maximum.
///
/// `incr`/`decr` are `O(1)`: a frequency table `freq[c] = #ids with
/// counter c` lets the maximum fall by at most one per decrement.
#[derive(Clone, Debug, Default)]
pub struct MaxTracker {
    count: Vec<u32>,
    freq: Vec<usize>,
    max: u32,
}

impl MaxTracker {
    /// Current maximum counter value (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        u64::from(self.max)
    }

    /// Current counter for `id` (0 if never touched).
    #[must_use]
    pub fn count(&self, id: usize) -> u32 {
        self.count.get(id).copied().unwrap_or(0)
    }

    /// How many ids currently sit at the maximum (0 when empty) — the
    /// count-of-counts summary a `dds-cluster` digest ships instead of
    /// the whole table.
    #[must_use]
    pub fn max_multiplicity(&self) -> u64 {
        if self.max == 0 {
            0
        } else {
            self.freq[self.max as usize] as u64
        }
    }

    fn freq_slot(&mut self, c: u32) -> &mut usize {
        let c = c as usize;
        if self.freq.len() <= c {
            self.freq.resize(c + 1, 0);
        }
        &mut self.freq[c]
    }

    /// Increments `id`'s counter.
    pub fn incr(&mut self, id: usize) {
        self.add(id, 1);
    }

    /// Adds `by` to `id`'s counter in one `O(1)` step — the bulk form
    /// [`MaxTracker::merge`] is built on (a merge lands one `add` per id
    /// instead of `count` repeated `incr`s).
    pub fn add(&mut self, id: usize, by: u32) {
        if by == 0 {
            return;
        }
        if self.count.len() <= id {
            self.count.resize(id + 1, 0);
        }
        let c = self.count[id];
        if c > 0 {
            *self.freq_slot(c) -= 1;
        }
        self.count[id] = c + by;
        *self.freq_slot(c + by) += 1;
        self.max = self.max.max(c + by);
    }

    /// Folds `other`'s counters into `self`: after the call,
    /// `self.count(id) = old_count(id) + other.count(id)` for every id, and
    /// the maximum is exact again — a count-of-counts *add*, `O(ids(other))`
    /// with no rescan of `self`.
    ///
    /// This is how edge-partitioned shards sum their exact degree counters
    /// into the global ones: a vertex's edges land in several shards, so
    /// the global maximum is a property of the per-id **sums**, not of the
    /// per-shard maxima (`max(Σ) ≥ max_s(max)` with equality only when one
    /// shard holds a global-max vertex's whole degree).
    pub fn merge(&mut self, other: &MaxTracker) {
        for (id, &c) in other.count.iter().enumerate() {
            self.add(id, c);
        }
    }

    /// Decrements `id`'s counter.
    ///
    /// # Panics
    /// Panics if `id`'s counter is already zero — including ids never
    /// incremented at all (a caller invariant violation, not a
    /// user-reachable state).
    pub fn decr(&mut self, id: usize) {
        let c = self.count.get(id).copied().unwrap_or(0);
        assert!(c > 0, "decrement of zero counter (id {id})");
        *self.freq_slot(c) -= 1;
        self.count[id] = c - 1;
        if c > 1 {
            *self.freq_slot(c - 1) += 1;
        }
        while self.max > 0 && self.freq[self.max as usize] == 0 {
            self.max -= 1;
        }
    }

    /// Forgets everything (used when a solve resets a delta graph).
    pub fn clear(&mut self) {
        self.count.clear();
        self.freq.clear();
        self.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_tracks_incr_and_decr() {
        let mut t = MaxTracker::default();
        assert_eq!(t.max(), 0);
        t.incr(3);
        t.incr(3);
        t.incr(7);
        assert_eq!(t.max(), 2);
        assert_eq!(t.count(3), 2);
        t.decr(3);
        assert_eq!(t.max(), 1);
        t.decr(3);
        t.decr(7);
        assert_eq!(t.max(), 0);
    }

    #[test]
    fn max_falls_through_gaps() {
        let mut t = MaxTracker::default();
        for _ in 0..5 {
            t.incr(0);
        }
        t.incr(1);
        assert_eq!(t.max(), 5);
        for _ in 0..5 {
            t.decr(0);
        }
        assert_eq!(t.max(), 1, "max must fall past the emptied levels");
    }

    #[test]
    fn max_multiplicity_counts_ids_at_max() {
        let mut t = MaxTracker::default();
        assert_eq!(t.max_multiplicity(), 0);
        t.incr(0);
        t.incr(1);
        assert_eq!((t.max(), t.max_multiplicity()), (1, 2));
        t.incr(1);
        assert_eq!((t.max(), t.max_multiplicity()), (2, 1));
        t.decr(1);
        assert_eq!((t.max(), t.max_multiplicity()), (1, 2));
        t.decr(0);
        t.decr(1);
        assert_eq!(t.max_multiplicity(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut t = MaxTracker::default();
        t.incr(9);
        t.clear();
        assert_eq!(t.max(), 0);
        assert_eq!(t.count(9), 0);
    }

    /// The ISSUE-3 pinning test: mixed insert/delete sequences — including
    /// delete bursts that drain whole frequency levels, interleaved
    /// clears, and ids far apart — must agree with a naive max scan *and*
    /// naive per-id counters at every step.
    #[test]
    fn mixed_sequences_match_naive_max_scan() {
        let ops: &[(&str, usize)] = &[
            ("i", 0),
            ("i", 0),
            ("i", 0),
            ("i", 63), // distant id: sparse count table
            ("d", 0),
            ("d", 0),
            ("i", 7),
            ("i", 7),
            ("i", 7),
            ("i", 7),
            ("d", 7), // level 4 drains, max falls to 3
            ("d", 7),
            ("d", 7),
            ("d", 0), // id 0 empties
            ("d", 7),
            ("d", 63), // everything empty again
            ("i", 5),
        ];
        let mut t = MaxTracker::default();
        let mut naive = std::collections::HashMap::<usize, u32>::new();
        for &(op, id) in ops {
            if op == "i" {
                t.incr(id);
                *naive.entry(id).or_insert(0) += 1;
            } else {
                t.decr(id);
                *naive.get_mut(&id).unwrap() -= 1;
            }
            let naive_max = u64::from(naive.values().copied().max().unwrap_or(0));
            assert_eq!(t.max(), naive_max, "after {op} {id}");
            for (&id, &c) in &naive {
                assert_eq!(t.count(id), c, "count of {id} after {op}");
            }
        }
        // And a clear in the middle of a live walk resets cleanly.
        t.clear();
        assert_eq!(t.max(), 0);
        t.incr(2);
        assert_eq!(t.max(), 1);
    }

    /// The ISSUE-5 satellite: merging two trackers must agree with a
    /// tracker rebuilt from the union of the underlying increments — per-id
    /// counts, the exact maximum, and continued incr/decr behaviour.
    #[test]
    fn merge_matches_a_rebuilt_tracker() {
        // Two "shards" of increments with overlapping ids, so the merged
        // maximum exceeds both per-shard maxima (id 3: 3 + 4 = 7).
        let a_incrs: &[usize] = &[0, 0, 3, 3, 3, 9];
        let b_incrs: &[usize] = &[3, 3, 3, 3, 5, 5, 17];
        let mut a = MaxTracker::default();
        let mut b = MaxTracker::default();
        for &id in a_incrs {
            a.incr(id);
        }
        for &id in b_incrs {
            b.incr(id);
        }
        assert_eq!((a.max(), b.max()), (3, 4));
        let mut merged = a.clone();
        merged.merge(&b);
        let mut rebuilt = MaxTracker::default();
        for &id in a_incrs.iter().chain(b_incrs) {
            rebuilt.incr(id);
        }
        assert_eq!(merged.max(), 7, "per-id sums beat per-shard maxima");
        assert_eq!(merged.max(), rebuilt.max());
        for id in 0..20 {
            assert_eq!(merged.count(id), rebuilt.count(id), "count of {id}");
        }
        // The merged tracker keeps tracking exactly like the rebuilt one.
        merged.decr(3);
        rebuilt.decr(3);
        for _ in 0..6 {
            merged.decr(3);
            rebuilt.decr(3);
            assert_eq!(merged.max(), rebuilt.max());
        }
    }

    #[test]
    fn merge_handles_empty_and_disjoint_trackers() {
        let mut t = MaxTracker::default();
        t.incr(1);
        t.merge(&MaxTracker::default());
        assert_eq!((t.max(), t.count(1)), (1, 1));
        let mut empty = MaxTracker::default();
        empty.merge(&t);
        assert_eq!((empty.max(), empty.count(1)), (1, 1));
        let mut other = MaxTracker::default();
        other.incr(40);
        other.incr(40);
        t.merge(&other);
        assert_eq!(t.max(), 2);
        assert_eq!((t.count(1), t.count(40)), (1, 2));
    }

    #[test]
    fn add_is_a_bulk_incr() {
        let mut bulk = MaxTracker::default();
        bulk.add(4, 5);
        bulk.add(4, 0); // no-op
        let mut steps = MaxTracker::default();
        for _ in 0..5 {
            steps.incr(4);
        }
        assert_eq!(bulk.max(), steps.max());
        assert_eq!(bulk.count(4), steps.count(4));
        bulk.decr(4);
        assert_eq!(bulk.max(), 4);
    }

    #[test]
    #[should_panic(expected = "decrement of zero counter")]
    fn decrementing_an_untouched_id_is_an_invariant_violation() {
        let mut t = MaxTracker::default();
        t.incr(1);
        t.decr(999); // beyond the count table: still the assert, not an OOB
    }

    #[test]
    fn matches_naive_on_random_walk() {
        let mut t = MaxTracker::default();
        let mut naive = [0u32; 8];
        let mut x = 12345u64;
        for _ in 0..4_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let id = (x >> 33) as usize % 8;
            if x & 1 == 0 || naive[id] == 0 {
                t.incr(id);
                naive[id] += 1;
            } else {
                t.decr(id);
                naive[id] -= 1;
            }
            assert_eq!(t.max(), u64::from(*naive.iter().max().unwrap()));
        }
    }
}
