//! The sketch engine: sublinear-state ingestion, level-based subsampling,
//! two-tier refreshes (core-approx-on-sketch, escalated to exact-on-sketch
//! when the sketch's own core bracket is too loose), and epoch reports.

use std::time::{Duration, Instant};

use dds_core::{core_approx, exact_on_sketch, SolveContext, SolveStats};
use dds_graph::{DiGraph, GraphBuilder, Pair, VertexId};
use dds_num::Density;
use dds_obs::{Counter, Gauge, Histogram, Registry};

use crate::maxtrack::MaxTracker;
use crate::sample::SampleStore;

/// Relative inflation applied to the floating-point upper bound so
/// rounding can never flip the certificate (same discipline as
/// `dds-stream`'s drift bounds).
const SAFETY: f64 = 1e-9;

/// Retained sets smaller than this still wait for a few mutations before
/// refreshing — otherwise tiny sketches would re-solve on every event.
const DRIFT_FLOOR: usize = 32;

/// The cold-start degradation threshold: a sweep-first refresh whose
/// certified lower bound lands within this fraction of the bottom of the
/// bracket — less than 10% of the structural upper bound — with no
/// surviving incumbent to fall back on, has left the bracket pinned at
/// the structural bound (the signature of an optimum the sweep-on-sample
/// cannot see). The engine then arms a **one-shot escalation**: the next
/// refresh runs with `escalate_factor` forced to 1 (always
/// exact-on-sketch), after which the configured factor applies again.
/// One-shot, because if even the exact solve of the sample cannot do
/// better, the sample genuinely holds no signal and repeating the solve
/// would burn flows for nothing.
const COLD_START_FRACTION: f64 = 0.1;

/// Configuration of a [`SketchEngine`].
#[derive(Clone, Copy, Debug)]
pub struct SketchConfig {
    /// Maximum retained edges. When an insert pushes the retained set past
    /// this, the subsampling level increments (halving the admission rate)
    /// until the set fits again. Must be positive.
    pub state_bound: usize,
    /// Fraction of the retained set that must have churned since the last
    /// exact-on-sketch solve before [`SketchEngine::seal_epoch`] refreshes
    /// on its own. Must be positive (the embedding engines bypass this and
    /// call [`SketchEngine::force_refresh`] on their own band policy).
    pub refresh_drift: f64,
    /// Confidence parameter `δ` of the estimate's Chernoff loss factor
    /// (the `(1+ε)` bracket holds with probability `≥ 1 − δ` per query).
    /// Must be in `(0, 1)`.
    pub delta: f64,
    /// Escalation threshold of the two-tier refresh: a refresh first runs
    /// the `O(√m_H·(n+m_H))` core sweep **on the sketch** (`m_H ≤
    /// state_bound`, so this is the cheap tier the sketch exists for) and
    /// escalates to a full exact solve of the sketch only when the sweep's
    /// own certified bracket on `ρ_opt(H)` is wider than this factor.
    /// `1.0` escalates every refresh (always-exact); `2.0` effectively
    /// never does (the sweep's bracket is within 2 by construction, so
    /// only a sweep that certifies nothing at all escalates). Must be
    /// ≥ 1.
    pub escalate_factor: f64,
    /// Worker threads for the exact-on-sketch escalation (1 = serial).
    pub threads: usize,
    /// Seed of the deterministic edge-admission hash.
    pub seed: u64,
}

impl Default for SketchConfig {
    /// `state_bound = 4096`, `refresh_drift = 0.25`, `delta = 0.01`,
    /// `escalate_factor = 1.5`, serial solves, a fixed seed — sized so
    /// the sketch stays a few percent of any graph large enough to need
    /// one, escalating when the sweep's bracket on the sketch leaves more
    /// than 50% on the table. Raise toward 2 for sweep-first cheapness
    /// (experiment E15's headline configuration), lower toward 1 for
    /// near-exact witnesses.
    fn default() -> Self {
        SketchConfig {
            state_bound: 4096,
            refresh_drift: 0.25,
            delta: 0.01,
            escalate_factor: 1.5,
            threads: 1,
            seed: 0x5EED_CA5E,
        }
    }
}

/// Lifetime counters of a [`SketchEngine`] — the sketch-tier analog of
/// [`SolveStats`], flowing through the same report plumbing (`dds sketch`,
/// `dds stream` epoch reports, experiment E15).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SketchStats {
    /// Retained edges right now.
    pub retained: usize,
    /// Largest retained set ever held (post-subsampling steady state).
    pub peak_retained: usize,
    /// Current subsampling level (admission probability `2⁻ˡᵉᵛᵉˡ`).
    pub level: u32,
    /// Level increments performed so far.
    pub subsamples: u64,
    /// Refreshes run so far (each one a core sweep *of the sketch*).
    pub refreshes: u64,
    /// How many of those refreshes escalated to an exact-on-sketch solve
    /// (the sketch's core bracket exceeded the configured
    /// [`SketchConfig::escalate_factor`]).
    pub escalations: u64,
    /// How many refreshes ran with a **one-shot escalation** armed by the
    /// cold-start degradation detector (a sweep-first refresh that left
    /// the bracket pinned at the structural bound with no surviving
    /// incumbent — see [`SketchEngine::escalation_armed`]).
    pub cold_escalations: u64,
    /// Full rebuilds from the authoritative edge set (the
    /// [`SketchEngine::is_undersampled`] recovery path).
    pub rebuilds: u64,
    /// Accumulated instrumentation of every exact-on-sketch escalation.
    pub solve: SolveStats,
}

/// What one [`SketchEngine::seal_epoch`] call observed and certified.
#[derive(Clone, Debug)]
pub struct SketchReport {
    /// 1-based epoch number (one per seal).
    pub epoch: u64,
    /// Applied insertions since the previous seal.
    pub inserts: usize,
    /// Applied deletions since the previous seal.
    pub deletes: usize,
    /// Vertex count (one past the largest id seen).
    pub n: usize,
    /// Exact live edge count of the *full* graph (counter, not the sample).
    pub m: u64,
    /// Retained edges after the epoch.
    pub retained: usize,
    /// Subsampling level after the epoch.
    pub level: u32,
    /// Level increments that happened during this epoch.
    pub subsampled: u32,
    /// Whether this seal ran a refresh (a core sweep *of the sketch*,
    /// possibly escalated — see [`SketchReport::solve_stats`]).
    pub refreshed: bool,
    /// The witness pair's exact density **on the sketch** — the certified
    /// lower bound on the true optimum (`H ⊆ G`).
    pub density: Density,
    /// `density` as `f64`.
    pub lower: f64,
    /// Certified upper bound on the true optimum:
    /// `min(√m, √(d⁺_max · d⁻_max))` over the exact counters.
    pub upper: f64,
    /// The scaled estimate `ρ_H(S,T) · 2^level` of the witness pair's true
    /// density (and thereby a point estimate of the optimum).
    pub estimate: f64,
    /// Chernoff loss `ε` of the estimate: `E_G(S,T)` lies within
    /// `(1 ± ε) · E_H(S,T) · 2^level` with probability `≥ 1 − δ`. Zero at
    /// level 0 (no sampling loss).
    pub loss: f64,
    /// Proven approximation factor of the certified bracket
    /// (`upper / lower`; `inf` when edges exist but no witness survives).
    pub certified_factor: f64,
    /// Instrumentation of this epoch's exact-on-sketch escalation (`None`
    /// for unescalated — core-sweep-only — refreshes and quiet epochs).
    pub solve_stats: Option<SolveStats>,
    /// Wall-clock time spent sealing (including any refresh).
    pub elapsed: Duration,
}

/// Sublinear-state density sketch (see crate docs).
///
/// Two driving modes:
///
/// * **standalone** — feed applied mutations, call
///   [`seal_epoch`](Self::seal_epoch) at report cadence; the engine
///   refreshes itself when the retained set has churned past
///   [`SketchConfig::refresh_drift`];
/// * **embedded** — `dds-stream`'s engines feed mutations and call
///   [`force_refresh`](Self::force_refresh) whenever *their* certification
///   band breaks, then adopt the witness pair as a full-graph lower bound.
#[derive(Debug)]
pub struct SketchEngine {
    config: SketchConfig,
    sample: SampleStore,
    n: usize,
    m: u64,
    out_deg: MaxTracker,
    in_deg: MaxTracker,
    /// Witness of the last exact-on-sketch solve, with its retained edge
    /// count maintained per event (membership bitmaps sized to `n` at
    /// adoption time).
    witness: Option<Pair>,
    in_s: Vec<bool>,
    in_t: Vec<bool>,
    witness_edges: u64,
    /// Retained-set changes (inserts, deletes, subsample drops) since the
    /// last refresh — the standalone refresh trigger.
    mutations: u64,
    /// One-shot escalation armed by the cold-start degradation detector:
    /// the next refresh runs with `escalate_factor` forced to 1.
    escalate_once: bool,
    ctx: SolveContext,
    epoch: u64,
    ev_inserts: usize,
    ev_deletes: usize,
    epoch_subsamples: u32,
    peak_retained: usize,
    metrics: SketchMetrics,
    solve_totals: SolveStats,
    last_solve_stats: Option<SolveStats>,
}

/// Obs-backed lifetime counters of a [`SketchEngine`] (the `dds_sketch_*`
/// series): standalone atomics by default — [`SketchStats`] reads them as
/// a view — re-homed into a shared registry by
/// [`SketchEngine::attach_obs`]. The latency histogram and the gauges are
/// no-ops until attached.
#[derive(Debug, Default)]
struct SketchMetrics {
    subsamples: Counter,
    refreshes: Counter,
    escalations: Counter,
    cold_escalations: Counter,
    rebuilds: Counter,
    retained: Option<Gauge>,
    level: Option<Gauge>,
    refresh_latency: Histogram,
}

impl SketchMetrics {
    fn attach(&mut self, registry: &Registry) {
        let transfer = |old: &mut Counter, name: &str| {
            let new = registry.counter(name);
            new.add(old.get());
            *old = new;
        };
        transfer(&mut self.subsamples, "dds_sketch_subsamples_total");
        transfer(&mut self.refreshes, "dds_sketch_refreshes_total");
        transfer(&mut self.escalations, "dds_sketch_escalations_total");
        transfer(
            &mut self.cold_escalations,
            "dds_sketch_cold_escalations_total",
        );
        transfer(&mut self.rebuilds, "dds_sketch_rebuilds_total");
        self.retained = Some(registry.gauge("dds_sketch_retained"));
        self.level = Some(registry.gauge("dds_sketch_level"));
        self.refresh_latency = registry.histogram("dds_sketch_refresh_latency_us");
    }

    /// Publishes the retained-state gauges (fold points only, never the
    /// per-event hot path).
    fn publish_state(&self, retained: usize, level: u32) {
        if let Some(g) = &self.retained {
            g.set(retained as u64);
        }
        if let Some(g) = &self.level {
            g.set(u64::from(level));
        }
    }
}

impl SketchEngine {
    /// A fresh sketch over an empty graph.
    ///
    /// # Panics
    /// Panics on a zero state bound, non-positive drift, `δ ∉ (0, 1)`, or
    /// zero threads.
    #[must_use]
    pub fn new(config: SketchConfig) -> Self {
        assert!(config.state_bound > 0, "state bound must be positive");
        assert!(config.refresh_drift > 0.0, "refresh drift must be positive");
        assert!(
            config.delta > 0.0 && config.delta < 1.0,
            "delta must be in (0, 1)"
        );
        assert!(
            config.escalate_factor >= 1.0,
            "escalate factor must be at least 1"
        );
        assert!(config.threads > 0, "need at least one solve thread");
        SketchEngine {
            config,
            sample: SampleStore::new(config.seed),
            n: 0,
            m: 0,
            out_deg: MaxTracker::default(),
            in_deg: MaxTracker::default(),
            witness: None,
            in_s: Vec::new(),
            in_t: Vec::new(),
            witness_edges: 0,
            mutations: 0,
            escalate_once: false,
            ctx: SolveContext::new(),
            epoch: 0,
            ev_inserts: 0,
            ev_deletes: 0,
            epoch_subsamples: 0,
            peak_retained: 0,
            metrics: SketchMetrics::default(),
            solve_totals: SolveStats::default(),
            last_solve_stats: None,
        }
    }

    /// Re-homes this engine's lifetime counters in `registry` (the
    /// `dds_sketch_*` series plus the embedded solver context's
    /// `dds_exact_*`), transferring the values accumulated so far and
    /// enabling the refresh-latency histogram and retained-state gauges.
    /// Several engines attached to one registry (the sharded engine's
    /// per-shard sketches) sum into the same series.
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.metrics.attach(registry);
        self.ctx.attach_obs(registry);
    }

    /// Merges edge-partitioned part-sketches into one sketch of their
    /// union, **by union of retained sets at the maximum part level** —
    /// sound because admission is a deterministic, seed-keyed, *nested*
    /// function of the edge alone: every part retains exactly the edges of
    /// its partition admitted at its level, so filtering the union at
    /// `L = max(levels)` yields precisely the retained set a single engine
    /// at level `L` would hold over the whole edge set. Exact counters
    /// (live `m`, count-of-counts degree maxima) **sum**: the partition is
    /// disjoint, so per-vertex degrees add across parts
    /// ([`MaxTracker::merge`]). The merged sketch then enforces its own
    /// state bound (which may raise the level further — still nested,
    /// still only drops) and starts with no witness: run a refresh.
    ///
    /// # Panics
    /// Panics if any part's admission seed differs from `config.seed`
    /// (unioning differently-seeded samples is meaningless) or if `parts`
    /// is empty.
    #[must_use]
    pub fn merged(config: SketchConfig, parts: &[&SketchEngine]) -> Self {
        assert!(!parts.is_empty(), "merging zero sketches");
        let mut merged = SketchEngine::new(config);
        let mut level = 0u32;
        for part in parts {
            assert_eq!(
                part.sample.seed(),
                config.seed,
                "admission seeds must match for a sound union"
            );
            level = level.max(part.sample.level());
        }
        merged
            .sample
            .rebuild_at(level, parts.iter().flat_map(|p| p.sample.iter()));
        for part in parts {
            merged.n = merged.n.max(part.n);
            merged.m += part.m;
            merged.out_deg.merge(&part.out_deg);
            merged.in_deg.merge(&part.in_deg);
        }
        merged.enforce_state_bound();
        merged.peak_retained = merged.sample.len();
        merged
    }

    /// Reconstructs a sketch from snapshot state: the authoritative live
    /// edge set plus the stored subsampling `level`. Deterministic
    /// admission makes the retained set a pure function of
    /// `(seed, level, edges)`, so snapshots never serialise the sample
    /// itself. Counters are rebuilt exactly; the witness starts empty
    /// (run a refresh).
    #[must_use]
    pub fn restore_at<I: IntoIterator<Item = (VertexId, VertexId)>>(
        config: SketchConfig,
        level: u32,
        edges: I,
    ) -> Self {
        let mut engine = SketchEngine::new(config);
        let edges: Vec<(VertexId, VertexId)> = edges.into_iter().collect();
        for &(u, v) in &edges {
            engine.n = engine.n.max(u as usize + 1).max(v as usize + 1);
            engine.m += 1;
            engine.out_deg.incr(u as usize);
            engine.in_deg.incr(v as usize);
        }
        engine.sample.rebuild_at(level, edges);
        engine.peak_retained = engine.sample.len();
        engine
    }

    fn witness_contains(&self, u: VertexId, v: VertexId) -> bool {
        self.in_s.get(u as usize).copied().unwrap_or(false)
            && self.in_t.get(v as usize).copied().unwrap_or(false)
    }

    /// Ingests an **applied** insertion (see the crate docs' turnstile
    /// contract): `O(1)` counters always, retained-set admission by the
    /// deterministic hash, subsampling when the state bound is hit.
    pub fn insert(&mut self, u: VertexId, v: VertexId) {
        debug_assert_ne!(u, v, "self-loops are never applied mutations");
        self.n = self.n.max(u as usize + 1).max(v as usize + 1);
        self.m += 1;
        self.out_deg.incr(u as usize);
        self.in_deg.incr(v as usize);
        self.ev_inserts += 1;
        if self.sample.try_insert(u, v) {
            self.mutations += 1;
            if self.witness_contains(u, v) {
                self.witness_edges += 1;
            }
            self.enforce_state_bound();
            self.peak_retained = self.peak_retained.max(self.sample.len());
        }
    }

    /// Ingests an **applied** deletion.
    ///
    /// # Panics
    /// Panics (in the degree trackers) if the edge's endpoints have no
    /// live degree — the signature of a delete that was never inserted,
    /// i.e. a broken turnstile contract upstream.
    pub fn delete(&mut self, u: VertexId, v: VertexId) {
        self.m = self
            .m
            .checked_sub(1)
            .expect("delete of an edge the sketch never saw");
        self.out_deg.decr(u as usize);
        self.in_deg.decr(v as usize);
        self.ev_deletes += 1;
        if self.sample.remove(u, v) {
            self.mutations += 1;
            if self.witness_contains(u, v) {
                self.witness_edges -= 1;
            }
        }
    }

    /// Doubles the sampling rate's inverse until the retained set fits the
    /// bound again (admission sets are nested, so each bump only drops).
    fn enforce_state_bound(&mut self) {
        while self.sample.len() > self.config.state_bound && self.sample.level() < 63 {
            self.metrics.subsamples.inc();
            self.epoch_subsamples += 1;
            for (u, v) in self.sample.raise_level() {
                self.mutations += 1;
                if self.witness_contains(u, v) {
                    self.witness_edges -= 1;
                }
            }
        }
    }

    /// Raises the subsampling level to `level` (no-op if not above the
    /// current one), dropping the edges the new level rejects — the
    /// explicit form of the nested-admission bump, used by the shard
    /// oracle to bring two sketches to a common level before comparing
    /// their retained sets.
    pub fn raise_to_level(&mut self, level: u32) {
        if level <= self.sample.level() {
            return;
        }
        self.metrics.subsamples.inc();
        self.epoch_subsamples += 1;
        for (u, v) in self.sample.raise_to(level) {
            self.mutations += 1;
            if self.witness_contains(u, v) {
                self.witness_edges -= 1;
            }
        }
    }

    /// Whether the sample has collapsed well below what the state bound
    /// could hold: the level only ever rises while the stream grows, so a
    /// graph that later *shrinks* (a window expiring a burst, deletions
    /// draining a peak) can leave the sketch sampling at a rate far
    /// stingier than necessary — down to an empty retained set and a dead
    /// witness. Admission sets are nested, so the dropped edges cannot be
    /// resampled from inside the sketch; whoever owns the authoritative
    /// live edge set (the stream engines, the CLI's mirror) should call
    /// [`rebuild`](Self::rebuild) when this reports true. The `2×`
    /// hysteresis keeps a borderline sketch from rebuild-thrashing.
    #[must_use]
    pub fn is_undersampled(&self) -> bool {
        let level = self.sample.level();
        level > 0 && self.m.saturating_mul(2) <= (self.config.state_bound as u64) << (level - 1)
    }

    /// Rebuilds the sketch from the authoritative live edge set: resets
    /// every counter, picks the smallest level whose admitted subset fits
    /// the state bound, and retains exactly that subset. `O(m)` — the
    /// recovery path for [`is_undersampled`](Self::is_undersampled)
    /// collapse, not a per-batch operation. The witness is cleared; run a
    /// refresh afterwards.
    pub fn rebuild<I: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, edges: I) {
        let edges: Vec<(VertexId, VertexId)> = edges.into_iter().collect();
        self.sample.clear();
        self.m = 0;
        self.out_deg.clear();
        self.in_deg.clear();
        self.witness = None;
        self.in_s.clear();
        self.in_t.clear();
        self.witness_edges = 0;
        self.mutations = 0;
        // Histogram edges by the deepest level still admitting them, then
        // walk levels up from 0 until the admitted count fits the bound
        // (prefix of the nested admission chain).
        let mut admitted_at = [0u64; 64];
        for &(u, v) in &edges {
            self.n = self.n.max(u as usize + 1).max(v as usize + 1);
            self.m += 1;
            self.out_deg.incr(u as usize);
            self.in_deg.incr(v as usize);
            let mut deepest = 0u32;
            while deepest < 63 && self.sample.admits_at(deepest + 1, u, v) {
                deepest += 1;
            }
            admitted_at[deepest as usize] += 1;
        }
        let mut level = 0u32;
        loop {
            let admitted: u64 = admitted_at[level as usize..].iter().sum();
            if admitted <= self.config.state_bound as u64 || level == 63 {
                break;
            }
            level += 1;
        }
        self.sample.rebuild_at(level, edges);
        self.peak_retained = self.peak_retained.max(self.sample.len());
        // Gauges publish at the seal/refresh fold points only: per-shard
        // engines rebuild from parallel apply workers, and a single
        // shard's partial view must not overwrite the shared gauges.
        self.metrics.rebuilds.inc();
    }

    /// Whether the standalone refresh policy wants a solve now.
    fn needs_refresh(&self) -> bool {
        if self.sample.is_empty() {
            return false;
        }
        if self.witness.is_none() || self.witness_density().is_zero() {
            return true; // retained edges exist but no live witness
        }
        self.mutations as f64
            >= self.config.refresh_drift * (self.sample.len().max(DRIFT_FLOOR) as f64)
    }

    /// Runs a refresh now — the two-tier scheme on the **materialised
    /// sketch** `H` (never the full graph):
    ///
    /// 1. the max-product core sweep of `H`, `O(√m_H·(n+m_H))` with
    ///    `m_H ≤ state_bound` — its pair becomes the witness and its
    ///    certified bracket on `ρ_opt(H)` is measured;
    /// 2. if that bracket is wider than [`SketchConfig::escalate_factor`],
    ///    escalate to an exact solve of `H` on the warm context
    ///    (exact-on-sketch — still bounded by the state bound, which is
    ///    what makes the escalation affordable at any full-graph `m`).
    ///
    /// Returns the escalation's instrumentation (`None` when the core
    /// bracket sufficed).
    pub fn force_refresh(&mut self) -> Option<SolveStats> {
        let timer = self.metrics.refresh_latency.timer();
        let incumbent_dead = self.witness.is_none() || self.witness_density().is_zero();
        let g = self.materialize();
        self.metrics.refreshes.inc();
        self.metrics
            .publish_state(self.sample.len(), self.sample.level());
        self.mutations = 0;
        self.last_solve_stats = None;
        // The cold-start one-shot: an armed escalation forces this refresh
        // exact, then disarms (the configured factor applies again next
        // time).
        let one_shot = std::mem::take(&mut self.escalate_once);
        let factor = if one_shot {
            self.metrics.cold_escalations.inc();
            1.0
        } else {
            self.config.escalate_factor
        };
        let approx = core_approx(&g);
        let lower_c = approx.solution.density.to_f64();
        let escalate = lower_c <= 0.0 || approx.upper_bound > factor * lower_c;
        if !escalate {
            let pair = (!approx.solution.pair.is_empty()).then_some(approx.solution.pair);
            self.adopt_witness(pair, &g);
            // Cold-start degradation detection (the ROADMAP's sweep-first
            // hole): with no surviving incumbent, a sweep-on-sample witness
            // certifying less than [`COLD_START_FRACTION`] of the
            // structural upper bound has pinned the bracket at the
            // structural bound — the shape of an optimum the subsampled
            // sweep cannot see. Arm a one-shot escalation so the *next*
            // refresh pays for an exact solve of the sample instead of
            // settling again.
            if incumbent_dead && self.config.escalate_factor > 1.0 {
                let upper = self.certified_upper();
                if upper > 0.0 && self.witness_density().to_f64() < COLD_START_FRACTION * upper {
                    self.escalate_once = true;
                }
            }
            timer.stop();
            return None;
        }
        let report = exact_on_sketch(&mut self.ctx, &g, self.config.threads);
        let stats = report.stats();
        self.solve_totals.merge(stats);
        self.last_solve_stats = Some(stats);
        self.metrics.escalations.inc();
        let pair = (!report.solution.pair.is_empty()).then_some(report.solution.pair);
        self.adopt_witness(pair, &g);
        timer.stop();
        self.last_solve_stats
    }

    fn adopt_witness(&mut self, pair: Option<Pair>, h: &DiGraph) {
        self.in_s = vec![false; self.n];
        self.in_t = vec![false; self.n];
        self.witness_edges = 0;
        if let Some(pair) = &pair {
            for &u in pair.s() {
                self.in_s[u as usize] = true;
            }
            for &v in pair.t() {
                self.in_t[v as usize] = true;
            }
            self.witness_edges = pair.edges_between(h);
        }
        self.witness = pair;
    }

    /// Closes one reporting epoch: runs the standalone refresh policy and
    /// returns the epoch's report. Event counters reset afterwards.
    pub fn seal_epoch(&mut self) -> SketchReport {
        let start = Instant::now();
        self.epoch += 1;
        let refreshed = self.needs_refresh();
        if refreshed {
            self.force_refresh();
        }
        let density = self.witness_density();
        let lower = density.to_f64();
        let upper = self.certified_upper();
        let report = SketchReport {
            epoch: self.epoch,
            inserts: self.ev_inserts,
            deletes: self.ev_deletes,
            n: self.n,
            m: self.m,
            retained: self.sample.len(),
            level: self.sample.level(),
            subsampled: self.epoch_subsamples,
            refreshed,
            density,
            lower,
            upper,
            estimate: self.estimate(),
            loss: self.loss_epsilon(),
            certified_factor: if lower > 0.0 {
                upper / lower
            } else if upper > 0.0 {
                f64::INFINITY
            } else {
                1.0
            },
            solve_stats: if refreshed {
                self.last_solve_stats
            } else {
                None
            },
            elapsed: start.elapsed(),
        };
        self.ev_inserts = 0;
        self.ev_deletes = 0;
        self.epoch_subsamples = 0;
        self.metrics
            .publish_state(self.sample.len(), self.sample.level());
        report
    }

    /// Exact density of the maintained witness **on the sketch** — a
    /// certified lower bound on the true optimum ([`Density::ZERO`] before
    /// the first refresh or after the witness decays away).
    #[must_use]
    pub fn witness_density(&self) -> Density {
        match &self.witness {
            Some(pair) if !pair.is_empty() => Density::new(
                self.witness_edges,
                pair.s().len() as u64,
                pair.t().len() as u64,
            ),
            _ => Density::ZERO,
        }
    }

    /// Certified upper bound on the true optimum from the exact counters:
    /// `min(√m, √(d⁺_max · d⁻_max))`, safety-inflated.
    #[must_use]
    pub fn certified_upper(&self) -> f64 {
        if self.m == 0 {
            return 0.0;
        }
        let sqrt_m = (self.m as f64).sqrt();
        let degree = ((self.out_deg.max() as f64) * (self.in_deg.max() as f64)).sqrt();
        sqrt_m.min(degree) * (1.0 + SAFETY)
    }

    /// The scaled point estimate `ρ_H(witness) · 2^level` of the witness
    /// pair's true density.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        self.witness_density().to_f64() * (1u64 << self.sample.level().min(63)) as f64
    }

    /// Chernoff loss `ε` of [`estimate`](Self::estimate) at confidence
    /// `1 − δ`: 0 at level 0 (the sketch is exact), `inf` when the witness
    /// holds no retained edges (there is no estimate to bracket).
    #[must_use]
    pub fn loss_epsilon(&self) -> f64 {
        if self.sample.level() == 0 {
            return 0.0;
        }
        if self.witness_edges == 0 {
            return f64::INFINITY;
        }
        (3.0 * (2.0 / self.config.delta).ln() / (self.witness_edges as f64)).sqrt()
    }

    /// Freezes the retained subgraph into the CSR form the solvers use
    /// (vertex ids match the full graph's, so solved pairs transfer).
    #[must_use]
    pub fn materialize(&self) -> DiGraph {
        let mut b = GraphBuilder::with_min_vertices(self.n);
        for (u, v) in self.sample.iter() {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// The maintained witness pair, if a refresh has produced one.
    #[must_use]
    pub fn witness_pair(&self) -> Option<&Pair> {
        self.witness.as_ref()
    }

    /// Lifetime counters in one struct (the report-plumbing form).
    #[must_use]
    pub fn stats(&self) -> SketchStats {
        SketchStats {
            retained: self.sample.len(),
            peak_retained: self.peak_retained,
            level: self.sample.level(),
            subsamples: self.metrics.subsamples.get(),
            refreshes: self.metrics.refreshes.get(),
            escalations: self.metrics.escalations.get(),
            cold_escalations: self.metrics.cold_escalations.get(),
            rebuilds: self.metrics.rebuilds.get(),
            solve: self.solve_totals,
        }
    }

    /// Instrumentation of the most recent exact-on-sketch solve, if any.
    #[must_use]
    pub fn last_solve_stats(&self) -> Option<SolveStats> {
        self.last_solve_stats
    }

    /// Retained edges right now.
    #[must_use]
    pub fn retained(&self) -> usize {
        self.sample.len()
    }

    /// Iterates the retained edges (arbitrary order) — the sample the
    /// refreshes solve, exposed for merging, differential oracles, and
    /// snapshot verification.
    pub fn retained_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.sample.iter()
    }

    /// Current subsampling level.
    #[must_use]
    pub fn level(&self) -> u32 {
        self.sample.level()
    }

    /// The deterministic admission seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.sample.seed()
    }

    /// The exact count-of-counts degree maxima `(out, in)` over the live
    /// edge set this sketch has ingested — the counters edge-partitioned
    /// shards sum ([`MaxTracker::merge`]) into the global structural
    /// upper bound.
    #[must_use]
    pub fn degree_trackers(&self) -> (&MaxTracker, &MaxTracker) {
        (&self.out_deg, &self.in_deg)
    }

    /// Retained-set changes (inserts, deletes, subsample drops) since the
    /// last refresh — the standalone drift trigger, exposed so embedding
    /// engines that pool several sketches (`dds-shard`) can run the same
    /// policy over the summed drift.
    #[must_use]
    pub fn sample_mutations(&self) -> u64 {
        self.mutations
    }

    /// Overwrites the drift counter: embedding engines zero it after a
    /// pooled refresh (the analog of what [`SketchEngine::force_refresh`]
    /// does for the standalone policy), and snapshot restores put the
    /// saved value back so refresh timing resumes bit-identically.
    pub fn set_sample_mutations(&mut self, mutations: u64) {
        self.mutations = mutations;
    }

    /// Whether the cold-start detector has armed a one-shot escalation
    /// for the next refresh (see [`SketchStats::cold_escalations`]).
    #[must_use]
    pub fn escalation_armed(&self) -> bool {
        self.escalate_once
    }

    /// Arms a one-shot escalation by hand: the next refresh runs with
    /// `escalate_factor` forced to 1, then the configured factor applies
    /// again. The sharded engine uses this to carry an armed escalation
    /// across merged sketches (each merge starts a fresh engine).
    pub fn arm_escalation(&mut self) {
        self.escalate_once = true;
    }

    /// Exact live edge count of the full graph (counter).
    #[must_use]
    pub fn m(&self) -> u64 {
        self.m
    }

    /// Vertex count (one past the largest id seen).
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of seals so far.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of refreshes so far (core sweeps of the sketch).
    #[must_use]
    pub fn refreshes(&self) -> u64 {
        self.metrics.refreshes.get()
    }

    /// Number of refreshes that escalated to an exact-on-sketch solve.
    #[must_use]
    pub fn escalations(&self) -> u64 {
        self.metrics.escalations.get()
    }

    /// The engine's long-lived solver context.
    #[must_use]
    pub fn context(&self) -> &SolveContext {
        &self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k22() -> [(u32, u32); 4] {
        [(0, 2), (0, 3), (1, 2), (1, 3)]
    }

    #[test]
    fn level_zero_sketch_is_exact() {
        let mut sk = SketchEngine::new(SketchConfig::default());
        for (u, v) in k22() {
            sk.insert(u, v);
        }
        let report = sk.seal_epoch();
        assert!(report.refreshed);
        assert_eq!(report.level, 0);
        assert_eq!(report.retained, 4);
        assert_eq!(report.density, Density::new(4, 2, 2));
        assert_eq!(report.estimate, 2.0);
        assert_eq!(report.loss, 0.0);
        assert!(report.lower <= report.upper);
        assert!(report.certified_factor <= 1.0 + 1e-6);
    }

    #[test]
    fn state_bound_forces_subsampling_and_holds() {
        let mut sk = SketchEngine::new(SketchConfig {
            state_bound: 16,
            ..SketchConfig::default()
        });
        for i in 0..400u32 {
            sk.insert(i % 57, 57 + i % 91); // bipartite-ish spray, no loops
            assert!(sk.retained() <= 16, "bound broken at event {i}");
        }
        assert!(sk.level() > 0, "400 inserts past bound 16 must subsample");
        assert_eq!(sk.m(), 400);
        let stats = sk.stats();
        assert!(stats.subsamples >= 4, "level {} too low", stats.level);
        assert!(stats.peak_retained <= 16);
        // Every retained edge is a real edge of the inserted spray.
        for (u, v) in sk.materialize().edges() {
            assert!(u < 57 && (57..148).contains(&v));
        }
    }

    #[test]
    fn deletes_refund_counters_and_witness() {
        let mut sk = SketchEngine::new(SketchConfig::default());
        for (u, v) in k22() {
            sk.insert(u, v);
        }
        sk.seal_epoch();
        assert_eq!(sk.witness_density(), Density::new(4, 2, 2));
        sk.delete(0, 2);
        assert_eq!(sk.m(), 3);
        assert_eq!(sk.witness_density(), Density::new(3, 2, 2));
        // The decayed witness is still a sound lower bound.
        let report = sk.seal_epoch();
        assert!(report.lower <= report.upper);
    }

    #[test]
    #[should_panic(expected = "decrement of zero counter")]
    fn turnstile_violations_panic_loudly() {
        let mut sk = SketchEngine::new(SketchConfig::default());
        sk.insert(0, 1);
        sk.delete(5, 6); // never inserted: contract breach
    }

    #[test]
    fn standalone_refresh_policy_tracks_drift() {
        let mut sk = SketchEngine::new(SketchConfig {
            refresh_drift: 0.5,
            ..SketchConfig::default()
        });
        for (u, v) in k22() {
            sk.insert(u, v);
        }
        assert!(sk.seal_epoch().refreshed, "first seal must solve");
        // No mutations: the next seal is free.
        let quiet = sk.seal_epoch();
        assert!(!quiet.refreshed);
        assert!(quiet.solve_stats.is_none());
        // Churn past the drift floor: a refresh fires again.
        for i in 0..40u32 {
            sk.insert(100 + i, 200 + i);
        }
        let busy = sk.seal_epoch();
        assert!(busy.refreshed, "drifted sketch must re-solve");
        assert!(busy.solve_stats.is_some());
        assert_eq!(sk.refreshes(), 2);
    }

    #[test]
    fn witness_death_triggers_refresh() {
        let mut sk = SketchEngine::new(SketchConfig::default());
        for (u, v) in k22() {
            sk.insert(u, v);
        }
        sk.seal_epoch();
        for (u, v) in k22() {
            sk.delete(u, v);
        }
        sk.insert(7, 8); // retained edges exist, witness is gone
        let report = sk.seal_epoch();
        assert!(report.refreshed, "dead witness must force a solve");
        assert!(report.lower > 0.0);
    }

    #[test]
    fn empty_graph_reports_zero() {
        let mut sk = SketchEngine::new(SketchConfig::default());
        let report = sk.seal_epoch();
        assert_eq!(report.m, 0);
        assert!(!report.refreshed);
        assert_eq!(report.upper, 0.0);
        assert_eq!(report.certified_factor, 1.0);
    }

    #[test]
    fn estimate_scales_by_the_sampling_rate() {
        let mut sk = SketchEngine::new(SketchConfig {
            state_bound: 64,
            ..SketchConfig::default()
        });
        // A 24×24 complete block (576 edges) forces subsampling; the
        // estimate must land near the true ρ = 24 while the certified
        // bracket stays sound around it.
        for u in 0..24u32 {
            for v in 24..48u32 {
                sk.insert(u, v);
            }
        }
        let report = sk.seal_epoch();
        assert!(report.level >= 3, "level {}", report.level);
        assert!(report.lower <= 24.0 + 1e-9, "lower must stay sound");
        assert!(report.upper >= 24.0, "upper must stay sound");
        assert!(report.loss > 0.0);
        assert!(
            report.estimate > 24.0 * (1.0 - report.loss)
                && report.estimate < 24.0 * (1.0 + report.loss),
            "estimate {} drifted past its own loss bracket {}",
            report.estimate,
            report.loss
        );
    }

    #[test]
    fn rebuild_recovers_a_shrunken_sketch() {
        let mut sk = SketchEngine::new(SketchConfig {
            state_bound: 32,
            ..SketchConfig::default()
        });
        // Grow far past the bound so the level climbs…
        for i in 0..600u32 {
            sk.insert(i % 57, 57 + (i * 5) % 97);
        }
        let high = sk.level();
        assert!(high >= 4, "level {high}");
        // …then drain almost everything: the sample over-thins.
        let survivors: Vec<(u32, u32)> = sk.materialize().edges().take(3).collect();
        let all: Vec<(u32, u32)> = (0..600u32).map(|i| (i % 57, 57 + (i * 5) % 97)).collect();
        for &(u, v) in &all {
            if !survivors.contains(&(u, v)) {
                sk.delete(u, v);
            }
        }
        assert!(sk.is_undersampled(), "3 live edges at level {high}");
        // Rebuild from the authoritative live set: back to level 0, every
        // live edge retained, counters intact.
        sk.rebuild(survivors.iter().copied());
        assert_eq!(sk.level(), 0);
        assert_eq!(sk.retained(), 3);
        assert_eq!(sk.m(), 3);
        assert!(!sk.is_undersampled());
        assert_eq!(sk.stats().rebuilds, 1);
        let report = sk.seal_epoch();
        assert!(report.refreshed, "rebuild clears the witness");
        assert!(report.lower > 0.0, "the reseeded sketch certifies again");
        assert!(report.lower <= report.upper);
    }

    #[test]
    fn rebuild_picks_the_smallest_fitting_level() {
        let mut sk = SketchEngine::new(SketchConfig {
            state_bound: 64,
            ..SketchConfig::default()
        });
        let edges: Vec<(u32, u32)> = (0..400u32).map(|i| (i % 57, 57 + (i * 5) % 97)).collect();
        sk.rebuild(edges.iter().copied());
        assert!(sk.retained() <= 64, "bound holds after rebuild");
        assert!(sk.level() > 0, "400 edges cannot fit a 64 bound at level 0");
        // Minimality: one level down must overflow the bound.
        let down = sk.level() - 1;
        let admitted_down = edges
            .iter()
            .filter(|&&(u, v)| sk.sample.admits_at(down, u, v))
            .count();
        assert!(admitted_down > 64, "level was not minimal");
        assert_eq!(sk.m(), 400);
    }

    /// A spray of edges split across k deterministic partitions and merged
    /// back must equal the single engine over the whole stream, once both
    /// sit at the same level — the union-soundness the sharded engine's
    /// certification rests on.
    #[test]
    fn merged_partitions_equal_the_single_engine() {
        let config = SketchConfig {
            state_bound: 48,
            ..SketchConfig::default()
        };
        let edges: Vec<(u32, u32)> = (0..500u32).map(|i| (i % 61, 61 + (i * 7) % 83)).collect();
        let mut single = SketchEngine::new(config);
        let mut parts: Vec<SketchEngine> = (0..3).map(|_| SketchEngine::new(config)).collect();
        for &(u, v) in &edges {
            single.insert(u, v);
            parts[((u ^ v) % 3) as usize].insert(u, v);
        }
        // Drop a slice again, to exercise merged deletes too.
        for &(u, v) in edges.iter().step_by(5) {
            single.delete(u, v);
            parts[((u ^ v) % 3) as usize].delete(u, v);
        }
        let refs: Vec<&SketchEngine> = parts.iter().collect();
        let mut merged = SketchEngine::merged(config, &refs);
        assert_eq!(merged.m(), single.m(), "live counters must sum");
        let (mo, mi) = merged.degree_trackers();
        let (so, si) = single.degree_trackers();
        assert_eq!((mo.max(), mi.max()), (so.max(), si.max()));
        // Bring both to a common level; the retained sets must coincide.
        let level = merged.level().max(single.level());
        merged.raise_to_level(level);
        single.raise_to_level(level);
        let mut a: Vec<_> = merged.retained_edges().collect();
        let mut b: Vec<_> = single.retained_edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "merged sample diverged from the single engine");
    }

    #[test]
    #[should_panic(expected = "admission seeds must match")]
    fn merging_mismatched_seeds_panics() {
        let a = SketchEngine::new(SketchConfig::default());
        let b = SketchEngine::new(SketchConfig {
            seed: 1,
            ..SketchConfig::default()
        });
        let _ = SketchEngine::merged(SketchConfig::default(), &[&a, &b]);
    }

    /// `restore_at` rebuilds a snapshot's sketch as a pure function of
    /// `(seed, level, edges)` — identical retained set and counters.
    #[test]
    fn restore_at_reconstructs_the_sample() {
        let config = SketchConfig {
            state_bound: 32,
            ..SketchConfig::default()
        };
        let mut live = SketchEngine::new(config);
        let edges: Vec<(u32, u32)> = (0..300u32).map(|i| (i % 41, 41 + (i * 11) % 59)).collect();
        for &(u, v) in &edges {
            live.insert(u, v);
        }
        let restored = SketchEngine::restore_at(config, live.level(), edges.iter().copied());
        assert_eq!(restored.level(), live.level());
        assert_eq!(restored.m(), live.m());
        assert_eq!(restored.n(), live.n());
        let mut a: Vec<_> = restored.retained_edges().collect();
        let mut b: Vec<_> = live.retained_edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        let (ro, ri) = restored.degree_trackers();
        let (lo, li) = live.degree_trackers();
        assert_eq!((ro.max(), ri.max()), (lo.max(), li.max()));
    }

    /// The one-shot escalation machinery: an armed engine must run its
    /// next refresh exact-on-sketch regardless of the configured factor,
    /// then disarm and count the event.
    #[test]
    fn armed_escalation_fires_exactly_once() {
        let mut sk = SketchEngine::new(SketchConfig {
            escalate_factor: 2.0, // sweep-first: never escalates on its own
            ..SketchConfig::default()
        });
        for (u, v) in k22() {
            sk.insert(u, v);
        }
        let report = sk.seal_epoch();
        assert!(report.refreshed);
        assert!(report.solve_stats.is_none(), "factor 2 stays sweep-first");
        assert!(!sk.escalation_armed(), "K_{{2,2}} cold start is healthy");
        sk.arm_escalation();
        sk.force_refresh();
        assert_eq!(sk.stats().escalations, 1, "armed refresh must go exact");
        assert_eq!(sk.stats().cold_escalations, 1);
        assert!(!sk.escalation_armed(), "one-shot must disarm after firing");
        sk.force_refresh();
        assert_eq!(sk.stats().escalations, 1, "the shot does not repeat");
    }

    /// The cold-start detector end to end: subsample a graph whose
    /// optimum the sweep-on-sample cannot see (scattered sample, high
    /// structural bound), then check the sweep-first refresh arms and the
    /// next one escalates.
    #[test]
    fn cold_start_degradation_arms_a_one_shot_escalation() {
        let mut sk = SketchEngine::new(SketchConfig {
            state_bound: 24,
            escalate_factor: 3.0,
            ..SketchConfig::default()
        });
        // Two opposed hub stars: m = 2400, d⁺_max = d⁻_max = 1200 pins the
        // structural bound at √2400 ≈ 49, while the level-≈7 sample
        // retains ~20 scattered star edges whose best pair certifies
        // ~√12 ≈ 3.5 — under 10% of the bound, with no incumbent: the
        // pinned shape.
        for v in 1..=1200u32 {
            sk.insert(0, v);
        }
        for u in 1201..=2400u32 {
            sk.insert(u, 2401);
        }
        let report = sk.seal_epoch();
        assert!(report.refreshed);
        assert!(
            report.solve_stats.is_none(),
            "factor 3 must start sweep-first"
        );
        assert!(
            sk.escalation_armed(),
            "lower {} vs upper {}: cold start must arm",
            report.lower,
            report.upper
        );
        // The armed refresh goes exact-on-sketch.
        let stats = sk.force_refresh();
        assert!(
            stats.is_some(),
            "armed refresh must escalate to exact-on-sketch"
        );
        assert!(!sk.escalation_armed(), "one-shot must disarm after firing");
        assert_eq!(sk.stats().cold_escalations, 1);
        assert_eq!(sk.stats().escalations, 1);
    }

    /// A healthy cold start (dense optimum, sweep recovers most of the
    /// bound) must NOT arm the escalation.
    #[test]
    fn healthy_sweeps_do_not_arm_escalation() {
        let mut sk = SketchEngine::new(SketchConfig {
            escalate_factor: 2.0,
            ..SketchConfig::default()
        });
        for u in 0..8u32 {
            for v in 8..16u32 {
                sk.insert(u, v);
            }
        }
        let report = sk.seal_epoch();
        assert!(report.refreshed);
        assert!(!sk.escalation_armed(), "dense cold start must stay calm");
        assert_eq!(sk.stats().cold_escalations, 0);
    }

    #[test]
    fn deterministic_across_reruns() {
        let run = || {
            let mut sk = SketchEngine::new(SketchConfig {
                state_bound: 32,
                ..SketchConfig::default()
            });
            // `(i % 40, (i·7) % 60)` is injective below lcm(40, 60) = 120,
            // so the stream stays a clean turnstile.
            for i in 0..120u32 {
                sk.insert(i % 40, 40 + (i * 7) % 60);
                if i % 5 == 4 {
                    sk.delete(i % 40, 40 + (i * 7) % 60);
                }
            }
            let r = sk.seal_epoch();
            (
                r.retained,
                r.level,
                r.m,
                r.lower.to_bits(),
                r.upper.to_bits(),
            )
        };
        assert_eq!(run(), run());
    }
}
