//! Deterministic level-based edge admission.
//!
//! Every edge gets a fixed 64-bit hash from a seeded splitmix64 finaliser;
//! level `ℓ` admits the edges whose hash falls below `2⁶⁴ / 2^ℓ`, i.e. an
//! admission probability of `2⁻ℓ` under the usual uniform-hash model. Two
//! properties carry the whole sketch:
//!
//! * **determinism** — admission depends only on `(seed, u, v)`, so an
//!   edge deleted and re-inserted makes the same coin flip, and a replay
//!   reproduces the sketch exactly;
//! * **nesting** — the admission set at level `ℓ+1` is a subset of the set
//!   at level `ℓ`, so a level bump only drops retained edges, never
//!   requires edges the sketch already threw away.

use dds_graph::VertexId;

/// Seeded deterministic admission of edges at a subsampling level.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EdgeSampler {
    seed: u64,
}

impl EdgeSampler {
    pub(crate) fn new(seed: u64) -> Self {
        EdgeSampler { seed }
    }

    /// The edge's fixed 64-bit hash (splitmix64 finaliser over the packed
    /// endpoint pair, keyed by the seed).
    fn hash(self, u: VertexId, v: VertexId) -> u64 {
        let mut z = self
            .seed
            .wrapping_add((u64::from(u) << 32 | u64::from(v)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Whether the edge is retained at `level` (probability `2⁻ˡᵉᵛᵉˡ`).
    /// Levels ≥ 64 are clamped to the all-but-impossible 2⁻⁶³.
    pub(crate) fn admits(self, level: u32, u: VertexId, v: VertexId) -> bool {
        self.hash(u, v) <= u64::MAX >> level.min(63)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_zero_admits_everything() {
        let s = EdgeSampler::new(0xDD5);
        for (u, v) in [(0, 1), (7, 3), (1000, 2000), (u32::MAX, 0)] {
            assert!(s.admits(0, u, v));
        }
    }

    #[test]
    fn levels_are_nested_and_roughly_halve() {
        let s = EdgeSampler::new(42);
        let mut admitted_prev = usize::MAX;
        for level in 0..6u32 {
            let mut admitted = 0usize;
            for u in 0..100u32 {
                for v in 0..100u32 {
                    if s.admits(level, u, v) {
                        admitted += 1;
                        // Nesting: admitted at ℓ ⇒ admitted at every ℓ' < ℓ.
                        for lower in 0..level {
                            assert!(s.admits(lower, u, v), "nesting broken at {level}");
                        }
                    }
                }
            }
            assert!(admitted < admitted_prev, "level {level} must shrink");
            admitted_prev = admitted;
            // Within 25% of the expected 10_000 / 2^level (loose: these are
            // fixed hashes, not fresh coins).
            let expected = 10_000.0 / f64::from(1u32 << level);
            assert!(
                (admitted as f64) > 0.75 * expected && (admitted as f64) < 1.25 * expected,
                "level {level}: {admitted} admitted vs ~{expected}"
            );
        }
    }

    #[test]
    fn different_seeds_sample_differently() {
        let a = EdgeSampler::new(1);
        let b = EdgeSampler::new(2);
        let disagreements = (0..1000u32)
            .filter(|&v| a.admits(1, 0, v) != b.admits(1, 0, v))
            .count();
        assert!(disagreements > 100, "seeds look correlated");
    }

    #[test]
    fn extreme_levels_are_clamped_not_ub() {
        let s = EdgeSampler::new(7);
        // Level 64+ must not shift by the full width (that would be UB on
        // the threshold computation); it clamps to 2⁻⁶³.
        let _ = s.admits(64, 1, 2);
        let _ = s.admits(1000, 1, 2);
    }
}
