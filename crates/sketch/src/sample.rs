//! Deterministic level-based edge admission.
//!
//! Every edge gets a fixed 64-bit hash from a seeded splitmix64 finaliser;
//! level `ℓ` admits the edges whose hash falls below `2⁶⁴ / 2^ℓ`, i.e. an
//! admission probability of `2⁻ℓ` under the usual uniform-hash model. Two
//! properties carry the whole sketch:
//!
//! * **determinism** — admission depends only on `(seed, u, v)`, so an
//!   edge deleted and re-inserted makes the same coin flip, and a replay
//!   reproduces the sketch exactly;
//! * **nesting** — the admission set at level `ℓ+1` is a subset of the set
//!   at level `ℓ`, so a level bump only drops retained edges, never
//!   requires edges the sketch already threw away.

use std::collections::HashSet;

use dds_graph::VertexId;

/// Seeded deterministic admission of edges at a subsampling level.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EdgeSampler {
    seed: u64,
}

impl EdgeSampler {
    pub(crate) fn new(seed: u64) -> Self {
        EdgeSampler { seed }
    }

    /// The edge's fixed 64-bit hash (splitmix64 finaliser over the packed
    /// endpoint pair, keyed by the seed).
    fn hash(self, u: VertexId, v: VertexId) -> u64 {
        let mut z = self
            .seed
            .wrapping_add((u64::from(u) << 32 | u64::from(v)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Whether the edge is retained at `level` (probability `2⁻ˡᵉᵛᵉˡ`).
    /// Levels ≥ 64 are clamped to the all-but-impossible 2⁻⁶³.
    pub(crate) fn admits(self, level: u32, u: VertexId, v: VertexId) -> bool {
        self.hash(u, v) <= u64::MAX >> level.min(63)
    }
}

/// The retained sample itself: the admission sampler, the current level,
/// and the set of retained edges — everything about a sketch that is *not*
/// an exact counter. Factored out of the engine so that merging
/// (edge-partitioned shards unioning their samples), snapshotting (the
/// retained set is reconstructible from `(seed, level)` plus the
/// authoritative edge set, so a snapshot stores only those), and level
/// manipulation live in one place with the nesting invariant.
#[derive(Clone, Debug)]
pub(crate) struct SampleStore {
    sampler: EdgeSampler,
    seed: u64,
    level: u32,
    retained: HashSet<(VertexId, VertexId)>,
}

impl SampleStore {
    /// An empty store at level 0.
    pub(crate) fn new(seed: u64) -> Self {
        SampleStore {
            sampler: EdgeSampler::new(seed),
            seed,
            level: 0,
            retained: HashSet::new(),
        }
    }

    /// The admission seed (part of the snapshot identity).
    pub(crate) fn seed(&self) -> u64 {
        self.seed
    }

    /// Current subsampling level.
    pub(crate) fn level(&self) -> u32 {
        self.level
    }

    /// Number of retained edges.
    pub(crate) fn len(&self) -> usize {
        self.retained.len()
    }

    /// Whether nothing is retained.
    pub(crate) fn is_empty(&self) -> bool {
        self.retained.is_empty()
    }

    /// Iterates the retained edges (arbitrary order).
    pub(crate) fn iter(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.retained.iter().copied()
    }

    /// Whether the sampler admits the edge at an explicit level.
    pub(crate) fn admits_at(&self, level: u32, u: VertexId, v: VertexId) -> bool {
        self.sampler.admits(level, u, v)
    }

    /// Inserts the edge if the current level admits it. Returns whether the
    /// retained set actually grew.
    pub(crate) fn try_insert(&mut self, u: VertexId, v: VertexId) -> bool {
        self.sampler.admits(self.level, u, v) && self.retained.insert((u, v))
    }

    /// Removes the edge. Returns whether it was retained.
    pub(crate) fn remove(&mut self, u: VertexId, v: VertexId) -> bool {
        self.retained.remove(&(u, v))
    }

    /// Raises the level by one (halving the admission rate) and drops the
    /// edges the new level rejects, returning them so the caller can settle
    /// witness bookkeeping. Nested admission guarantees this only drops.
    pub(crate) fn raise_level(&mut self) -> Vec<(VertexId, VertexId)> {
        self.raise_to(self.level + 1)
    }

    /// Raises the level to `level` (no-op if not above the current one),
    /// returning the dropped edges.
    pub(crate) fn raise_to(&mut self, level: u32) -> Vec<(VertexId, VertexId)> {
        let level = level.min(63);
        if level <= self.level {
            return Vec::new();
        }
        self.level = level;
        let (sampler, lvl) = (self.sampler, self.level);
        let dropped: Vec<(VertexId, VertexId)> = self
            .retained
            .iter()
            .copied()
            .filter(|&(u, v)| !sampler.admits(lvl, u, v))
            .collect();
        for &(u, v) in &dropped {
            self.retained.remove(&(u, v));
        }
        dropped
    }

    /// Replaces the store's contents with the subset of `edges` admitted at
    /// `level` — the restore path: a snapshot carries only `(seed, level)`
    /// and the authoritative edge set, because deterministic admission
    /// makes the retained set a pure function of those.
    pub(crate) fn rebuild_at<I: IntoIterator<Item = (VertexId, VertexId)>>(
        &mut self,
        level: u32,
        edges: I,
    ) {
        self.level = level.min(63);
        self.retained.clear();
        for (u, v) in edges {
            if self.sampler.admits(self.level, u, v) {
                self.retained.insert((u, v));
            }
        }
    }

    /// Clears the retained set and resets the level to 0.
    pub(crate) fn clear(&mut self) {
        self.level = 0;
        self.retained.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_zero_admits_everything() {
        let s = EdgeSampler::new(0xDD5);
        for (u, v) in [(0, 1), (7, 3), (1000, 2000), (u32::MAX, 0)] {
            assert!(s.admits(0, u, v));
        }
    }

    #[test]
    fn levels_are_nested_and_roughly_halve() {
        let s = EdgeSampler::new(42);
        let mut admitted_prev = usize::MAX;
        for level in 0..6u32 {
            let mut admitted = 0usize;
            for u in 0..100u32 {
                for v in 0..100u32 {
                    if s.admits(level, u, v) {
                        admitted += 1;
                        // Nesting: admitted at ℓ ⇒ admitted at every ℓ' < ℓ.
                        for lower in 0..level {
                            assert!(s.admits(lower, u, v), "nesting broken at {level}");
                        }
                    }
                }
            }
            assert!(admitted < admitted_prev, "level {level} must shrink");
            admitted_prev = admitted;
            // Within 25% of the expected 10_000 / 2^level (loose: these are
            // fixed hashes, not fresh coins).
            let expected = 10_000.0 / f64::from(1u32 << level);
            assert!(
                (admitted as f64) > 0.75 * expected && (admitted as f64) < 1.25 * expected,
                "level {level}: {admitted} admitted vs ~{expected}"
            );
        }
    }

    #[test]
    fn different_seeds_sample_differently() {
        let a = EdgeSampler::new(1);
        let b = EdgeSampler::new(2);
        let disagreements = (0..1000u32)
            .filter(|&v| a.admits(1, 0, v) != b.admits(1, 0, v))
            .count();
        assert!(disagreements > 100, "seeds look correlated");
    }

    #[test]
    fn extreme_levels_are_clamped_not_ub() {
        let s = EdgeSampler::new(7);
        // Level 64+ must not shift by the full width (that would be UB on
        // the threshold computation); it clamps to 2⁻⁶³.
        let _ = s.admits(64, 1, 2);
        let _ = s.admits(1000, 1, 2);
    }
}
