//! Floor integer square root on `u128`.

/// Returns `⌊sqrt(n)⌋` for any `u128`.
///
/// Newton's method seeded from the bit length; converges in a handful of
/// iterations and is exact (the loop maintains `x ≥ ⌊sqrt(n)⌋` and stops at
/// the fixpoint).
#[must_use]
pub fn isqrt(n: u128) -> u128 {
    if n < 2 {
        return n;
    }
    // Initial guess: 2^⌈bits/2⌉ ≥ sqrt(n).
    let shift = (128 - n.leading_zeros()).div_ceil(2);
    let mut x = 1u128 << shift;
    loop {
        let next = (x + n / x) >> 1;
        if next >= x {
            return x;
        }
        x = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values() {
        let expected = [0u128, 1, 1, 1, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 4];
        for (n, want) in expected.iter().enumerate() {
            assert_eq!(isqrt(n as u128), *want, "isqrt({n})");
        }
    }

    #[test]
    fn perfect_squares_and_neighbours() {
        for r in [
            1u128,
            2,
            3,
            10,
            255,
            256,
            65_535,
            1 << 32,
            (1 << 63) + 12_345,
        ] {
            let sq = r * r;
            assert_eq!(isqrt(sq), r);
            assert_eq!(isqrt(sq - 1), r - 1);
            if let Some(sq1) = sq.checked_add(1) {
                assert_eq!(isqrt(sq1), r);
            }
        }
    }

    #[test]
    fn extremes() {
        assert_eq!(isqrt(u128::MAX), (1u128 << 64) - 1);
        let r = (1u128 << 64) - 1;
        assert_eq!(isqrt(r * r), r);
    }

    #[test]
    fn invariant_holds_on_pseudorandom_inputs() {
        // Cheap LCG so the test has no dependencies.
        let mut state = 0x853c_49e6_748f_ea9bu128;
        for _ in 0..2_000 {
            state = state
                .wrapping_mul(0x5851_f42d_4c95_7f2d)
                .wrapping_add(0x1405_7b7e_f767_814f);
            let n = state;
            let r = isqrt(n);
            assert!(r * r <= n, "r² ≤ n for n={n}");
            assert!(r + 1 > isqrt(n), "consistency");
            let r1 = r + 1;
            // (r+1)² > n, guarding against overflow at the top end.
            if let Some(sq) = r1.checked_mul(r1) {
                assert!(sq > n, "(r+1)² > n for n={n}");
            }
        }
    }
}
