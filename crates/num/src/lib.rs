//! Exact numeric kernels used by the directed densest-subgraph (DDS)
//! algorithms.
//!
//! The exact algorithms in this workspace ([`dds-core`]) never trust floating
//! point for a *decision*: every comparison that affects correctness is done
//! in integer/rational arithmetic. This crate provides the pieces:
//!
//! * [`Frac`] — a reduced `i128` rational with exact, overflow-free ordering
//!   (comparisons go through 256-bit intermediate products);
//! * [`Density`] — the value `|E(S,T)| / sqrt(|S|·|T|)` kept in its exact
//!   `(edges, s, t)` form, with a total order that never rounds;
//! * [`Ratio`] — a reduced non-negative fraction `a/b` (with `b = 0` meaning
//!   `+∞`) used to index the `|S|/|T|` ratio space, plus Stern–Brocot
//!   mediants;
//! * [`simplest_between`] — the unique minimum-denominator fraction strictly
//!   inside an open interval, used both to pick flow guesses with small
//!   capacities and to certify that a search interval holds no more
//!   candidate values;
//! * [`isqrt`] — floor integer square root on `u128`, used to build rational
//!   under-approximations of irrational density bounds.
//!
//! [`dds-core`]: ../dds_core/index.html
//!
//! # Example
//!
//! ```
//! use dds_num::{Density, Frac, simplest_between};
//!
//! // Densities compare exactly even when irrational and nearly tied:
//! // 7/√6 ≈ 2.857738 vs 20/7 ≈ 2.857143.
//! assert!(Density::new(7, 2, 3) > Density::new(20, 7, 7));
//! // …and equality is mathematical: 5/√25 = 1/√1.
//! assert_eq!(Density::new(5, 5, 5), Density::new(1, 1, 1));
//!
//! // The simplest rational strictly between two bounds (the flow-search
//! // guess generator): between 5/7 and 3/4 it is 8/11.
//! let g = simplest_between(Frac::new(5, 7), Frac::new(3, 4));
//! assert_eq!(g, Frac::new(8, 11));
//! ```

#![warn(missing_docs)]

mod density;
mod frac;
mod isqrt;
mod ratio;
mod stern_brocot;
mod wide;

pub use density::Density;
pub use frac::Frac;
pub use isqrt::isqrt;
pub use ratio::{candidate_ratios, Ratio};
pub use stern_brocot::simplest_between;
pub use wide::{cmp_prod, cmp_prod3, mul3_wide, mul_wide};

/// Greatest common divisor on `u128` (binary-free Euclid; inputs may be 0).
#[must_use]
pub fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Greatest common divisor on `u64`.
#[must_use]
pub fn gcd64(a: u64, b: u64) -> u64 {
    gcd(u128::from(a), u128::from(b)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 13), 1);
        assert_eq!(gcd(u128::MAX, u128::MAX), u128::MAX);
    }

    #[test]
    fn gcd64_matches_gcd() {
        for a in [0u64, 1, 2, 6, 35, 1024, u64::MAX] {
            for b in [0u64, 1, 3, 14, 1024, u64::MAX] {
                assert_eq!(u128::from(gcd64(a, b)), gcd(a.into(), b.into()));
            }
        }
    }
}
