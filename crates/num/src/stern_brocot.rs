//! Minimum-denominator fraction search inside an open interval.

use crate::Frac;

/// Returns the unique fraction with the smallest denominator (ties broken by
/// smallest numerator) strictly inside the open interval `(lo, hi)`.
///
/// Two uses in the exact DDS search:
///
/// * **guess selection** — picking the simplest rational between the current
///   binary-search bounds keeps the integer flow capacities (which scale
///   with the guess's denominator) as small as possible;
/// * **termination certificates** — every candidate optimum in β-space has
///   denominator ≤ `n(a+b)`; if the simplest fraction inside `(l, u)`
///   already exceeds that, the interval provably contains no candidate and
///   the search can stop.
///
/// Implementation: the classic continued-fraction walk. When the interval
/// contains an integer, the smallest one wins; otherwise both endpoints
/// share their integer part `k` and the problem recurses on the reciprocal
/// interval (order flips), with `x = k + 1/y`. The recursion depth is the
/// length of the continued-fraction expansion, i.e. `O(log den)`.
///
/// # Panics
/// Panics unless `0 ≤ lo < hi`.
#[must_use]
pub fn simplest_between(lo: Frac, hi: Frac) -> Frac {
    assert!(!lo.is_negative(), "simplest_between requires lo ≥ 0");
    assert!(lo < hi, "simplest_between requires lo < hi");
    simplest_rec(lo, hi)
}

fn simplest_rec(lo: Frac, hi: Frac) -> Frac {
    let next_int = lo.floor() + 1; // smallest integer strictly above lo
    if Frac::from(next_int) < hi {
        return Frac::from(next_int);
    }
    // No integer inside: every candidate is fl + 1/y with
    // y ∈ (1/(hi − fl), 1/(lo − fl)); lo == fl makes the upper end +∞.
    let fl = Frac::from(lo.floor());
    let lo_frac = lo - fl;
    let hi_frac = hi - fl;
    let new_lo = hi_frac.recip();
    let y = if lo_frac.is_zero() {
        Frac::from(new_lo.floor() + 1) // simplest in (new_lo, +∞)
    } else {
        simplest_rec(new_lo, lo_frac.recip())
    };
    fl + y.recip()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(n: i128, d: i128) -> Frac {
        Frac::new(n, d)
    }

    #[test]
    fn picks_integers_when_available() {
        assert_eq!(simplest_between(f(5, 2), f(7, 2)), f(3, 1));
        assert_eq!(simplest_between(f(0, 1), f(3, 1)), f(1, 1));
        // Smallest integer wins, not the midpoint.
        assert_eq!(simplest_between(f(3, 2), f(100, 1)), f(2, 1));
    }

    #[test]
    fn unit_interval() {
        assert_eq!(simplest_between(f(0, 1), f(1, 1)), f(1, 2));
        assert_eq!(simplest_between(f(1, 1), f(2, 1)), f(3, 2));
    }

    #[test]
    fn classic_cases() {
        assert_eq!(simplest_between(f(1, 3), f(1, 2)), f(2, 5));
        assert_eq!(simplest_between(f(5, 7), f(3, 4)), f(8, 11));
        // Interval around an excluded simple value: (1/2, 1/2 + tiny).
        let lo = f(1, 2);
        let hi = f(1, 2) + f(1, 1_000);
        let got = simplest_between(lo, hi);
        assert!(lo < got && got < hi);
    }

    #[test]
    fn endpoints_are_excluded() {
        let got = simplest_between(f(2, 5), f(3, 5));
        assert_eq!(got, f(1, 2));
        assert_ne!(got, f(2, 5));
        assert_ne!(got, f(3, 5));
    }

    /// Brute-force check of minimality: no fraction with a smaller
    /// denominator — nor the same denominator and a smaller numerator —
    /// lies strictly inside the interval.
    fn assert_simplest(lo: Frac, hi: Frac) {
        let got = simplest_between(lo, hi);
        assert!(lo < got && got < hi, "{got:?} ∉ ({lo:?}, {hi:?})");
        let d_got = got.den();
        let n_got = got.num();
        for d in 1..=d_got {
            // Candidate numerators in (lo·d, hi·d).
            let n_min = (lo * Frac::from(d)).floor();
            let n_max = (hi * Frac::from(d)).ceil();
            for n in n_min..=n_max {
                let cand = Frac::new(n, d);
                if lo < cand && cand < hi {
                    assert!(
                        d > got.den() || (d == d_got && n >= n_got),
                        "{cand:?} is simpler than {got:?} in ({lo:?},{hi:?})"
                    );
                    // The first in-interval fraction at the minimal
                    // denominator must be the answer itself.
                    if d < d_got {
                        panic!("{cand:?} has smaller denominator than {got:?}");
                    }
                    return;
                }
            }
        }
        panic!("no fraction found up to denominator {d_got}");
    }

    #[test]
    fn exhaustive_minimality_on_a_grid() {
        // All ordered pairs of fractions with denominators ≤ 9 in [0, 3).
        let mut fracs = Vec::new();
        for d in 1..=9i128 {
            for n in 0..(3 * d) {
                fracs.push(Frac::new(n, d));
            }
        }
        fracs.sort();
        fracs.dedup();
        for i in 0..fracs.len() {
            for j in (i + 1)..fracs.len().min(i + 40) {
                assert_simplest(fracs[i], fracs[j]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn rejects_empty_interval() {
        let _ = simplest_between(f(1, 2), f(1, 2));
    }

    #[test]
    #[should_panic(expected = "lo ≥ 0")]
    fn rejects_negative_lo() {
        let _ = simplest_between(f(-1, 2), f(1, 2));
    }
}
