//! Exact representation of directed densities `|E(S,T)| / sqrt(|S|·|T|)`.

use std::cmp::Ordering;
use std::fmt;

use crate::isqrt;
use crate::wide::cmp_prod;
use crate::Frac;

/// The density of a directed pair `(S, T)`, kept in exact form.
///
/// `Density { edges: e, s, t }` denotes `e / sqrt(s · t)`. The value is
/// irrational in general, so instead of rounding we store the triple and
/// implement a total order by comparing `e₁²·s₂·t₂` with `e₂²·s₁·t₁`
/// through 256-bit products. This is what allows the exact algorithms to
/// compare candidate subgraphs and search bounds without any numerical
/// tolerance.
///
/// Equality is **mathematical**, consistent with the ordering: `5/√(5·5)`
/// equals `1/√(1·1)`. Two different triples can therefore compare equal.
#[derive(Clone, Copy, Debug)]
pub struct Density {
    /// Number of edges from `S` to `T`.
    pub edges: u64,
    /// `|S|` (≥ 1 except in [`Density::ZERO`]).
    pub s: u64,
    /// `|T|` (≥ 1 except in [`Density::ZERO`]).
    pub t: u64,
}

impl Density {
    /// The density of the empty pair (used as the identity for maxima).
    pub const ZERO: Density = Density {
        edges: 0,
        s: 1,
        t: 1,
    };

    /// Creates the density `edges / sqrt(s·t)`.
    ///
    /// # Panics
    /// Panics if `s == 0` or `t == 0`.
    #[must_use]
    pub fn new(edges: u64, s: u64, t: u64) -> Self {
        assert!(s > 0 && t > 0, "density requires non-empty S and T");
        Density { edges, s, t }
    }

    /// `true` iff the value is 0 (no edges).
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.edges == 0
    }

    /// Numeric value, for reporting only.
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.edges as f64 / ((self.s as f64) * (self.t as f64)).sqrt()
    }

    /// The squared density as an exact rational `e² / (s·t)`.
    #[must_use]
    pub fn squared(self) -> Frac {
        let e2 = u128::from(self.edges) * u128::from(self.edges);
        let st = u128::from(self.s) * u128::from(self.t);
        Frac::new(
            i128::try_from(e2).expect("edges² fits i128"),
            i128::try_from(st).expect("s·t fits i128"),
        )
    }

    /// A rational **under-approximation** of `ρ·sqrt(a·b)` — the image of
    /// this density in the β-space used by the per-ratio flow search for the
    /// ratio `a/b` (see `dds-core::exact`).
    ///
    /// `ρ·sqrt(ab) = e·sqrt(ab·s·t)/(s·t)`; replacing the square root by
    /// [`isqrt`] floors the value, which is exactly what a *lower* search
    /// bound needs to stay sound.
    ///
    /// # Panics
    /// Panics if `a·b·s·t` overflows `u128` or the resulting numerator
    /// overflows `i128` (graphs handled here are far below those limits).
    #[must_use]
    pub fn beta_lower_bound(self, a: u64, b: u64) -> Frac {
        let ab = u128::from(a)
            .checked_mul(u128::from(b))
            .expect("ratio product overflow");
        let abst = ab
            .checked_mul(u128::from(self.s))
            .and_then(|v| v.checked_mul(u128::from(self.t)))
            .expect("beta_lower_bound radicand overflow");
        // Fixed-point scaling: isqrt(x · 4^k) / 2^k floors far less than
        // isqrt(x) when x is small. Pick the largest k that cannot overflow.
        let spare_bits = if abst == 0 {
            126
        } else {
            127 - (128 - abst.leading_zeros())
        };
        let k = (spare_bits / 2).min(20);
        let root = isqrt(abst << (2 * k));
        let num = u128::from(self.edges)
            .checked_mul(root)
            .expect("beta_lower_bound numerator overflow");
        let den = (u128::from(self.s) * u128::from(self.t)) << k;
        Frac::new(
            i128::try_from(num).expect("beta numerator fits i128"),
            i128::try_from(den).expect("beta denominator fits i128"),
        )
    }
}

impl PartialEq for Density {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Density {}

impl PartialOrd for Density {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Density {
    fn cmp(&self, other: &Self) -> Ordering {
        // e₁/√(s₁t₁) vs e₂/√(s₂t₂)  ⟺  e₁²·s₂t₂ vs e₂²·s₁t₁ (all ≥ 0).
        let e1 = u128::from(self.edges) * u128::from(self.edges);
        let e2 = u128::from(other.edges) * u128::from(other.edges);
        let st1 = u128::from(self.s) * u128::from(self.t);
        let st2 = u128::from(other.s) * u128::from(other.t);
        cmp_prod(e1, st2, e2, st1)
    }
}

impl fmt::Display for Density {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/√({}·{}) ≈ {:.6}",
            self.edges,
            self.s,
            self.t,
            self.to_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_f64_on_clear_cases() {
        let a = Density::new(10, 4, 4); // 2.5
        let b = Density::new(6, 2, 2); // 3.0
        assert!(a < b);
        assert!(Density::ZERO < a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn ordering_resolves_irrational_ties_exactly() {
        // 7/√(2·3) = 7/√6 ≈ 2.857738;  20/√(7·7) = 20/7 ≈ 2.857142 — f32
        // would struggle, exact compare must say the first is larger.
        let a = Density::new(7, 2, 3);
        let b = Density::new(20, 7, 7);
        assert!(a > b);
        // 5/√(1·4) = 2.5 exactly equals 10/√(4·4) = 2.5.
        assert_eq!(
            Density::new(5, 1, 4).cmp(&Density::new(10, 4, 4)),
            Ordering::Equal
        );
    }

    #[test]
    fn ordering_survives_huge_values() {
        let big = u64::MAX / 2;
        let a = Density::new(big, big, big);
        let b = Density::new(big, big, big - 1);
        assert!(a < b, "shrinking T must increase density at equal edges");
    }

    #[test]
    fn equality_is_mathematical() {
        assert_eq!(Density::new(5, 5, 5), Density::new(1, 1, 1));
        assert_eq!(Density::new(6, 2, 2), Density::new(3, 1, 1));
        assert_ne!(Density::new(5, 5, 5), Density::new(2, 1, 1));
        // Consistency: eq ⟺ cmp == Equal.
        let a = Density::new(4, 2, 8);
        let b = Density::new(2, 1, 2);
        assert_eq!(a == b, a.cmp(&b) == Ordering::Equal);
    }

    #[test]
    fn zero_behaviour() {
        assert!(Density::ZERO.is_zero());
        assert!(Density::new(0, 5, 9).is_zero());
        assert_eq!(Density::ZERO.cmp(&Density::new(0, 3, 3)), Ordering::Equal);
        assert_eq!(Density::ZERO.to_f64(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sides_rejected() {
        let _ = Density::new(3, 0, 2);
    }

    #[test]
    fn squared_value() {
        assert_eq!(Density::new(6, 2, 3).squared(), Frac::new(36, 6));
        assert_eq!(Density::new(0, 7, 1).squared(), Frac::ZERO);
    }

    #[test]
    fn beta_lower_bound_is_a_lower_bound() {
        // ρ = 5/√(2·3); for ratio a/b = 1/1, β = ρ·1 ≈ 2.0412.
        let d = Density::new(5, 2, 3);
        let lb = d.beta_lower_bound(1, 1);
        assert!(lb.to_f64() <= d.to_f64());
        assert!(lb.to_f64() > d.to_f64() - 1e-5, "bound should be tight");
        // Perfect square radicand ⇒ exact value: ρ = 6/√(4·9) = 1, ratio 4/9:
        // β = ρ·√36 = 6 exactly.
        let d = Density::new(6, 4, 9);
        assert_eq!(d.beta_lower_bound(4, 9), Frac::from(6u64));
    }

    #[test]
    fn display_formats() {
        let d = Density::new(3, 2, 2);
        let s = format!("{d}");
        assert!(s.contains("3/√(2·2)"), "{s}");
        assert!(s.contains("1.5"), "{s}");
    }
}
